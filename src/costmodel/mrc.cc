#include "costmodel/mrc.h"

#include <algorithm>
#include <unordered_map>

namespace tierbase {
namespace costmodel {

namespace {

/// Fenwick tree over op positions; a 1 marks "most recent access of some
/// key happened here".
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

  void Add(size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of [0, i].
  int64_t Sum(size_t i) const {
    int64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

  int64_t RangeSum(size_t lo, size_t hi) const {  // [lo, hi]
    if (lo > hi) return 0;
    return Sum(hi) - (lo == 0 ? 0 : Sum(lo - 1));
  }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace

MissRatioCurve MissRatioCurve::FromTrace(const workload::Trace& trace) {
  MissRatioCurve mrc;
  const size_t n = trace.ops.size();
  mrc.total_accesses_ = n;

  Fenwick marks(n);
  std::unordered_map<uint64_t, size_t> last_access;
  last_access.reserve(n / 4);

  std::unordered_map<uint64_t, uint64_t> distance_hist;

  for (size_t i = 0; i < n; ++i) {
    uint64_t key = trace.ops[i].key_index;
    auto it = last_access.find(key);
    if (it == last_access.end()) {
      ++mrc.cold_misses_;
      last_access.emplace(key, i);
    } else {
      // Stack distance = number of distinct keys accessed strictly between
      // the previous access and now = count of "most recent access" marks
      // in (prev, i).
      size_t prev = it->second;
      uint64_t distance = static_cast<uint64_t>(
          prev + 1 <= i - 1 && i >= 1 ? marks.RangeSum(prev + 1, i - 1) : 0);
      ++distance_hist[distance];
      marks.Add(prev, -1);
      it->second = i;
    }
    marks.Add(i, +1);
  }

  mrc.distinct_keys_ = last_access.size();

  uint64_t max_distance = 0;
  for (const auto& [d, c] : distance_hist) {
    max_distance = std::max(max_distance, d);
  }
  mrc.hits_at_size_.assign(max_distance + 1, 0);
  for (const auto& [d, c] : distance_hist) mrc.hits_at_size_[d] = c;

  mrc.cumulative_hits_.resize(mrc.hits_at_size_.size());
  uint64_t running = 0;
  for (size_t d = 0; d < mrc.hits_at_size_.size(); ++d) {
    running += mrc.hits_at_size_[d];
    mrc.cumulative_hits_[d] = running;
  }
  return mrc;
}

double MissRatioCurve::MissRatioAtEntries(uint64_t entries) const {
  if (total_accesses_ == 0) return 0.0;
  // A cache of `entries` slots hits every access whose stack distance is
  // strictly less than `entries`.
  uint64_t hits = 0;
  if (entries > 0 && !cumulative_hits_.empty()) {
    size_t idx = std::min<size_t>(static_cast<size_t>(entries) - 1,
                                  cumulative_hits_.size() - 1);
    hits = cumulative_hits_[idx];
  }
  return 1.0 -
         static_cast<double>(hits) / static_cast<double>(total_accesses_);
}

double MissRatioCurve::MissRatio(double cache_fraction) const {
  cache_fraction = std::clamp(cache_fraction, 0.0, 1.0);
  uint64_t entries = static_cast<uint64_t>(
      cache_fraction * static_cast<double>(distinct_keys_) + 0.5);
  return MissRatioAtEntries(entries);
}

}  // namespace costmodel
}  // namespace tierbase
