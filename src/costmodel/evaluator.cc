#include "costmodel/evaluator.h"

#include <algorithm>
#include <unordered_set>

namespace tierbase {
namespace costmodel {

EvaluationResult CostEvaluator::Evaluate(const std::string& config_name,
                                         KvEngine* engine,
                                         const ResourceInstance& instance,
                                         const EvaluationInput& input) {
  EvaluationResult result;
  result.config_name = config_name;

  // --- Load phase: install the sampled data snapshot. ---
  double payload = 0;
  for (uint64_t i = 0; i < input.preload_keys; ++i) {
    std::string key = workload::KeyFor(i);
    std::string value = workload::MakeRecord(input.trace.dataset, i);
    payload += static_cast<double>(key.size() + value.size());
    engine->Set(key, value);  // Best-effort; errors surface during replay.
  }
  engine->WaitIdle();

  // --- Replay phase: drive the recorded trace at full speed. ---
  result.replay = workload::ReplayTrace(engine, input.trace,
                                        input.replay_threads);
  engine->WaitIdle();

  // Account for payload added by trace writes to keys beyond the preload.
  std::unordered_set<uint64_t> extra_keys;
  for (const auto& op : input.trace.ops) {
    if (op.type != workload::OpType::kRead &&
        op.key_index >= input.preload_keys) {
      extra_keys.insert(op.key_index);
    }
  }
  for (uint64_t k : extra_keys) {
    payload += static_cast<double>(
        workload::KeyFor(k).size() +
        workload::MakeRecord(input.trace.dataset, k).size());
  }
  result.payload_bytes = payload;

  // --- Calculate phase. ---
  result.usage = engine->GetUsage();
  result.capacity.max_perf_qps = result.replay.throughput;

  // MaxSpace: the payload volume at which the first instance resource is
  // exhausted, extrapolating the measured expansion factor per resource.
  double max_space = std::numeric_limits<double>::infinity();
  if (payload > 0) {
    if (result.usage.memory_bytes > 0 && instance.dram_bytes > 0) {
      result.expansion_dram =
          static_cast<double>(result.usage.memory_bytes) / payload;
      max_space = std::min(
          max_space, static_cast<double>(instance.dram_bytes) /
                         result.expansion_dram);
    }
    if (result.usage.pmem_bytes > 0) {
      result.expansion_pmem =
          static_cast<double>(result.usage.pmem_bytes) / payload;
      if (instance.pmem_bytes > 0) {
        max_space = std::min(
            max_space, static_cast<double>(instance.pmem_bytes) /
                           result.expansion_pmem);
      }
    }
    if (result.usage.disk_bytes > 0 && instance.disk_bytes > 0) {
      result.expansion_disk =
          static_cast<double>(result.usage.disk_bytes) / payload;
      max_space = std::min(
          max_space,
          static_cast<double>(instance.disk_bytes) / result.expansion_disk);
    }
  }
  if (!std::isfinite(max_space)) max_space = 0;
  result.capacity.max_space_bytes = max_space;

  result.metrics = ComputeMetrics(instance, result.capacity);
  result.cost = ComputeCost(instance, result.capacity, input.demand,
                            input.perf_tolerance, input.space_tolerance,
                            input.replication_factor);
  return result;
}

CostEvaluator::Sweep CostEvaluator::Iterate(
    const std::vector<Candidate>& candidates, const EvaluationInput& input) {
  Sweep sweep;
  for (const auto& candidate : candidates) {
    EvaluationInput per_candidate = input;
    if (candidate.replay_threads > 0) {
      per_candidate.replay_threads = candidate.replay_threads;
    }
    if (candidate.replication_factor > 0) {
      per_candidate.replication_factor = candidate.replication_factor;
    }
    auto engine = candidate.make_engine();
    sweep.results.push_back(Evaluate(candidate.name, engine.get(),
                                     candidate.instance, per_candidate));
  }
  for (size_t i = 1; i < sweep.results.size(); ++i) {
    if (sweep.results[i].cost.cost < sweep.results[sweep.best].cost.cost) {
      sweep.best = i;
    }
  }
  return sweep;
}

}  // namespace costmodel
}  // namespace tierbase
