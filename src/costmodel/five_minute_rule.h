// The Five-Minute Rule, classic and adapted (paper §5.1, Eq. 4 and 5).
//
// Classic (Gray & Putzolu):
//   BreakEven = (PagesPerMBofRAM / AccessesPerSecondPerDisk)
//             * (PricePerDiskDrive / PricePerMBofRAM)
//
// Adapted for modern distributed systems (Eq. 5):
//   BreakEven = CPQPS_slow / (CPGB_fast * AverageRecordSizeGB)
//
// A record accessed more often than once per BreakEven seconds belongs in
// the fast (performance-optimized) configuration; rarer access favours the
// slow (space-optimized) one. Table 3 of the paper tabulates the intervals
// between TierBase-Raw, TierBase-PMem and TierBase-PBC.

#ifndef TIERBASE_COSTMODEL_FIVE_MINUTE_RULE_H_
#define TIERBASE_COSTMODEL_FIVE_MINUTE_RULE_H_

#include <string>
#include <vector>

#include "costmodel/cost_model.h"

namespace tierbase {
namespace costmodel {

/// Classic rule (Eq. 4); returns seconds.
double ClassicBreakEvenSeconds(double pages_per_mb_ram,
                               double accesses_per_second_per_disk,
                               double price_per_disk_drive,
                               double price_per_mb_ram);

/// Adapted rule (Eq. 5); `avg_record_bytes` is converted to GB internally.
/// Returns seconds.
double BreakEvenSeconds(double cpqps_slow, double cpgb_fast,
                        double avg_record_bytes);

/// A measured configuration profile for break-even comparisons.
struct StorageConfigProfile {
  std::string name;
  CostMetrics metrics;  // CPQPS and CPGB of the configuration.
};

struct BreakEvenEntry {
  std::string fast;   // Performance-optimized configuration.
  std::string slow;   // Space-optimized configuration.
  double seconds;     // Access interval at which their costs break even.
};

/// Computes break-even intervals for every (fast, slow) pair where `fast`
/// has strictly higher CPGB (more expensive space) and lower CPQPS
/// (cheaper queries) — the Table 3 shape.
std::vector<BreakEvenEntry> BreakEvenTable(
    const std::vector<StorageConfigProfile>& configs,
    double avg_record_bytes);

/// Given the average access interval of a key (seconds), picks the most
/// cost-effective configuration: the cheapest `slow` whose break-even
/// interval is below the access interval, else the fastest.
std::string RecommendConfig(const std::vector<StorageConfigProfile>& configs,
                            double avg_record_bytes,
                            double access_interval_seconds);

}  // namespace costmodel
}  // namespace tierbase

#endif  // TIERBASE_COSTMODEL_FIVE_MINUTE_RULE_H_
