// Tiered-storage cost model (paper §2.4 Eq. 3, §5.2 Eq. 6 and Theorem 5.1).

#ifndef TIERBASE_COSTMODEL_TIERED_H_
#define TIERBASE_COSTMODEL_TIERED_H_

#include <functional>

#include "costmodel/mrc.h"

namespace tierbase {
namespace costmodel {

/// Per-tier cost coefficients, all in the same monetary units:
///   pc_cache    performance cost of serving the full QPS from cache,
///   pc_miss     additional performance cost if *every* request missed
///               (multiplied by MR for the actual miss traffic),
///   sc_cache    space cost of caching *all* data (multiplied by CR),
///   pc_storage  performance cost of the storage tier serving all QPS
///               (multiplied by MR),
///   sc_storage  space cost of storing all data in the storage tier.
struct TieredCostInputs {
  double pc_cache = 0;
  double pc_miss = 0;
  double sc_cache = 0;
  double pc_storage = 0;
  double sc_storage = 0;
};

/// Eq. 3: C_tiered = max(PC_cache + PC_miss*MR, SC_cache*CR)
///                 + max(PC_storage*MR, SC_storage).
double TieredCost(const TieredCostInputs& in, double cache_ratio,
                  double miss_ratio);

/// Eq. 6: cache-tier term only.
double CacheTierCost(const TieredCostInputs& in, double cache_ratio,
                     double miss_ratio);

/// §2.4: tiered storage pays off when C_tiered < min(C_cache-only,
/// C_storage-only). Cache-only: CR=1, MR=0, no storage tier. Storage-only:
/// no cache, all requests hit storage.
bool TieredBeatsSingleTier(const TieredCostInputs& in, double cache_ratio,
                           double miss_ratio);
double CacheOnlyCost(const TieredCostInputs& in);
double StorageOnlyCost(const TieredCostInputs& in);

/// Theorem 5.1: the optimal cache ratio CR* satisfies
///   PC_cache + PC_miss * f(CR*) = SC_cache * CR*,
/// the intersection of the non-increasing g(CR) and the increasing h(CR).
/// Solved by bisection over CR in [0, 1]; when g(1) > h(1) (miss penalty
/// still dominates with everything cached) returns 1.0, and when
/// g(0) < h(0) returns 0.0.
double OptimalCacheRatio(const TieredCostInputs& in,
                         const std::function<double(double)>& miss_ratio_fn,
                         double tol = 1e-4);

/// Convenience overload using an exact MRC.
double OptimalCacheRatio(const TieredCostInputs& in, const MissRatioCurve& mrc,
                         double tol = 1e-4);

}  // namespace costmodel
}  // namespace tierbase

#endif  // TIERBASE_COSTMODEL_TIERED_H_
