#include "costmodel/cost_model.h"

#include <algorithm>

namespace tierbase {
namespace costmodel {

ResourceInstance StandardContainer() {
  return {"standard-1c4g", 1.0, 1, 4ULL << 30, 0, 0};
}

ResourceInstance MultiThreadContainer() {
  return {"multi-4c16g", 4.0, 4, 16ULL << 30, 0, 0};
}

ResourceInstance PmemContainer() {
  // 8 GB of PMem at ~2/5 DRAM price/GB (the Optane-era street ratio) on
  // top of the standard container: 1.0 + 8 GB * (0.25/GB * 0.4) = 1.8.
  // Priced so PMem beats raw DRAM on space but a strong compressor (PBC)
  // beats PMem — the ordering behind the paper's Table 3 intervals.
  return {"pmem-1c4g8p", 1.8, 1, 4ULL << 30, 8ULL << 30, 0};
}

ResourceInstance DiskContainer() {
  return {"disk-4c16g512d", 4.5, 4, 16ULL << 30, 0, 512ULL << 30};
}

CostMetrics ComputeMetrics(const ResourceInstance& instance,
                           const CapacityProfile& capacity) {
  CostMetrics m;
  if (capacity.max_perf_qps > 0) m.cpqps = instance.cost / capacity.max_perf_qps;
  if (capacity.max_space_bytes > 0) {
    m.cpgb = instance.cost /
             (capacity.max_space_bytes / static_cast<double>(1ULL << 30));
  }
  return m;
}

CostBreakdown ComputeCost(const ResourceInstance& instance,
                          const CapacityProfile& capacity,
                          const WorkloadDemand& demand, double perf_tolerance,
                          double space_tolerance, double replication_factor) {
  CostBreakdown out;
  if (capacity.max_perf_qps > 0) {
    out.pc = instance.cost * (demand.qps * perf_tolerance) /
             capacity.max_perf_qps;
  }
  if (capacity.max_space_bytes > 0) {
    out.sc = instance.cost *
             (demand.data_bytes * space_tolerance * replication_factor) /
             capacity.max_space_bytes;
  }
  out.cost = std::max(out.pc, out.sc);
  return out;
}

CostBreakdown ComputeCostCeil(const ResourceInstance& instance,
                              const CapacityProfile& capacity,
                              const WorkloadDemand& demand) {
  CostBreakdown out;
  if (capacity.max_perf_qps > 0) {
    out.pc = instance.cost * std::ceil(demand.qps / capacity.max_perf_qps);
  }
  if (capacity.max_space_bytes > 0) {
    out.sc = instance.cost *
             std::ceil(demand.data_bytes / capacity.max_space_bytes);
  }
  out.cost = std::max(out.pc, out.sc);
  return out;
}

size_t ArgminTotalCost(const std::vector<ConfigCost>& configs) {
  size_t best = 0;
  for (size_t i = 1; i < configs.size(); ++i) {
    if (configs[i].cost.cost < configs[best].cost.cost) best = i;
  }
  return best;
}

size_t ArgminCostImbalance(const std::vector<ConfigCost>& configs) {
  size_t best = 0;
  double best_diff = std::abs(configs[0].cost.pc - configs[0].cost.sc);
  for (size_t i = 1; i < configs.size(); ++i) {
    double diff = std::abs(configs[i].cost.pc - configs[i].cost.sc);
    if (diff < best_diff) {
      best_diff = diff;
      best = i;
    }
  }
  return best;
}

WorkloadClass Classify(const CostBreakdown& cost, double balance_slack) {
  if (cost.pc == 0 && cost.sc == 0) return WorkloadClass::kBalanced;
  double hi = std::max(cost.pc, cost.sc);
  if (std::abs(cost.pc - cost.sc) <= balance_slack * hi) {
    return WorkloadClass::kBalanced;
  }
  return cost.pc > cost.sc ? WorkloadClass::kPerformanceCritical
                           : WorkloadClass::kSpaceCritical;
}

const char* WorkloadClassName(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kPerformanceCritical: return "performance-critical";
    case WorkloadClass::kSpaceCritical: return "space-critical";
    case WorkloadClass::kBalanced: return "balanced";
  }
  return "?";
}

}  // namespace costmodel
}  // namespace tierbase
