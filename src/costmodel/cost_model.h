// Space-Performance Cost Model (paper §2).
//
// Definitions implemented here:
//   Def. 1  C(w,i,s) = max(PC, SC) with
//           PC = Cost(i) * ceil(QPS(w) / MaxPerf(w,i,s))
//           SC = Cost(i) * ceil(DataSize(w) / MaxSpace(w,i,s))
//   Def. 2  CPQPS = Cost(i)/MaxPerf,  CPGB = Cost(i)/MaxSpace,
//           C = max(CPQPS*QPS, CPGB*DataSize)         (Eq. 2, smooth form)
//   Thm 2.1 the optimal configuration minimizes max(PC,SC), equivalently
//           (on a space-performance trade-off curve) |PC - SC|.
//
// Costs are in abstract "standard container" units: the paper normalizes
// to a 1-core / 4 GB container at cost 1.0 (§6.4.1).

#ifndef TIERBASE_COSTMODEL_COST_MODEL_H_
#define TIERBASE_COSTMODEL_COST_MODEL_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace tierbase {
namespace costmodel {

/// A resource instance type: the unit of allocation (paper §2.1, "resource
/// instances … provided with pre-defined allocations").
struct ResourceInstance {
  std::string name;
  double cost = 1.0;  // Monetary cost per instance, standard-container units.
  int cpu_cores = 1;
  uint64_t dram_bytes = 4ULL << 30;
  uint64_t pmem_bytes = 0;
  uint64_t disk_bytes = 0;
};

/// §6.1 instance presets. Pricing constants (documented substitutions):
/// PMem at ~1/4 the per-GB price of DRAM, SSD at ~1/40.
ResourceInstance StandardContainer();     // 1 core, 4 GB — cost 1.0.
ResourceInstance MultiThreadContainer();  // 4 cores, 16 GB — cost 4.0.
ResourceInstance PmemContainer();         // 1 core, 4 GB + 16 GB PMem — 1.5.
ResourceInstance DiskContainer();   // 4 cores, 16 GB + 512 GB SSD — 4.5.

/// The workload's demands (QPS(w), DataSize(w)).
struct WorkloadDemand {
  double qps = 0;
  double data_bytes = 0;
};

/// Measured capacity of one (instance, configuration) pair.
struct CapacityProfile {
  double max_perf_qps = 0;     // MaxPerf(w, i, s).
  double max_space_bytes = 0;  // MaxSpace(w, i, s).
};

/// Def. 2 cost metrics.
struct CostMetrics {
  double cpqps = 0;  // Cost per query-per-second.
  double cpgb = 0;   // Cost per GB of payload.
};

CostMetrics ComputeMetrics(const ResourceInstance& instance,
                           const CapacityProfile& capacity);

struct CostBreakdown {
  double pc = 0;    // Performance cost.
  double sc = 0;    // Space cost.
  double cost = 0;  // max(pc, sc)  (Def. 1 / Eq. 2).
};

/// Smooth (Def. 2 / Eq. 2) form — the one used for all paper figures.
/// `tolerance` head-room ratios inflate demand for redundancy (§2.1);
/// `replication_factor` multiplies the space demand (dual-replica setups).
CostBreakdown ComputeCost(const ResourceInstance& instance,
                          const CapacityProfile& capacity,
                          const WorkloadDemand& demand,
                          double perf_tolerance = 1.0,
                          double space_tolerance = 1.0,
                          double replication_factor = 1.0);

/// Integral (ceil) form of Def. 1 — whole instances must be provisioned.
CostBreakdown ComputeCostCeil(const ResourceInstance& instance,
                              const CapacityProfile& capacity,
                              const WorkloadDemand& demand);

/// A named candidate configuration with its computed cost.
struct ConfigCost {
  std::string name;
  CostBreakdown cost;
};

/// Theorem 2.1: index of the configuration minimizing max(PC, SC).
size_t ArgminTotalCost(const std::vector<ConfigCost>& configs);
/// Theorem 2.1 (second form): index minimizing |PC - SC|.
size_t ArgminCostImbalance(const std::vector<ConfigCost>& configs);

/// Workload classification (§2.1 / Fig. 2a).
enum class WorkloadClass { kPerformanceCritical, kSpaceCritical, kBalanced };
WorkloadClass Classify(const CostBreakdown& cost, double balance_slack = 0.05);
const char* WorkloadClassName(WorkloadClass c);

}  // namespace costmodel
}  // namespace tierbase

#endif  // TIERBASE_COSTMODEL_COST_MODEL_H_
