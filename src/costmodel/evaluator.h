// CostEvaluator: the sample → load → replay → calculate → iterate framework
// of paper §5.3. Given an engine (one candidate configuration), a resource
// instance type and a recorded/synthesized trace, it measures
// MaxPerf (saturated replay throughput) and MaxSpace (payload capacity at
// the measured expansion factor), then computes CPQPS/CPGB/PC/SC/C.

#ifndef TIERBASE_COSTMODEL_EVALUATOR_H_
#define TIERBASE_COSTMODEL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/kv_engine.h"
#include "costmodel/cost_model.h"
#include "workload/trace.h"

namespace tierbase {
namespace costmodel {

struct EvaluationInput {
  workload::Trace trace;
  /// Keys [0, preload_keys) are inserted during the load phase.
  uint64_t preload_keys = 0;
  /// The production workload's demands that the measured configuration
  /// must be provisioned for.
  WorkloadDemand demand;
  /// Client threads used for the replay (typically = instance cores).
  int replay_threads = 1;
  /// Space-cost replication factor for configurations whose replica is not
  /// actually instantiated in-process (e.g. emulated baselines).
  double replication_factor = 1.0;
  /// Tolerance head-room ratios (§2.1).
  double perf_tolerance = 1.0;
  double space_tolerance = 1.0;
};

struct EvaluationResult {
  std::string config_name;
  CapacityProfile capacity;
  CostMetrics metrics;
  CostBreakdown cost;
  workload::RunResult replay;
  UsageStats usage;          // After replay.
  double payload_bytes = 0;  // Ground-truth bytes of user data resident.
  double expansion_dram = 0;   // memory_bytes / payload.
  double expansion_pmem = 0;
  double expansion_disk = 0;
};

class CostEvaluator {
 public:
  /// Steps 2-4 of the framework: load, replay, calculate, for one
  /// already-constructed engine. The engine is consumed (left loaded).
  EvaluationResult Evaluate(const std::string& config_name, KvEngine* engine,
                            const ResourceInstance& instance,
                            const EvaluationInput& input);

  /// Step 5 (iterate): evaluates every candidate and returns all results
  /// plus the index of the cost-optimal one.
  struct Candidate {
    std::string name;
    ResourceInstance instance;
    std::function<std::unique_ptr<KvEngine>()> make_engine;
    /// Per-candidate overrides; <= 0 keeps the input default.
    int replay_threads = 0;
    double replication_factor = 0;
  };
  struct Sweep {
    std::vector<EvaluationResult> results;
    size_t best = 0;
  };
  Sweep Iterate(const std::vector<Candidate>& candidates,
                const EvaluationInput& input);
};

}  // namespace costmodel
}  // namespace tierbase

#endif  // TIERBASE_COSTMODEL_EVALUATOR_H_
