#include "costmodel/five_minute_rule.h"

#include <algorithm>

namespace tierbase {
namespace costmodel {

double ClassicBreakEvenSeconds(double pages_per_mb_ram,
                               double accesses_per_second_per_disk,
                               double price_per_disk_drive,
                               double price_per_mb_ram) {
  if (accesses_per_second_per_disk <= 0 || price_per_mb_ram <= 0) return 0;
  return (pages_per_mb_ram / accesses_per_second_per_disk) *
         (price_per_disk_drive / price_per_mb_ram);
}

double BreakEvenSeconds(double cpqps_slow, double cpgb_fast,
                        double avg_record_bytes) {
  double record_gb = avg_record_bytes / static_cast<double>(1ULL << 30);
  if (cpgb_fast <= 0 || record_gb <= 0) return 0;
  return cpqps_slow / (cpgb_fast * record_gb);
}

std::vector<BreakEvenEntry> BreakEvenTable(
    const std::vector<StorageConfigProfile>& configs,
    double avg_record_bytes) {
  std::vector<BreakEvenEntry> out;
  for (const auto& fast : configs) {
    for (const auto& slow : configs) {
      if (&fast == &slow) continue;
      // "fast" = performance-optimized (cheap queries, expensive space);
      // "slow" = space-optimized (cheap space, expensive queries).
      if (fast.metrics.cpqps < slow.metrics.cpqps &&
          fast.metrics.cpgb > slow.metrics.cpgb) {
        out.push_back({fast.name, slow.name,
                       BreakEvenSeconds(slow.metrics.cpqps,
                                        fast.metrics.cpgb,
                                        avg_record_bytes)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BreakEvenEntry& a, const BreakEvenEntry& b) {
              return a.seconds < b.seconds;
            });
  return out;
}

std::string RecommendConfig(const std::vector<StorageConfigProfile>& configs,
                            double avg_record_bytes,
                            double access_interval_seconds) {
  if (configs.empty()) return "";
  // Evaluate the per-record cost of each configuration at the given access
  // rate: cost = CPQPS * (1/interval) + CPGB * record_gb. The break-even
  // interval between two configs is exactly where their costs cross.
  double record_gb = avg_record_bytes / static_cast<double>(1ULL << 30);
  double rate = access_interval_seconds > 0
                    ? 1.0 / access_interval_seconds
                    : 1e9;
  const StorageConfigProfile* best = &configs.front();
  double best_cost = best->metrics.cpqps * rate + best->metrics.cpgb * record_gb;
  for (const auto& cfg : configs) {
    double cost = cfg.metrics.cpqps * rate + cfg.metrics.cpgb * record_gb;
    if (cost < best_cost) {
      best_cost = cost;
      best = &cfg;
    }
  }
  return best->name;
}

}  // namespace costmodel
}  // namespace tierbase
