#include "costmodel/tiered.h"

#include <algorithm>

namespace tierbase {
namespace costmodel {

double CacheTierCost(const TieredCostInputs& in, double cache_ratio,
                     double miss_ratio) {
  double perf = in.pc_cache + in.pc_miss * miss_ratio;
  double space = in.sc_cache * cache_ratio;
  return std::max(perf, space);
}

double TieredCost(const TieredCostInputs& in, double cache_ratio,
                  double miss_ratio) {
  double storage =
      std::max(in.pc_storage * miss_ratio, in.sc_storage);
  return CacheTierCost(in, cache_ratio, miss_ratio) + storage;
}

double CacheOnlyCost(const TieredCostInputs& in) {
  // Everything in cache: full space cost, no miss traffic, no storage tier.
  return std::max(in.pc_cache, in.sc_cache);
}

double StorageOnlyCost(const TieredCostInputs& in) {
  // No cache: every request is served by storage (MR = 1).
  return std::max(in.pc_storage, in.sc_storage);
}

bool TieredBeatsSingleTier(const TieredCostInputs& in, double cache_ratio,
                           double miss_ratio) {
  double tiered = TieredCost(in, cache_ratio, miss_ratio);
  return tiered < std::min(CacheOnlyCost(in), StorageOnlyCost(in));
}

double OptimalCacheRatio(const TieredCostInputs& in,
                         const std::function<double(double)>& miss_ratio_fn,
                         double tol) {
  auto g = [&](double cr) {
    return in.pc_cache + in.pc_miss * miss_ratio_fn(cr);
  };
  auto h = [&](double cr) { return in.sc_cache * cr; };

  // g is non-increasing, h increasing. Bisect on g(cr) - h(cr).
  double lo = 0.0, hi = 1.0;
  if (g(lo) - h(lo) <= 0) return 0.0;  // Space cost dominates immediately.
  if (g(hi) - h(hi) >= 0) return 1.0;  // Perf cost dominates even at CR=1.
  while (hi - lo > tol) {
    double mid = (lo + hi) / 2;
    if (g(mid) - h(mid) > 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

double OptimalCacheRatio(const TieredCostInputs& in, const MissRatioCurve& mrc,
                         double tol) {
  return OptimalCacheRatio(
      in, [&mrc](double cr) { return mrc.MissRatio(cr); }, tol);
}

}  // namespace costmodel
}  // namespace tierbase
