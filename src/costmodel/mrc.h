// Miss Ratio Curve estimation (paper §5.2 cites Hu et al.'s MRC work):
// MR = f(CR), the fraction of requests missing an LRU cache of a given
// size. Computed exactly from a trace with Mattson's stack-distance
// algorithm using a Fenwick tree — O(N log N) over trace length N.

#ifndef TIERBASE_COSTMODEL_MRC_H_
#define TIERBASE_COSTMODEL_MRC_H_

#include <cstdint>
#include <vector>

#include "workload/trace.h"

namespace tierbase {
namespace costmodel {

class MissRatioCurve {
 public:
  /// Builds the exact LRU MRC of `trace` (reads and writes both count as
  /// accesses, matching a cache that allocates on write).
  static MissRatioCurve FromTrace(const workload::Trace& trace);

  /// Miss ratio of an LRU cache holding `entries` keys.
  double MissRatioAtEntries(uint64_t entries) const;

  /// Miss ratio at a cache sized to `cache_fraction` of the distinct key
  /// population (CR in the paper's notation; 1.0 = everything fits).
  double MissRatio(double cache_fraction) const;

  uint64_t distinct_keys() const { return distinct_keys_; }
  uint64_t total_accesses() const { return total_accesses_; }

  /// f(CR) is non-increasing by construction; exposed for property tests.
  const std::vector<uint64_t>& hit_histogram() const { return hits_at_size_; }

 private:
  // hits_at_size_[d] = number of accesses with stack distance exactly d
  // (i.e. hits in any LRU cache of size > d). cold_misses_ are compulsory.
  std::vector<uint64_t> hits_at_size_;
  std::vector<uint64_t> cumulative_hits_;  // Prefix sums for queries.
  uint64_t cold_misses_ = 0;
  uint64_t total_accesses_ = 0;
  uint64_t distinct_keys_ = 0;
};

}  // namespace costmodel
}  // namespace tierbase

#endif  // TIERBASE_COSTMODEL_MRC_H_
