#include "compression/recommender.h"

#include <algorithm>
#include <cstdio>

#include "common/clock.h"

namespace tierbase {

namespace {

CompressorProfile ProfileOne(CompressorType type,
                             const std::vector<std::string>& samples,
                             const CompressorOptions& options) {
  CompressorProfile profile;
  profile.type = type;
  auto compressor = CreateCompressor(type, options);

  Stopwatch train_timer;
  if (!compressor->Train(samples).ok()) return profile;
  profile.train_seconds = train_timer.ElapsedSeconds();

  size_t original = 0, compressed = 0;
  std::string out, back;
  Stopwatch compress_timer;
  for (const auto& s : samples) {
    if (!compressor->Compress(s, &out).ok()) return profile;
    original += s.size();
    compressed += out.size();
  }
  double compress_secs = compress_timer.ElapsedSeconds();

  Stopwatch decompress_timer;
  for (const auto& s : samples) {
    compressor->Compress(s, &out).ok();
    compressor->Decompress(out, &back).ok();
  }
  // Subtract an estimate of the re-compression time included above.
  double decompress_secs =
      std::max(1e-9, decompress_timer.ElapsedSeconds() - compress_secs);

  if (original > 0) {
    profile.compression_ratio =
        static_cast<double>(compressed) / static_cast<double>(original);
  }
  double mb = static_cast<double>(original) / (1024.0 * 1024.0);
  profile.compress_mbps = mb / std::max(1e-9, compress_secs);
  profile.decompress_mbps = mb / std::max(1e-9, decompress_secs);
  return profile;
}

}  // namespace

const char* CompressorTypeName(CompressorType type) {
  switch (type) {
    case CompressorType::kNone: return "none";
    case CompressorType::kZlite: return "zlite";
    case CompressorType::kZliteDict: return "zlite-dict";
    case CompressorType::kPbc: return "pbc";
  }
  return "?";
}

Recommendation RecommendCompressor(const std::vector<std::string>& samples,
                                   RecommendGoal goal,
                                   const CompressorOptions& options,
                                   std::vector<CompressorType> candidates) {
  if (candidates.empty()) {
    candidates = {CompressorType::kNone, CompressorType::kZlite,
                  CompressorType::kZliteDict, CompressorType::kPbc};
  }

  Recommendation rec;
  for (CompressorType type : candidates) {
    rec.profiles.push_back(ProfileOne(type, samples, options));
  }

  const CompressorProfile* best = nullptr;
  char reason[256];
  switch (goal) {
    case RecommendGoal::kSpaceFirst: {
      for (const auto& p : rec.profiles) {
        if (best == nullptr || p.compression_ratio < best->compression_ratio) {
          best = &p;
        }
      }
      snprintf(reason, sizeof(reason),
               "lowest compression ratio %.3f (space-first)",
               best->compression_ratio);
      break;
    }
    case RecommendGoal::kSpeedFirst: {
      for (const auto& p : rec.profiles) {
        if (p.compression_ratio >= 0.95) continue;  // Must actually compress.
        if (best == nullptr || p.compress_mbps > best->compress_mbps) {
          best = &p;
        }
      }
      if (best == nullptr) best = &rec.profiles.front();
      snprintf(reason, sizeof(reason),
               "highest compress throughput %.1f MB/s among compressing "
               "candidates (speed-first)",
               best->compress_mbps);
      break;
    }
    case RecommendGoal::kBalanced: {
      // Normalize each axis to the best candidate, then pick the candidate
      // with the smallest max(space, perf) — the Optimal Cost Theorem's
      // "balance the two costs" applied to compressor choice. The perf axis
      // is normalized against the fastest candidate that actually
      // compresses; otherwise the identity compressor's memcpy speed makes
      // every real compressor look unaffordable.
      double min_ratio = 1e9, max_mbps = 0;
      for (const auto& p : rec.profiles) {
        min_ratio = std::min(min_ratio, p.compression_ratio);
        if (p.type != CompressorType::kNone && p.compression_ratio < 0.95) {
          max_mbps = std::max(max_mbps, p.compress_mbps);
        }
      }
      if (max_mbps == 0) {  // Nothing compresses: fall back to all.
        for (const auto& p : rec.profiles) {
          max_mbps = std::max(max_mbps, p.compress_mbps);
        }
      }
      double best_score = 1e18;
      for (const auto& p : rec.profiles) {
        double space = p.compression_ratio / std::max(1e-9, min_ratio);
        double perf = max_mbps / std::max(1e-9, p.compress_mbps);
        double score = std::max(space, perf);
        if (score < best_score) {
          best_score = score;
          best = &p;
        }
      }
      snprintf(reason, sizeof(reason),
               "min-max normalized space/perf score %.2f (balanced)",
               best_score);
      break;
    }
  }

  rec.type = best->type;
  rec.reason = reason;
  return rec;
}

}  // namespace tierbase
