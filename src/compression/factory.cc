#include "compression/compressor.h"
#include "compression/pbc.h"
#include "compression/zlite.h"

namespace tierbase {

std::unique_ptr<Compressor> CreateCompressor(CompressorType type,
                                             const CompressorOptions& options) {
  switch (type) {
    case CompressorType::kNone:
      return std::make_unique<NoneCompressor>();
    case CompressorType::kZlite:
      return std::make_unique<ZliteCompressor>(/*use_dictionary=*/false,
                                               options);
    case CompressorType::kZliteDict:
      return std::make_unique<ZliteCompressor>(/*use_dictionary=*/true,
                                               options);
    case CompressorType::kPbc:
      return std::make_unique<PbcCompressor>(options);
  }
  return std::make_unique<NoneCompressor>();
}

}  // namespace tierbase
