// Compressor: the per-record compression interface used by the cache
// engine's value store and evaluated in Table 2 / Fig 13(a) of the paper.
//
// TierBase's pre-trained compression mechanism (paper §4.2) has two members:
//   * Zlite        — an LZ77-family byte compressor (our Zstandard stand-in),
//                    optionally seeded with a pre-trained dictionary.
//   * PBC          — Pattern-Based Compression: hierarchical clustering of
//                    sample records, per-cluster pattern (template)
//                    extraction, residual coding.
// Both support offline pre-training on sampled records (Train()), matching
// the paper's sample → train → apply pipeline.

#ifndef TIERBASE_COMPRESSION_COMPRESSOR_H_
#define TIERBASE_COMPRESSION_COMPRESSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

enum class CompressorType {
  kNone = 0,
  kZlite = 1,      // LZ without pre-trained dictionary ("Zstd-b").
  kZliteDict = 2,  // LZ with pre-trained dictionary ("Zstd-d").
  kPbc = 3,        // Pattern-Based Compression.
};

const char* CompressorTypeName(CompressorType type);

/// Per-record compressor. Thread-safe for concurrent Compress/Decompress
/// after training completes.
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual CompressorType type() const = 0;
  virtual std::string name() const = 0;

  /// Offline pre-training on sampled records (no-op for kNone/kZlite).
  virtual Status Train(const std::vector<std::string>& samples) = 0;
  virtual bool trained() const = 0;

  /// Compresses one record. Output is self-describing (decompressible by
  /// the same trained compressor instance or one trained identically).
  virtual Status Compress(const Slice& input, std::string* output) const = 0;
  virtual Status Decompress(const Slice& input, std::string* output) const = 0;

  /// True when the compressor failed to exploit its trained model on this
  /// record (used by CompressionMonitor to trigger re-training). Default:
  /// compressed not smaller than input.
  virtual bool WasUnmatched(const Slice& input, const Slice& output) const {
    return output.size() >= input.size();
  }
};

/// Identity compressor (TierBase-Raw).
class NoneCompressor : public Compressor {
 public:
  CompressorType type() const override { return CompressorType::kNone; }
  std::string name() const override { return "none"; }
  Status Train(const std::vector<std::string>&) override {
    return Status::OK();
  }
  bool trained() const override { return true; }
  Status Compress(const Slice& input, std::string* output) const override {
    output->assign(input.data(), input.size());
    return Status::OK();
  }
  Status Decompress(const Slice& input, std::string* output) const override {
    output->assign(input.data(), input.size());
    return Status::OK();
  }
};

struct CompressorOptions {
  /// Compression effort level, Zstd-style: negatives are fast modes.
  /// The paper's Fig 13(a) sweeps {-50, -10, 1, 15, 22}.
  int level = 1;
  /// Dictionary size budget for trained modes, bytes.
  size_t dict_size = 16 * 1024;
  /// PBC: maximum number of pattern clusters.
  size_t max_clusters = 64;
  /// PBC: token-similarity threshold in [0,1] to join a cluster.
  double cluster_similarity = 0.5;
  /// PBC: compress the residual encoding with a dictionary-seeded LZ pass.
  bool compress_residuals = true;
};

/// Factory. kZliteDict and kPbc require Train() before first Compress().
std::unique_ptr<Compressor> CreateCompressor(CompressorType type,
                                             const CompressorOptions& options =
                                                 CompressorOptions());

}  // namespace tierbase

#endif  // TIERBASE_COMPRESSION_COMPRESSOR_H_
