#include "compression/zlite.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/coding.h"
#include "common/hash.h"

namespace tierbase {

namespace {

// 4-byte prefix hash for the match finder.
inline uint32_t HashPrefix(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;  // 16-bit table index.
}

constexpr size_t kHashTableSize = 1 << 16;

}  // namespace

ZliteCodec::Effort ZliteCodec::EffortForLevel() const {
  Effort e;
  if (level_ <= -20) {
    e = {1, false, 8};     // Ultra-fast: long min-match, single probe.
  } else if (level_ <= 0) {
    e = {1, false, 6};     // Fast.
  } else if (level_ <= 3) {
    e = {8, false, 4};     // Default.
  } else if (level_ <= 12) {
    e = {32, true, 4};     // High.
  } else if (level_ <= 19) {
    e = {96, true, 4};     // Very high.
  } else {
    e = {256, true, 4};    // Max.
  }
  return e;
}

void ZliteCodec::SetDictionary(std::string dict) {
  if (dict.size() > kMaxOffset / 2) {
    dict = dict.substr(dict.size() - kMaxOffset / 2);
  }
  dict_ = std::move(dict);
}

Status ZliteCodec::Compress(const Slice& input, std::string* output) const {
  output->clear();
  PutVarint64(output, input.size());
  if (input.empty()) {
    PutVarint32(output, 0);  // lit_len = 0
    PutVarint32(output, 0);  // match_len = 0 (end)
    return Status::OK();
  }

  const Effort effort = EffortForLevel();

  // Work buffer: dictionary followed by input. Offsets are distances back
  // within this buffer, so they can address dictionary bytes.
  std::string buf;
  buf.reserve(dict_.size() + input.size());
  buf.append(dict_);
  buf.append(input.data(), input.size());
  const char* base = buf.data();
  const size_t start = dict_.size();
  const size_t end = buf.size();

  // Hash table of chain heads plus a per-position predecessor chain.
  std::vector<int32_t> head(kHashTableSize, -1);
  std::vector<int32_t> prev(buf.size(), -1);

  auto insert_pos = [&](size_t pos) {
    if (pos + 4 > end) return;
    uint32_t h = HashPrefix(base + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  };

  // Seed the match finder with dictionary content.
  for (size_t i = 0; i + 4 <= start; ++i) insert_pos(i);

  auto find_match = [&](size_t pos, size_t* match_pos) -> size_t {
    if (pos + effort.min_match > end) return 0;
    uint32_t h = HashPrefix(base + pos);
    int32_t cand = head[h];
    size_t best_len = 0;
    size_t best_pos = 0;
    int probes = effort.max_chain;
    const size_t max_len = end - pos;
    while (cand >= 0 && probes-- > 0) {
      size_t cpos = static_cast<size_t>(cand);
      size_t dist = pos - cpos;
      if (dist > kMaxOffset) break;  // Chain is ordered by recency.
      // Cheap reject: compare the byte one past the current best.
      if (best_len == 0 || base[cpos + best_len] == base[pos + best_len]) {
        size_t len = 0;
        while (len < max_len && base[cpos + len] == base[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_pos = cpos;
          if (len >= max_len) break;
        }
      }
      cand = prev[cpos];
    }
    if (best_len < effort.min_match) return 0;
    *match_pos = best_pos;
    return best_len;
  };

  size_t pos = start;
  size_t literal_start = start;

  auto emit_sequence = [&](size_t lit_end, size_t match_len, size_t offset) {
    PutVarint32(output, static_cast<uint32_t>(lit_end - literal_start));
    output->append(base + literal_start, lit_end - literal_start);
    PutVarint32(output, static_cast<uint32_t>(match_len));
    if (match_len > 0) {
      PutVarint32(output, static_cast<uint32_t>(offset));
    }
  };

  while (pos < end) {
    size_t match_pos = 0;
    size_t match_len = find_match(pos, &match_pos);

    if (match_len > 0 && effort.lazy && pos + 1 < end) {
      // One-step lazy matching: if the next position has a strictly longer
      // match, emit this byte as a literal instead.
      size_t next_match_pos = 0;
      insert_pos(pos);
      size_t next_len = find_match(pos + 1, &next_match_pos);
      if (next_len > match_len + 1) {
        ++pos;
        continue;  // pos already inserted above.
      }
      // Use the original match; pos was inserted, match positions follow.
      emit_sequence(pos, match_len, pos - match_pos);
      for (size_t i = pos + 1; i < pos + match_len; ++i) insert_pos(i);
      pos += match_len;
      literal_start = pos;
      continue;
    }

    if (match_len > 0) {
      emit_sequence(pos, match_len, pos - match_pos);
      for (size_t i = pos; i < pos + match_len; ++i) insert_pos(i);
      pos += match_len;
      literal_start = pos;
    } else {
      insert_pos(pos);
      ++pos;
    }
  }

  // Trailing literals + terminator.
  emit_sequence(end, 0, 0);
  return Status::OK();
}

Status ZliteCodec::Decompress(const Slice& input, std::string* output) const {
  output->clear();
  Slice in = input;
  uint64_t original_size = 0;
  if (!GetVarint64(&in, &original_size)) {
    return Status::Corruption("zlite: bad header");
  }

  std::string buf;
  buf.reserve(dict_.size() + original_size);
  buf.append(dict_);

  while (true) {
    uint32_t lit_len = 0;
    if (!GetVarint32(&in, &lit_len)) {
      return Status::Corruption("zlite: truncated literal length");
    }
    if (in.size() < lit_len) {
      return Status::Corruption("zlite: truncated literals");
    }
    buf.append(in.data(), lit_len);
    in.remove_prefix(lit_len);

    uint32_t match_len = 0;
    if (!GetVarint32(&in, &match_len)) {
      return Status::Corruption("zlite: truncated match length");
    }
    if (match_len == 0) break;  // Terminator.

    uint32_t offset = 0;
    if (!GetVarint32(&in, &offset)) {
      return Status::Corruption("zlite: truncated offset");
    }
    if (offset == 0 || offset > buf.size()) {
      return Status::Corruption("zlite: offset out of range");
    }
    // Byte-at-a-time copy supports overlapping matches (RLE-style).
    size_t from = buf.size() - offset;
    for (uint32_t i = 0; i < match_len; ++i) {
      buf.push_back(buf[from + i]);
    }
  }

  if (buf.size() - dict_.size() != original_size) {
    return Status::Corruption("zlite: size mismatch after decompress");
  }
  output->assign(buf.data() + dict_.size(), buf.size() - dict_.size());
  return Status::OK();
}

std::string TrainDictionary(const std::vector<std::string>& samples,
                            size_t dict_size) {
  if (samples.empty() || dict_size == 0) return "";

  // Pass 1: count frequency of fixed-width grams across samples.
  constexpr size_t kGram = 8;
  std::unordered_map<uint64_t, uint32_t> gram_count;
  gram_count.reserve(1 << 16);
  for (const auto& s : samples) {
    if (s.size() < kGram) continue;
    for (size_t i = 0; i + kGram <= s.size(); i += 2) {  // Stride 2: cheaper.
      gram_count[Hash64(s.data() + i, kGram)]++;
    }
  }

  // Pass 2: score candidate segments (64-byte windows of samples) by the
  // total frequency of the grams they cover; greedily take the best
  // non-duplicate segments until the budget is filled.
  constexpr size_t kSegment = 64;
  struct Candidate {
    uint64_t score;
    const std::string* src;
    size_t off;
    size_t len;
  };
  std::vector<Candidate> candidates;
  for (const auto& s : samples) {
    for (size_t off = 0; off < s.size(); off += kSegment) {
      size_t len = std::min(kSegment, s.size() - off);
      if (len < kGram) continue;
      uint64_t score = 0;
      for (size_t i = off; i + kGram <= off + len; i += 2) {
        auto it = gram_count.find(Hash64(s.data() + i, kGram));
        if (it != gram_count.end() && it->second > 1) score += it->second;
      }
      if (score > 0) candidates.push_back({score, &s, off, len});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  // Deduplicate near-identical segments via a content hash, then assemble
  // least-frequent-first so the hottest content sits at the dictionary tail
  // (smallest offsets).
  std::unordered_map<uint64_t, bool> seen;
  std::vector<std::string> picked;
  size_t total = 0;
  for (const auto& c : candidates) {
    if (total >= dict_size) break;
    uint64_t h = Hash64(c.src->data() + c.off, c.len);
    if (seen.count(h)) continue;
    seen[h] = true;
    picked.emplace_back(c.src->substr(c.off, c.len));
    total += c.len;
  }
  std::string dict;
  dict.reserve(total);
  for (auto it = picked.rbegin(); it != picked.rend(); ++it) dict.append(*it);
  if (dict.size() > dict_size) dict = dict.substr(dict.size() - dict_size);
  return dict;
}

ZliteCompressor::ZliteCompressor(bool use_dictionary,
                                 const CompressorOptions& options)
    : use_dictionary_(use_dictionary),
      trained_(!use_dictionary),
      options_(options),
      codec_(options.level) {}

std::string ZliteCompressor::name() const {
  return use_dictionary_ ? "zlite-dict" : "zlite";
}

Status ZliteCompressor::Train(const std::vector<std::string>& samples) {
  if (!use_dictionary_) return Status::OK();
  if (samples.empty()) {
    return Status::InvalidArgument("zlite-dict: empty training sample");
  }
  codec_.SetDictionary(TrainDictionary(samples, options_.dict_size));
  trained_ = true;
  return Status::OK();
}

Status ZliteCompressor::Compress(const Slice& input,
                                 std::string* output) const {
  if (!trained_) return Status::InvalidArgument("zlite-dict: not trained");
  return codec_.Compress(input, output);
}

Status ZliteCompressor::Decompress(const Slice& input,
                                   std::string* output) const {
  if (!trained_) return Status::InvalidArgument("zlite-dict: not trained");
  return codec_.Decompress(input, output);
}

}  // namespace tierbase
