#include "compression/pbc.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/coding.h"

namespace tierbase {

namespace pbc {

namespace {

enum class CharClass { kAlpha, kDigit, kOther };

inline CharClass ClassOf(unsigned char c) {
  if (std::isalpha(c)) return CharClass::kAlpha;
  if (std::isdigit(c)) return CharClass::kDigit;
  return CharClass::kOther;
}

}  // namespace

std::vector<std::string> Tokenize(const Slice& record) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = record.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(record[i]);
    CharClass cls = ClassOf(c);
    if (cls == CharClass::kOther) {
      tokens.emplace_back(1, record[i]);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && ClassOf(static_cast<unsigned char>(record[j])) == cls) {
      ++j;
    }
    tokens.emplace_back(record.data() + i, j - i);
    i = j;
  }
  return tokens;
}

std::vector<std::string> TokenLcs(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return {};
  // Classic O(n*m) DP; training samples are short token sequences.
  std::vector<std::vector<uint32_t>> dp(n + 1, std::vector<uint32_t>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  std::vector<std::string> out;
  size_t i = n, j = m;
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1]) {
      out.push_back(a[i - 1]);
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t lcs = TokenLcs(a, b).size();
  return static_cast<double>(lcs) /
         static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace pbc

PbcCompressor::PbcCompressor(const CompressorOptions& options)
    : options_(options), residual_codec_(options.level) {}

Status PbcCompressor::Train(const std::vector<std::string>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("pbc: empty training sample");
  }
  patterns_.clear();

  // --- Leader (hierarchical agglomerative, single pass) clustering. ---
  // Each cluster keeps its evolving pattern = LCS of its members' tokens.
  struct Cluster {
    std::vector<std::string> pattern;
    size_t members = 0;
  };
  std::vector<Cluster> clusters;

  // Cap training cost: a few hundred samples suffice to find templates.
  const size_t kMaxTrainSamples = 512;
  size_t stride = std::max<size_t>(1, samples.size() / kMaxTrainSamples);

  for (size_t idx = 0; idx < samples.size(); idx += stride) {
    std::vector<std::string> toks = pbc::Tokenize(samples[idx]);
    if (toks.empty()) continue;

    double best_sim = 0.0;
    size_t best_cluster = 0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      double sim = pbc::TokenSimilarity(clusters[c].pattern, toks);
      if (sim > best_sim) {
        best_sim = sim;
        best_cluster = c;
      }
    }
    if (!clusters.empty() && best_sim >= options_.cluster_similarity) {
      Cluster& c = clusters[best_cluster];
      c.pattern = pbc::TokenLcs(c.pattern, toks);
      c.members++;
    } else if (clusters.size() < options_.max_clusters) {
      clusters.push_back({std::move(toks), 1});
    }
    // When at capacity and nothing similar: the record stays uncovered and
    // will use the raw fallback at compression time.
  }

  // Keep patterns that still carry real boilerplate (>= 4 bytes of fixed
  // content), most valuable first.
  for (auto& c : clusters) {
    pbc::Pattern p;
    p.tokens = std::move(c.pattern);
    for (const auto& t : p.tokens) p.total_bytes += t.size();
    if (p.total_bytes >= 4 && !p.tokens.empty()) {
      patterns_.push_back(std::move(p));
    }
  }
  std::sort(patterns_.begin(), patterns_.end(),
            [](const pbc::Pattern& a, const pbc::Pattern& b) {
              return a.total_bytes > b.total_bytes;
            });
  if (patterns_.size() > options_.max_clusters) {
    patterns_.resize(options_.max_clusters);
  }

  // --- Residual-stage dictionary: train on the gap encodings of samples. ---
  if (options_.compress_residuals) {
    std::vector<std::string> residuals;
    residuals.reserve(std::min<size_t>(samples.size(), 256));
    for (size_t idx = 0; idx < samples.size() && residuals.size() < 256;
         idx += stride) {
      std::string enc;
      EncodeRecord(samples[idx], &enc);
      residuals.push_back(std::move(enc));
    }
    residual_codec_.SetDictionary(
        TrainDictionary(residuals, options_.dict_size));
  }

  trained_ = true;
  return Status::OK();
}

size_t PbcCompressor::MatchPattern(const Slice& record,
                                   const pbc::Pattern& pattern,
                                   std::vector<Slice>* gaps) {
  gaps->clear();
  gaps->reserve(pattern.tokens.size() + 1);
  const char* data = record.data();
  size_t pos = 0;
  const size_t n = record.size();
  size_t covered = 0;
  for (const auto& tok : pattern.tokens) {
    if (pos >= n) return 0;
    const void* found =
        memmem(data + pos, n - pos, tok.data(), tok.size());
    if (found == nullptr) return 0;
    size_t at = static_cast<size_t>(static_cast<const char*>(found) - data);
    gaps->emplace_back(data + pos, at - pos);
    pos = at + tok.size();
    covered += tok.size();
  }
  gaps->emplace_back(data + pos, n - pos);
  return covered;
}

uint32_t PbcCompressor::EncodeRecord(const Slice& input,
                                     std::string* encoded) const {
  encoded->clear();

  // Choose the pattern with the best coverage. Trying every pattern is the
  // deliberate CPU-for-space trade-off the paper reports for PBC SETs.
  size_t best_covered = 0;
  uint32_t best_idx = 0;  // 0 = raw fallback.
  std::vector<Slice> best_gaps;
  std::vector<Slice> gaps;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    size_t covered = MatchPattern(input, patterns_[i], &gaps);
    if (covered > best_covered) {
      best_covered = covered;
      best_idx = static_cast<uint32_t>(i) + 1;
      best_gaps.swap(gaps);
    }
  }

  PutVarint32(encoded, best_idx);
  if (best_idx == 0) {
    encoded->append(input.data(), input.size());
    return 0;
  }
  for (const Slice& g : best_gaps) {
    PutLengthPrefixedSlice(encoded, g);
  }
  return best_idx;
}

Status PbcCompressor::Compress(const Slice& input, std::string* output) const {
  if (!trained_) return Status::InvalidArgument("pbc: not trained");
  std::string encoded;
  uint32_t pattern_idx = EncodeRecord(input, &encoded);
  // Marker byte: bit 0 = residual-compressed, bit 1 = a pattern matched
  // (bit 1 lets WasUnmatched answer without decoding the payload).
  char marker = pattern_idx != 0 ? 2 : 0;
  if (options_.compress_residuals) {
    output->clear();
    output->push_back(marker | 1);
    std::string packed;
    TIERBASE_RETURN_IF_ERROR(residual_codec_.Compress(encoded, &packed));
    output->append(packed);
  } else {
    output->clear();
    output->push_back(marker);
    output->append(encoded);
  }
  return Status::OK();
}

Status PbcCompressor::Decompress(const Slice& input,
                                 std::string* output) const {
  if (!trained_) return Status::InvalidArgument("pbc: not trained");
  if (input.empty()) return Status::Corruption("pbc: empty input");

  Slice in = input;
  const bool residual_compressed = (in[0] & 1) != 0;
  in.remove_prefix(1);

  std::string unpacked;
  if (residual_compressed) {
    TIERBASE_RETURN_IF_ERROR(residual_codec_.Decompress(in, &unpacked));
    in = Slice(unpacked);
  }

  uint32_t pattern_idx = 0;
  if (!GetVarint32(&in, &pattern_idx)) {
    return Status::Corruption("pbc: bad pattern index");
  }
  if (pattern_idx == 0) {
    output->assign(in.data(), in.size());
    return Status::OK();
  }
  if (pattern_idx > patterns_.size()) {
    return Status::Corruption("pbc: pattern index out of range");
  }
  const pbc::Pattern& pattern = patterns_[pattern_idx - 1];

  output->clear();
  for (size_t i = 0; i <= pattern.tokens.size(); ++i) {
    Slice gap;
    if (!GetLengthPrefixedSlice(&in, &gap)) {
      return Status::Corruption("pbc: truncated gap");
    }
    output->append(gap.data(), gap.size());
    if (i < pattern.tokens.size()) {
      output->append(pattern.tokens[i]);
    }
  }
  return Status::OK();
}

bool PbcCompressor::WasUnmatched(const Slice& /*input*/,
                                 const Slice& output) const {
  // Bit 1 of the marker byte records whether any trained pattern covered
  // the record; unmatched records fell back to raw (+ LZ) encoding.
  if (output.empty()) return true;
  return (output[0] & 2) == 0;
}

}  // namespace tierbase
