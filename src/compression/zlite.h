// Zlite: a from-scratch LZ77-family byte compressor standing in for
// Zstandard (which is not available offline in this environment). It
// supports effort levels and pre-trained dictionaries, which is everything
// the paper's evaluation exercises (Table 2, Fig 13a).
//
// Format (all varints little-endian base-128):
//   varint64 original_size
//   sequence*:
//     varint32 literal_len, literal bytes,
//     varint32 match_len   (0 terminates the stream; otherwise >= kMinMatch),
//     varint32 offset      (distance back from current output position;
//                           may reach into the pre-trained dictionary).
//
// Dictionary mode conceptually prepends the dictionary to the input: match
// offsets may address dictionary bytes, so records sharing boilerplate with
// the dictionary compress to near-nothing — the mechanism behind the
// "pre-trained" gains of §4.2.

#ifndef TIERBASE_COMPRESSION_ZLITE_H_
#define TIERBASE_COMPRESSION_ZLITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compression/compressor.h"

namespace tierbase {

/// Raw zlite block codec. Stateless aside from an optional dictionary.
class ZliteCodec {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxOffset = 1 << 20;  // 1 MiB back-reference cap.

  explicit ZliteCodec(int level = 1) : level_(level) {}

  /// Sets the dictionary (copied). Must match between compress/decompress.
  void SetDictionary(std::string dict);
  const std::string& dictionary() const { return dict_; }

  int level() const { return level_; }
  void set_level(int level) { level_ = level; }

  Status Compress(const Slice& input, std::string* output) const;
  Status Decompress(const Slice& input, std::string* output) const;

 private:
  /// Effort knobs derived from level.
  struct Effort {
    int max_chain;   // Hash-chain positions probed per match attempt.
    bool lazy;       // One-step lazy matching.
    size_t min_match;
  };
  Effort EffortForLevel() const;

  int level_;
  std::string dict_;
};

/// Compressor adapter: kZlite (no training) or kZliteDict (trains a
/// dictionary from samples).
class ZliteCompressor : public Compressor {
 public:
  ZliteCompressor(bool use_dictionary, const CompressorOptions& options);

  CompressorType type() const override {
    return use_dictionary_ ? CompressorType::kZliteDict
                           : CompressorType::kZlite;
  }
  std::string name() const override;

  Status Train(const std::vector<std::string>& samples) override;
  bool trained() const override { return trained_; }

  Status Compress(const Slice& input, std::string* output) const override;
  Status Decompress(const Slice& input, std::string* output) const override;

 private:
  bool use_dictionary_;
  bool trained_;
  CompressorOptions options_;
  ZliteCodec codec_;
};

/// Trains a dictionary from sample records: counts frequent fixed-width
/// grams, then greedily selects covering segments from the samples until
/// `dict_size` bytes are accumulated. Most frequent content is placed at
/// the *end* of the dictionary (closest / cheapest offsets).
std::string TrainDictionary(const std::vector<std::string>& samples,
                            size_t dict_size);

}  // namespace tierbase

#endif  // TIERBASE_COMPRESSION_ZLITE_H_
