#include "compression/monitor.h"

namespace tierbase {

void CompressionMonitor::Observe(size_t original_bytes,
                                 size_t compressed_bytes, bool unmatched) {
  if (original_bytes == 0) return;
  double ratio = static_cast<double>(compressed_bytes) /
                 static_cast<double>(original_bytes);

  // EMA update under the lock: contention here is acceptable because
  // Observe is called on the (already slow) compression path.
  {
    common::MutexLock lock(&mu_);
    if (!has_ema_.load(std::memory_order_relaxed)) {
      ema_ratio_.store(ratio);
      has_ema_.store(true, std::memory_order_relaxed);
    } else {
      double ema = ema_ratio_.load();
      ema_ratio_.store(ema + options_.ema_alpha * (ratio - ema));
    }
  }

  observed_.fetch_add(1, std::memory_order_relaxed);
  window_total_.fetch_add(1, std::memory_order_relaxed);
  if (unmatched) window_unmatched_.fetch_add(1, std::memory_order_relaxed);

  if (window_total_.load(std::memory_order_relaxed) >= options_.window) {
    MaybeTrigger();
  }
}

void CompressionMonitor::MaybeTrigger() {
  uint64_t total = window_total_.exchange(0);
  uint64_t unmatched = window_unmatched_.exchange(0);
  if (total == 0) return;

  double unmatched_rate =
      static_cast<double>(unmatched) / static_cast<double>(total);
  double ratio = ema_ratio_.load();
  bool ratio_degraded =
      ratio > options_.baseline_ratio * (1.0 + options_.ratio_slack);
  bool too_unmatched = unmatched_rate > options_.max_unmatched_rate;

  if (ratio_degraded || too_unmatched) {
    retrain_count_.fetch_add(1, std::memory_order_relaxed);
    RetrainCallback cb;
    {
      common::MutexLock lock(&mu_);
      cb = on_retrain_;
    }
    if (cb) cb();
  }
}

void CompressionMonitor::Rebase() {
  common::MutexLock lock(&mu_);
  options_.baseline_ratio = ema_ratio_.load();
}

}  // namespace tierbase
