// PBC: Pattern-Based Compression (paper §4.2, reference [59]).
//
// Machine-generated records (serialized structs, URLs, log lines) share
// rigid templates with variable fields. PBC discovers those templates
// offline and stores each record as (pattern id, residual field bytes):
//
//   Train:    sample records → tokenize → hierarchical (leader) clustering
//             under a token-sequence similarity metric → per-cluster
//             pattern = longest common token subsequence of the members.
//   Compress: pick the pattern with the best byte coverage; emit the gap
//             bytes between pattern tokens; optionally LZ-compress the gap
//             encoding with a dictionary trained on sample residuals.
//   Decompress: splice pattern tokens and gaps back together.
//
// Matching the paper's Table 2: compression is slower than Zlite (pattern
// search dominates), decompression is near-raw speed (no match-finding),
// and the ratio beats dictionary LZ on templated data.

#ifndef TIERBASE_COMPRESSION_PBC_H_
#define TIERBASE_COMPRESSION_PBC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compression/compressor.h"
#include "compression/zlite.h"

namespace tierbase {
namespace pbc {

/// Splits a record into class-homogeneous tokens: letter runs, digit runs,
/// single punctuation/other bytes. Exposed for tests.
std::vector<std::string> Tokenize(const Slice& record);

/// Similarity of two token sequences: |LCS| / max(|a|, |b|), in [0,1].
double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Longest common subsequence of two token sequences.
std::vector<std::string> TokenLcs(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b);

/// A trained pattern: ordered tokens that member records contain.
struct Pattern {
  std::vector<std::string> tokens;
  size_t total_bytes = 0;  // Sum of token byte lengths (coverage value).
};

}  // namespace pbc

class PbcCompressor : public Compressor {
 public:
  explicit PbcCompressor(const CompressorOptions& options);

  CompressorType type() const override { return CompressorType::kPbc; }
  std::string name() const override { return "pbc"; }

  Status Train(const std::vector<std::string>& samples) override;
  bool trained() const override { return trained_; }

  Status Compress(const Slice& input, std::string* output) const override;
  Status Decompress(const Slice& input, std::string* output) const override;

  /// A record is "unmatched" when no pattern covered it (fell back to raw).
  bool WasUnmatched(const Slice& input, const Slice& output) const override;

  size_t num_patterns() const { return patterns_.size(); }
  const std::vector<pbc::Pattern>& patterns() const { return patterns_; }

 private:
  /// Greedy in-order match of pattern tokens inside `record`. On success
  /// fills `gaps` (pattern.tokens.size() + 1 entries) and returns covered
  /// byte count; returns 0 if any token is missing.
  static size_t MatchPattern(const Slice& record, const pbc::Pattern& pattern,
                             std::vector<Slice>* gaps);

  /// Encodes with the best pattern (or raw fallback) into `encoded`.
  /// Returns the pattern index + 1, or 0 for raw.
  uint32_t EncodeRecord(const Slice& input, std::string* encoded) const;

  CompressorOptions options_;
  bool trained_ = false;
  std::vector<pbc::Pattern> patterns_;
  ZliteCodec residual_codec_;  // Second-stage pass over the gap encoding.
};

}  // namespace tierbase

#endif  // TIERBASE_COMPRESSION_PBC_H_
