// CompressorRecommender: part of TierBase's Insight service (paper §4.2) —
// given a sample of the workload's records, measure each candidate
// compressor's ratio and throughput and suggest the best one for the
// client's requirement (space-first, speed-first, or balanced via the
// space-performance cost model's spirit: pick the candidate minimizing a
// weighted max of normalized costs).

#ifndef TIERBASE_COMPRESSION_RECOMMENDER_H_
#define TIERBASE_COMPRESSION_RECOMMENDER_H_

#include <string>
#include <vector>

#include "compression/compressor.h"

namespace tierbase {

struct CompressorProfile {
  CompressorType type = CompressorType::kNone;
  double compression_ratio = 1.0;   // compressed / original (lower = better).
  double compress_mbps = 0.0;       // Throughput, MB/s of input.
  double decompress_mbps = 0.0;
  double train_seconds = 0.0;
};

enum class RecommendGoal {
  kSpaceFirst,    // Minimize ratio; throughput is secondary.
  kSpeedFirst,    // Maximize SET throughput among those that compress at all.
  kBalanced,      // Minimize max(normalized space, normalized perf cost).
};

struct Recommendation {
  CompressorType type = CompressorType::kNone;
  std::string reason;
  std::vector<CompressorProfile> profiles;  // All measured candidates.
};

/// Benchmarks every candidate on `samples` and recommends per `goal`.
/// `candidates` defaults to {kNone, kZlite, kZliteDict, kPbc}.
Recommendation RecommendCompressor(
    const std::vector<std::string>& samples, RecommendGoal goal,
    const CompressorOptions& options = CompressorOptions(),
    std::vector<CompressorType> candidates = {});

}  // namespace tierbase

#endif  // TIERBASE_COMPRESSION_RECOMMENDER_H_
