// CompressionMonitor: the paper's monitoring service (§4.2) that tracks
// compression efficiency in production and triggers re-sampling/re-training
// when the data distribution drifts away from the trained model.
//
// Two triggers, exactly as described:
//   * the observed compression ratio rises above a baseline level
//     (ratio here = compressed/original, so higher is worse), or
//   * the rate of records that do not match any trained pattern exceeds a
//     threshold.

#ifndef TIERBASE_COMPRESSION_MONITOR_H_
#define TIERBASE_COMPRESSION_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/mutex.h"

namespace tierbase {

struct CompressionMonitorOptions {
  /// Re-train when EMA ratio exceeds baseline_ratio * (1 + slack).
  double baseline_ratio = 0.5;
  double ratio_slack = 0.25;
  /// Re-train when unmatched fraction (per window) exceeds this.
  double max_unmatched_rate = 0.20;
  /// Observations per evaluation window.
  uint64_t window = 1024;
  /// EMA smoothing for the ratio.
  double ema_alpha = 0.05;
};

class CompressionMonitor {
 public:
  using RetrainCallback = std::function<void()>;

  explicit CompressionMonitor(CompressionMonitorOptions options = {},
                              RetrainCallback on_retrain = nullptr)
      : options_(options), on_retrain_(std::move(on_retrain)) {}

  /// Records one compression event. Thread-safe.
  void Observe(size_t original_bytes, size_t compressed_bytes, bool unmatched);

  /// Installs / replaces the re-train hook.
  void SetRetrainCallback(RetrainCallback cb) {
    common::MutexLock lock(&mu_);
    on_retrain_ = std::move(cb);
  }

  /// Resets the baseline to the current EMA (call after re-training).
  void Rebase();

  double ema_ratio() const { return ema_ratio_.load(); }
  uint64_t retrain_count() const { return retrain_count_.load(); }
  uint64_t observed() const { return observed_.load(); }

 private:
  void MaybeTrigger();

  CompressionMonitorOptions options_;
  common::Mutex mu_;
  RetrainCallback on_retrain_ GUARDED_BY(mu_);

  std::atomic<double> ema_ratio_{0.0};
  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> window_unmatched_{0};
  std::atomic<uint64_t> window_total_{0};
  std::atomic<uint64_t> retrain_count_{0};
  std::atomic<bool> has_ema_{false};
};

}  // namespace tierbase

#endif  // TIERBASE_COMPRESSION_MONITOR_H_
