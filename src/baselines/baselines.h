// Baseline systems for the paper's comparisons (§6.1): Redis, Memcached,
// Dragonfly, Redis-AOF, Cassandra, HBase.
//
// These are *architectural miniatures*, not reimplementations: each is the
// composition of our own substrates (hash engine, LSM store, WAL) arranged
// in the baseline's architecture class, plus a small documented per-op CPU
// tax and per-entry memory overhead capturing the architectural properties
// our substrates do not share with the original (e.g. Redis's robj
// indirection, the JVM cost of Cassandra/HBase, memcached's slab
// efficiency). Every constant is declared in one table below so the
// emulation assumptions are auditable; DESIGN.md discusses why the *shape*
// of the paper's comparisons survives this substitution.

#ifndef TIERBASE_BASELINES_BASELINES_H_
#define TIERBASE_BASELINES_BASELINES_H_

#include <memory>
#include <string>

#include "cache/hash_engine.h"
#include "common/kv_engine.h"
#include "lsm/lsm_store.h"

namespace tierbase {
namespace baselines {

/// The documented emulation constants for one baseline.
struct BaselineProfile {
  std::string name;
  /// Extra CPU burned per operation (architecture tax), nanoseconds.
  uint64_t per_op_extra_ns = 0;
  /// Multiplier on measured DRAM usage (allocator/object-model overhead
  /// relative to our hash engine; memcached slabs < 1.0 < Redis robj).
  double memory_overhead_mult = 1.0;
  /// Multiplier on measured disk usage.
  double disk_overhead_mult = 1.0;
};

/// Wraps an engine, applying a BaselineProfile's tax and overhead.
class ProfiledEngine : public KvEngine {
 public:
  ProfiledEngine(std::unique_ptr<KvEngine> inner, BaselineProfile profile)
      : inner_(std::move(inner)), profile_(std::move(profile)) {}

  std::string name() const override { return profile_.name; }

  Status Set(const Slice& key, const Slice& value) override {
    BurnTax();
    return inner_->Set(key, value);
  }
  Status Get(const Slice& key, std::string* value) override {
    BurnTax();
    return inner_->Get(key, value);
  }
  Status Delete(const Slice& key) override {
    BurnTax();
    return inner_->Delete(key);
  }
  UsageStats GetUsage() const override {
    UsageStats usage = inner_->GetUsage();
    usage.memory_bytes = static_cast<uint64_t>(
        usage.memory_bytes * profile_.memory_overhead_mult);
    usage.disk_bytes = static_cast<uint64_t>(
        usage.disk_bytes * profile_.disk_overhead_mult);
    return usage;
  }
  Status WaitIdle() override { return inner_->WaitIdle(); }

  KvEngine* inner() { return inner_.get(); }

 private:
  void BurnTax() const {
    if (profile_.per_op_extra_ns > 0) BusySpinNanos(profile_.per_op_extra_ns);
  }

  std::unique_ptr<KvEngine> inner_;
  BaselineProfile profile_;
};

// --- Caching systems. ---

/// Redis-like: single dict guarded by one lock (single-threaded event-loop
/// architecture); rich object model costs extra memory per entry.
std::unique_ptr<KvEngine> MakeRedisLike();

/// Memcached-like: fine-grained sharded table, slab-allocator memory
/// efficiency, small per-op cost from its connection state machine; built
/// for multi-threading (shards = `threads`-ish, min 8).
std::unique_ptr<KvEngine> MakeMemcachedLike(int threads);

/// Dragonfly-like: shared-nothing per-core shards; excellent multi-thread
/// scaling, some single-thread overhead from its fiber machinery.
std::unique_ptr<KvEngine> MakeDragonflyLike(int threads);

// --- Databases with persistence. ---

/// Redis + AOF: Redis-like plus an appendfsync-everysec WAL.
std::unique_ptr<KvEngine> MakeRedisAof(const std::string& dir);

/// Cassandra-like: LSM on disk, JVM + SEDA pipeline tax per op.
std::unique_ptr<KvEngine> MakeCassandraLike(const std::string& dir);

/// HBase-like: LSM on disk (HDFS-ish extra disk overhead), higher per-op
/// RPC/JVM tax than Cassandra.
std::unique_ptr<KvEngine> MakeHBaseLike(const std::string& dir);

}  // namespace baselines
}  // namespace tierbase

#endif  // TIERBASE_BASELINES_BASELINES_H_
