#include "baselines/baselines.h"

#include "common/coding.h"
#include "common/env.h"
#include "lsm/wal.h"

namespace tierbase {
namespace baselines {

namespace {

/// Redis-AOF-like: hash engine + append-only file with everysec fsync.
class AofEngine : public KvEngine {
 public:
  static Result<std::unique_ptr<AofEngine>> Open(const std::string& dir) {
    TIERBASE_RETURN_IF_ERROR(env::CreateDirIfMissing(dir));
    auto engine = std::unique_ptr<AofEngine>(new AofEngine());
    lsm::WalOptions wal_options;
    wal_options.sync_mode = lsm::WalSyncMode::kInterval;
    wal_options.sync_interval_micros = 1'000'000;  // appendfsync everysec.
    auto wal = lsm::WalWriter::Open(dir + "/appendonly.aof", wal_options);
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(*wal);
    return engine;
  }

  std::string name() const override { return "redis-aof"; }

  Status Set(const Slice& key, const Slice& value) override {
    std::string rec;
    rec.push_back(1);
    PutLengthPrefixedSlice(&rec, key);
    PutLengthPrefixedSlice(&rec, value);
    TIERBASE_RETURN_IF_ERROR(wal_->AddRecord(rec));
    return cache_.Set(key, value);
  }
  Status Get(const Slice& key, std::string* value) override {
    return cache_.Get(key, value);
  }
  Status Delete(const Slice& key) override {
    std::string rec;
    rec.push_back(0);
    PutLengthPrefixedSlice(&rec, key);
    PutLengthPrefixedSlice(&rec, Slice());
    TIERBASE_RETURN_IF_ERROR(wal_->AddRecord(rec));
    return cache_.Delete(key);
  }
  UsageStats GetUsage() const override {
    UsageStats usage = cache_.GetUsage();
    usage.disk_bytes += wal_->size();
    return usage;
  }
  Status WaitIdle() override { return wal_->Sync(); }

 private:
  AofEngine() : cache_(cache::HashEngineOptions{}) {}

  cache::HashEngine cache_;
  std::unique_ptr<lsm::WalWriter> wal_;
};

/// LSM-backed persistent baseline.
std::unique_ptr<KvEngine> MakeLsmBaseline(const std::string& dir,
                                          BaselineProfile profile) {
  lsm::LsmOptions options;
  options.dir = dir;
  options.wal_mode = lsm::WalMode::kFile;
  auto store = lsm::LsmStore::Open(options);
  if (!store.ok()) return nullptr;
  return std::make_unique<ProfiledEngine>(std::move(*store),
                                          std::move(profile));
}

}  // namespace

// Emulation constant table (see header comment and DESIGN.md). The per-op
// tax depends on the threading mode: Memcached and Dragonfly carry their
// connection-state-machine / fiber machinery as pure overhead when pinned
// to one thread, but amortize it well across threads; Redis is optimized
// for exactly one thread and gains nothing from more (paper §6.2.1).
//
//   system      tax single  tax multi  mem mult  disk mult  rationale
//   redis          300 ns     300 ns     1.25      1.0      robj+dictEntry
//   memcached     2000 ns     600 ns     0.85      1.0      slabs; conn FSM
//   dragonfly     2500 ns     800 ns     0.95      1.0      fiber/proactor
//   redis-aof      300 ns       -        1.25      1.0      robj + AOF file
//   cassandra     6000 ns       -        1.0       1.6      JVM/SEDA, sstable
//                                                           metadata+commitlog
//   hbase         9000 ns       -        1.0       1.8      JVM + HDFS-ish
//                                                           replication, RPC

std::unique_ptr<KvEngine> MakeRedisLike() {
  cache::HashEngineOptions options;
  options.shards = 1;  // The single event-loop dict.
  return std::make_unique<ProfiledEngine>(
      std::make_unique<cache::HashEngine>(options),
      BaselineProfile{"redis", 300, 1.25, 1.0});
}

std::unique_ptr<KvEngine> MakeMemcachedLike(int threads) {
  cache::HashEngineOptions options;
  options.shards = std::max(1, threads) * 4;  // Fine-grained bucket locks.
  uint64_t tax = threads <= 1 ? 2000 : 600;
  return std::make_unique<ProfiledEngine>(
      std::make_unique<cache::HashEngine>(options),
      BaselineProfile{"memcached", tax, 0.85, 1.0});
}

std::unique_ptr<KvEngine> MakeDragonflyLike(int threads) {
  cache::HashEngineOptions options;
  options.shards = std::max(1, threads);  // Shared-nothing per-core shards.
  uint64_t tax = threads <= 1 ? 2500 : 800;
  return std::make_unique<ProfiledEngine>(
      std::make_unique<cache::HashEngine>(options),
      BaselineProfile{"dragonfly", tax, 0.95, 1.0});
}

std::unique_ptr<KvEngine> MakeRedisAof(const std::string& dir) {
  auto aof = AofEngine::Open(dir);
  if (!aof.ok()) return nullptr;
  return std::make_unique<ProfiledEngine>(
      std::move(*aof), BaselineProfile{"redis-aof", 300, 1.25, 1.0});
}

std::unique_ptr<KvEngine> MakeCassandraLike(const std::string& dir) {
  return MakeLsmBaseline(dir, BaselineProfile{"cassandra", 6000, 1.0, 1.6});
}

std::unique_ptr<KvEngine> MakeHBaseLike(const std::string& dir) {
  return MakeLsmBaseline(dir, BaselineProfile{"hbase", 9000, 1.0, 1.8});
}

}  // namespace baselines
}  // namespace tierbase
