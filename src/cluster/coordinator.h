// Coordinator: the control plane of the in-process cluster (§3). It owns
// the instance registry and the routing epoch. Clients fetch routing
// snapshots; when an instance is reported failed the coordinator removes it
// from the ring, bumps the epoch, and clients refresh on the next
// Unavailable error — the same pull-based route-refresh protocol TierBase
// clients use against the coordinator cluster.

#ifndef TIERBASE_CLUSTER_COORDINATOR_H_
#define TIERBASE_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/instance.h"
#include "cluster/router.h"
#include "common/mutex.h"

namespace tierbase::cluster {

class Coordinator {
 public:
  explicit Coordinator(int virtual_nodes_per_instance = 64,
                       int replicas = 1);

  /// Registers a new data node and adds it to the ring.
  Status AddInstance(std::unique_ptr<Instance> instance);
  /// Marks the instance down and removes it from the ring. Keys it owned
  /// are served by ring successors afterwards (cache refill on miss).
  Status ReportFailure(const std::string& instance_id);
  /// Brings a previously failed instance back into the ring.
  Status Recover(const std::string& instance_id);

  /// Monotonically increasing routing-table version.
  uint64_t epoch() const;

  struct RoutingSnapshot {
    uint64_t epoch = 0;
    Router router;
    int replicas = 1;
  };
  RoutingSnapshot GetRouting() const;

  Instance* Find(const std::string& instance_id);
  std::vector<Instance*> instances();
  size_t healthy_count() const;

 private:
  mutable common::Mutex mu_;
  int replicas_;
  uint64_t epoch_ GUARDED_BY(mu_) = 1;
  Router router_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Instance>> instances_ GUARDED_BY(mu_);
};

}  // namespace tierbase::cluster

#endif  // TIERBASE_CLUSTER_COORDINATOR_H_
