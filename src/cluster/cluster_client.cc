#include "cluster/cluster_client.h"

namespace tierbase::cluster {

ClusterClient::ClusterClient(Coordinator* coordinator)
    : coordinator_(coordinator) {
  RefreshRouting();
}

void ClusterClient::RefreshRouting() {
  routing_ = coordinator_->GetRouting();
  ++stats_.route_refreshes;
}

template <typename Op>
Status ClusterClient::WithFailover(const Slice& key, Op op) {
  if (routing_.epoch != coordinator_->epoch()) RefreshRouting();
  std::string owner = routing_.router.Route(key);
  if (owner.empty()) return Status::Unavailable("empty cluster");
  Instance* inst = coordinator_->Find(owner);
  Status s = inst == nullptr ? Status::Unavailable(owner) : op(inst);
  if (!s.IsUnavailable()) return s;

  // Owner is down: report, refresh, retry once against the new owner.
  coordinator_->ReportFailure(owner);
  RefreshRouting();
  ++stats_.failovers;
  std::string next = routing_.router.Route(key);
  if (next.empty() || next == owner) return s;
  Instance* successor = coordinator_->Find(next);
  if (successor == nullptr) return Status::Unavailable(next);
  return op(successor);
}

Status ClusterClient::Set(const Slice& key, const Slice& value) {
  if (routing_.epoch != coordinator_->epoch()) RefreshRouting();
  // Write to `replicas` ring successors so a failover still finds the data.
  auto targets = routing_.router.RouteReplicas(key, routing_.replicas);
  if (targets.empty()) return Status::Unavailable("empty cluster");
  Status first;
  bool any_ok = false;
  for (size_t i = 0; i < targets.size(); ++i) {
    Instance* inst = coordinator_->Find(targets[i]);
    Status s =
        inst == nullptr ? Status::Unavailable(targets[i]) : inst->Set(key, value);
    if (i == 0) first = s;
    if (s.ok()) {
      any_ok = true;
    } else if (s.IsUnavailable()) {
      coordinator_->ReportFailure(targets[i]);
    }
  }
  if (first.ok()) return first;
  if (any_ok) return Status::OK();  // Primary down but a replica took it.
  RefreshRouting();
  return WithFailover(key,
                      [&](Instance* inst) { return inst->Set(key, value); });
}

Status ClusterClient::Get(const Slice& key, std::string* value) {
  if (routing_.epoch != coordinator_->epoch()) RefreshRouting();
  auto targets = routing_.router.RouteReplicas(key, routing_.replicas);
  if (targets.empty()) return Status::Unavailable("empty cluster");
  Status last;
  for (const auto& id : targets) {
    Instance* inst = coordinator_->Find(id);
    if (inst == nullptr) {
      last = Status::Unavailable(id);
      continue;
    }
    last = inst->Get(key, value);
    if (last.ok() || last.IsNotFound()) return last;
    if (last.IsUnavailable()) {
      coordinator_->ReportFailure(id);
      ++stats_.failovers;
    }
  }
  RefreshRouting();
  return last;
}

Status ClusterClient::Delete(const Slice& key) {
  if (routing_.epoch != coordinator_->epoch()) RefreshRouting();
  auto targets = routing_.router.RouteReplicas(key, routing_.replicas);
  if (targets.empty()) return Status::Unavailable("empty cluster");
  Status first;
  for (size_t i = 0; i < targets.size(); ++i) {
    Instance* inst = coordinator_->Find(targets[i]);
    Status s =
        inst == nullptr ? Status::Unavailable(targets[i]) : inst->Delete(key);
    if (i == 0) first = s;
    if (s.IsUnavailable()) coordinator_->ReportFailure(targets[i]);
  }
  return first;
}

UsageStats ClusterClient::GetUsage() const {
  UsageStats total;
  for (Instance* inst : coordinator_->instances()) {
    if (!inst->healthy()) continue;
    UsageStats u = inst->GetUsage();
    total.memory_bytes += u.memory_bytes;
    total.pmem_bytes += u.pmem_bytes;
    total.disk_bytes += u.disk_bytes;
    total.keys += u.keys;
  }
  return total;
}

Status ClusterClient::WaitIdle() {
  for (Instance* inst : coordinator_->instances()) {
    if (!inst->healthy()) continue;
    Status s = inst->WaitIdle();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace tierbase::cluster
