// Router: consistent-hash ring mapping keys to instance ids (§3 "client
// tier" / "cache tier" sharding). Virtual nodes smooth the key distribution
// so that adding or removing one instance only remaps ~1/N of the keyspace,
// matching the even-sharding assumption of the cost model (Definition 1).

#ifndef TIERBASE_CLUSTER_ROUTER_H_
#define TIERBASE_CLUSTER_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"

namespace tierbase::cluster {

class Router {
 public:
  explicit Router(int virtual_nodes_per_instance = 64);

  /// Adds `instance_id` to the ring; no-op if already present.
  void AddInstance(const std::string& instance_id);
  /// Removes `instance_id`; keys it owned fall through to ring successors.
  void RemoveInstance(const std::string& instance_id);

  bool Contains(const std::string& instance_id) const;
  size_t num_instances() const { return instances_.size(); }

  /// Returns the owning instance id, or empty string if the ring is empty.
  std::string Route(const Slice& key) const;

  /// Returns the `replicas` distinct instances following the key's position
  /// on the ring (the first entry is the primary owner). Fewer are returned
  /// if the ring has fewer distinct instances.
  std::vector<std::string> RouteReplicas(const Slice& key,
                                         int replicas) const;

  /// Fraction of a uniform keyspace owned by each instance (diagnostics for
  /// the even-sharding tolerance ratios of §2.1).
  std::map<std::string, double> OwnershipShares() const;

 private:
  int virtual_nodes_;
  // hash point -> instance id.
  std::map<uint64_t, std::string> ring_;
  std::vector<std::string> instances_;
};

}  // namespace tierbase::cluster

#endif  // TIERBASE_CLUSTER_ROUTER_H_
