#include "cluster/coordinator.h"
#include "common/mutex.h"

namespace tierbase::cluster {

Coordinator::Coordinator(int virtual_nodes_per_instance, int replicas)
    : replicas_(replicas < 1 ? 1 : replicas),
      router_(virtual_nodes_per_instance) {}

Status Coordinator::AddInstance(std::unique_ptr<Instance> instance) {
  common::MutexLock lock(&mu_);
  for (const auto& existing : instances_) {
    if (existing->id() == instance->id()) {
      return Status::InvalidArgument("duplicate instance id: " +
                                     instance->id());
    }
  }
  router_.AddInstance(instance->id());
  instances_.push_back(std::move(instance));
  ++epoch_;
  return Status::OK();
}

Status Coordinator::ReportFailure(const std::string& instance_id) {
  common::MutexLock lock(&mu_);
  for (auto& inst : instances_) {
    if (inst->id() == instance_id) {
      inst->set_healthy(false);
      // The node may have died externally (healthy flag already false):
      // ring membership, not the flag, decides whether work remains.
      if (router_.Contains(instance_id)) {
        router_.RemoveInstance(instance_id);
        ++epoch_;
      }
      return Status::OK();
    }
  }
  return Status::NotFound("unknown instance: " + instance_id);
}

Status Coordinator::Recover(const std::string& instance_id) {
  common::MutexLock lock(&mu_);
  for (auto& inst : instances_) {
    if (inst->id() == instance_id) {
      if (inst->healthy()) return Status::OK();
      inst->set_healthy(true);
      router_.AddInstance(instance_id);
      ++epoch_;
      return Status::OK();
    }
  }
  return Status::NotFound("unknown instance: " + instance_id);
}

uint64_t Coordinator::epoch() const {
  common::MutexLock lock(&mu_);
  return epoch_;
}

Coordinator::RoutingSnapshot Coordinator::GetRouting() const {
  common::MutexLock lock(&mu_);
  RoutingSnapshot snap;
  snap.epoch = epoch_;
  snap.router = router_;
  snap.replicas = replicas_;
  return snap;
}

Instance* Coordinator::Find(const std::string& instance_id) {
  common::MutexLock lock(&mu_);
  for (auto& inst : instances_) {
    if (inst->id() == instance_id) return inst.get();
  }
  return nullptr;
}

std::vector<Instance*> Coordinator::instances() {
  common::MutexLock lock(&mu_);
  std::vector<Instance*> out;
  out.reserve(instances_.size());
  for (auto& inst : instances_) out.push_back(inst.get());
  return out;
}

size_t Coordinator::healthy_count() const {
  common::MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& inst : instances_) {
    if (inst->healthy()) ++n;
  }
  return n;
}

}  // namespace tierbase::cluster
