// ClusterClient: the data-path client of the in-process cluster (§3 client
// tier). It caches a routing snapshot from the coordinator, routes each key
// to its owner, writes through to `replicas` ring successors, and reads
// from the primary falling back to replicas. On Unavailable it reports the
// failure to the coordinator, refreshes its snapshot, and retries once —
// the automatic failover handling the paper attributes to TierBase clients.

#ifndef TIERBASE_CLUSTER_CLUSTER_CLIENT_H_
#define TIERBASE_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <string>

#include "cluster/coordinator.h"
#include "common/kv_engine.h"

namespace tierbase::cluster {

class ClusterClient : public KvEngine {
 public:
  /// `coordinator` is not owned and must outlive the client.
  explicit ClusterClient(Coordinator* coordinator);

  std::string name() const override { return "cluster-client"; }

  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  /// Aggregated usage across all healthy instances.
  UsageStats GetUsage() const override;
  Status WaitIdle() override;

  struct Stats {
    uint64_t route_refreshes = 0;
    uint64_t failovers = 0;  // Operations retried on a replica/successor.
  };
  Stats GetStats() const { return stats_; }

 private:
  void RefreshRouting();
  /// Applies `op` to the primary; on Unavailable reports the failure,
  /// refreshes routing, and retries against the new owner.
  template <typename Op>
  Status WithFailover(const Slice& key, Op op);

  Coordinator* coordinator_;
  Coordinator::RoutingSnapshot routing_;
  Stats stats_;
};

}  // namespace tierbase::cluster

#endif  // TIERBASE_CLUSTER_CLUSTER_CLIENT_H_
