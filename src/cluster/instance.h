// Instance: a data node in the in-process cluster — one KvEngine shard plus
// health state. The coordinator flips health on failover; a down instance
// rejects every operation with Unavailable so the client retries against
// the promoted replica, mirroring the failover flow of §3 (coordinators
// "managing failovers").

#ifndef TIERBASE_CLUSTER_INSTANCE_H_
#define TIERBASE_CLUSTER_INSTANCE_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "common/kv_engine.h"

namespace tierbase::cluster {

class Instance : public KvEngine {
 public:
  Instance(std::string id, std::unique_ptr<KvEngine> engine)
      : id_(std::move(id)), engine_(std::move(engine)) {}

  const std::string& id() const { return id_; }
  std::string name() const override { return "instance:" + id_; }

  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  void set_healthy(bool up) {
    healthy_.store(up, std::memory_order_release);
  }

  KvEngine* engine() { return engine_.get(); }

  Status Set(const Slice& key, const Slice& value) override {
    if (!healthy()) return Status::Unavailable(id_);
    return engine_->Set(key, value);
  }
  Status Get(const Slice& key, std::string* value) override {
    if (!healthy()) return Status::Unavailable(id_);
    return engine_->Get(key, value);
  }
  Status Delete(const Slice& key) override {
    if (!healthy()) return Status::Unavailable(id_);
    return engine_->Delete(key);
  }
  UsageStats GetUsage() const override { return engine_->GetUsage(); }
  Status WaitIdle() override { return engine_->WaitIdle(); }

 private:
  std::string id_;
  std::unique_ptr<KvEngine> engine_;
  std::atomic<bool> healthy_{true};
};

}  // namespace tierbase::cluster

#endif  // TIERBASE_CLUSTER_INSTANCE_H_
