#include "cluster/router.h"

#include <algorithm>

#include "common/hash.h"

namespace tierbase::cluster {

Router::Router(int virtual_nodes_per_instance)
    : virtual_nodes_(virtual_nodes_per_instance < 1
                         ? 1
                         : virtual_nodes_per_instance) {}

void Router::AddInstance(const std::string& instance_id) {
  if (Contains(instance_id)) return;
  instances_.push_back(instance_id);
  for (int v = 0; v < virtual_nodes_; ++v) {
    std::string point = instance_id + "#" + std::to_string(v);
    ring_.emplace(Hash64(point.data(), point.size()), instance_id);
  }
}

void Router::RemoveInstance(const std::string& instance_id) {
  auto it = std::find(instances_.begin(), instances_.end(), instance_id);
  if (it == instances_.end()) return;
  instances_.erase(it);
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == instance_id) {
      rit = ring_.erase(rit);
    } else {
      ++rit;
    }
  }
}

bool Router::Contains(const std::string& instance_id) const {
  return std::find(instances_.begin(), instances_.end(), instance_id) !=
         instances_.end();
}

std::string Router::Route(const Slice& key) const {
  if (ring_.empty()) return {};
  uint64_t h = Hash64(key);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

std::vector<std::string> Router::RouteReplicas(const Slice& key,
                                               int replicas) const {
  std::vector<std::string> out;
  if (ring_.empty() || replicas <= 0) return out;
  uint64_t h = Hash64(key);
  auto it = ring_.lower_bound(h);
  // Walk the ring collecting distinct instances.
  for (size_t steps = 0;
       steps < ring_.size() && out.size() < static_cast<size_t>(replicas);
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::map<std::string, double> Router::OwnershipShares() const {
  std::map<std::string, double> shares;
  if (ring_.empty()) return shares;
  // Each ring point owns the arc from the previous point (exclusive) to
  // itself (inclusive); the first point also owns the wrap-around arc.
  const double full = 18446744073709551616.0;  // 2^64.
  uint64_t prev = ring_.rbegin()->first;
  for (const auto& [point, id] : ring_) {
    uint64_t arc = point - prev;  // Unsigned wrap-around is intentional.
    shares[id] += static_cast<double>(arc) / full;
    prev = point;
  }
  return shares;
}

}  // namespace tierbase::cluster
