// Per-endpoint circuit breaker: after `failure_threshold` consecutive
// failures the breaker opens and Allow() fails fast (no connect attempt,
// no timeout wait) until `open_duration_micros` has passed; then exactly
// one caller gets a half-open probe. Probe success closes the breaker,
// probe failure re-opens it for another cooldown.
//
// NetClusterClient and the proxy keep one breaker per data node so a dead
// shard costs its callers an immediate -UNAVAILABLE instead of a connect
// timeout per request, while the rest of the keyspace keeps serving.
//
// Thread-safe; time is injectable (ManualClock) so trip/half-open/close
// transitions are unit-testable without real sleeps.

#ifndef TIERBASE_COMMON_CIRCUIT_BREAKER_H_
#define TIERBASE_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"

namespace tierbase {
namespace common {

struct CircuitBreakerOptions {
  // Consecutive failures before the breaker trips open.
  uint32_t failure_threshold = 5;
  // Cooldown before a half-open probe is granted.
  uint64_t open_duration_micros = 1'000'000;
  // nullptr = wall clock.
  const Clock* clock = nullptr;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});

  /// True if the caller may attempt the operation. While open, returns
  /// false (counted as a fast-fail) until the cooldown elapses, then
  /// grants a single half-open probe; concurrent callers keep failing
  /// fast until that probe reports back.
  bool Allow();

  /// Report the outcome of an allowed attempt.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// "closed" | "open" | "half_open" — for INFO / stats surfaces.
  std::string state_name() const;
  uint64_t trips() const;
  uint64_t fast_fails() const;

 private:
  const CircuitBreakerOptions options_;
  const Clock* clock_;

  mutable Mutex mu_;
  State state_ GUARDED_BY(mu_) = State::kClosed;
  uint32_t consecutive_failures_ GUARDED_BY(mu_) = 0;
  uint64_t opened_at_micros_ GUARDED_BY(mu_) = 0;
  bool probe_inflight_ GUARDED_BY(mu_) = false;
  uint64_t trips_ GUARDED_BY(mu_) = 0;
  uint64_t fast_fails_ GUARDED_BY(mu_) = 0;
};

}  // namespace common
}  // namespace tierbase

#endif  // TIERBASE_COMMON_CIRCUIT_BREAKER_H_
