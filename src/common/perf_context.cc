#include "common/perf_context.h"

#include <cstdio>

namespace tierbase {
namespace metrics {

namespace internal {
#if defined(__GNUC__) || defined(__clang__)
__thread PerfContext* tls_perf_context = nullptr;
#else
thread_local PerfContext* tls_perf_context = nullptr;
#endif
}  // namespace internal

const char* PerfContext::StageName(int stage) {
  switch (stage) {
    case kParse:
      return "parse";
    case kQueueWait:
      return "queue_wait";
    case kCacheProbe:
      return "cache_probe";
    case kStorageRead:
      return "storage_read";
    case kStorageWrite:
      return "storage_write";
    case kWalAppend:
      return "wal_append";
    case kOplogAppend:
      return "oplog_append";
    case kReplicaWait:
      return "replica_wait";
    case kNetFanout:
      return "net_fanout";
    default:
      return "unknown";
  }
}

void PerfContext::Reset() { *this = PerfContext(); }

uint64_t PerfContext::StageSum() const {
  uint64_t sum = 0;
  for (int s = 0; s < kNumStages; ++s) sum += stage_micros_[s];
  return sum;
}

void PerfContext::AppendReport(std::string* out) const {
  char buf[96];
  for (int s = 0; s < kNumStages; ++s) {
    snprintf(buf, sizeof(buf), "%s_micros:%llu\r\n%s_calls:%llu\r\n",
             StageName(s), static_cast<unsigned long long>(stage_micros_[s]),
             StageName(s), static_cast<unsigned long long>(stage_calls_[s]));
    out->append(buf);
  }
  snprintf(buf, sizeof(buf), "stage_sum_micros:%llu\r\n",
           static_cast<unsigned long long>(StageSum()));
  out->append(buf);
  snprintf(buf, sizeof(buf), "wall_micros:%llu\r\n",
           static_cast<unsigned long long>(wall_micros_));
  out->append(buf);
  snprintf(buf, sizeof(buf), "commands:%llu\r\n",
           static_cast<unsigned long long>(commands_));
  out->append(buf);
  snprintf(buf, sizeof(buf), "batches:%llu\r\n",
           static_cast<unsigned long long>(batches_));
  out->append(buf);
}

}  // namespace metrics
}  // namespace tierbase
