#include "common/fault_env.h"
#include "common/mutex.h"

#include <algorithm>

namespace tierbase {

namespace {

/// WritableFile wrapper that writes through to the base file while
/// reporting every append/sync to the owning FaultInjectionEnv.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> inner)
      : env_(env), path_(std::move(path)), inner_(std::move(inner)) {}

  Status Append(const Slice& data) override {
    if (inner_ == nullptr || !env_->MutationAllowed()) {
      return Status::IOError("fault: filesystem inactive: " + path_);
    }
    TIERBASE_RETURN_IF_ERROR(inner_->Append(data));
    env_->NoteAppend(path_, inner_->Size());
    return Status::OK();
  }

  Status Flush() override {
    if (inner_ == nullptr || !env_->MutationAllowed()) {
      return Status::IOError("fault: filesystem inactive: " + path_);
    }
    return inner_->Flush();
  }

  Status Sync() override {
    if (inner_ == nullptr || !env_->MutationAllowed()) {
      return Status::IOError("fault: filesystem inactive: " + path_);
    }
    if (!env_->NoteSyncAttempt()) {
      return Status::IOError("fault: injected sync failure: " + path_);
    }
    // Mark durable only after the real fsync succeeded — marking first
    // would make the harness preserve bytes a real power cut could lose.
    Status s = inner_->Sync();
    if (s.ok()) env_->NoteSynced(path_);
    return s;
  }

  Status Close() override {
    if (inner_ == nullptr) return Status::OK();
    if (!env_->MutationAllowed()) {
      // kill -9 semantics: the process's user-space write buffer is lost
      // (the inner dtor closes the fd without flushing); whatever already
      // reached the OS survives until DropUnsyncedFileData() cuts it.
      inner_.reset();
      return Status::OK();
    }
    Status s = inner_->Close();
    inner_.reset();
    return s;
  }

  uint64_t Size() const override {
    return inner_ == nullptr ? 0 : inner_->Size();
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> inner_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

bool FaultInjectionEnv::MutationAllowed() const {
  common::MutexLock lock(&mu_);
  return active_;
}

void FaultInjectionEnv::NoteCreate(const std::string& path) {
  common::MutexLock lock(&mu_);
  ++creates_;
  files_[path] = FileState{};  // O_TRUNC semantics: fresh state.
}

void FaultInjectionEnv::NoteOpenAppend(const std::string& path,
                                       uint64_t existing_size) {
  common::MutexLock lock(&mu_);
  ++creates_;
  // Bytes present at open are assumed durable — they survived the "boot".
  files_[path] = FileState{existing_size, existing_size};
}

void FaultInjectionEnv::NoteAppend(const std::string& path,
                                   uint64_t new_size) {
  common::MutexLock lock(&mu_);
  ++writes_;
  files_[path].size = new_size;
}

bool FaultInjectionEnv::NoteSyncAttempt() {
  common::MutexLock lock(&mu_);
  ++syncs_;
  if (fail_sync_countdown_ > 0 && --fail_sync_countdown_ == 0) {
    return false;  // This is the Nth sync: fail, don't mark durable.
  }
  return true;
}

void FaultInjectionEnv::NoteSynced(const std::string& path) {
  common::MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it != files_.end()) it->second.synced_size = it->second.size;
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& path, std::unique_ptr<WritableFile>* file) {
  {
    common::MutexLock lock(&mu_);
    if (!active_) {
      return Status::IOError("fault: filesystem inactive: " + path);
    }
    if (fail_creates_remaining_ > 0) {
      --fail_creates_remaining_;
      return Status::IOError("fault: injected create failure: " + path);
    }
  }
  std::unique_ptr<WritableFile> inner;
  TIERBASE_RETURN_IF_ERROR(base_->NewWritableFile(path, &inner));
  NoteCreate(path);
  *file = std::make_unique<FaultWritableFile>(this, path, std::move(inner));
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& path, std::unique_ptr<WritableFile>* file) {
  {
    common::MutexLock lock(&mu_);
    if (!active_) {
      return Status::IOError("fault: filesystem inactive: " + path);
    }
    if (fail_creates_remaining_ > 0) {
      --fail_creates_remaining_;
      return Status::IOError("fault: injected create failure: " + path);
    }
  }
  std::unique_ptr<WritableFile> inner;
  TIERBASE_RETURN_IF_ERROR(base_->NewAppendableFile(path, &inner));
  NoteOpenAppend(path, inner->Size());
  *file = std::make_unique<FaultWritableFile>(this, path, std::move(inner));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* file) {
  return base_->NewRandomAccessFile(path, file);  // Reads always work.
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  if (!MutationAllowed()) {
    return Status::IOError("fault: filesystem inactive: " + path);
  }
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (!MutationAllowed()) {
    return Status::IOError("fault: filesystem inactive: " + path);
  }
  {
    common::MutexLock lock(&mu_);
    files_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (!MutationAllowed()) {
    return Status::IOError("fault: filesystem inactive: " + from);
  }
  TIERBASE_RETURN_IF_ERROR(base_->RenameFile(from, to));
  common::MutexLock lock(&mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* names) {
  return base_->ListDir(path, names);
}

uint64_t FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::Truncate(const std::string& path, uint64_t size) {
  if (!MutationAllowed()) {
    return Status::IOError("fault: filesystem inactive: " + path);
  }
  TIERBASE_RETURN_IF_ERROR(base_->Truncate(path, size));
  common::MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = std::min(it->second.size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

void FaultInjectionEnv::SetFilesystemActive(bool active) {
  common::MutexLock lock(&mu_);
  active_ = active;
}

bool FaultInjectionEnv::filesystem_active() const {
  common::MutexLock lock(&mu_);
  return active_;
}

Status FaultInjectionEnv::DropUnsyncedFileData(size_t tear_keep_bytes) {
  // Snapshot targets under the lock, truncate through the base env outside
  // it (the base env never re-enters this one).
  std::vector<std::pair<std::string, uint64_t>> cuts;
  {
    common::MutexLock lock(&mu_);
    for (auto& [path, state] : files_) {
      if (state.size <= state.synced_size) continue;
      uint64_t keep = state.synced_size +
                      std::min<uint64_t>(tear_keep_bytes,
                                         state.size - state.synced_size);
      cuts.emplace_back(path, keep);
      state.size = keep;
      state.synced_size = std::min(state.synced_size, keep);
    }
  }
  for (const auto& [path, keep] : cuts) {
    if (!base_->FileExists(path)) continue;  // Already removed.
    // The real file may be shorter than the tracked size if an owner's
    // write buffer never reached the OS — truncating to min() of both
    // keeps the cut well-defined either way.
    uint64_t on_disk = base_->FileSize(path);
    TIERBASE_RETURN_IF_ERROR(
        base_->Truncate(path, std::min(on_disk, keep)));
  }
  return Status::OK();
}

Status FaultInjectionEnv::TearFile(const std::string& path, uint64_t size) {
  TIERBASE_RETURN_IF_ERROR(base_->Truncate(path, size));
  common::MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = std::min(it->second.size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

void FaultInjectionEnv::FailNthSync(int n) {
  common::MutexLock lock(&mu_);
  fail_sync_countdown_ = n;
}

void FaultInjectionEnv::FailNextFileCreations(int n) {
  common::MutexLock lock(&mu_);
  fail_creates_remaining_ = n;
}

uint64_t FaultInjectionEnv::synced_size(const std::string& path) const {
  common::MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced_size;
}

uint64_t FaultInjectionEnv::unsynced_bytes(const std::string& path) const {
  common::MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  return it->second.size - it->second.synced_size;
}

uint64_t FaultInjectionEnv::sync_count() const {
  common::MutexLock lock(&mu_);
  return syncs_;
}

uint64_t FaultInjectionEnv::write_count() const {
  common::MutexLock lock(&mu_);
  return writes_;
}

uint64_t FaultInjectionEnv::files_created() const {
  common::MutexLock lock(&mu_);
  return creates_;
}

}  // namespace tierbase
