// The client-side transport seam: every outbound TCP connection in the
// tree — server::Client (and through it the replica REPLPULL loop, the
// coordinator prober, NetClusterClient, and the proxy) — is made through a
// Transport, so tests can swap in FaultInjectionTransport and subject the
// whole cluster stack to deterministic partitions, resets, short I/O and
// latency (the FaultInjectionEnv idiom from the storage layer, applied to
// sockets).
//
//   Transport::Default()      — the real Posix socket implementation.
//   GlobalTransport()         — process-wide default used by Client when no
//                               per-component override is set; swappable
//                               like common::Env's global.
//
// Conventions:
//   * Read() returning OK with *n == 0 means clean EOF (peer closed).
//   * Write() may be partial; callers loop.
//   * A bounded connect (timeout_micros > 0) also arms per-op socket
//     timeouts; an op that exceeds them fails with Status::TimedOut.

#ifndef TIERBASE_COMMON_TRANSPORT_H_
#define TIERBASE_COMMON_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace tierbase {
namespace common {

class TransportConn {
 public:
  virtual ~TransportConn() = default;

  /// Reads up to `len` bytes into `buf`. OK with *n == 0 is clean EOF.
  virtual Status Read(char* buf, size_t len, size_t* n) = 0;
  /// Writes up to `len` bytes from `buf`; partial writes set *n < len.
  virtual Status Write(const char* buf, size_t len, size_t* n) = 0;
  virtual void Close() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Establishes a TCP connection (TCP_NODELAY). timeout_micros == 0 means
  /// an unbounded blocking connect with unbounded per-op I/O; > 0 bounds
  /// the connect (nonblocking + poll) and arms SO_RCVTIMEO/SO_SNDTIMEO so
  /// each subsequent Read/Write times out with Status::TimedOut.
  virtual Status Connect(const std::string& host, uint16_t port,
                         uint64_t timeout_micros,
                         std::unique_ptr<TransportConn>* conn) = 0;

  /// The real Posix socket transport (singleton, never deleted).
  static Transport* Default();
};

/// Process-wide transport, Transport::Default() unless swapped. Swapping is
/// for tests; production code leaves it alone.
Transport* GlobalTransport();
Transport* SwapGlobalTransport(Transport* transport);

}  // namespace common
}  // namespace tierbase

#endif  // TIERBASE_COMMON_TRANSPORT_H_
