#include "common/logging.h"
#include "common/mutex.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tierbase {

namespace {

std::atomic<int> g_level{-1};

LogLevel LevelFromEnv() {
  const char* env = std::getenv("TIERBASE_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

common::Mutex g_log_mutex;

}  // namespace

LogLevel GlobalLogLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = static_cast<int>(LevelFromEnv());
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(GlobalLogLevel())) return;
  const char* base = strrchr(file, '/');
  base = base ? base + 1 : file;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  common::MutexLock lock(&g_log_mutex);
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg);
}

}  // namespace tierbase
