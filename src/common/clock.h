// Clocks: a real monotonic clock for measurement and a manual clock for
// deterministic tests (TTL expiry, write-back flush intervals, elastic
// threading decisions).

#ifndef TIERBASE_COMMON_CLOCK_H_
#define TIERBASE_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace tierbase {

/// Abstract microsecond clock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() const = 0;
  virtual void SleepMicros(uint64_t micros) const = 0;

  /// Process-wide real clock singleton.
  static Clock* Real();
};

/// Steady-clock backed implementation.
class RealClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepMicros(uint64_t micros) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

/// Test clock advanced explicitly; SleepMicros advances it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }
  void SleepMicros(uint64_t micros) const override {
    const_cast<ManualClock*>(this)->Advance(micros);
  }
  void Advance(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }
  void Set(uint64_t micros) { now_.store(micros, std::memory_order_release); }

 private:
  std::atomic<uint64_t> now_;
};

/// Busy-waits for approximately `ns` nanoseconds. Used to model per-op CPU
/// overhead of emulated systems and simulated device latencies — sleep
/// syscalls are far too coarse at these scales.
inline void BusySpinNanos(uint64_t ns) {
  if (ns == 0) return;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

/// Simple stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = Clock::Real())
      : clock_(clock), start_(clock->NowMicros()) {}
  void Reset() { start_ = clock_->NowMicros(); }
  uint64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  const Clock* clock_;
  uint64_t start_;
};

}  // namespace tierbase

#endif  // TIERBASE_COMMON_CLOCK_H_
