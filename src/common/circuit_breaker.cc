#include "common/circuit_breaker.h"

namespace tierbase {
namespace common {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()) {}

bool CircuitBreaker::Allow() {
  MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      uint64_t now = clock_->NowMicros();
      if (now - opened_at_micros_ >= options_.open_duration_micros) {
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        return true;
      }
      ++fast_fails_;
      return false;
    }
    case State::kHalfOpen:
      if (!probe_inflight_) {
        // The previous probe resolved (closed or re-opened the breaker)
        // between our state load and now — only reachable via races, and
        // then state_ is no longer kHalfOpen. Defensive: one probe only.
        probe_inflight_ = true;
        return true;
      }
      ++fast_fails_;
      return false;
  }
  return true;  // Unreachable; keeps GCC's -Wreturn-type happy.
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mu_);
  // Success closes from any state: a late reply from an "open" node is
  // the strongest possible evidence it is back.
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_micros_ = clock_->NowMicros();
        ++trips_;
      }
      break;
    case State::kHalfOpen:
      // Probe failed: back to a full cooldown.
      state_ = State::kOpen;
      opened_at_micros_ = clock_->NowMicros();
      probe_inflight_ = false;
      ++trips_;
      break;
    case State::kOpen:
      // Stragglers from attempts admitted before the trip; stay open
      // without extending the cooldown (the node deserves its probe).
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  return state_;
}

std::string CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(&mu_);
  return trips_;
}

uint64_t CircuitBreaker::fast_fails() const {
  MutexLock lock(&mu_);
  return fast_fails_;
}

}  // namespace common
}  // namespace tierbase
