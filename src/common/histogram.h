// Log-bucketed latency histogram with percentile queries. The thread-safe
// variant lives in common/metrics.h (metrics::LatencyHistogram): writers
// record into lock-striped atomic buckets and readers snapshot into this
// plain Histogram for reporting.

#ifndef TIERBASE_COMMON_HISTOGRAM_H_
#define TIERBASE_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace tierbase {

/// Histogram over non-negative 64-bit values (typically microseconds).
///
/// Buckets encode (exponent, 1/16 sub-bucket), giving <= ~6% relative error
/// on percentile queries — enough for p50/p99/p999 reporting in the
/// benchmark tables.
class Histogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave.
  static constexpr int kNumBuckets = 64 << kSubBits;

  Histogram() { Clear(); }

  void Clear();
  void Add(uint64_t value);
  void Merge(const Histogram& other);

  /// Adds `count` observations into `bucket` directly (used when merging
  /// from an atomic histogram whose per-value detail is already lost).
  void AddBucketCount(int bucket, uint64_t count);

  /// Replaces the bucket-edge-derived sum/max with exact totals maintained
  /// alongside atomic buckets (metrics::LatencyHistogram::Snapshot).
  void SetExactTotals(uint64_t sum, uint64_t max);

  uint64_t Count() const { return count_; }
  uint64_t Sum() const { return sum_; }
  uint64_t Min() const { return count_ ? min_ : 0; }
  uint64_t Max() const { return max_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }

  /// Value at quantile q in [0, 1], e.g. 0.99 for p99. Returns the upper
  /// edge of the containing bucket (clamped to the observed max).
  uint64_t Percentile(double q) const;

  /// One-line summary: "cnt=N mean=X p50=A p99=B p999=C max=D".
  std::string Summary() const;

  /// Bucket index for a value; exposed for the concurrent variant.
  static int BucketFor(uint64_t value);
  /// Largest value mapping into `bucket`.
  static uint64_t BucketUpperEdge(int bucket);
  /// Raw count in `bucket` (Prometheus cumulative-bucket exposition).
  uint64_t BucketCount(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)];
  }

 private:
  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace tierbase

#endif  // TIERBASE_COMMON_HISTOGRAM_H_
