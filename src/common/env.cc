#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

namespace tierbase {

namespace {

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t initial_size = 0)
      : path_(std::move(path)), fd_(fd), size_(initial_size) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Append(const Slice& data) override {
    buffer_.append(data.data(), data.size());
    size_ += data.size();
    if (buffer_.size() >= kBufferSize) return Flush();
    return Status::OK();
  }

  Status Flush() override {
    if (buffer_.empty()) return Status::OK();
    const char* p = buffer_.data();
    size_t left = buffer_.size();
    while (left > 0) {
      ssize_t n = write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("write failed: " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    buffer_.clear();
    return Status::OK();
  }

  Status Sync() override {
    TIERBASE_RETURN_IF_ERROR(Flush());
    if (fdatasync(fd_) != 0) return Status::IOError("fsync failed: " + path_);
    return Status::OK();
  }

  Status Close() override {
    Status s = Flush();
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
    return s;
  }

  uint64_t Size() const override { return size_; }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;
  std::string path_;
  int fd_;
  std::string buffer_;
  uint64_t size_ = 0;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    ssize_t r = pread(fd_, out->data(), n, static_cast<off_t>(offset));
    if (r < 0) return Status::IOError("pread failed: " + path_);
    out->resize(static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Status::IOError("cannot create " + path);
    *file = std::make_unique<PosixWritableFile>(path, fd);
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Status::IOError("cannot open for append " + path);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      close(fd);
      return Status::IOError("cannot stat " + path);
    }
    *file = std::make_unique<PosixWritableFile>(
        path, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open " + path);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      close(fd);
      return Status::IOError("cannot stat " + path);
    }
    *file = std::make_unique<PosixRandomAccessFile>(
        path, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir failed: " + path);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("unlink failed: " + path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename failed: " + from + " -> " + to);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return access(path.c_str(), F_OK) == 0;
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* dir = opendir(path.c_str());
    if (dir == nullptr) return Status::IOError("opendir failed: " + path);
    struct dirent* entry;
    while ((entry = readdir(dir)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(std::move(name));
    }
    closedir(dir);
    return Status::OK();
  }

  uint64_t FileSize(const std::string& path) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOError("truncate failed: " + path);
    }
    return Status::OK();
  }
};

std::atomic<Env*>& GlobalEnvSlot() {
  static std::atomic<Env*> slot{nullptr};
  return slot;
}

}  // namespace

Env* Env::Default() {
  static PosixEnv* posix = new PosixEnv();  // Never freed: outlives statics.
  return posix;
}

namespace env {

Env* SwapGlobalEnv(Env* e) {
  Env* prev = GlobalEnvSlot().exchange(e);
  return prev == nullptr ? Env::Default() : prev;
}

Env* GlobalEnv() {
  Env* e = GlobalEnvSlot().load(std::memory_order_acquire);
  return e == nullptr ? Env::Default() : e;
}

Status NewWritableFile(const std::string& path,
                       std::unique_ptr<WritableFile>* file) {
  return GlobalEnv()->NewWritableFile(path, file);
}

Status NewAppendableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) {
  return GlobalEnv()->NewAppendableFile(path, file);
}

Status NewRandomAccessFile(const std::string& path,
                           std::unique_ptr<RandomAccessFile>* file) {
  return GlobalEnv()->NewRandomAccessFile(path, file);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::unique_ptr<RandomAccessFile> file;
  TIERBASE_RETURN_IF_ERROR(NewRandomAccessFile(path, &file));
  return file->Read(0, file->Size(), out);
}

Status WriteStringToFileSync(const std::string& path, const Slice& data) {
  std::unique_ptr<WritableFile> file;
  TIERBASE_RETURN_IF_ERROR(NewWritableFile(path, &file));
  TIERBASE_RETURN_IF_ERROR(file->Append(data));
  TIERBASE_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status CreateDirIfMissing(const std::string& path) {
  return GlobalEnv()->CreateDirIfMissing(path);
}

Status RemoveFile(const std::string& path) {
  return GlobalEnv()->RemoveFile(path);
}

Status RenameFile(const std::string& from, const std::string& to) {
  return GlobalEnv()->RenameFile(from, to);
}

bool FileExists(const std::string& path) {
  return GlobalEnv()->FileExists(path);
}

Status ListDir(const std::string& path, std::vector<std::string>* names) {
  return GlobalEnv()->ListDir(path, names);
}

uint64_t FileSize(const std::string& path) {
  return GlobalEnv()->FileSize(path);
}

Status Truncate(const std::string& path, uint64_t size) {
  return GlobalEnv()->Truncate(path, size);
}

Status RemoveDirRecursive(const std::string& path) {
  std::vector<std::string> names;
  if (!ListDir(path, &names).ok()) return Status::OK();  // Already gone.
  for (const auto& name : names) {
    std::string full = path + "/" + name;
    struct stat st;
    if (stat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      TIERBASE_RETURN_IF_ERROR(RemoveDirRecursive(full));
    } else {
      unlink(full.c_str());
    }
  }
  rmdir(path.c_str());
  return Status::OK();
}

std::string MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::string path = "/tmp/" + prefix + "_" +
                     std::to_string(static_cast<uint64_t>(getpid())) + "_" +
                     std::to_string(counter.fetch_add(1));
  CreateDirIfMissing(path);
  return path;
}

}  // namespace env
}  // namespace tierbase
