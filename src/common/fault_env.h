// FaultInjectionEnv: a deterministic crash-simulation Env, after LevelDB's
// FaultInjectionTestEnv and the recovery discipline of RocksDB-style
// stores. It wraps a base Env (the POSIX one by default), records every
// write and sync per file, and — under test control — can:
//
//   * drop all un-synced data (what a power cut does to the page cache),
//   * tear the final write at a byte offset (a partially persisted append),
//   * fail the Nth sync from now (a dying disk acknowledging late),
//   * fail file creation (ENOSPC / permission loss),
//   * go "inactive": every subsequent mutation fails, freezing the disk
//     image at the crash point while the process shuts down.
//
// Everything is mutex-protected and deterministic; no randomness lives in
// this class (tests seed their own RNGs for crash-point selection).
//
// Typical crash test:
//
//   FaultInjectionEnv fault;                       // wraps Env::Default()
//   ScopedEnvOverride scoped(&fault);              // reroute all IO
//   auto store = lsm::LsmStore::Open(opts);        // ... write some data
//   fault.SetFilesystemActive(false);              // "kill -9"
//   store->reset();                                // dtor IO errors ignored
//   fault.DropUnsyncedFileData(/*tear_keep=*/3);   // lose page cache, torn tail
//   fault.SetFilesystemActive(true);
//   auto reopened = lsm::LsmStore::Open(opts);     // must recover synced data

#ifndef TIERBASE_COMMON_FAULT_ENV_H_
#define TIERBASE_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"

namespace tierbase {

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default());

  // --- Env interface (all mutations honor the active/fault switches). ---
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
  uint64_t FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;

  // --- Crash controls. ---

  /// While inactive, every mutation (create, append, sync, rename, remove,
  /// mkdir) fails with IOError. Reads keep working. Use this to freeze the
  /// on-disk image at the crash point while the store object is destroyed.
  void SetFilesystemActive(bool active);
  bool filesystem_active() const;

  /// Simulates losing the page cache: every tracked file is truncated back
  /// to its last synced size. `tear_keep_bytes` of the un-synced suffix
  /// survive per file (0 = lose it all) — a torn final write. Safe to call
  /// while inactive; operates through the base env.
  Status DropUnsyncedFileData(size_t tear_keep_bytes = 0);

  /// Targeted tear: truncates one file to exactly `size` bytes and clamps
  /// its tracked state, regardless of what was synced.
  Status TearFile(const std::string& path, uint64_t size);

  /// The Nth sync from now (1-based) fails with IOError and does NOT mark
  /// the data synced. One-shot; pass 0 to disarm.
  void FailNthSync(int n);

  /// The next `n` NewWritableFile calls fail with IOError.
  void FailNextFileCreations(int n);

  // --- Introspection (for assertions). ---
  uint64_t synced_size(const std::string& path) const;
  uint64_t unsynced_bytes(const std::string& path) const;
  uint64_t sync_count() const;
  uint64_t write_count() const;      // Append calls observed.
  uint64_t files_created() const;

  // Internal: called by the wrapped writable files.
  struct FileState {
    uint64_t size = 0;         // Bytes appended (tracked logical size).
    uint64_t synced_size = 0;  // Bytes guaranteed durable.
  };
  bool MutationAllowed() const;
  void NoteCreate(const std::string& path);
  void NoteOpenAppend(const std::string& path, uint64_t existing_size);
  /// Counts the sync attempt; false if it was selected to fail (injected).
  bool NoteSyncAttempt();
  /// Marks the file's bytes durable — only after the real fsync succeeded.
  void NoteSynced(const std::string& path);
  void NoteAppend(const std::string& path, uint64_t new_size);

 private:
  Env* base_;
  mutable common::Mutex mu_;
  bool active_ GUARDED_BY(mu_) = true;
  int fail_sync_countdown_ GUARDED_BY(mu_) = 0;  // 0 = disarmed.
  int fail_creates_remaining_ GUARDED_BY(mu_) = 0;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  uint64_t writes_ GUARDED_BY(mu_) = 0;
  uint64_t creates_ GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
};

/// RAII: installs `env` as the process-global Env for the scope.
class ScopedEnvOverride {
 public:
  explicit ScopedEnvOverride(Env* e) : prev_(env::SwapGlobalEnv(e)) {}
  ~ScopedEnvOverride() { env::SwapGlobalEnv(prev_); }

  ScopedEnvOverride(const ScopedEnvOverride&) = delete;
  ScopedEnvOverride& operator=(const ScopedEnvOverride&) = delete;

 private:
  Env* prev_;
};

}  // namespace tierbase

#endif  // TIERBASE_COMMON_FAULT_ENV_H_
