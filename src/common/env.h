// File-system access for the LSM engine (WAL, SSTs, manifest), the
// baselines' AOF persistence, and trace recording.
//
// All IO goes through an Env object so tests can interpose on it: the
// namespace-level helpers below delegate to a process-global Env that
// defaults to the POSIX implementation and can be swapped (see
// SwapGlobalEnv / ScopedEnvOverride in fault_env.h). FaultInjectionEnv
// (src/common/fault_env.h) uses this seam to simulate crashes: dropped
// un-synced data, torn final writes, failed syncs, failed file creation.

#ifndef TIERBASE_COMMON_ENV_H_
#define TIERBASE_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

/// Sequential append-only file with explicit Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;   // Push to OS.
  virtual Status Sync() = 0;    // fsync.
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Positioned-read file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
};

/// File-system interface. Every durability-relevant operation in the tree
/// funnels through one of these, which is what makes crash consistency a
/// testable property: FaultInjectionEnv wraps the default POSIX Env and
/// injects deterministic failures at each call site.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;
  /// Opens for append, creating if missing and preserving existing bytes
  /// (which are assumed durable: this is the crash-safe WAL-reopen path —
  /// an O_TRUNC reopen would lose synced records until the first re-sync).
  virtual Status NewAppendableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* file) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names) = 0;
  virtual uint64_t FileSize(const std::string& path) = 0;
  /// Truncates a (closed) file to exactly `size` bytes.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// The POSIX implementation. Singleton; never deleted.
  static Env* Default();
};

namespace env {

/// The Env used by the namespace-level helpers below. Defaults to
/// Env::Default(); tests swap in a FaultInjectionEnv. Returns the
/// previously installed Env (never null). Not thread-safe with respect to
/// concurrent IO — swap only while no store/engine is running.
Env* SwapGlobalEnv(Env* env);
Env* GlobalEnv();

Status NewWritableFile(const std::string& path,
                       std::unique_ptr<WritableFile>* file);
Status NewAppendableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file);
Status NewRandomAccessFile(const std::string& path,
                           std::unique_ptr<RandomAccessFile>* file);
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFileSync(const std::string& path, const Slice& data);
Status CreateDirIfMissing(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
bool FileExists(const std::string& path);
Status ListDir(const std::string& path, std::vector<std::string>* names);
uint64_t FileSize(const std::string& path);
Status Truncate(const std::string& path, uint64_t size);
/// Recursively deletes a directory tree (test/bench temp dirs).
Status RemoveDirRecursive(const std::string& path);
/// Creates a fresh unique temp directory under /tmp.
std::string MakeTempDir(const std::string& prefix);

}  // namespace env
}  // namespace tierbase

#endif  // TIERBASE_COMMON_ENV_H_
