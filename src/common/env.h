// Thin POSIX file wrappers used by the LSM engine (WAL, SSTs, manifest)
// and the baselines' AOF persistence.

#ifndef TIERBASE_COMMON_ENV_H_
#define TIERBASE_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

/// Sequential append-only file with explicit Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;   // Push to OS.
  virtual Status Sync() = 0;    // fsync.
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Positioned-read file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
};

namespace env {

Status NewWritableFile(const std::string& path,
                       std::unique_ptr<WritableFile>* file);
Status NewRandomAccessFile(const std::string& path,
                           std::unique_ptr<RandomAccessFile>* file);
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFileSync(const std::string& path, const Slice& data);
Status CreateDirIfMissing(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
bool FileExists(const std::string& path);
Status ListDir(const std::string& path, std::vector<std::string>* names);
uint64_t FileSize(const std::string& path);
/// Recursively deletes a directory tree (test/bench temp dirs).
Status RemoveDirRecursive(const std::string& path);
/// Creates a fresh unique temp directory under /tmp.
std::string MakeTempDir(const std::string& prefix);

}  // namespace env
}  // namespace tierbase

#endif  // TIERBASE_COMMON_ENV_H_
