// Binary encoding helpers: fixed-width little-endian integers and varints.
// Used by the WAL, SST format, PMem ring buffer, and replication oplog.

#ifndef TIERBASE_COMMON_CODING_H_
#define TIERBASE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace tierbase {

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a varint32 (1-5 bytes, 7 bits per byte, MSB = continuation).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends a varint64 (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32(len) followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from [p, limit). Returns pointer past the varint, or
/// nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Consuming parsers over a Slice: on success advance `input` and return true.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint32/64 would write.
int VarintLength(uint64_t v);

}  // namespace tierbase

#endif  // TIERBASE_COMMON_CODING_H_
