// Per-request performance tracing, after RocksDB's PerfContext: an opt-in
// accumulator that attributes a request's microseconds to pipeline stages
// (parse, queue wait, cache probe, storage read/write, WAL append, oplog
// append, replica wait, network fan-out).
//
// A connection that issued PERF ON owns one PerfContext. The server
// installs it into thread-local storage for the duration of each dispatched
// batch (ScopedPerfContext); instrumentation points anywhere below — the
// command table, TierBase, the LSM tier, the cluster state — time
// themselves with ScopedPerfStage, which is a single thread-local load and
// a branch when tracing is off. No stage code takes a lock or allocates.
//
// The PerfContext itself is plain (non-atomic) state: only one batch per
// connection is in flight at a time, and consecutive batches are ordered
// through the executor's queue, so accesses are sequenced even when they
// land on different executor threads.

#ifndef TIERBASE_COMMON_PERF_CONTEXT_H_
#define TIERBASE_COMMON_PERF_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace tierbase {
namespace metrics {

class PerfContext {
 public:
  enum Stage : int {
    kParse = 0,     // RESP bytes -> commands (event-loop thread).
    kQueueWait,     // Dispatch enqueue -> executor pickup.
    kCacheProbe,    // Memory-tier lookups/inserts.
    kStorageRead,   // Storage-tier fetches (LSM Get/MultiGet).
    kStorageWrite,  // Write-through/write-back storage writes.
    kWalAppend,     // Cache-tier WAL mutation logging.
    kOplogAppend,   // Cluster replication oplog recording.
    kReplicaWait,   // WAIT blocking on replica acks.
    kNetFanout,     // Scatter-gather I/O to other nodes (proxy/client).
    kNumStages
  };
  static const char* StageName(int stage);

  void AddStage(int stage, uint64_t micros) {
    stage_micros_[stage] += micros;
    stage_calls_[stage] += 1;
  }

  /// Accumulates one executed batch: wall time dispatch->reply plus the
  /// number of commands it carried.
  void AddBatch(uint64_t wall_micros, uint64_t commands) {
    wall_micros_ += wall_micros;
    commands_ += commands;
    batches_ += 1;
  }

  void Reset();

  /// "key:value\r\n" report lines: per-stage micros/calls, wall micros,
  /// command/batch counts, and the stage sum (PERF GET).
  void AppendReport(std::string* out) const;

  uint64_t stage_micros(int stage) const { return stage_micros_[stage]; }
  uint64_t stage_calls(int stage) const { return stage_calls_[stage]; }
  uint64_t wall_micros() const { return wall_micros_; }
  uint64_t commands() const { return commands_; }
  uint64_t batches() const { return batches_; }
  uint64_t StageSum() const;

 private:
  uint64_t stage_micros_[kNumStages] = {};
  uint64_t stage_calls_[kNumStages] = {};
  uint64_t wall_micros_ = 0;
  uint64_t commands_ = 0;
  uint64_t batches_ = 0;
};

namespace internal {
// `__thread` (not C++ `thread_local`): an extern `thread_local` access
// compiles to an init-on-first-use wrapper check on every load, which
// costs measurably on the per-op hot path. `__thread` requires constant
// initialization — which a null pointer is — and compiles to one
// %fs-relative load.
#if defined(__GNUC__) || defined(__clang__)
extern __thread PerfContext* tls_perf_context;
#else
extern thread_local PerfContext* tls_perf_context;
#endif
}  // namespace internal

/// The context tracing the current request, or nullptr when tracing is off
/// (the common case — callers must tolerate null).
inline PerfContext* CurrentPerfContext() {
  return internal::tls_perf_context;
}

/// Installs `ctx` as the current thread's context for the scope (the server
/// wraps each traced batch execution in one of these). Nestable; restores
/// the previous context on exit. Passing nullptr is a no-op scope.
class ScopedPerfContext {
 public:
  explicit ScopedPerfContext(PerfContext* ctx)
      : prev_(internal::tls_perf_context) {
    if (ctx != nullptr) internal::tls_perf_context = ctx;
  }
  ~ScopedPerfContext() { internal::tls_perf_context = prev_; }

  ScopedPerfContext(const ScopedPerfContext&) = delete;
  ScopedPerfContext& operator=(const ScopedPerfContext&) = delete;

 private:
  PerfContext* const prev_;
};

/// Times one stage of the current request. When no context is installed
/// the constructor is a TLS load plus a branch — cheap enough to leave in
/// the hot path unconditionally.
class ScopedPerfStage {
 public:
  explicit ScopedPerfStage(int stage)
      : ctx_(CurrentPerfContext()), stage_(stage) {
    if (ctx_ != nullptr) start_ = Clock::Real()->NowMicros();
  }
  ~ScopedPerfStage() {
    if (ctx_ != nullptr) {
      ctx_->AddStage(stage_, Clock::Real()->NowMicros() - start_);
    }
  }

  ScopedPerfStage(const ScopedPerfStage&) = delete;
  ScopedPerfStage& operator=(const ScopedPerfStage&) = delete;

 private:
  PerfContext* const ctx_;
  const int stage_;
  uint64_t start_ = 0;
};

}  // namespace metrics
}  // namespace tierbase

#endif  // TIERBASE_COMMON_PERF_CONTEXT_H_
