// CRC32C (Castagnoli) checksums for WAL records, SST blocks, and the PMem
// ring buffer. Software table-driven implementation; masked form guards
// against checksums-of-checksums as in LevelDB.

#ifndef TIERBASE_COMMON_CRC32C_H_
#define TIERBASE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tierbase {
namespace crc32c {

/// Returns the crc32c of concat(A, data[0, n-1]) where init_crc is the
/// crc32c of A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// crc32c of data[0, n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

constexpr uint32_t kMaskDelta = 0xa282ead8ul;

/// Masked CRC, safe to store alongside the data it covers.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace tierbase

#endif  // TIERBASE_COMMON_CRC32C_H_
