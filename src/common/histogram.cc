#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace tierbase {

void Histogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBits)) return static_cast<int>(value);
  int exponent = 63 - __builtin_clzll(value);
  int shift = exponent - kSubBits;
  int sub = static_cast<int>((value >> shift) & ((1 << kSubBits) - 1));
  int bucket = ((exponent - kSubBits + 1) << kSubBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperEdge(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
  int octave = (bucket >> kSubBits) - 1;
  int sub = bucket & ((1 << kSubBits) - 1);
  uint64_t base = 1ULL << (octave + kSubBits);
  uint64_t step = base >> kSubBits;
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void Histogram::Add(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::AddBucketCount(int bucket, uint64_t count) {
  if (count == 0) return;
  buckets_[static_cast<size_t>(bucket)] += count;
  count_ += count;
  uint64_t edge = BucketUpperEdge(bucket);
  sum_ += edge * count;
  min_ = std::min(min_, edge);
  max_ = std::max(max_, edge);
}

void Histogram::SetExactTotals(uint64_t sum, uint64_t max) {
  if (count_ == 0) return;
  sum_ = sum;
  max_ = max;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t threshold = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (threshold == 0) threshold = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= threshold) {
      return std::min(BucketUpperEdge(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "cnt=%llu mean=%.1f p50=%llu p99=%llu p999=%llu max=%llu",
           static_cast<unsigned long long>(count_), Mean(),
           static_cast<unsigned long long>(Percentile(0.50)),
           static_cast<unsigned long long>(Percentile(0.99)),
           static_cast<unsigned long long>(Percentile(0.999)),
           static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace tierbase
