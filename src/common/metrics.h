// Unified telemetry: a registry of named, typed instruments that every
// binary (server, proxy, coordinator, replica) reports through.
//
//   Counter           monotonic relaxed-atomic uint64 (hot-path safe)
//   Gauge             settable int64 (limits, current levels)
//   LatencyHistogram  lock-striped atomic log-bucketed histogram, reusing
//                     common/histogram.h's (exponent, 1/16 sub-bucket)
//                     layout; Record() touches one stripe's atomics only —
//                     no lock, no allocation — while readers Snapshot()
//                     into a plain Histogram for percentile queries
//
// A MetricsRegistry owns its instruments and renders them two ways:
//
//   RenderInfo        the RESP INFO report ("# Section\r\nkey:value\r\n"),
//                     sections and keys in registration order, so INFO is
//                     generated from the registry instead of hand-formatted
//                     per component
//   RenderPrometheus  Prometheus text exposition (# HELP/# TYPE, counters/
//                     gauges as single samples, histograms as cumulative
//                     `_bucket{le=...}` series) for scripts/metrics_scrape.sh
//
// Values that only make sense in INFO (strings like role:master, dynamic
// per-node keys) register as text/block entries: they render into their
// INFO section but are skipped by the Prometheus exposition.
//
// Registries are per-component (one per Server/proxy/coordinator), so
// multiple instances in one process — the norm in tests and benches — keep
// disjoint counters. The registry idiom follows RocksDB's Statistics: a
// central named-instrument table cheap enough to leave on in production.

#ifndef TIERBASE_COMMON_METRICS_H_
#define TIERBASE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tierbase {
namespace metrics {

/// Monotonic counter. Inc() is a relaxed fetch_add — safe and cheap on the
/// hot path.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time level (queue depth, configured limit). May go down.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Thread-safe latency histogram over microsecond values.
///
/// Writers pick a stripe by thread (round-robin at first use) and bump
/// that stripe's relaxed atomics; concurrent writers on different threads
/// touch different cache lines. Snapshot() folds every stripe into a plain
/// Histogram; it may miss in-flight increments but never tears a value.
class LatencyHistogram {
 public:
  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records `count` observations of `micros`. Lock-free: one bucket
  /// fetch_add plus count/sum/max maintenance on the caller's stripe.
  void Record(uint64_t micros, uint64_t count = 1);

  /// Folds all stripes into a plain Histogram for percentile queries.
  Histogram Snapshot() const;

  uint64_t count() const;

  /// Zeroes every stripe (LATENCY RESET). Racy against concurrent
  /// writers by design — a reset during traffic loses the ops recorded
  /// while it runs, nothing more.
  void Reset();

 private:
  static constexpr int kStripes = 4;  // Power of two.

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  Stripe& MyStripe();

  // Heap-allocated: each stripe is ~8 KiB of buckets; keeping them out of
  // line lets components embed histogram pointers freely.
  std::unique_ptr<Stripe[]> stripes_;
};

/// Registry entry type, also the Prometheus # TYPE.
enum class MetricType { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Owned instruments. Returned pointers are stable for the
  // registry's lifetime; re-registering a key returns the existing
  // instrument (type must match). `section` is the INFO section ("Stats");
  // `key` is both the INFO key and the Prometheus metric name (prefixed
  // "tierbase_"). ---
  Counter* AddCounter(const std::string& section, const std::string& key,
                      const std::string& help);
  Gauge* AddGauge(const std::string& section, const std::string& key,
                  const std::string& help);
  LatencyHistogram* AddHistogram(const std::string& section,
                                 const std::string& key,
                                 const std::string& help);

  /// Registers a histogram the caller owns (e.g. the workload analytics'
  /// shape histograms): rendered, found and listed exactly like an owned
  /// one. `hist` must outlive the registry.
  void AddExternalHistogram(const std::string& section, const std::string& key,
                            const std::string& help, LatencyHistogram* hist);

  // --- Callback instruments: the value lives elsewhere (an existing
  // atomic, an aggregated Stats snapshot); the registry polls it at render
  // time. `type` picks the Prometheus exposition type. ---
  void AddCallback(const std::string& section, const std::string& key,
                   const std::string& help, MetricType type,
                   std::function<uint64_t()> fn);

  // --- INFO-only entries (skipped by the Prometheus exposition). ---
  /// String-valued key ("role:master", "wb_flush_error:ok").
  void AddText(const std::string& section, const std::string& key,
               std::function<std::string()> fn);
  /// Free-form "key:value\r\n" lines appended to the section (dynamic key
  /// sets: per-node breaker states, routed-batch counts).
  void AddBlock(const std::string& section,
                std::function<void(std::string*)> fn);

  /// Runs before every RenderInfo/RenderPrometheus, under the registry
  /// lock. Lets a component take ONE aggregated snapshot (e.g. one
  /// TierBase::GetStats call) that its per-key callbacks then read,
  /// instead of re-aggregating per key.
  void AddPreRender(std::function<void()> fn);

  /// The full INFO body: sections in registration order, "# Section" then
  /// "key:value" lines, blank line between sections.
  void RenderInfo(std::string* out) const;

  /// Prometheus text exposition. Histograms emit cumulative power-of-two
  /// `le` buckets (1us..~4.2s) plus +Inf, `_sum` and `_count`.
  void RenderPrometheus(std::string* out) const;

  /// Histogram lookup by registered key (LATENCY HISTOGRAM <cmd>).
  LatencyHistogram* FindHistogram(const std::string& key) const;
  /// All registered histograms, in registration order.
  std::vector<std::pair<std::string, LatencyHistogram*>> Histograms() const;

 private:
  struct Entry {
    std::string key;
    std::string help;
    MetricType type = MetricType::kCounter;
    // Exactly one of the following is set, matching `kind`.
    enum class Kind { kOwned, kCallback, kText, kBlock } kind = Kind::kOwned;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    LatencyHistogram* external_histogram = nullptr;  // Not owned (kOwned kind).

    LatencyHistogram* hist() const {
      return histogram ? histogram.get() : external_histogram;
    }
    std::function<uint64_t()> value_fn;
    std::function<std::string()> text_fn;
    std::function<void(std::string*)> block_fn;
  };
  struct Section {
    std::string name;
    std::vector<std::unique_ptr<Entry>> entries;
  };

  Section* SectionLocked(const std::string& name)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Entry* FindLocked(const std::string& key) const
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  // Guards the section/entry tables only; instrument reads and writes are
  // atomic and never take this lock.
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<Section>> sections_ GUARDED_BY(mu_);
  std::vector<std::function<void()>> pre_render_ GUARDED_BY(mu_);
};

/// Appends the INFO-style one-line summary for a histogram snapshot:
/// "cnt=N,p50=A,p99=B,p999=C,max=D" (microseconds).
std::string HistogramInfoValue(const Histogram& h);

}  // namespace metrics
}  // namespace tierbase

#endif  // TIERBASE_COMMON_METRICS_H_
