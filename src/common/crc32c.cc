#include "common/crc32c.h"

#include <cstdint>
#include <cstring>

namespace tierbase {
namespace crc32c {

namespace {

// CRC32C polynomial (reversed): 0x82f63b78.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 lookup tables: t[0] is the classic byte table; t[k] folds a
// byte that sits k positions ahead, letting the hot loop consume 8 bytes
// per iteration with 8 independent table loads.
struct Tables {
  uint32_t t[8][256];
};

Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xff];
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = MakeTables();
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tables = GetTables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  // Main loop: 8 bytes per iteration.
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian fold (the on-disk format and all supported targets are
    // little-endian; a big-endian port would byte-swap here).
    crc ^= static_cast<uint32_t>(word);
    uint32_t high = static_cast<uint32_t>(word >> 32);
    crc = tables.t[7][crc & 0xff] ^ tables.t[6][(crc >> 8) & 0xff] ^
          tables.t[5][(crc >> 16) & 0xff] ^ tables.t[4][crc >> 24] ^
          tables.t[3][high & 0xff] ^ tables.t[2][(high >> 8) & 0xff] ^
          tables.t[1][(high >> 16) & 0xff] ^ tables.t[0][high >> 24];
    p += 8;
    n -= 8;
  }
  // Tail.
  while (n > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace tierbase
