// FaultInjectionTransport: the network counterpart of FaultInjectionEnv.
// Wraps a base Transport and injects faults per endpoint ("host:port"),
// deterministically (seeded Random, no real-time dependence):
//
//   * kRefuse      — new connects fail (ECONNREFUSED-style); established
//                    connections keep working.
//   * kReset       — established connections fail mid-stream (ECONNRESET-
//                    style IOError on the next Read/Write); new connects
//                    succeed.
//   * kDown        — kRefuse + kReset: the node is dead to this transport.
//   * kBlackhole   — packets vanish in both directions: connects and reads
//                    time out, writes are silently swallowed. Models a
//                    network partition (vs. a dead process, which refuses).
//   * kBlackholeIn — reads from the endpoint time out; writes still flow.
//   * kBlackholeOut— writes are swallowed (and the peer therefore never
//                    answers, so subsequent reads on that connection time
//                    out too). One-way partition, outbound.
//
// Orthogonal knobs: short I/O (each Read/Write is truncated to a seeded
// 1..64-byte slice, exercising every partial-I/O loop) and fixed added
// latency per op. Counters per endpoint let tests assert *how* a component
// coped (connect attempts while partitioned, faults injected, ...).
//
// Scoping: faults key on the dial-target endpoint string. Tests that must
// not perturb their own control connections pass the fault transport only
// to the component under test via its Options::transport field rather than
// swapping the process-wide global.

#ifndef TIERBASE_COMMON_FAULT_TRANSPORT_H_
#define TIERBASE_COMMON_FAULT_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/random.h"
#include "common/transport.h"

namespace tierbase {
namespace common {

class FaultInjectionTransport : public Transport {
 public:
  enum class Partition {
    kNone,
    kRefuse,
    kReset,
    kDown,
    kBlackhole,
    kBlackholeIn,
    kBlackholeOut,
  };

  struct EndpointStats {
    uint64_t connect_attempts = 0;
    uint64_t connects_failed = 0;
    uint64_t faults_injected = 0;  // Read/write faults (not connects).
  };

  explicit FaultInjectionTransport(Transport* base = nullptr,
                                   uint64_t seed = 42);
  ~FaultInjectionTransport() override;

  Status Connect(const std::string& host, uint16_t port,
                 uint64_t timeout_micros,
                 std::unique_ptr<TransportConn>* conn) override;

  /// Sets the partition mode for "host:port". kNone heals the endpoint;
  /// connections that already observed a fault stay broken (a real TCP
  /// reset kills the connection, not the route).
  void SetPartition(const std::string& endpoint, Partition mode);
  /// Truncate each Read/Write on `endpoint` to a seeded 1..64-byte slice.
  void SetShortIo(const std::string& endpoint, bool enabled);
  /// Busy-free fixed delay added to each op on `endpoint` (real sleep —
  /// keep it small in tests).
  void SetLatencyMicros(const std::string& endpoint, uint64_t micros);

  EndpointStats GetStats(const std::string& endpoint) const;

 private:
  class FaultConn;
  struct EndpointState {
    Partition partition = Partition::kNone;
    bool short_io = false;
    uint64_t latency_micros = 0;
    EndpointStats stats;
  };

  /// The fault (if any) to inject for one op, decided under mu_.
  enum class OpFault { kNone, kReset, kTimeout, kSwallowWrite };
  OpFault NextOpFault(const std::string& endpoint, bool is_read,
                      size_t* io_cap, uint64_t* latency_micros);

  Transport* const base_;

  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  std::map<std::string, EndpointState> endpoints_ GUARDED_BY(mu_);
};

}  // namespace common
}  // namespace tierbase

#endif  // TIERBASE_COMMON_FAULT_TRANSPORT_H_
