// Arena: block allocator backing the skiplist memtable. All allocations
// live until the arena is destroyed (matching memtable lifetime).

#ifndef TIERBASE_COMMON_ARENA_H_
#define TIERBASE_COMMON_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace tierbase {

class Arena {
 public:
  static constexpr size_t kBlockSize = 4096;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes (never nullptr; bytes > 0).
  char* Allocate(size_t bytes);

  /// Allocation with pointer-size alignment (skiplist nodes).
  char* AllocateAligned(size_t bytes);

  /// Approximate total memory held by the arena.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace tierbase

#endif  // TIERBASE_COMMON_ARENA_H_
