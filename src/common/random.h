// Random number utilities: a fast xorshift engine plus the key-popularity
// distributions the workload generator needs (uniform, Zipfian, scrambled
// Zipfian, latest). The Zipfian generator follows Gray et al. ("Quickly
// generating billion-record synthetic databases"), the same construction
// YCSB uses, so skew parameters are comparable to the paper's setup.

#ifndef TIERBASE_COMMON_RANDOM_H_
#define TIERBASE_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace tierbase {

/// xorshift128+ engine: fast, decent quality, deterministic per seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1DULL) {
    s0_ = MixU64(seed);
    s1_ = MixU64(s0_);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    assert(hi >= lo);
    return lo + Uniform(hi - lo + 1);
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipfian-distributed values in [0, n). Item 0 is the most popular.
///
/// theta (a.k.a. the YCSB "zipfian constant") defaults to 0.99 as in YCSB.
/// Supports growing n without full recomputation (used by insert-heavy
/// workloads).
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianGenerator(uint64_t n, double theta = kDefaultTheta,
                   uint64_t seed = 12345)
      : rng_(seed), n_(n), theta_(theta) {
    assert(n > 0);
    zeta_n_ = Zeta(0, n, theta, 0.0);
    Prepare();
  }

  uint64_t n() const { return n_; }

  /// Expands the item space to new_n >= n(), incrementally updating zeta.
  void Grow(uint64_t new_n) {
    if (new_n <= n_) return;
    zeta_n_ = Zeta(n_, new_n, theta_, zeta_n_);
    n_ = new_n;
    Prepare();
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  void Prepare() {
    double zeta2 = Zeta(0, 2, theta_, 0.0);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zeta_n_);
  }

  static double Zeta(uint64_t from, uint64_t to, double theta, double base) {
    double sum = base;
    for (uint64_t i = from; i < to; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    return sum;
  }

  Random rng_;
  uint64_t n_;
  double theta_;
  double zeta_n_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

/// Zipfian with the popular items scattered uniformly over the key space
/// (YCSB's "scrambled zipfian"): avoids hot keys being lexicographically
/// adjacent, which matters for range-partitioned stores.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n,
                                     double theta = ZipfianGenerator::kDefaultTheta,
                                     uint64_t seed = 12345)
      : zipf_(n, theta, seed), n_(n) {}

  uint64_t Next() { return MixU64(zipf_.Next()) % n_; }
  void Grow(uint64_t new_n) {
    zipf_.Grow(new_n);
    n_ = new_n;
  }

 private:
  ZipfianGenerator zipf_;
  uint64_t n_;
};

/// "Latest" distribution: recent inserts are most popular (YCSB workload D
/// flavour). Next() returns max_id - zipf sample, clamped to [0, max_id].
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n, uint64_t seed = 12345)
      : zipf_(n, ZipfianGenerator::kDefaultTheta, seed), max_(n - 1) {}

  void SetMax(uint64_t max_id) {
    max_ = max_id;
    if (max_id + 1 > zipf_.n()) zipf_.Grow(max_id + 1);
  }

  uint64_t Next() {
    uint64_t off = zipf_.Next();
    return off > max_ ? 0 : max_ - off;
  }

 private:
  ZipfianGenerator zipf_;
  uint64_t max_;
};

}  // namespace tierbase

#endif  // TIERBASE_COMMON_RANDOM_H_
