// Shared retry/backoff policy for every networking component that must
// survive a flaky peer: the replica REPLPULL loop, NetClusterClient's
// route-and-retry path, and the coordinator's control-plane calls.
//
// Before this existed each caller hard-coded its own constant (the replica
// pull loop hammered connect() every 20 ms forever against a dead master).
// RetryPolicy centralises the three knobs that actually matter:
//
//   * capped exponential backoff — failures space out instead of hot-looping,
//   * decorrelated jitter — concurrent retriers don't synchronise into
//     thundering herds (next = Range(base, prev * 3), capped),
//   * budgets — a max attempt count and/or an overall deadline, after which
//     the caller gives up instead of retrying into the void.
//
// RetryState is the per-operation cursor over a policy. It is deliberately
// deterministic: time comes from an injectable Clock and jitter from a
// seeded Random, so chaos tests replay byte-identical schedules.
//
//   common::RetryState retry(policy, clock, seed);
//   while (!(s = TryOnce()).ok()) {
//     if (!retry.CanRetry()) break;
//     clock->SleepMicros(retry.NextBackoffMicros());
//   }
//   if (s.ok()) retry.RecordSuccess();   // resets the backoff ladder

#ifndef TIERBASE_COMMON_RETRY_H_
#define TIERBASE_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "common/clock.h"
#include "common/random.h"

namespace tierbase {
namespace common {

struct RetryPolicy {
  // First backoff, and the ceiling the exponential ladder saturates at.
  uint64_t initial_backoff_micros = 20'000;
  uint64_t max_backoff_micros = 1'000'000;
  // Decorrelated jitter (AWS architecture-blog variant): each backoff is
  // drawn uniformly from [initial, prev * 3], capped. With jitter off the
  // ladder is plain doubling — useful for exact-schedule unit tests.
  bool jitter = true;
  // 0 = unbounded. Counts tries, so max_attempts = 3 allows 2 retries.
  uint32_t max_attempts = 0;
  // Overall budget measured from RetryState construction (or the last
  // RecordSuccess). 0 = unbounded. Backoffs are clamped to the remaining
  // budget and CanRetry() turns false once it is exhausted.
  uint64_t deadline_micros = 0;
};

class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy,
                      const Clock* clock = nullptr, uint64_t seed = 1)
      : policy_(policy),
        clock_(clock != nullptr ? clock : Clock::Real()),
        rng_(seed),
        start_micros_(clock_->NowMicros()) {}

  /// True while the attempt count and deadline budgets both have room.
  bool CanRetry() {
    if (policy_.max_attempts != 0 && attempts_ >= policy_.max_attempts) {
      return false;
    }
    if (policy_.deadline_micros != 0 &&
        clock_->NowMicros() - start_micros_ >= policy_.deadline_micros) {
      return false;
    }
    return true;
  }

  /// Advances the ladder and returns the next backoff. Call once per
  /// failed attempt, then sleep for the returned duration.
  uint64_t NextBackoffMicros() {
    ++attempts_;
    uint64_t base = policy_.initial_backoff_micros;
    uint64_t next;
    if (last_backoff_micros_ == 0) {
      next = base;
    } else if (policy_.jitter) {
      uint64_t hi = std::max(base, SaturatingMul3(last_backoff_micros_));
      next = rng_.Range(base, std::min(hi, policy_.max_backoff_micros));
    } else {
      next = last_backoff_micros_ * 2;
    }
    next = std::min(next, policy_.max_backoff_micros);
    if (policy_.deadline_micros != 0) {
      uint64_t elapsed = clock_->NowMicros() - start_micros_;
      uint64_t remaining = policy_.deadline_micros > elapsed
                               ? policy_.deadline_micros - elapsed
                               : 0;
      next = std::min(next, remaining);
    }
    last_backoff_micros_ = next;
    return next;
  }

  /// Resets the ladder and both budgets; the connection is healthy again.
  void RecordSuccess() {
    attempts_ = 0;
    last_backoff_micros_ = 0;
    start_micros_ = clock_->NowMicros();
  }

  uint32_t attempts() const { return attempts_; }
  uint64_t last_backoff_micros() const { return last_backoff_micros_; }

 private:
  static uint64_t SaturatingMul3(uint64_t v) {
    return v > UINT64_MAX / 3 ? UINT64_MAX : v * 3;
  }

  const RetryPolicy policy_;
  const Clock* clock_;
  Random rng_;
  uint64_t start_micros_;
  uint32_t attempts_ = 0;
  uint64_t last_backoff_micros_ = 0;
};

}  // namespace common
}  // namespace tierbase

#endif  // TIERBASE_COMMON_RETRY_H_
