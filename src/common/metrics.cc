#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace tierbase {
namespace metrics {

namespace {

// Each thread claims a stripe index once; with kStripes a power of two the
// round-robin assignment spreads recorder threads across stripes.
std::atomic<uint32_t> g_stripe_seq{0};

uint32_t ThreadStripeSeq() {
  static thread_local const uint32_t seq =
      g_stripe_seq.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; INFO keys are
// already that shape, but defend against drift.
std::string PromName(const std::string& key) {
  std::string out = "tierbase_";
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Coarse cumulative `le` edges for the exposition: powers of two from 1us
// to ~4.2s. The fine 1024-bucket layout stays internal; 23 series per
// histogram keeps a full scrape small.
constexpr uint64_t kPromEdgeLow = 1;
constexpr int kPromEdgeCount = 23;  // 2^0 .. 2^22 microseconds.

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

LatencyHistogram::LatencyHistogram() : stripes_(new Stripe[kStripes]) {}

LatencyHistogram::Stripe& LatencyHistogram::MyStripe() {
  return stripes_[ThreadStripeSeq() & (kStripes - 1)];
}

void LatencyHistogram::Record(uint64_t micros, uint64_t count) {
  if (count == 0) return;
  Stripe& s = MyStripe();
  s.buckets[static_cast<size_t>(Histogram::BucketFor(micros))].fetch_add(
      count, std::memory_order_relaxed);
  s.count.fetch_add(count, std::memory_order_relaxed);
  s.sum.fetch_add(micros * count, std::memory_order_relaxed);
  uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (micros > prev && !s.max.compare_exchange_weak(
                              prev, micros, std::memory_order_relaxed)) {
  }
}

Histogram LatencyHistogram::Snapshot() const {
  Histogram h;
  uint64_t sum = 0;
  uint64_t max = 0;
  for (int si = 0; si < kStripes; ++si) {
    const Stripe& s = stripes_[si];
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      h.AddBucketCount(
          i, s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed));
    }
    sum += s.sum.load(std::memory_order_relaxed);
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  h.SetExactTotals(sum, max);
  return h;
}

uint64_t LatencyHistogram::count() const {
  uint64_t n = 0;
  for (int si = 0; si < kStripes; ++si) {
    n += stripes_[si].count.load(std::memory_order_relaxed);
  }
  return n;
}

void LatencyHistogram::Reset() {
  for (int si = 0; si < kStripes; ++si) {
    Stripe& s = stripes_[si];
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry::Section* MetricsRegistry::SectionLocked(
    const std::string& name) {
  for (auto& sec : sections_) {
    if (sec->name == name) return sec.get();
  }
  sections_.push_back(std::make_unique<Section>());
  sections_.back()->name = name;
  return sections_.back().get();
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(
    const std::string& key) const {
  for (const auto& sec : sections_) {
    for (const auto& e : sec->entries) {
      if (e->kind != Entry::Kind::kBlock && e->key == key) return e.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& section,
                                     const std::string& key,
                                     const std::string& help) {
  common::MutexLock lock(&mu_);
  if (Entry* e = FindLocked(key); e != nullptr && e->counter) {
    return e->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->help = help;
  entry->type = MetricType::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  SectionLocked(section)->entries.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::AddGauge(const std::string& section,
                                 const std::string& key,
                                 const std::string& help) {
  common::MutexLock lock(&mu_);
  if (Entry* e = FindLocked(key); e != nullptr && e->gauge) {
    return e->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->help = help;
  entry->type = MetricType::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  SectionLocked(section)->entries.push_back(std::move(entry));
  return out;
}

LatencyHistogram* MetricsRegistry::AddHistogram(const std::string& section,
                                                const std::string& key,
                                                const std::string& help) {
  common::MutexLock lock(&mu_);
  if (Entry* e = FindLocked(key); e != nullptr && e->histogram) {
    return e->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->help = help;
  entry->type = MetricType::kHistogram;
  entry->histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* out = entry->histogram.get();
  SectionLocked(section)->entries.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::AddExternalHistogram(const std::string& section,
                                           const std::string& key,
                                           const std::string& help,
                                           LatencyHistogram* hist) {
  common::MutexLock lock(&mu_);
  if (FindLocked(key) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->help = help;
  entry->type = MetricType::kHistogram;
  entry->external_histogram = hist;
  SectionLocked(section)->entries.push_back(std::move(entry));
}

void MetricsRegistry::AddCallback(const std::string& section,
                                  const std::string& key,
                                  const std::string& help, MetricType type,
                                  std::function<uint64_t()> fn) {
  common::MutexLock lock(&mu_);
  if (FindLocked(key) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->help = help;
  entry->type = type;
  entry->kind = Entry::Kind::kCallback;
  entry->value_fn = std::move(fn);
  SectionLocked(section)->entries.push_back(std::move(entry));
}

void MetricsRegistry::AddText(const std::string& section,
                              const std::string& key,
                              std::function<std::string()> fn) {
  common::MutexLock lock(&mu_);
  if (FindLocked(key) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->kind = Entry::Kind::kText;
  entry->text_fn = std::move(fn);
  SectionLocked(section)->entries.push_back(std::move(entry));
}

void MetricsRegistry::AddBlock(const std::string& section,
                               std::function<void(std::string*)> fn) {
  common::MutexLock lock(&mu_);
  auto entry = std::make_unique<Entry>();
  entry->kind = Entry::Kind::kBlock;
  entry->block_fn = std::move(fn);
  SectionLocked(section)->entries.push_back(std::move(entry));
}

void MetricsRegistry::AddPreRender(std::function<void()> fn) {
  common::MutexLock lock(&mu_);
  pre_render_.push_back(std::move(fn));
}

void MetricsRegistry::RenderInfo(std::string* out) const {
  common::MutexLock lock(&mu_);
  for (const auto& fn : pre_render_) fn();
  bool first = true;
  for (const auto& sec : sections_) {
    if (!first) out->append("\r\n");
    first = false;
    out->append("# ").append(sec->name).append("\r\n");
    for (const auto& e : sec->entries) {
      switch (e->kind) {
        case Entry::Kind::kOwned:
          out->append(e->key).push_back(':');
          if (e->counter) {
            AppendU64(out, e->counter->value());
          } else if (e->gauge) {
            out->append(std::to_string(e->gauge->value()));
          } else {
            out->append(HistogramInfoValue(e->hist()->Snapshot()));
          }
          out->append("\r\n");
          break;
        case Entry::Kind::kCallback:
          out->append(e->key).push_back(':');
          AppendU64(out, e->value_fn());
          out->append("\r\n");
          break;
        case Entry::Kind::kText:
          out->append(e->key).push_back(':');
          out->append(e->text_fn());
          out->append("\r\n");
          break;
        case Entry::Kind::kBlock:
          e->block_fn(out);
          break;
      }
    }
  }
}

void MetricsRegistry::RenderPrometheus(std::string* out) const {
  common::MutexLock lock(&mu_);
  for (const auto& fn : pre_render_) fn();
  for (const auto& sec : sections_) {
    for (const auto& e : sec->entries) {
      if (e->kind == Entry::Kind::kText || e->kind == Entry::Kind::kBlock) {
        continue;  // INFO-only.
      }
      std::string name = PromName(e->key);
      out->append("# HELP ").append(name).push_back(' ');
      out->append(e->help.empty() ? e->key : e->help).append("\n");
      out->append("# TYPE ").append(name).push_back(' ');
      switch (e->type) {
        case MetricType::kCounter:
          out->append("counter\n");
          break;
        case MetricType::kGauge:
          out->append("gauge\n");
          break;
        case MetricType::kHistogram:
          out->append("histogram\n");
          break;
      }
      if (e->type != MetricType::kHistogram) {
        out->append(name).push_back(' ');
        if (e->kind == Entry::Kind::kCallback) {
          AppendU64(out, e->value_fn());
        } else if (e->counter) {
          AppendU64(out, e->counter->value());
        } else {
          out->append(std::to_string(e->gauge->value()));
        }
        out->append("\n");
        continue;
      }
      // Histogram: cumulative buckets over the coarse edges. Every value
      // in fine bucket i is <= BucketUpperEdge(i), so folding fine buckets
      // whose edge fits under `le` keeps the cumulative invariant exact.
      Histogram h = e->hist()->Snapshot();
      uint64_t cum = 0;
      int fb = 0;
      uint64_t le = kPromEdgeLow;
      for (int i = 0; i < kPromEdgeCount; ++i, le <<= 1) {
        while (fb < Histogram::kNumBuckets &&
               Histogram::BucketUpperEdge(fb) <= le) {
          cum += h.BucketCount(fb);
          ++fb;
        }
        out->append(name).append("_bucket{le=\"");
        AppendU64(out, le);
        out->append("\"} ");
        AppendU64(out, cum);
        out->append("\n");
      }
      out->append(name).append("_bucket{le=\"+Inf\"} ");
      AppendU64(out, h.Count());
      out->append("\n");
      out->append(name).append("_sum ");
      AppendU64(out, h.Sum());
      out->append("\n");
      out->append(name).append("_count ");
      AppendU64(out, h.Count());
      out->append("\n");
    }
  }
}

LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& key) const {
  common::MutexLock lock(&mu_);
  Entry* e = FindLocked(key);
  return e != nullptr ? e->hist() : nullptr;
}

std::vector<std::pair<std::string, LatencyHistogram*>>
MetricsRegistry::Histograms() const {
  common::MutexLock lock(&mu_);
  std::vector<std::pair<std::string, LatencyHistogram*>> out;
  for (const auto& sec : sections_) {
    for (const auto& e : sec->entries) {
      if (e->hist() != nullptr) out.emplace_back(e->key, e->hist());
    }
  }
  return out;
}

std::string HistogramInfoValue(const Histogram& h) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "cnt=%llu,p50=%llu,p99=%llu,p999=%llu,max=%llu",
           static_cast<unsigned long long>(h.Count()),
           static_cast<unsigned long long>(h.Percentile(0.50)),
           static_cast<unsigned long long>(h.Percentile(0.99)),
           static_cast<unsigned long long>(h.Percentile(0.999)),
           static_cast<unsigned long long>(h.Max()));
  return buf;
}

}  // namespace metrics
}  // namespace tierbase
