#include "common/clock.h"

namespace tierbase {

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

}  // namespace tierbase
