// Hash functions used across the codebase: a 64-bit mix hash for hash
// tables / sharding, and a 32-bit hash for bloom filters.

#ifndef TIERBASE_COMMON_HASH_H_
#define TIERBASE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace tierbase {

/// 64-bit hash (xxhash64-flavoured mixing). Stable across runs; used for
/// consistent-hash routing, shard selection, and hash-table bucketing.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit hash (murmur-flavoured) used by bloom filters where two
/// independent-ish hashes are derived via double hashing.
uint32_t Hash32(const char* data, size_t n, uint32_t seed = 0xbc9f1d34);

inline uint32_t Hash32(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash32(s.data(), s.size(), seed);
}

/// Cheap integer finalizer (splitmix64) for hashing already-numeric keys.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace tierbase

#endif  // TIERBASE_COMMON_HASH_H_
