#include "common/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace tierbase {
namespace common {

namespace {

class PosixConn : public TransportConn {
 public:
  explicit PosixConn(int fd, bool bounded) : fd_(fd), bounded_(bounded) {}
  ~PosixConn() override { Close(); }

  Status Read(char* buf, size_t len, size_t* n) override {
    *n = 0;
    if (fd_ < 0) return Status::IOError("not connected");
    for (;;) {
      ssize_t rc = recv(fd_, buf, len, 0);
      if (rc >= 0) {
        *n = static_cast<size_t>(rc);
        return Status::OK();
      }
      if (errno == EINTR) continue;
      if (bounded_ && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::TimedOut("recv: timed out");
      }
      return Status::IOError(std::string("recv: ") + strerror(errno));
    }
  }

  Status Write(const char* buf, size_t len, size_t* n) override {
    *n = 0;
    if (fd_ < 0) return Status::IOError("not connected");
    for (;;) {
      ssize_t rc = send(fd_, buf, len, MSG_NOSIGNAL);
      if (rc >= 0) {
        *n = static_cast<size_t>(rc);
        return Status::OK();
      }
      if (errno == EINTR) continue;
      if (bounded_ && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::TimedOut("send: timed out");
      }
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  const bool bounded_;  // SO_RCVTIMEO/SNDTIMEO armed: EAGAIN == timeout.
};

class PosixTransport : public Transport {
 public:
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t timeout_micros,
                 std::unique_ptr<TransportConn>* conn) override {
    conn->reset();
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + strerror(errno));
    }
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      // Not a dotted-quad literal; resolve it ("localhost", DNS names).
      addrinfo hints;
      memset(&hints, 0, sizeof(hints));
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* result = nullptr;
      int rc = getaddrinfo(host.c_str(), nullptr, &hints, &result);
      if (rc != 0 || result == nullptr) {
        close(fd);
        if (result != nullptr) freeaddrinfo(result);
        return Status::InvalidArgument("cannot resolve host: " + host);
      }
      addr.sin_addr =
          reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
      freeaddrinfo(result);
    }
    if (timeout_micros == 0) {
      if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        Status s =
            Status::IOError(std::string("connect: ") + strerror(errno));
        close(fd);
        return s;
      }
    } else {
      // Bounded connect: nonblocking + poll, then per-op socket timeouts.
      int flags = fcntl(fd, F_GETFL, 0);
      fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        Status s =
            Status::IOError(std::string("connect: ") + strerror(errno));
        close(fd);
        return s;
      }
      if (rc != 0) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        int pr = poll(&pfd, 1, static_cast<int>(timeout_micros / 1000));
        int err = 0;
        socklen_t err_len = sizeof(err);
        if (pr > 0) {
          getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
        }
        if (pr <= 0 || err != 0) {
          Status s = pr <= 0 ? Status::TimedOut("connect: timed out")
                             : Status::IOError(std::string("connect: ") +
                                               strerror(err));
          close(fd);
          return s;
        }
      }
      fcntl(fd, F_SETFL, flags);
      timeval tv;
      tv.tv_sec = static_cast<time_t>(timeout_micros / 1'000'000);
      tv.tv_usec = static_cast<suseconds_t>(timeout_micros % 1'000'000);
      setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn->reset(new PosixConn(fd, timeout_micros != 0));
    return Status::OK();
  }
};

std::atomic<Transport*> g_transport{nullptr};

}  // namespace

Transport* Transport::Default() {
  static PosixTransport* posix = new PosixTransport();
  return posix;
}

Transport* GlobalTransport() {
  Transport* t = g_transport.load(std::memory_order_acquire);
  return t != nullptr ? t : Transport::Default();
}

Transport* SwapGlobalTransport(Transport* transport) {
  Transport* prev = g_transport.exchange(transport, std::memory_order_acq_rel);
  return prev != nullptr ? prev : Transport::Default();
}

}  // namespace common
}  // namespace tierbase
