// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying Clang thread-safety capability
// attributes (see common/thread_annotations.h). All code in this tree
// uses these instead of the std types directly so that the locking
// discipline is machine-checked under -Wthread-safety.
//
// Debug builds (NDEBUG undefined) additionally track the holding thread,
// turning Mutex::AssertHeld() into a real runtime check; release builds
// compile the tracking out so the cache hot path pays nothing.

#ifndef TIERBASE_COMMON_MUTEX_H_
#define TIERBASE_COMMON_MUTEX_H_

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

#include "common/thread_annotations.h"

namespace tierbase {
namespace common {

class CondVar;

/// A standard mutex annotated as a Clang capability. Prefer MutexLock for
/// scoped sections; use Lock()/Unlock() directly only when the critical
/// section cannot be a lexical scope.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#ifndef NDEBUG
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void Unlock() RELEASE() {
#ifndef NDEBUG
    holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifndef NDEBUG
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return true;
  }

  /// In debug builds, aborts unless the calling thread holds the mutex.
  /// Always teaches the static analysis that the mutex is held here.
  void AssertHeld() const ASSERT_EXCLUSIVE_LOCK() {
#ifndef NDEBUG
    assert(holder_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id());
#endif
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#ifndef NDEBUG
  std::atomic<std::thread::id> holder_{};
#endif
};

/// RAII critical section: locks on construction, unlocks on destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Conditionally-held critical section: locks `mu` when non-null, a no-op
/// otherwise. Used where a lock only exists in some configurations (e.g.
/// the cluster write-ordering mutex, absent in standalone mode). Clang's
/// analysis cannot model conditionally-held capabilities, so the
/// constructor/destructor opt out; the mutexes used with this helper guard
/// operation ordering rather than data members, so no GUARDED_BY checks
/// are lost by the opt-out.
class OptionalMutexLock {
 public:
  explicit OptionalMutexLock(Mutex* mu) NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~OptionalMutexLock() NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) mu_->Unlock();
  }

  OptionalMutexLock(const OptionalMutexLock&) = delete;
  OptionalMutexLock& operator=(const OptionalMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to a Mutex (the LevelDB port::CondVar shape).
/// All waits require the bound mutex to be held; the predicate loop stays
/// in the caller so guarded reads remain inside the analyzed section:
///
///   common::MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait();
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the mutex, blocks, reacquires before returning.
  void Wait() {
#ifndef NDEBUG
    mu_->holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
#ifndef NDEBUG
    mu_->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  /// Timed wait; returns false on timeout (spurious wakeups return true —
  /// always recheck the predicate).
  bool WaitFor(uint64_t micros) {
#ifndef NDEBUG
    mu_->holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    bool notified = cv_.wait_for(lock, std::chrono::microseconds(micros)) ==
                    std::cv_status::no_timeout;
    lock.release();
#ifndef NDEBUG
    mu_->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return notified;
  }

  /// Deadline wait; returns false once `deadline` has passed. The usual
  /// predicate-with-timeout shape is:
  ///   auto deadline = std::chrono::steady_clock::now() + timeout;
  ///   while (!pred() && cv_.WaitUntil(deadline)) {}
  bool WaitUntil(std::chrono::steady_clock::time_point deadline) {
#ifndef NDEBUG
    mu_->holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    bool notified =
        cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
#ifndef NDEBUG
    mu_->holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace common
}  // namespace tierbase

#endif  // TIERBASE_COMMON_MUTEX_H_
