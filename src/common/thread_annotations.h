// Clang thread-safety annotation macros (the Abseil/LevelDB idiom).
//
// These attach locking contracts to types, members and functions so that
// Clang's -Wthread-safety analysis can prove, at compile time, that every
// access to a guarded member happens with the right mutex held. Under any
// other compiler (or when the attribute is unavailable) they expand to
// nothing, so the annotations cost nothing outside the analysis build.
//
// Conventions used throughout this tree (see README "Correctness tooling"):
//   * Every mutable member shared between threads is GUARDED_BY(mu_).
//   * Private helpers that expect the caller to hold a lock are suffixed
//     `Locked` and annotated EXCLUSIVE_LOCKS_REQUIRED(mu_).
//   * Functions that leave a lock in a different state than they found it
//     are annotated ACQUIRE/RELEASE (e.g. scoped lock holders).
//   * The rare access deliberately outside the contract (e.g. a destructor
//     that is by definition single-threaded) uses NO_THREAD_SAFETY_ANALYSIS
//     with a comment saying why.
//
// Build with -DTIERBASE_THREAD_SAFETY=ON (Clang only) to turn violations
// into hard errors: the locking discipline is then enforced by the
// compiler rather than by review.

#ifndef TIERBASE_COMMON_THREAD_ANNOTATIONS_H_
#define TIERBASE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

// Documents that a member is protected by the given capability (mutex).
// Reads and writes to the member then require the mutex to be held.
#define GUARDED_BY(x) TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Like GUARDED_BY, but for pointer members: the pointer itself may be read
// freely, while the pointed-to data is protected by the mutex.
#define PT_GUARDED_BY(x) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Marks a class as a capability (something that can be held/acquired).
// Applied to Mutex itself.
#define CAPABILITY(x) TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// Marks an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// The function acquires the capability (and must not already hold it).
#define ACQUIRE(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (and must hold it on entry).
#define RELEASE(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

// The function may be called only with the capability held (it neither
// acquires nor releases it). This is the annotation for *Locked helpers.
#define EXCLUSIVE_LOCKS_REQUIRED(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define SHARED_LOCKS_REQUIRED(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function may be called only when the capability is NOT held (it
// acquires it internally, so holding it would deadlock).
#define LOCKS_EXCLUDED(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Try-acquire: returns `success_value` when the capability was acquired.
#define TRY_ACQUIRE(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is already held; teaches the
// analysis the fact without acquiring (common::Mutex::AssertHeld).
#define ASSERT_EXCLUSIVE_LOCK(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(__VA_ARGS__))

// The function returns a reference to the named capability.
#define LOCK_RETURNED(x) TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Documents a required acquisition order between two capabilities.
#define ACQUIRED_BEFORE(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// Opts a function out of the analysis entirely. Use sparingly, with a
// comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  TIERBASE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TIERBASE_COMMON_THREAD_ANNOTATIONS_H_
