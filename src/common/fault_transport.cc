#include "common/fault_transport.h"

#include "common/clock.h"

namespace tierbase {
namespace common {

class FaultInjectionTransport::FaultConn : public TransportConn {
 public:
  FaultConn(FaultInjectionTransport* parent, std::string endpoint,
            std::unique_ptr<TransportConn> inner)
      : parent_(parent),
        endpoint_(std::move(endpoint)),
        inner_(std::move(inner)) {}

  Status Read(char* buf, size_t len, size_t* n) override {
    *n = 0;
    if (broken_) return Status::IOError("connection reset (injected)");
    if (tainted_) {
      // An earlier write on this connection was swallowed; the peer never
      // saw the request, so a real read would hang. Fail deterministically.
      return Status::TimedOut("recv: timed out (injected)");
    }
    size_t cap = 0;
    uint64_t latency = 0;
    OpFault fault = parent_->NextOpFault(endpoint_, /*is_read=*/true, &cap,
                                         &latency);
    if (latency > 0) Clock::Real()->SleepMicros(latency);
    switch (fault) {
      case OpFault::kReset:
        broken_ = true;
        inner_->Close();
        return Status::IOError("connection reset (injected)");
      case OpFault::kTimeout:
        return Status::TimedOut("recv: timed out (injected)");
      case OpFault::kSwallowWrite:
      case OpFault::kNone:
        break;
    }
    if (cap != 0 && len > cap) len = cap;
    return inner_->Read(buf, len, n);
  }

  Status Write(const char* buf, size_t len, size_t* n) override {
    *n = 0;
    if (broken_) return Status::IOError("connection reset (injected)");
    size_t cap = 0;
    uint64_t latency = 0;
    OpFault fault = parent_->NextOpFault(endpoint_, /*is_read=*/false, &cap,
                                         &latency);
    if (latency > 0) Clock::Real()->SleepMicros(latency);
    switch (fault) {
      case OpFault::kReset:
        broken_ = true;
        inner_->Close();
        return Status::IOError("connection reset (injected)");
      case OpFault::kSwallowWrite:
        // Pretend the bytes left; the peer never sees them, so replies
        // will never come (see tainted_ in Read).
        tainted_ = true;
        *n = len;
        return Status::OK();
      case OpFault::kTimeout:
      case OpFault::kNone:
        break;
    }
    if (cap != 0 && len > cap) len = cap;
    return inner_->Write(buf, len, n);
  }

  void Close() override { inner_->Close(); }

 private:
  FaultInjectionTransport* const parent_;
  const std::string endpoint_;
  std::unique_ptr<TransportConn> inner_;
  bool broken_ = false;   // Saw an injected reset; dead like real TCP.
  bool tainted_ = false;  // A write was swallowed; reads would hang.
};

FaultInjectionTransport::FaultInjectionTransport(Transport* base,
                                                 uint64_t seed)
    : base_(base != nullptr ? base : Transport::Default()), rng_(seed) {}

FaultInjectionTransport::~FaultInjectionTransport() = default;

Status FaultInjectionTransport::Connect(
    const std::string& host, uint16_t port, uint64_t timeout_micros,
    std::unique_ptr<TransportConn>* conn) {
  conn->reset();
  const std::string endpoint = host + ":" + std::to_string(port);
  {
    MutexLock lock(&mu_);
    EndpointState& st = endpoints_[endpoint];
    ++st.stats.connect_attempts;
    switch (st.partition) {
      case Partition::kRefuse:
      case Partition::kDown:
        ++st.stats.connects_failed;
        return Status::IOError("connect: connection refused (injected)");
      case Partition::kBlackhole:
        ++st.stats.connects_failed;
        return Status::TimedOut("connect: timed out (injected)");
      default:
        break;
    }
  }
  std::unique_ptr<TransportConn> inner;
  Status s = base_->Connect(host, port, timeout_micros, &inner);
  if (!s.ok()) {
    MutexLock lock(&mu_);
    ++endpoints_[endpoint].stats.connects_failed;
    return s;
  }
  conn->reset(new FaultConn(this, endpoint, std::move(inner)));
  return Status::OK();
}

void FaultInjectionTransport::SetPartition(const std::string& endpoint,
                                           Partition mode) {
  MutexLock lock(&mu_);
  endpoints_[endpoint].partition = mode;
}

void FaultInjectionTransport::SetShortIo(const std::string& endpoint,
                                         bool enabled) {
  MutexLock lock(&mu_);
  endpoints_[endpoint].short_io = enabled;
}

void FaultInjectionTransport::SetLatencyMicros(const std::string& endpoint,
                                               uint64_t micros) {
  MutexLock lock(&mu_);
  endpoints_[endpoint].latency_micros = micros;
}

FaultInjectionTransport::EndpointStats FaultInjectionTransport::GetStats(
    const std::string& endpoint) const {
  MutexLock lock(&mu_);
  auto it = endpoints_.find(endpoint);
  return it != endpoints_.end() ? it->second.stats : EndpointStats{};
}

FaultInjectionTransport::OpFault FaultInjectionTransport::NextOpFault(
    const std::string& endpoint, bool is_read, size_t* io_cap,
    uint64_t* latency_micros) {
  MutexLock lock(&mu_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    *io_cap = 0;
    *latency_micros = 0;
    return OpFault::kNone;
  }
  EndpointState& st = it->second;
  *io_cap = st.short_io ? static_cast<size_t>(rng_.Range(1, 64)) : 0;
  *latency_micros = st.latency_micros;
  switch (st.partition) {
    case Partition::kReset:
    case Partition::kDown:
      ++st.stats.faults_injected;
      return OpFault::kReset;
    case Partition::kBlackhole:
      ++st.stats.faults_injected;
      return is_read ? OpFault::kTimeout : OpFault::kSwallowWrite;
    case Partition::kBlackholeIn:
      if (is_read) {
        ++st.stats.faults_injected;
        return OpFault::kTimeout;
      }
      return OpFault::kNone;
    case Partition::kBlackholeOut:
      if (!is_read) {
        ++st.stats.faults_injected;
        return OpFault::kSwallowWrite;
      }
      return OpFault::kNone;
    case Partition::kRefuse:
    case Partition::kNone:
      return OpFault::kNone;
  }
  return OpFault::kNone;
}

}  // namespace common
}  // namespace tierbase
