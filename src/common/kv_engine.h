// KvEngine: the minimal key-value engine interface shared by TierBase, the
// LSM store, the cache engine, and every baseline system. The cost
// evaluation framework (paper §5.3) drives workloads against this interface
// and reads usage via GetUsage().

#ifndef TIERBASE_COMMON_KV_ENGINE_H_
#define TIERBASE_COMMON_KV_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

/// Resource usage snapshot used for space-cost accounting.
struct UsageStats {
  uint64_t memory_bytes = 0;  // DRAM footprint (data + structures).
  uint64_t pmem_bytes = 0;    // Simulated persistent-memory footprint.
  uint64_t disk_bytes = 0;    // SSD/HDD footprint (SSTs, AOF, WAL).
  uint64_t keys = 0;
};

class KvEngine {
 public:
  virtual ~KvEngine() = default;

  virtual std::string name() const = 0;

  virtual Status Set(const Slice& key, const Slice& value) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;
  virtual Status Delete(const Slice& key) = 0;

  /// Batched read: fills values[i]/statuses[i] per key. Engines override
  /// this to amortize locking and remote round trips across the batch; the
  /// default degrades to one Get per key.
  virtual void MultiGet(const std::vector<Slice>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
    values->assign(keys.size(), std::string());
    statuses->assign(keys.size(), Status::OK());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*statuses)[i] = Get(keys[i], &(*values)[i]);
    }
  }

  /// Batched write of keys[i] = values[i] (parallel arrays, same length).
  /// Per-op outcomes land in statuses[i]; the default degrades to one Set
  /// per key.
  virtual void MultiSet(const std::vector<Slice>& keys,
                        const std::vector<Slice>& values,
                        std::vector<Status>* statuses) {
    statuses->assign(keys.size(), Status::OK());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*statuses)[i] = Set(keys[i], values[i]);
    }
  }

  virtual UsageStats GetUsage() const = 0;

  /// Blocks until background work (flush/compaction/write-back drain) is
  /// quiesced; default no-op for purely synchronous engines.
  virtual Status WaitIdle() { return Status::OK(); }
};

}  // namespace tierbase

#endif  // TIERBASE_COMMON_KV_ENGINE_H_
