// Status: lightweight error propagation for all TierBase modules.
//
// Modeled after the LevelDB/RocksDB convention: cheap to copy on the OK
// path (a single pointer-sized enum), carries a code plus a human-readable
// message on the error path.

#ifndef TIERBASE_COMMON_STATUS_H_
#define TIERBASE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tierbase {

/// Result code for every fallible operation in the library.
enum class Code {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kBusy = 6,          // Backpressure: retry later.
  kTimedOut = 7,
  kAborted = 8,       // e.g. CAS mismatch.
  kOutOfSpace = 9,    // Instance space budget exhausted.
  kUnavailable = 10,  // Instance/replica down.
};

/// A Status is either OK or a (code, message) pair.
///
/// Usage:
///   Status s = db.Put(k, v);
///   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status OutOfSpace(std::string_view msg = "") {
    return Status(Code::kOutOfSpace, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsOutOfSpace() const { return code_ == Code::kOutOfSpace; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  static const char* CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound";
      case Code::kCorruption: return "Corruption";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kIOError: return "IOError";
      case Code::kBusy: return "Busy";
      case Code::kTimedOut: return "TimedOut";
      case Code::kAborted: return "Aborted";
      case Code::kOutOfSpace: return "OutOfSpace";
      case Code::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// Result<T>: a value or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define TIERBASE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::tierbase::Status _s = (expr);               \
    if (!_s.ok()) return _s;                      \
  } while (0)

}  // namespace tierbase

#endif  // TIERBASE_COMMON_STATUS_H_
