// Minimal leveled logging. Quiet by default (warnings and errors only) so
// test and bench output stays readable; set TIERBASE_LOG_LEVEL=info|debug
// in the environment to see more.

#ifndef TIERBASE_COMMON_LOGGING_H_
#define TIERBASE_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdio>

namespace tierbase {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Current minimum level (from env, default kWarn).
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

#define TB_LOG_DEBUG(...) \
  ::tierbase::LogV(::tierbase::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define TB_LOG_INFO(...) \
  ::tierbase::LogV(::tierbase::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define TB_LOG_WARN(...) \
  ::tierbase::LogV(::tierbase::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define TB_LOG_ERROR(...) \
  ::tierbase::LogV(::tierbase::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

}  // namespace tierbase

#endif  // TIERBASE_COMMON_LOGGING_H_
