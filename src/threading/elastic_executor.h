// Elastic threading (paper §4.4): a TierBase data node normally runs one
// event-loop thread per instance (best CPU efficiency, lowest performance
// cost). When the workload on the instance spikes, idle "RPC threads"
// pre-allocated inside the container are activated to boost throughput
// without external scaling; when the spike subsides the node reverts to
// single-threaded mode, releasing CPU back to co-located instances.
//
// This module models the mechanism directly: an MPMC command queue with a
// dynamic worker pool governed by a queue-depth controller.
//   * kSingle:  min = max = 1 (Redis-like event loop).
//   * kMulti:   min = max = N (Memcached/Dragonfly-like fixed pool).
//   * kElastic: 1..N, scaled by the controller.

#ifndef TIERBASE_THREADING_ELASTIC_EXECUTOR_H_
#define TIERBASE_THREADING_ELASTIC_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tierbase {
namespace threading {

enum class ThreadMode {
  kSingle,
  kMulti,
  kElastic,
};

struct ElasticOptions {
  ThreadMode mode = ThreadMode::kElastic;
  /// Container CPU budget: the max threads elastic/multi mode may use.
  int max_threads = 4;
  /// Queue depth that triggers scale-up when sustained.
  size_t scale_up_depth = 32;
  /// Queue depth under which an extra thread is retired.
  size_t scale_down_depth = 4;
  /// Controller evaluation period.
  uint64_t control_interval_micros = 20'000;  // 20 ms.
  /// Consecutive over-threshold evaluations required to add a thread
  /// (debounces momentary bursts).
  int up_votes = 2;
  /// Consecutive under-threshold evaluations required to retire a thread.
  int down_votes = 10;
  /// Submit blocks when the queue holds this many tasks (backpressure).
  size_t max_queue = 65536;
};

/// A unit of work; the executor runs it on one of its worker threads.
using Task = std::function<void()>;

class ElasticExecutor {
 public:
  explicit ElasticExecutor(ElasticOptions options = {});
  ~ElasticExecutor();

  ElasticExecutor(const ElasticExecutor&) = delete;
  ElasticExecutor& operator=(const ElasticExecutor&) = delete;

  /// Enqueues a task; blocks if the queue is full (client backpressure).
  void Submit(Task task);

  /// Enqueues and waits for the task to finish (the synchronous RPC shape
  /// used by the benchmark clients; queueing delay is thus part of the
  /// observed latency, as it would be on a real server).
  void Execute(const Task& task);

  /// Drains the queue and joins all workers. Idempotent.
  void Shutdown();

  int active_threads() const {
    return active_threads_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const {
    common::MutexLock lock(&mu_);
    return queue_.size();
  }
  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Number of scale-up events (the elastic "boost" activations).
  uint64_t scale_ups() const { return scale_ups_.load(); }
  uint64_t scale_downs() const { return scale_downs_.load(); }

 private:
  // Lock ordering. `mu_` is the executor's only lock; it protects the
  // queue and the pool-size state below. It is NEVER held while a task
  // runs (WorkerLoop drops it before invoking the task), so tasks may
  // freely take their own locks — every lock acquired inside a task is
  // strictly ordered AFTER mu_ and can never participate in a cycle with
  // it. Execute()'s per-call completion mutex is such a leaf: it is only
  // acquired from task context and from the calling thread, both with
  // mu_ released. SpawnWorkerLocked asserts the ordering contract with
  // mu_.AssertHeld() (a real runtime check in debug builds).
  void WorkerLoop(int worker_id);
  void ControlLoop();
  void SpawnWorkerLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  ElasticOptions options_;

  mutable common::Mutex mu_;
  common::CondVar task_cv_{&mu_};   // Workers wait for tasks.
  common::CondVar space_cv_{&mu_};  // Producers wait for queue space.
  std::deque<Task> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  int desired_threads_ GUARDED_BY(mu_) = 1;
  int alive_workers_ GUARDED_BY(mu_) = 0;  // Workers currently in their loop.

  /// Worker handles. Mutated under mu_ (spawn); Shutdown swaps the vector
  /// out under mu_ and joins outside it.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  std::thread controller_;

  std::atomic<int> active_threads_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> scale_ups_{0};
  std::atomic<uint64_t> scale_downs_{0};
};

}  // namespace threading
}  // namespace tierbase

#endif  // TIERBASE_THREADING_ELASTIC_EXECUTOR_H_
