#include "threading/elastic_executor.h"

#include <algorithm>

namespace tierbase {
namespace threading {

ElasticExecutor::ElasticExecutor(ElasticOptions options)
    : options_(options) {
  options_.max_threads = std::max(1, options_.max_threads);
  {
    common::MutexLock lock(&mu_);
    desired_threads_ =
        options_.mode == ThreadMode::kMulti ? options_.max_threads : 1;
    for (int i = 0; i < desired_threads_; ++i) SpawnWorkerLocked();
  }
  if (options_.mode == ThreadMode::kElastic) {
    controller_ = std::thread(&ElasticExecutor::ControlLoop, this);
  }
}

ElasticExecutor::~ElasticExecutor() { Shutdown(); }

void ElasticExecutor::SpawnWorkerLocked() {
  mu_.AssertHeld();
  ++alive_workers_;
  workers_.emplace_back(&ElasticExecutor::WorkerLoop, this,
                        static_cast<int>(workers_.size()));
  active_threads_.store(alive_workers_, std::memory_order_relaxed);
}

void ElasticExecutor::Submit(Task task) {
  common::MutexLock lock(&mu_);
  while (!shutdown_ && queue_.size() >= options_.max_queue) {
    space_cv_.Wait();
  }
  if (shutdown_) return;
  queue_.push_back(std::move(task));
  task_cv_.Signal();
}

void ElasticExecutor::Execute(const Task& task) {
  common::Mutex done_mu;
  common::CondVar done_cv(&done_mu);
  bool done = false;
  Submit([&] {
    task();
    // Notify while holding the lock: the waiter owns done_cv on its
    // stack, and may only destroy it once it re-acquires done_mu — which
    // this critical section delays until Signal has completed.
    common::MutexLock lock(&done_mu);
    done = true;
    done_cv.Signal();
  });
  common::MutexLock lock(&done_mu);
  while (!done) done_cv.Wait();
}

void ElasticExecutor::WorkerLoop(int worker_id) {
  (void)worker_id;
  while (true) {
    Task task;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty() &&
             alive_workers_ <= desired_threads_) {
        task_cv_.Wait();
      }
      if (shutdown_ && queue_.empty()) return;
      // Retire surplus workers only when the queue is calm, so a scale-down
      // decision never abandons queued work.
      if (alive_workers_ > desired_threads_ && queue_.empty()) {
        --alive_workers_;
        active_threads_.store(alive_workers_, std::memory_order_relaxed);
        return;
      }
      if (queue_.empty()) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
      space_cv_.Signal();
    }
    task();
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ElasticExecutor::ControlLoop() {
  int up_votes = 0;
  int down_votes = 0;
  uint64_t last_completed = completed_.load(std::memory_order_relaxed);
  while (true) {
    Clock::Real()->SleepMicros(options_.control_interval_micros);
    common::MutexLock lock(&mu_);
    if (shutdown_) return;
    size_t depth = queue_.size();

    // Stall detection: work is queued but nothing completed for a whole
    // control interval — every worker is blocked (a WAIT command polling
    // for replica acks, a slow storage flush). Activate a reserve thread
    // even though the queue is shallow, or the blocked worker starves the
    // very commands (e.g. REPLPULL) that would unblock it.
    uint64_t now_completed = completed_.load(std::memory_order_relaxed);
    bool stalled = depth > 0 && now_completed == last_completed;
    last_completed = now_completed;

    if ((depth >= options_.scale_up_depth || stalled) &&
        desired_threads_ < options_.max_threads) {
      if (++up_votes >= options_.up_votes) {
        up_votes = 0;
        down_votes = 0;
        ++desired_threads_;
        // Always spawn a fresh thread; retired ones have exited and are
        // joined at shutdown.
        SpawnWorkerLocked();
        scale_ups_.fetch_add(1, std::memory_order_relaxed);
        task_cv_.SignalAll();
      }
    } else {
      up_votes = 0;
      if (depth <= options_.scale_down_depth && desired_threads_ > 1) {
        if (++down_votes >= options_.down_votes) {
          down_votes = 0;
          --desired_threads_;
          scale_downs_.fetch_add(1, std::memory_order_relaxed);
          task_cv_.SignalAll();
        }
      } else {
        down_votes = 0;
      }
    }
  }
}

void ElasticExecutor::Shutdown() {
  {
    common::MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    task_cv_.SignalAll();
    space_cv_.SignalAll();
  }
  if (controller_.joinable()) controller_.join();
  // The controller is joined, so no new workers can be spawned; swap the
  // handles out under the lock and join them outside it.
  std::vector<std::thread> workers;
  {
    common::MutexLock lock(&mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  active_threads_.store(0, std::memory_order_relaxed);
}

}  // namespace threading
}  // namespace tierbase
