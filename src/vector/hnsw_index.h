// HnswIndex: Hierarchical Navigable Small World graphs (Malkov & Yashunin)
// with dynamic insertion and deletion — the "conventional algorithm"
// TierBase's VSAG integration is compared against in the paper (§3), and
// the production-grade ANN engine of this reproduction.
//
// Deletion marks nodes as tombstones: they keep routing greedy search (so
// graph connectivity survives) but never appear in results. When the
// tombstoned fraction crosses `compact_threshold`, the index rebuilds
// itself from the live vectors (the standard mitigation; VSAG's in-place
// repair is its headline improvement).

#ifndef TIERBASE_VECTOR_HNSW_INDEX_H_
#define TIERBASE_VECTOR_HNSW_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "vector/vector_index.h"

namespace tierbase {
namespace vector {

class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(const IndexOptions& options);

  std::string name() const override { return "hnsw"; }
  size_t dim() const override { return options_.dim; }
  Metric metric() const override { return options_.metric; }

  Status Add(uint64_t id, const float* data) override;
  Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  Status Search(const float* query, size_t k,
                std::vector<SearchResult>* out) const override;
  size_t size() const override;
  uint64_t MemoryBytes() const override;

  /// Internal stats for tests and the ablation bench.
  size_t tombstones() const;
  int max_level() const;
  uint64_t rebuilds() const;

 private:
  struct Node {
    uint64_t id = 0;
    int level = 0;
    bool deleted = false;
    // neighbors[l] = adjacency list at layer l (0..level).
    std::vector<std::vector<uint32_t>> neighbors;
  };

  // All private helpers require mu_ (search uses it shared via the single
  // mutex; the cache tier wraps whole collections in their own locks, so
  // a simple mutex keeps the implementation auditable).
  float Dist(const float* a, uint32_t node) const
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  int RandomLevel() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Greedy descent to the closest node at `level`, starting from `entry`.
  uint32_t GreedyClosest(const float* query, uint32_t entry, int level) const
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Best-first search at one layer; returns up to `ef` (distance, node)
  /// pairs, closest first. `include_deleted` keeps tombstones (used while
  /// routing during construction).
  std::vector<std::pair<float, uint32_t>> SearchLayer(const float* query,
                                                      uint32_t entry, int level,
                                                      size_t ef) const
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Heuristic neighbour selection (keeps diverse edges, cap `m`).
  std::vector<uint32_t> SelectNeighbors(
      const float* query, std::vector<std::pair<float, uint32_t>> candidates,
      size_t m) const EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void Link(uint32_t from, uint32_t to, int level, size_t cap)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Status AddLocked(uint64_t id, const float* data)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void RebuildLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  IndexOptions options_;
  mutable common::Mutex mu_;
  Random rng_ GUARDED_BY(mu_);

  std::vector<Node> nodes_ GUARDED_BY(mu_);
  std::vector<float> data_ GUARDED_BY(mu_);  // nodes_.size() * dim.
  std::unordered_map<uint64_t, uint32_t> by_id_ GUARDED_BY(mu_);
  uint32_t entry_point_ GUARDED_BY(mu_) = 0;
  bool empty_ GUARDED_BY(mu_) = true;
  int max_level_ GUARDED_BY(mu_) = 0;
  size_t live_ GUARDED_BY(mu_) = 0;
  size_t dead_ GUARDED_BY(mu_) = 0;
  uint64_t rebuilds_ GUARDED_BY(mu_) = 0;
  double level_mult_ = 0;  // Set once in the constructor.
};

}  // namespace vector
}  // namespace tierbase

#endif  // TIERBASE_VECTOR_HNSW_INDEX_H_
