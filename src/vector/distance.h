// Distance kernels for the vector-search subsystem (paper §3: TierBase
// integrates the VSAG library for ANN queries over high-dimensional
// vectors; this reproduction ships an HNSW index plus an exact baseline).

#ifndef TIERBASE_VECTOR_DISTANCE_H_
#define TIERBASE_VECTOR_DISTANCE_H_

#include <cmath>
#include <cstddef>

namespace tierbase {
namespace vector {

enum class Metric {
  kL2,             // Squared Euclidean distance (monotone in L2).
  kInnerProduct,   // Negative dot product (smaller = more similar).
  kCosine,         // 1 - cosine similarity.
};

const char* MetricName(Metric metric);

inline float L2Squared(const float* a, const float* b, size_t dim) {
  float sum = 0;
  for (size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

inline float NegativeInnerProduct(const float* a, const float* b,
                                  size_t dim) {
  float dot = 0;
  for (size_t i = 0; i < dim; ++i) dot += a[i] * b[i];
  return -dot;
}

inline float CosineDistance(const float* a, const float* b, size_t dim) {
  float dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0) return 1.0f;
  return 1.0f - dot / denom;
}

inline float Distance(Metric metric, const float* a, const float* b,
                      size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Squared(a, b, dim);
    case Metric::kInnerProduct:
      return NegativeInnerProduct(a, b, dim);
    case Metric::kCosine:
      return CosineDistance(a, b, dim);
  }
  return 0;
}

}  // namespace vector
}  // namespace tierbase

#endif  // TIERBASE_VECTOR_DISTANCE_H_
