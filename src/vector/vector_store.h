// VectorStore: named vector collections inside a TierBase cache instance
// (paper §3: "CAS operations, wide-columns, and vector searching" within
// the key-value infrastructure). Each collection is one ANN index with a
// fixed dimensionality and metric; ids are user-assigned 64-bit keys.

#ifndef TIERBASE_VECTOR_VECTOR_STORE_H_
#define TIERBASE_VECTOR_VECTOR_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "vector/vector_index.h"

namespace tierbase {
namespace vector {

class VectorStore {
 public:
  /// Creates a collection; InvalidArgument if it exists with different
  /// options, OK (idempotent) if identical.
  Status CreateCollection(const std::string& name,
                          const IndexOptions& options);
  Status DropCollection(const std::string& name);
  bool HasCollection(const std::string& name) const;
  std::vector<std::string> Collections() const;

  /// Adds/replaces a vector. `data.size()` must equal the collection dim.
  Status Add(const std::string& collection, uint64_t id,
             const std::vector<float>& data);
  Status Remove(const std::string& collection, uint64_t id);
  Status Search(const std::string& collection,
                const std::vector<float>& query, size_t k,
                std::vector<SearchResult>* out) const;
  Result<size_t> Size(const std::string& collection) const;

  uint64_t MemoryBytes() const;

 private:
  VectorIndex* Find(const std::string& name) const
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  mutable common::Mutex mu_;
  struct Collection {
    IndexOptions options;
    std::unique_ptr<VectorIndex> index;
  };
  std::unordered_map<std::string, Collection> collections_ GUARDED_BY(mu_);
};

}  // namespace vector
}  // namespace tierbase

#endif  // TIERBASE_VECTOR_VECTOR_STORE_H_
