// VectorIndex: the ANN index interface of TierBase's vector search
// feature (paper §3). Supports dynamic (real-time) insertion and deletion,
// which the paper calls out as the integration's distinguishing property.

#ifndef TIERBASE_VECTOR_VECTOR_INDEX_H_
#define TIERBASE_VECTOR_VECTOR_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/distance.h"

namespace tierbase {
namespace vector {

struct SearchResult {
  uint64_t id = 0;
  float distance = 0;
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual std::string name() const = 0;
  virtual size_t dim() const = 0;
  virtual Metric metric() const = 0;

  /// Inserts (or replaces) the vector for `id`. `data` must hold dim()
  /// floats.
  virtual Status Add(uint64_t id, const float* data) = 0;
  /// Removes `id`; NotFound if absent. Removal is immediate from the
  /// caller's perspective (deleted ids never appear in results).
  virtual Status Remove(uint64_t id) = 0;
  virtual bool Contains(uint64_t id) const = 0;

  /// k nearest neighbours of `query`, ascending distance.
  virtual Status Search(const float* query, size_t k,
                        std::vector<SearchResult>* out) const = 0;

  /// Live (non-deleted) vectors.
  virtual size_t size() const = 0;
  virtual uint64_t MemoryBytes() const = 0;
};

enum class IndexKind {
  kFlat,  // Exact brute force (baseline + ground truth).
  kHnsw,  // Hierarchical navigable small-world graph.
};

struct IndexOptions {
  IndexKind kind = IndexKind::kHnsw;
  size_t dim = 0;
  Metric metric = Metric::kL2;

  // --- HNSW parameters. ---
  /// Out-degree per node on upper layers (2M on layer 0).
  size_t m = 16;
  /// Candidate-list width during construction.
  size_t ef_construction = 120;
  /// Candidate-list width during search (>= k for good recall).
  size_t ef_search = 64;
  /// Tombstoned fraction that triggers a compaction rebuild.
  double compact_threshold = 0.3;
  uint64_t seed = 42;
};

Result<std::unique_ptr<VectorIndex>> CreateIndex(const IndexOptions& options);

}  // namespace vector
}  // namespace tierbase

#endif  // TIERBASE_VECTOR_VECTOR_INDEX_H_
