#include "vector/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "vector/flat_index.h"

namespace tierbase {
namespace vector {

namespace {

// Min-heap over (distance, node) pairs.
using Candidate = std::pair<float, uint32_t>;

}  // namespace

HnswIndex::HnswIndex(const IndexOptions& options)
    : options_(options), rng_(options.seed) {
  options_.m = std::max<size_t>(2, options_.m);
  options_.ef_construction = std::max(options_.ef_construction, options_.m);
  level_mult_ = 1.0 / std::log(static_cast<double>(options_.m));
}

float HnswIndex::Dist(const float* a, uint32_t node) const {
  return Distance(options_.metric, a, &data_[node * options_.dim],
                  options_.dim);
}

int HnswIndex::RandomLevel() {
  // Geometric level distribution: P(level >= l) = m^-l.
  double u = rng_.NextDouble();
  if (u <= 0) u = 1e-12;
  int level = static_cast<int>(-std::log(u) * level_mult_);
  return std::min(level, 24);
}

uint32_t HnswIndex::GreedyClosest(const float* query, uint32_t entry,
                                  int level) const {
  uint32_t current = entry;
  float best = Dist(query, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t next : nodes_[current].neighbors[static_cast<size_t>(level)]) {
      float d = Dist(query, next);
      if (d < best) {
        best = d;
        current = next;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Candidate> HnswIndex::SearchLayer(const float* query,
                                              uint32_t entry, int level,
                                              size_t ef) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      to_visit;  // Min-heap by distance.
  std::priority_queue<Candidate> best;  // Max-heap of the ef closest.

  float d0 = Dist(query, entry);
  to_visit.emplace(d0, entry);
  best.emplace(d0, entry);
  visited[entry] = true;

  while (!to_visit.empty()) {
    auto [d, node] = to_visit.top();
    to_visit.pop();
    if (d > best.top().first && best.size() >= ef) break;
    for (uint32_t next : nodes_[node].neighbors[static_cast<size_t>(level)]) {
      if (visited[next]) continue;
      visited[next] = true;
      float dn = Dist(query, next);
      if (best.size() < ef || dn < best.top().first) {
        to_visit.emplace(dn, next);
        best.emplace(dn, next);
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Candidate> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    const float* /*query*/, std::vector<Candidate> candidates, size_t m) const {
  // Heuristic from the HNSW paper: keep a candidate only if it is closer
  // to the query than to every already-selected neighbour — this favours
  // diverse directions over clustered ones.
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint32_t> selected;
  for (const auto& [d, node] : candidates) {
    if (selected.size() >= m) break;
    bool keep = true;
    for (uint32_t s : selected) {
      float between = Distance(options_.metric, &data_[node * options_.dim],
                               &data_[s * options_.dim], options_.dim);
      if (between < d) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(node);
  }
  // Backfill with nearest remaining if the heuristic was too strict.
  if (selected.size() < m) {
    for (const auto& [d, node] : candidates) {
      if (selected.size() >= m) break;
      if (std::find(selected.begin(), selected.end(), node) ==
          selected.end()) {
        selected.push_back(node);
      }
    }
  }
  return selected;
}

void HnswIndex::Link(uint32_t from, uint32_t to, int level, size_t cap) {
  auto& adj = nodes_[from].neighbors[static_cast<size_t>(level)];
  if (std::find(adj.begin(), adj.end(), to) != adj.end()) return;
  adj.push_back(to);
  if (adj.size() <= cap) return;
  // Prune with the selection heuristic, anchored at `from`.
  std::vector<Candidate> candidates;
  candidates.reserve(adj.size());
  const float* base = &data_[from * options_.dim];
  for (uint32_t n : adj) candidates.emplace_back(Dist(base, n), n);
  adj = SelectNeighbors(base, std::move(candidates), cap);
}

Status HnswIndex::Add(uint64_t id, const float* data) {
  common::MutexLock lock(&mu_);
  return AddLocked(id, data);
}

Status HnswIndex::AddLocked(uint64_t id, const float* data) {
  auto it = by_id_.find(id);
  if (it != by_id_.end() && !nodes_[it->second].deleted) {
    // Replace = remove + insert (vectors are immutable per node; the
    // graph edges were built for the old position).
    nodes_[it->second].deleted = true;
    --live_;
    ++dead_;
    by_id_.erase(it);
  } else if (it != by_id_.end()) {
    by_id_.erase(it);
  }

  uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  int level = RandomLevel();
  Node node;
  node.id = id;
  node.level = level;
  node.neighbors.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  data_.insert(data_.end(), data, data + options_.dim);
  by_id_[id] = node_idx;
  ++live_;

  if (empty_) {
    entry_point_ = node_idx;
    max_level_ = level;
    empty_ = false;
    return Status::OK();
  }

  uint32_t entry = entry_point_;
  // Descend through layers above the node's level.
  for (int l = max_level_; l > level; --l) {
    entry = GreedyClosest(data, entry, l);
  }
  // Insert at each layer from min(level, max_level_) down to 0.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto candidates = SearchLayer(data, entry, l, options_.ef_construction);
    size_t cap = l == 0 ? options_.m * 2 : options_.m;
    auto neighbors = SelectNeighbors(data, candidates, options_.m);
    for (uint32_t neighbor : neighbors) {
      Link(node_idx, neighbor, l, cap);
      Link(neighbor, node_idx, l, cap);
    }
    if (!candidates.empty()) entry = candidates.front().second;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node_idx;
  }
  return Status::OK();
}

Status HnswIndex::Remove(uint64_t id) {
  common::MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || nodes_[it->second].deleted) {
    return Status::NotFound("vector id");
  }
  nodes_[it->second].deleted = true;
  by_id_.erase(it);
  --live_;
  ++dead_;
  // Tombstones keep routing until they dominate; then rebuild.
  if (live_ > 0 &&
      static_cast<double>(dead_) / static_cast<double>(live_ + dead_) >
          options_.compact_threshold) {
    RebuildLocked();
  }
  return Status::OK();
}

void HnswIndex::RebuildLocked() {
  std::vector<Node> old_nodes;
  std::vector<float> old_data;
  old_nodes.swap(nodes_);
  old_data.swap(data_);
  by_id_.clear();
  empty_ = true;
  max_level_ = 0;
  entry_point_ = 0;
  live_ = 0;
  dead_ = 0;
  ++rebuilds_;
  for (size_t i = 0; i < old_nodes.size(); ++i) {
    if (old_nodes[i].deleted) continue;
    AddLocked(old_nodes[i].id, &old_data[i * options_.dim]);
  }
}

bool HnswIndex::Contains(uint64_t id) const {
  common::MutexLock lock(&mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && !nodes_[it->second].deleted;
}

Status HnswIndex::Search(const float* query, size_t k,
                         std::vector<SearchResult>* out) const {
  common::MutexLock lock(&mu_);
  out->clear();
  if (k == 0 || empty_ || live_ == 0) return Status::OK();

  uint32_t entry = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    entry = GreedyClosest(query, entry, l);
  }
  // Widen the candidate list by the tombstone count (capped) so deleted
  // routing nodes don't crowd live results out of the ef window.
  size_t ef = std::max(options_.ef_search, k) + std::min(dead_, k * 4);
  auto candidates = SearchLayer(query, entry, 0, ef);
  for (const auto& [d, node] : candidates) {
    if (nodes_[node].deleted) continue;
    out->push_back({nodes_[node].id, d});
    if (out->size() == k) break;
  }
  return Status::OK();
}

size_t HnswIndex::size() const {
  common::MutexLock lock(&mu_);
  return live_;
}

size_t HnswIndex::tombstones() const {
  common::MutexLock lock(&mu_);
  return dead_;
}

int HnswIndex::max_level() const {
  common::MutexLock lock(&mu_);
  return max_level_;
}

uint64_t HnswIndex::rebuilds() const {
  common::MutexLock lock(&mu_);
  return rebuilds_;
}

uint64_t HnswIndex::MemoryBytes() const {
  common::MutexLock lock(&mu_);
  uint64_t total = data_.capacity() * sizeof(float);
  for (const auto& node : nodes_) {
    for (const auto& adj : node.neighbors) {
      total += adj.capacity() * sizeof(uint32_t);
    }
    total += sizeof(Node);
  }
  total += by_id_.size() * (sizeof(uint64_t) + sizeof(uint32_t) + 16);
  return total;
}

Result<std::unique_ptr<VectorIndex>> CreateIndex(const IndexOptions& options) {
  if (options.dim == 0) {
    return Status::InvalidArgument("vector index: dim required");
  }
  switch (options.kind) {
    case IndexKind::kFlat:
      return std::unique_ptr<VectorIndex>(new FlatIndex(options));
    case IndexKind::kHnsw:
      return std::unique_ptr<VectorIndex>(new HnswIndex(options));
  }
  return Status::InvalidArgument("vector index: unknown kind");
}

}  // namespace vector
}  // namespace tierbase
