#include "vector/vector_store.h"

namespace tierbase {
namespace vector {

Status VectorStore::CreateCollection(const std::string& name,
                                     const IndexOptions& options) {
  common::MutexLock lock(&mu_);
  auto it = collections_.find(name);
  if (it != collections_.end()) {
    const IndexOptions& existing = it->second.options;
    if (existing.kind == options.kind && existing.dim == options.dim &&
        existing.metric == options.metric) {
      return Status::OK();  // Idempotent re-create.
    }
    return Status::InvalidArgument("collection exists with other options: " +
                                   name);
  }
  auto index = CreateIndex(options);
  if (!index.ok()) return index.status();
  collections_.emplace(name, Collection{options, std::move(index.value())});
  return Status::OK();
}

Status VectorStore::DropCollection(const std::string& name) {
  common::MutexLock lock(&mu_);
  return collections_.erase(name) > 0
             ? Status::OK()
             : Status::NotFound("collection: " + name);
}

bool VectorStore::HasCollection(const std::string& name) const {
  common::MutexLock lock(&mu_);
  return collections_.count(name) > 0;
}

std::vector<std::string> VectorStore::Collections() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, c] : collections_) names.push_back(name);
  return names;
}

VectorIndex* VectorStore::Find(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.index.get();
}

Status VectorStore::Add(const std::string& collection, uint64_t id,
                        const std::vector<float>& data) {
  common::MutexLock lock(&mu_);
  VectorIndex* index = Find(collection);
  if (index == nullptr) return Status::NotFound("collection: " + collection);
  if (data.size() != index->dim()) {
    return Status::InvalidArgument("dim mismatch");
  }
  return index->Add(id, data.data());
}

Status VectorStore::Remove(const std::string& collection, uint64_t id) {
  common::MutexLock lock(&mu_);
  VectorIndex* index = Find(collection);
  if (index == nullptr) return Status::NotFound("collection: " + collection);
  return index->Remove(id);
}

Status VectorStore::Search(const std::string& collection,
                           const std::vector<float>& query, size_t k,
                           std::vector<SearchResult>* out) const {
  common::MutexLock lock(&mu_);
  VectorIndex* index = Find(collection);
  if (index == nullptr) return Status::NotFound("collection: " + collection);
  if (query.size() != index->dim()) {
    return Status::InvalidArgument("dim mismatch");
  }
  return index->Search(query.data(), k, out);
}

Result<size_t> VectorStore::Size(const std::string& collection) const {
  common::MutexLock lock(&mu_);
  VectorIndex* index = Find(collection);
  if (index == nullptr) return Status::NotFound("collection: " + collection);
  return index->size();
}

uint64_t VectorStore::MemoryBytes() const {
  common::MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, c] : collections_) total += c.index->MemoryBytes();
  return total;
}

}  // namespace vector
}  // namespace tierbase
