#include "vector/flat_index.h"

#include <algorithm>
#include <cstring>
#include <queue>

namespace tierbase {
namespace vector {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2: return "l2";
    case Metric::kInnerProduct: return "ip";
    case Metric::kCosine: return "cosine";
  }
  return "?";
}

FlatIndex::FlatIndex(const IndexOptions& options) : options_(options) {}

Status FlatIndex::Add(uint64_t id, const float* data) {
  common::MutexLock lock(&mu_);
  auto it = slots_.find(id);
  if (it != slots_.end()) {
    std::memcpy(&data_[it->second * options_.dim], data,
                options_.dim * sizeof(float));
    return Status::OK();
  }
  size_t slot = ids_.size();
  ids_.push_back(id);
  slots_.emplace(id, slot);
  data_.insert(data_.end(), data, data + options_.dim);
  return Status::OK();
}

Status FlatIndex::Remove(uint64_t id) {
  common::MutexLock lock(&mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) return Status::NotFound("vector id");
  size_t slot = it->second;
  size_t last = ids_.size() - 1;
  if (slot != last) {
    // Move the last vector into the vacated slot.
    std::memcpy(&data_[slot * options_.dim], &data_[last * options_.dim],
                options_.dim * sizeof(float));
    ids_[slot] = ids_[last];
    slots_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  data_.resize(ids_.size() * options_.dim);
  slots_.erase(it);
  return Status::OK();
}

bool FlatIndex::Contains(uint64_t id) const {
  common::MutexLock lock(&mu_);
  return slots_.count(id) > 0;
}

Status FlatIndex::Search(const float* query, size_t k,
                         std::vector<SearchResult>* out) const {
  common::MutexLock lock(&mu_);
  out->clear();
  if (k == 0) return Status::OK();
  // Max-heap of the best k seen so far.
  std::priority_queue<std::pair<float, uint64_t>> heap;
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    float d = Distance(options_.metric, query, &data_[slot * options_.dim],
                       options_.dim);
    if (heap.size() < k) {
      heap.emplace(d, ids_[slot]);
    } else if (d < heap.top().first) {
      heap.pop();
      heap.emplace(d, ids_[slot]);
    }
  }
  out->resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    (*out)[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  return Status::OK();
}

size_t FlatIndex::size() const {
  common::MutexLock lock(&mu_);
  return ids_.size();
}

uint64_t FlatIndex::MemoryBytes() const {
  common::MutexLock lock(&mu_);
  return data_.capacity() * sizeof(float) +
         ids_.capacity() * sizeof(uint64_t) +
         slots_.size() * (sizeof(uint64_t) + sizeof(size_t) + 16);
}

}  // namespace vector
}  // namespace tierbase
