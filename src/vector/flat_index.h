// FlatIndex: exact brute-force nearest neighbours. The correctness oracle
// for the HNSW index's recall and the "conventional" baseline in the
// vector ablation bench.

#ifndef TIERBASE_VECTOR_FLAT_INDEX_H_
#define TIERBASE_VECTOR_FLAT_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "vector/vector_index.h"

namespace tierbase {
namespace vector {

class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(const IndexOptions& options);

  std::string name() const override { return "flat"; }
  size_t dim() const override { return options_.dim; }
  Metric metric() const override { return options_.metric; }

  Status Add(uint64_t id, const float* data) override;
  Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  Status Search(const float* query, size_t k,
                std::vector<SearchResult>* out) const override;
  size_t size() const override;
  uint64_t MemoryBytes() const override;

 private:
  IndexOptions options_;
  mutable common::Mutex mu_;
  // Dense storage with an id index; removal swaps with the back.
  std::vector<float> data_ GUARDED_BY(mu_);    // size() * dim floats.
  std::vector<uint64_t> ids_ GUARDED_BY(mu_);  // Slot -> id.
  std::unordered_map<uint64_t, size_t> slots_ GUARDED_BY(mu_);  // Id -> slot.
};

}  // namespace vector
}  // namespace tierbase

#endif  // TIERBASE_VECTOR_FLAT_INDEX_H_
