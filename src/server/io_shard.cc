#include "server/io_shard.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "server/event_loop.h"

namespace tierbase {
namespace server {

namespace {

// Scatter-write width: enough that even a deeply pipelined connection's
// backlog goes out in one or two syscalls, well under IOV_MAX everywhere.
constexpr size_t kMaxIovPerWrite = 64;

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

void AppendErrorChunk(OutQueue* out, const std::string& msg) {
  std::string chunk;
  AppendError(&chunk, msg);
  out->Append(std::move(chunk));
}

}  // namespace

// --- OutQueue -------------------------------------------------------------

void OutQueue::Append(std::string&& chunk) {
  if (chunk.empty()) return;
  bytes_ += chunk.size();
  // Merge tiny chunks (error replies, "+OK") into the tail so a flood of
  // them does not degenerate into thousands of near-empty iovecs.
  constexpr size_t kMergeBelow = 1024;
  constexpr size_t kMergeTailCap = 4096;
  if (!chunks_.empty() && chunk.size() < kMergeBelow &&
      chunks_.back().size() + chunk.size() <= kMergeTailCap) {
    chunks_.back().append(chunk);
    return;
  }
  chunks_.push_back(std::move(chunk));
}

size_t OutQueue::FillIov(struct iovec* iov, size_t max) const {
  size_t n = 0;
  size_t off = head_off_;
  for (const std::string& chunk : chunks_) {
    if (n == max) break;
    iov[n].iov_base = const_cast<char*>(chunk.data()) + off;
    iov[n].iov_len = chunk.size() - off;
    ++n;
    off = 0;
  }
  return n;
}

void OutQueue::Consume(size_t n) {
  bytes_ -= n;
  while (n > 0) {
    const size_t avail = chunks_.front().size() - head_off_;
    if (n < avail) {
      head_off_ += n;
      return;
    }
    n -= avail;
    chunks_.pop_front();
    head_off_ = 0;
  }
}

void OutQueue::Clear() {
  chunks_.clear();
  head_off_ = 0;
  bytes_ = 0;
}

// --- Connection -----------------------------------------------------------

Connection::Connection(IoShard* shard, int fd, uint64_t id)
    : shard_(shard), fd_(fd), id_(id) {}

void Connection::CompleteBatch(std::string&& output, bool close_after,
                               bool shutdown_server) {
  {
    common::MutexLock lock(&mu_);
    if (detached_) return;  // Peer already gone; nobody will read this.
    done_output_ = std::move(output);
    done_close_ = close_after;
    done_ = true;
  }
  // The owning shard finds us through the completion list it registered at
  // dispatch time (IoShard::TryDispatch); just wake it.
  if (shutdown_server) shard_->parent_->Stop();  // Stops EVERY shard.
  shard_->Notify();
}

// --- IoShard --------------------------------------------------------------

IoShard::IoShard(int index, const EventLoopOptions& options, EventLoop* parent)
    : index_(index),
      options_(options),
      parent_(parent),
#ifdef __linux__
      use_epoll_(!options.force_poll)
#else
      use_epoll_(false)
#endif
{
}

IoShard::~IoShard() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    close(wake_write_fd_);
  }
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
#ifdef __linux__
  if (epoll_fd_ >= 0) close(epoll_fd_);
#endif
}

const char* IoShard::backend() const { return use_epoll_ ? "epoll" : "poll"; }

Status IoShard::Open() {
#ifdef __linux__
  if (use_epoll_) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IOError(std::string("epoll_create1: ") + strerror(errno));
    }
    // eventfd wakeup: one fd instead of a pipe pair, and a single 8-byte
    // read drains any number of queued notifications.
    wake_read_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_read_fd_ < 0) {
      return Status::IOError(std::string("eventfd: ") + strerror(errno));
    }
    wake_write_fd_ = wake_read_fd_;
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl: ") + strerror(errno));
    }
    return Status::OK();
  }
#endif
  // Poll fallback keeps the portable self-pipe.
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::IOError(std::string("pipe: ") + strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));
  return Status::OK();
}

Status IoShard::OpenListener(uint16_t port, bool reuseport) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    // Must be set before bind: the kernel groups same-port listeners into
    // one accept-distribution pool only if every bind carried the flag.
    if (setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      return Status::IOError(std::string("SO_REUSEPORT: ") + strerror(errno));
    }
#else
    return Status::InvalidArgument("SO_REUSEPORT unsupported on this OS");
#endif
  }

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  listen_port_ = ntohs(addr.sin_port);

#ifdef __linux__
  if (use_epoll_) {
    // Level-triggered on purpose: if one epoll_wait batch ends before the
    // backlog empties, the next cycle re-reports it — no accept starvation.
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl: ") + strerror(errno));
    }
  }
#endif
  return Status::OK();
}

void IoShard::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Notify();
}

void IoShard::Notify() {
  if (wake_write_fd_ < 0) return;
#ifdef __linux__
  if (use_epoll_) {
    uint64_t one = 1;
    ssize_t unused = write(wake_write_fd_, &one, sizeof(one));
    (void)unused;
    return;
  }
#endif
  char byte = 1;
  // Nonblocking: if the pipe is full a wakeup is already pending.
  ssize_t unused = write(wake_write_fd_, &byte, 1);
  (void)unused;
}

void IoShard::DrainWakeupChannel() {
  wakeups_.fetch_add(1, std::memory_order_relaxed);
#ifdef __linux__
  if (use_epoll_) {
    uint64_t count = 0;
    ssize_t unused = read(wake_read_fd_, &count, sizeof(count));
    (void)unused;  // eventfd read resets the counter; one read drains all.
    return;
  }
#endif
  char sink[256];
  while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
  }
}

void IoShard::AdoptConnection(int fd) {
  {
    common::MutexLock lock(&pending_mu_);
    pending_accepts_.push_back(fd);
  }
  Notify();
}

void IoShard::DrainPendingAccepts() {
  std::vector<int> pending;
  {
    common::MutexLock lock(&pending_mu_);
    if (pending_accepts_.empty()) return;
    pending.swap(pending_accepts_);
  }
  const bool stopping = stop_requested_.load(std::memory_order_acquire);
  for (int fd : pending) {
    if (stopping) {
      // Hand-off raced with shutdown; the connection was admitted but
      // never served — release its admission slot.
      close(fd);
      parent_->ReleaseConnection();
      continue;
    }
    AddConnection(fd);
  }
}

void IoShard::AddConnection(int fd) {
  const uint64_t id =
      (static_cast<uint64_t>(index_ + 1) << 48) | next_conn_id_++;
  auto conn = std::make_shared<Connection>(this, fd, id);
#ifdef __linux__
  if (use_epoll_) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      TB_LOG_WARN("server: epoll add failed: %s", strerror(errno));
      close(fd);
      parent_->ReleaseConnection();
      return;
    }
    conn->armed_events = EPOLLIN | EPOLLET;
  }
#endif
  conns_.emplace(fd, std::move(conn));
  assigned_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_add(1, std::memory_order_relaxed);
}

void IoShard::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      TB_LOG_WARN("server: accept failed: %s", strerror(errno));
      return;
    }
    if (!parent_->TryAdmitConnection()) {
      // Overload guard: answer with a clean error instead of silently
      // dropping the handshake. The fresh fd is still blocking (accepted
      // sockets do not inherit the listener's O_NONBLOCK on Linux), so the
      // short write either completes or fails immediately — never EAGAIN.
      static const char kReject[] = "-ERR max clients reached\r\n";
      ssize_t unused = send(fd, kReject, sizeof(kReject) - 1, MSG_NOSIGNAL);
      (void)unused;
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      parent_->ReleaseConnection();
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
    IoShard* target = parent_->PickShard(this);
    if (target == this) {
      AddConnection(fd);
    } else {
      target->AdoptConnection(fd);
    }
  }
}

bool IoShard::ConnAlive(int fd, const std::shared_ptr<Connection>& conn) const {
  auto it = conns_.find(fd);
  return it != conns_.end() && it->second == conn;
}

void IoShard::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    // Detach first so an in-flight CompleteBatch discards its output
    // instead of waking the loop for a dead socket.
    common::MutexLock lock(&conn->mu_);
    conn->detached_ = true;
  }
  if (conn->busy) {
    // The peer died with a batch still executing; its completion will be
    // discarded via detach, so release the dispatch-queue slot here.
    conn->busy = false;
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  // close() also removes the fd from the epoll set.
  close(conn->fd_);
  conns_.erase(conn->fd_);
  active_.fetch_sub(1, std::memory_order_relaxed);
  parent_->ReleaseConnection();
}

void IoShard::UpdateInterest(const std::shared_ptr<Connection>& conn) {
#ifdef __linux__
  if (!use_epoll_) return;
  uint32_t want = EPOLLIN | EPOLLET;
  if (!conn->out.empty()) want |= EPOLLOUT;
  if (want == conn->armed_events) return;
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = want;
  ev.data.fd = conn->fd_;
  // EPOLL_CTL_MOD re-arms the edge trigger: if the socket is already
  // writable when EPOLLOUT is added, an event fires — no lost edge.
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
  conn->armed_events = want;
#else
  (void)conn;
#endif
}

bool IoShard::TryDispatch(const std::shared_ptr<Connection>& conn) {
  if (conn->busy || conn->closing || conn->in_buf.empty()) return true;

  std::vector<RespCommand> cmds;
  size_t consumed = 0;
  std::string error;
  const uint64_t parse_start = Clock::Real()->NowMicros();
  ParseResult r = ParseRequests(conn->in_buf.data(), conn->in_buf.size(),
                                &cmds, &consumed, &error);
  if (r == ParseResult::kError) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    AppendErrorChunk(&conn->out, "ERR Protocol error: " + error);
    conn->closing = true;  // Flush the error, then hang up (Redis-style).
    conn->in_buf.clear();
    return true;
  }
  if (cmds.empty()) {
    // Still drop what the parser consumed (blank inline keepalives), or
    // an idle-but-chatty client's buffer would grow and re-parse forever.
    if (consumed > 0) conn->in_buf.erase(0, consumed);
    return true;
  }

  if (options_.max_dispatch_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) >=
          options_.max_dispatch_inflight) {
    // Load shedding: THIS loop's dispatch queue is at its high watermark,
    // so answer each parsed command with -BUSY instead of queueing behind
    // work the loop is already failing to keep up with. The connection
    // stays open; the client decides when to retry. (The watermark is per
    // loop: a flooded shard sheds while its siblings keep serving.)
    std::string shed;
    for (size_t i = 0; i < cmds.size(); ++i) {
      AppendError(&shed, "BUSY dispatch queue full, retry later");
    }
    conn->out.Append(std::move(shed));
    busy_shed_.fetch_add(cmds.size(), std::memory_order_relaxed);
    conn->in_buf.erase(0, consumed);
    return true;
  }

  // Package the batch: the raw bytes move with it so the argument Slices
  // survive the trip to the executor thread. (One buffer copy per batch;
  // no per-argument copies. The Slices are rebased onto the batch's heap
  // buffer, which stays put through every later move of the batch.)
  CommandBatch batch;
  const char* old_base = conn->in_buf.data();
  batch.raw = std::make_unique<char[]>(consumed);
  memcpy(batch.raw.get(), old_base, consumed);
  batch.cmds = std::move(cmds);
  for (RespCommand& cmd : batch.cmds) {
    for (Slice& arg : cmd.args) {
      arg = Slice(batch.raw.get() + (arg.data() - old_base), arg.size());
    }
  }
  conn->in_buf.erase(0, consumed);
  conn->busy = true;
  batch.parse_micros = Clock::Real()->NowMicros() - parse_start;

  batches_.fetch_add(1, std::memory_order_relaxed);
  commands_.fetch_add(batch.cmds.size(), std::memory_order_relaxed);
  uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (batch.cmds.size() > prev &&
         !max_batch_.compare_exchange_weak(prev, batch.cmds.size())) {
  }

  // Register for completion pickup before handing off: CompleteBatch may
  // run before the dispatcher returns.
  {
    common::MutexLock lock(&completions_mu_);
    completions_.push_back(conn);
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  parent_->DispatchBatch(conn, std::move(batch));
  return true;
}

void IoShard::DrainCompletions() {
  std::vector<std::weak_ptr<Connection>> ready;
  {
    common::MutexLock lock(&completions_mu_);
    ready.swap(completions_);
  }
  std::vector<std::weak_ptr<Connection>> still_pending;
  for (auto& weak : ready) {
    std::shared_ptr<Connection> conn = weak.lock();
    if (conn == nullptr) continue;
    bool done = false;
    {
      common::MutexLock lock(&conn->mu_);
      if (conn->done_) {
        // The reply chunk moves into the scatter-output queue untouched —
        // no concatenation copy; writev sends it from where it lands.
        conn->out.Append(std::move(conn->done_output_));
        conn->done_output_.clear();
        conn->done_ = false;
        if (conn->done_close_) conn->closing = true;
        done = true;
      }
    }
    if (!done) {
      still_pending.push_back(std::move(weak));
      continue;
    }
    // Identity check, not just fd presence: the fd number may have been
    // reused by a newly accepted connection after this one closed.
    if (!ConnAlive(conn->fd_, conn)) continue;  // Peer died.
    if (conn->busy) {
      // (CloseConnection releases the slot for peers that died mid-batch.)
      conn->busy = false;
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (options_.max_out_buffer > 0 &&
        conn->out.bytes() > options_.max_out_buffer) {
      // Slow-consumer guard: replies are piling up faster than the peer
      // drains them. Checked here — after the batch's output lands, before
      // any flush attempt — so the decision is deterministic regardless of
      // kernel buffer sizes. Accounted by the owning loop, race-free.
      slow_consumer_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      continue;
    }
    HandleWritable(conn);  // Opportunistic flush without waiting for poll.
    if (ConnAlive(conn->fd_, conn) && !conn->closing) {
      TryDispatch(conn);  // Pipeline input buffered during execution.
      if (ConnAlive(conn->fd_, conn)) UpdateInterest(conn);
    }
  }
  if (!still_pending.empty()) {
    common::MutexLock lock(&completions_mu_);
    for (auto& weak : still_pending) completions_.push_back(std::move(weak));
  }
}

void IoShard::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char chunk[16384];
  for (;;) {
    ssize_t n = recv(conn->fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in_buf.append(chunk, static_cast<size_t>(n));
      // Enforce the buffer cap here, not in TryDispatch: while a batch is
      // in flight dispatch is skipped, and that is exactly when a
      // flooding client could otherwise grow in_buf without bound.
      if (conn->in_buf.size() > options_.max_read_buffer) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendErrorChunk(&conn->out, "ERR Protocol error: request too large");
        conn->closing = true;
        conn->in_buf.clear();
        HandleWritable(conn);
        return;
      }
      // Keep reading until EAGAIN: the edge-triggered backend only
      // re-reports a socket after NEW bytes arrive, so a short read is not
      // proof the buffer is empty.
      continue;
    }
    if (n == 0) {
      // Peer closed — possibly mid-frame, possibly mid-dispatch. Tear the
      // connection down; CompleteBatch output is discarded via detach.
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  TryDispatch(conn);
  if (ConnAlive(conn->fd_, conn)) UpdateInterest(conn);
}

void IoShard::HandleWritable(const std::shared_ptr<Connection>& conn) {
  while (!conn->out.empty()) {
    struct iovec iov[kMaxIovPerWrite];
    const size_t cnt = conn->out.FillIov(iov, kMaxIovPerWrite);
    struct msghdr msg;
    memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    // sendmsg == scatter writev over the reply chunks, with MSG_NOSIGNAL
    // (plain writev(2) would raise SIGPIPE on a dead peer).
    ssize_t n = sendmsg(conn->fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(conn);  // Kernel buffer full; arm EPOLLOUT.
      return;
    }
    CloseConnection(conn);
    return;
  }
  if (conn->closing && !conn->busy) {
    CloseConnection(conn);
    return;
  }
  UpdateInterest(conn);  // Drained: disarm EPOLLOUT.
}

bool IoShard::StoppingAndDrained() {
  if (!stop_requested_.load(std::memory_order_acquire)) return false;
  if (stop_seen_at_ == 0) {
    stop_seen_at_ = Clock::Real()->NowMicros();
    // Stop accepting at the kernel level too: without the close a
    // handshake would still complete against the listen backlog and
    // clients would see a connection that nobody ever serves.
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  // Refuse hand-offs that raced with the stop request.
  DrainPendingAccepts();
  // Done when nothing is left to flush or execute, or on deadline.
  bool pending = false;
  for (const auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->busy || !conn->out.empty()) {
      pending = true;
      break;
    }
  }
  if (!pending) return true;
  return Clock::Real()->NowMicros() - stop_seen_at_ >
         options_.drain_deadline_micros;
}

void IoShard::Run() {
#ifdef __linux__
  if (use_epoll_) {
    RunEpoll();
  } else {
    RunPoll();
  }
#else
  RunPoll();
#endif

  // Teardown: every remaining socket closes (in-flight completions
  // detach), and any last hand-offs are refused.
  while (!conns_.empty()) {
    CloseConnection(conns_.begin()->second);
  }
  std::vector<int> pending;
  {
    common::MutexLock lock(&pending_mu_);
    pending.swap(pending_accepts_);
  }
  for (int fd : pending) {
    close(fd);
    parent_->ReleaseConnection();
  }
}

void IoShard::RunEpoll() {
#ifdef __linux__
  constexpr int kMaxEvents = 128;
  struct epoll_event events[kMaxEvents];

  for (;;) {
    if (StoppingAndDrained()) break;

    int rc = epoll_wait(epoll_fd_, events, kMaxEvents,
                        options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      TB_LOG_ERROR("server: epoll_wait failed: %s", strerror(errno));
      break;
    }

    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    for (int i = 0; i < rc; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_read_fd_) {
        DrainWakeupChannel();
        continue;
      }
      if (fd == listen_fd_) {
        if (!stopping) AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier this cycle.
      std::shared_ptr<Connection> conn = it->second;
      if (ev & EPOLLERR) {
        CloseConnection(conn);
        continue;
      }
      if (ev & EPOLLIN) {
        HandleReadable(conn);
        if (!ConnAlive(fd, conn)) continue;
      } else if (ev & EPOLLHUP) {
        // EPOLLHUP without readable data: nothing more will arrive.
        CloseConnection(conn);
        continue;
      }
      if (ev & EPOLLOUT) HandleWritable(conn);
      if (ConnAlive(fd, conn)) UpdateInterest(conn);
    }

    DrainPendingAccepts();
    DrainCompletions();
  }
#endif
}

void IoShard::RunPoll() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;

  for (;;) {
    if (StoppingAndDrained()) break;
    const bool stopping = stop_requested_.load(std::memory_order_acquire);

    fds.clear();
    polled.clear();
    if (!stopping && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t wake_idx = fds.size();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const size_t first_conn = fds.size();
    for (const auto& [fd, conn] : conns_) {
      short events = 0;
      // While a batch is in flight keep reading (pipelining input), and
      // ask for POLLOUT only when bytes are pending.
      if (!conn->closing) events |= POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      if (events == 0) events = POLLIN;  // Still notice hangups.
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                  options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      TB_LOG_ERROR("server: poll failed: %s", strerror(errno));
      break;
    }

    if (wake_idx > 0 && (fds[0].revents & POLLIN)) AcceptNew();
    if (fds[wake_idx].revents & POLLIN) DrainWakeupChannel();

    for (size_t c = 0; c < polled.size(); ++c) {
      const pollfd& p = fds[first_conn + c];
      const std::shared_ptr<Connection>& conn = polled[c];
      if (!ConnAlive(p.fd, conn)) continue;  // Closed earlier this cycle.
      if (p.revents & (POLLERR | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (p.revents & POLLIN) {
        HandleReadable(conn);
        if (!ConnAlive(p.fd, conn)) continue;
      } else if (p.revents & POLLHUP) {
        // POLLHUP without readable data: nothing more will arrive.
        CloseConnection(conn);
        continue;
      }
      if (p.revents & POLLOUT) HandleWritable(conn);
    }

    DrainPendingAccepts();
    DrainCompletions();
  }
}

}  // namespace server
}  // namespace tierbase
