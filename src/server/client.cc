#include "server/client.h"

#include <cstdlib>
#include <cstring>

namespace tierbase {
namespace server {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port,
                       uint64_t timeout_micros) {
  Close();
  common::Transport* transport =
      transport_ != nullptr ? transport_ : common::GlobalTransport();
  return transport->Connect(host, port, timeout_micros, &conn_);
}

void Client::Close() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  send_buf_.clear();
  recv_buf_.clear();
  recv_pos_ = 0;
}

void Client::Append(const std::vector<Slice>& args) {
  AppendArrayHeader(&send_buf_, args.size());
  for (const Slice& arg : args) AppendBulk(&send_buf_, arg);
}

Status Client::Flush() {
  if (conn_ == nullptr) return Status::IOError("client not connected");
  size_t sent = 0;
  while (sent < send_buf_.size()) {
    size_t n = 0;
    Status s = conn_->Write(send_buf_.data() + sent,
                            send_buf_.size() - sent, &n);
    if (!s.ok()) {
      Close();
      return s;
    }
    sent += n;
  }
  send_buf_.clear();
  return Status::OK();
}

Status Client::ReadReply(RespValue* reply) {
  if (conn_ == nullptr) return Status::IOError("client not connected");
  for (;;) {
    if (recv_pos_ < recv_buf_.size()) {
      size_t consumed = 0;
      std::string error;
      ParseResult r = ParseReply(recv_buf_.data() + recv_pos_,
                                 recv_buf_.size() - recv_pos_, reply,
                                 &consumed, &error);
      if (r == ParseResult::kOk) {
        recv_pos_ += consumed;
        // Compact once the parsed prefix dominates the buffer.
        if (recv_pos_ > 4096 && recv_pos_ * 2 > recv_buf_.size()) {
          recv_buf_.erase(0, recv_pos_);
          recv_pos_ = 0;
        }
        return Status::OK();
      }
      if (r == ParseResult::kError) {
        Close();
        return Status::Corruption("bad reply: " + error);
      }
    }
    char chunk[16384];
    size_t n = 0;
    Status s = conn_->Read(chunk, sizeof(chunk), &n);
    if (!s.ok()) {
      Close();
      return s;
    }
    if (n == 0) {
      Close();
      return Status::IOError("connection closed by server");
    }
    recv_buf_.append(chunk, n);
  }
}

Status Client::Call(const std::vector<Slice>& args, RespValue* reply) {
  Append(args);
  TIERBASE_RETURN_IF_ERROR(Flush());
  return ReadReply(reply);
}

// ---------------------------------------------------------------------------
// RemoteEngine.
// ---------------------------------------------------------------------------

namespace {

/// Maps a RESP error payload back onto a Status.
Status ErrorToStatus(const RespValue& v) {
  if (v.str.rfind("WRONGTYPE", 0) == 0) {
    return Status::InvalidArgument(v.str);
  }
  return Status::IOError(v.str);
}

}  // namespace

Result<std::unique_ptr<RemoteEngine>> RemoteEngine::Connect(
    const std::string& host, uint16_t port) {
  std::unique_ptr<RemoteEngine> engine(
      new RemoteEngine(host + ":" + std::to_string(port)));
  Status s = engine->client_.Connect(host, port);
  if (!s.ok()) return s;
  return engine;
}

Status RemoteEngine::Set(const Slice& key, const Slice& value) {
  common::MutexLock lock(&mu_);
  RespValue reply;
  TIERBASE_RETURN_IF_ERROR(client_.Call({"SET", key, value}, &reply));
  if (reply.IsError()) return ErrorToStatus(reply);
  return Status::OK();
}

Status RemoteEngine::Get(const Slice& key, std::string* value) {
  common::MutexLock lock(&mu_);
  RespValue reply;
  TIERBASE_RETURN_IF_ERROR(client_.Call({"GET", key}, &reply));
  if (reply.IsError()) return ErrorToStatus(reply);
  if (reply.IsNull()) return Status::NotFound("");
  *value = std::move(reply.str);
  return Status::OK();
}

Status RemoteEngine::Delete(const Slice& key) {
  common::MutexLock lock(&mu_);
  RespValue reply;
  TIERBASE_RETURN_IF_ERROR(client_.Call({"DEL", key}, &reply));
  if (reply.IsError()) return ErrorToStatus(reply);
  return Status::OK();
}

void RemoteEngine::MultiGet(const std::vector<Slice>& keys,
                            std::vector<std::string>* values,
                            std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  common::MutexLock lock(&mu_);
  std::vector<Slice> args;
  args.reserve(keys.size() + 1);
  args.emplace_back("MGET");
  args.insert(args.end(), keys.begin(), keys.end());
  RespValue reply;
  Status s = client_.Call(args, &reply);
  if (!s.ok() || reply.type != RespValue::Type::kArray ||
      reply.elements.size() != keys.size()) {
    if (s.ok()) {
      s = reply.IsError() ? ErrorToStatus(reply)
                          : Status::IOError("malformed MGET reply");
    }
    statuses->assign(keys.size(), s);
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    RespValue& e = reply.elements[i];
    if (e.type == RespValue::Type::kBulkString) {
      (*values)[i] = std::move(e.str);
    } else {
      (*statuses)[i] = Status::NotFound("");
    }
  }
}

void RemoteEngine::MultiSet(const std::vector<Slice>& keys,
                            const std::vector<Slice>& values,
                            std::vector<Status>* statuses) {
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  common::MutexLock lock(&mu_);
  std::vector<Slice> args;
  args.reserve(keys.size() * 2 + 1);
  args.emplace_back("MSET");
  for (size_t i = 0; i < keys.size(); ++i) {
    args.push_back(keys[i]);
    args.push_back(values[i]);
  }
  RespValue reply;
  Status s = client_.Call(args, &reply);
  if (!s.ok()) {
    statuses->assign(keys.size(), s);
    return;
  }
  if (reply.IsError()) {
    statuses->assign(keys.size(), ErrorToStatus(reply));
  }
}

UsageStats RemoteEngine::GetUsage() const {
  UsageStats usage;
  common::MutexLock lock(&mu_);
  RespValue reply;
  if (!client_.Call({"INFO"}, &reply).ok() ||
      reply.type != RespValue::Type::kBulkString) {
    return usage;
  }
  auto parse_field = [&](const char* field) -> uint64_t {
    size_t pos = reply.str.find(field);
    if (pos == std::string::npos) return 0;
    return strtoull(reply.str.c_str() + pos + strlen(field), nullptr, 10);
  };
  usage.memory_bytes = parse_field("bytes_cached:");
  usage.pmem_bytes = parse_field("pmem_bytes:");
  usage.keys = parse_field("keys_cached:");
  return usage;
}

Status RemoteEngine::WaitIdle() {
  common::MutexLock lock(&mu_);
  RespValue reply;
  TIERBASE_RETURN_IF_ERROR(client_.Call({"PING"}, &reply));
  if (reply.IsError()) return ErrorToStatus(reply);
  return Status::OK();
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  std::string port_part = spec;
  *host = "127.0.0.1";
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) *host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) {
    return Status::InvalidArgument("missing port in '" + spec + "'");
  }
  char* end = nullptr;
  unsigned long v = strtoul(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0 || v > 65535) {
    return Status::InvalidArgument("bad port in '" + spec + "'");
  }
  *port = static_cast<uint16_t>(v);
  return Status::OK();
}

}  // namespace server
}  // namespace tierbase
