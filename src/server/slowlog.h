// SLOWLOG: a bounded ring of the slowest recent commands, after Redis's
// feature of the same name. The dispatch path compares each command's
// elapsed microseconds against an atomic threshold (one relaxed load — the
// fast path pays nothing else); only commands at or over the threshold
// take the mutex and enter the ring.
//
// Entries store *redacted* arguments: the command name and its key
// arguments only, never values — a slow SET of a 10 MB blob logs as
// ["SET", "its-key"]. Redaction happens in the command layer, which knows
// each command's key positions.

#ifndef TIERBASE_SERVER_SLOWLOG_H_
#define TIERBASE_SERVER_SLOWLOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tierbase {
namespace server {

class SlowLog {
 public:
  struct Entry {
    uint64_t id = 0;            // Monotonic, survives RESET (Redis-style).
    int64_t unix_seconds = 0;   // Wall-clock time the command finished.
    uint64_t duration_micros = 0;
    std::vector<std::string> args;  // Redacted: name + keys only.
  };

  /// Threshold in microseconds: commands taking >= this are logged.
  /// 0 logs every command; negative disables logging entirely.
  void set_threshold_micros(int64_t micros) {
    threshold_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t threshold_micros() const {
    return threshold_micros_.load(std::memory_order_relaxed);
  }

  /// Ring capacity; adding past it evicts the oldest entry.
  void set_capacity(size_t capacity);

  /// Fast-path check: true when a command of this duration must be logged.
  bool ShouldLog(uint64_t duration_micros) const {
    int64_t t = threshold_micros_.load(std::memory_order_relaxed);
    return t >= 0 && duration_micros >= static_cast<uint64_t>(t);
  }

  /// Appends an entry (caller already passed ShouldLog and redacted args).
  void Add(uint64_t duration_micros, std::vector<std::string> args);

  /// Newest-first snapshot of up to `n` entries (SLOWLOG GET).
  std::vector<Entry> Get(size_t n) const;

  size_t Len() const;
  void Reset();

 private:
  // Redis defaults: 10ms threshold, 128 entries.
  std::atomic<int64_t> threshold_micros_{10'000};

  mutable common::Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_) = 128;
  uint64_t next_id_ GUARDED_BY(mu_) = 0;
  std::deque<Entry> ring_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_SLOWLOG_H_
