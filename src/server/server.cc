#include "server/server.h"

#include "common/clock.h"

namespace tierbase {
namespace server {

Server::Server(TierBase* db, ServerOptions options)
    : db_(db), options_(std::move(options)), table_(db) {
  // Server-level instruments join the table's registry so INFO/METRICS
  // render the whole process from one place. The callbacks null-check
  // loop_/executor_ because INFO can run between construction and Start().
  metrics::MetricsRegistry* reg = table_.registry();
  reg->AddText("Server", "tcp_port",
               [this] { return std::to_string(port()); });
  reg->AddText("Server", "thread_mode", [this] {
    switch (options_.executor.mode) {
      case threading::ThreadMode::kMulti:
        return "multi";
      case threading::ThreadMode::kElastic:
        return "elastic";
      default:
        return "single";
    }
  });
  auto poll = [reg](const char* key, const char* help, metrics::MetricType t,
                    std::function<uint64_t()> fn) {
    reg->AddCallback("Server", key, help, t, std::move(fn));
  };
  poll("active_threads", "Executor threads currently running",
       metrics::MetricType::kGauge, [this] {
         return executor_ != nullptr
                    ? static_cast<uint64_t>(executor_->active_threads())
                    : 0;
       });
  poll("executor_scale_ups", "Elastic executor scale-up events",
       metrics::MetricType::kCounter,
       [this] { return executor_ != nullptr ? executor_->scale_ups() : 0; });
  poll("connected_clients", "Connections currently open",
       metrics::MetricType::kGauge,
       [this] { return loop_ != nullptr ? loop_->connections_active() : 0; });
  poll("total_connections_received", "Connections accepted since start",
       metrics::MetricType::kCounter, [this] {
         return loop_ != nullptr ? loop_->connections_accepted() : 0;
       });
  poll("dispatched_batches", "Pipeline batches handed to the executor",
       metrics::MetricType::kCounter,
       [this] { return loop_ != nullptr ? loop_->batches_dispatched() : 0; });
  poll("max_pipeline_batch", "Largest pipeline batch dispatched",
       metrics::MetricType::kGauge,
       [this] { return loop_ != nullptr ? loop_->max_batch_commands() : 0; });
  poll("protocol_errors", "Connections dropped for RESP protocol errors",
       metrics::MetricType::kCounter,
       [this] { return loop_ != nullptr ? loop_->protocol_errors() : 0; });

  // Multi-reactor shape: how many loops, which backend, and the per-loop
  // breakdown (connection ownership, accept balance, wakeup traffic).
  reg->AddText("Server", "io_backend", [this] {
    return std::string(loop_ != nullptr ? loop_->backend()
                       : options_.net.force_poll ? "poll"
                                                 : "unbound");
  });
  poll("io_threads", "Event-loop shards serving connections",
       metrics::MetricType::kGauge, [this] {
         return loop_ != nullptr
                    ? static_cast<uint64_t>(loop_->io_threads())
                    : static_cast<uint64_t>(options_.net.io_threads);
       });
  poll("loop_wakeups", "Wakeup-channel fires across all loops",
       metrics::MetricType::kCounter,
       [this] { return loop_ != nullptr ? loop_->loop_wakeups() : 0; });
  reg->AddBlock("Server", [this](std::string* out) {
    if (loop_ == nullptr) return;
    for (size_t i = 0; i < loop_->shard_count(); ++i) {
      const IoShard* shard = loop_->shard(i);
      const std::string sfx = "_loop" + std::to_string(i);
      out->append("connected_clients" + sfx + ":" +
                  std::to_string(shard->connections_active()) + "\r\n");
      out->append("accepts" + sfx + ":" +
                  std::to_string(shard->connections_assigned()) + "\r\n");
      out->append("dispatched_batches" + sfx + ":" +
                  std::to_string(shard->batches_dispatched()) + "\r\n");
      out->append("loop_wakeups" + sfx + ":" +
                  std::to_string(shard->wakeups()) + "\r\n");
    }
  });

  auto guard = [reg](const char* key, const char* help, metrics::MetricType t,
                     std::function<uint64_t()> fn) {
    reg->AddCallback("Robustness", key, help, t, std::move(fn));
  };
  guard("max_connections", "Connection cap (0 = unlimited)",
        metrics::MetricType::kGauge, [this] {
          return static_cast<uint64_t>(options_.net.max_connections);
        });
  guard("max_out_buffer", "Per-connection reply buffer cap in bytes",
        metrics::MetricType::kGauge, [this] {
          return static_cast<uint64_t>(options_.net.max_out_buffer);
        });
  guard("max_dispatch_inflight", "Dispatch queue high watermark (0 = off)",
        metrics::MetricType::kGauge, [this] {
          return static_cast<uint64_t>(options_.net.max_dispatch_inflight);
        });
  guard("connections_rejected", "Connections refused at the cap",
        metrics::MetricType::kCounter, [this] {
          return loop_ != nullptr ? loop_->connections_rejected() : 0;
        });
  guard("slow_consumer_disconnects",
        "Connections dropped for unbounded reply backlog",
        metrics::MetricType::kCounter, [this] {
          return loop_ != nullptr ? loop_->slow_consumer_disconnects() : 0;
        });
  guard("busy_shed_commands", "Commands answered -BUSY under overload",
        metrics::MetricType::kCounter,
        [this] { return loop_ != nullptr ? loop_->busy_shed_commands() : 0; });
  guard("dispatch_inflight", "Batches dispatched and not yet completed",
        metrics::MetricType::kGauge,
        [this] { return loop_ != nullptr ? loop_->dispatch_inflight() : 0; });
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_) return Status::InvalidArgument("server already running");
  executor_ =
      std::make_unique<threading::ElasticExecutor>(options_.executor);
  loop_ = std::make_unique<EventLoop>(
      options_.net, [this](std::shared_ptr<Connection> conn,
                           CommandBatch batch) {
        Dispatch(std::move(conn), std::move(batch));
      });
  Status s = loop_->Listen();
  if (!s.ok()) {
    loop_.reset();
    executor_->Shutdown();
    executor_.reset();
    return s;
  }
  loop_thread_ = std::thread([this] { loop_->Run(); });
  running_ = true;
  return Status::OK();
}

void Server::Dispatch(std::shared_ptr<Connection> conn, CommandBatch batch) {
  // The executor task owns the connection handle and the batch's raw
  // bytes; the parsed Slices stay valid for the task's lifetime.
  auto shared_batch =
      std::make_shared<CommandBatch>(std::move(batch));
  const uint64_t dispatched_at =
      table_.telemetry_enabled() ? Clock::Real()->NowMicros() : 0;
  executor_->Submit([this, conn = std::move(conn), shared_batch,
                     dispatched_at] {
    // The connection's PERF state rides in its dispatcher slot; batches
    // for one connection are serialized, so plain access is safe.
    if (conn->dispatcher_state == nullptr) {
      conn->dispatcher_state = std::make_shared<PerfState>();
    }
    auto* perf = static_cast<PerfState*>(conn->dispatcher_state.get());
    BatchTiming timing;
    timing.parse_micros = shared_batch->parse_micros;
    timing.dispatched_at_micros = dispatched_at;
    std::string out;
    bool close_connection = false;
    bool shutdown_server = false;
    table_.ExecuteBatch(shared_batch->cmds, &out, &close_connection,
                        &shutdown_server, perf, &timing);
    conn->CompleteBatch(std::move(out), close_connection, shutdown_server);
  });
}

void Server::Stop() {
  if (!running_) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Executor after loop: queued batches may still complete (their output
  // is discarded against detached connections).
  executor_->Shutdown();
  running_ = false;
}

void Server::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace server
}  // namespace tierbase
