#include "server/server.h"

#include <cinttypes>
#include <cstdio>

namespace tierbase {
namespace server {

Server::Server(TierBase* db, ServerOptions options)
    : db_(db), options_(std::move(options)), table_(db) {
  table_.set_info_extra([this](std::string* out) {
    char line[128];
    auto add = [&](const char* fmt, auto... args) {
      snprintf(line, sizeof(line), fmt, args...);
      *out += line;
      *out += "\r\n";
    };
    const char* mode = "single";
    if (options_.executor.mode == threading::ThreadMode::kMulti) {
      mode = "multi";
    } else if (options_.executor.mode == threading::ThreadMode::kElastic) {
      mode = "elastic";
    }
    add("tcp_port:%u", static_cast<unsigned>(port()));
    add("thread_mode:%s", mode);
    if (executor_ != nullptr) {
      add("active_threads:%d", executor_->active_threads());
      add("executor_scale_ups:%" PRIu64, executor_->scale_ups());
    }
    if (loop_ != nullptr) {
      add("connected_clients:%" PRIu64, loop_->connections_active());
      add("total_connections_received:%" PRIu64,
          loop_->connections_accepted());
      add("dispatched_batches:%" PRIu64, loop_->batches_dispatched());
      add("max_pipeline_batch:%" PRIu64, loop_->max_batch_commands());
      add("protocol_errors:%" PRIu64, loop_->protocol_errors());
    }
  });
  table_.set_info_robustness([this](std::string* out) {
    char line[128];
    auto add = [&](const char* fmt, auto... args) {
      snprintf(line, sizeof(line), fmt, args...);
      *out += line;
      *out += "\r\n";
    };
    add("max_connections:%zu", options_.net.max_connections);
    add("max_out_buffer:%zu", options_.net.max_out_buffer);
    add("max_dispatch_inflight:%zu", options_.net.max_dispatch_inflight);
    if (loop_ != nullptr) {
      add("connections_rejected:%" PRIu64, loop_->connections_rejected());
      add("slow_consumer_disconnects:%" PRIu64,
          loop_->slow_consumer_disconnects());
      add("busy_shed_commands:%" PRIu64, loop_->busy_shed_commands());
      add("dispatch_inflight:%" PRIu64, loop_->dispatch_inflight());
    }
  });
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_) return Status::InvalidArgument("server already running");
  executor_ =
      std::make_unique<threading::ElasticExecutor>(options_.executor);
  loop_ = std::make_unique<EventLoop>(
      options_.net, [this](std::shared_ptr<Connection> conn,
                           CommandBatch batch) {
        Dispatch(std::move(conn), std::move(batch));
      });
  Status s = loop_->Listen();
  if (!s.ok()) {
    loop_.reset();
    executor_->Shutdown();
    executor_.reset();
    return s;
  }
  loop_thread_ = std::thread([this] { loop_->Run(); });
  running_ = true;
  return Status::OK();
}

void Server::Dispatch(std::shared_ptr<Connection> conn, CommandBatch batch) {
  // The executor task owns the connection handle and the batch's raw
  // bytes; the parsed Slices stay valid for the task's lifetime.
  auto shared_batch =
      std::make_shared<CommandBatch>(std::move(batch));
  executor_->Submit([this, conn = std::move(conn), shared_batch] {
    std::string out;
    bool close_connection = false;
    bool shutdown_server = false;
    table_.ExecuteBatch(shared_batch->cmds, &out, &close_connection,
                        &shutdown_server);
    conn->CompleteBatch(std::move(out), close_connection, shutdown_server);
  });
}

void Server::Stop() {
  if (!running_) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Executor after loop: queued batches may still complete (their output
  // is discarded against detached connections).
  executor_->Shutdown();
  running_ = false;
}

void Server::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace server
}  // namespace tierbase
