// RESP2: the Redis serialization protocol spoken by the network front end
// (the paper's production deployment is Redis-protocol compatible; clients
// reach a TierBase data node exactly as they would reach Redis).
//
// Two halves live here:
//
//   * Request parsing — ParseRequests() decodes as many complete commands
//     as the connection's read buffer holds. It is incremental: a partial
//     frame consumes nothing and simply waits for more bytes, so the event
//     loop can hand it arbitrary read() chunks. Parsed argument Slices
//     point straight into the caller's buffer (zero copies); they stay
//     valid as long as that buffer does, which the event loop guarantees
//     by moving buffer ownership into the dispatch batch.
//   * Reply serialization — Append*() helpers encode simple strings,
//     errors, integers, bulk strings, nulls and arrays onto a growing
//     output string (the connection's write buffer).
//
// Both multibulk frames ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and inline
// commands ("PING\r\n", what you get from `nc`) are accepted. Malformed
// input — non-numeric or out-of-range lengths, negative bulk lengths,
// oversized frames — yields kError with a message the server sends as
// `-ERR Protocol error: ...` before closing the connection, mirroring
// Redis's behaviour; the parser itself never crashes on garbage bytes.

#ifndef TIERBASE_SERVER_RESP_H_
#define TIERBASE_SERVER_RESP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace tierbase {
namespace server {

/// Hard protocol bounds (Redis's own limits): a single bulk argument may
/// not exceed 512 MiB and a command may not carry more than 1M arguments.
constexpr int64_t kMaxBulkBytes = 512ll << 20;
constexpr int64_t kMaxArrayElements = 1 << 20;
/// Inline commands are capped far lower; nobody types 64 KiB into nc.
constexpr size_t kMaxInlineBytes = 64 << 10;

/// One parsed command: argv[0] is the (case-preserved) command name. The
/// Slices alias the parse buffer — see file comment for lifetime rules.
struct RespCommand {
  std::vector<Slice> args;
};

enum class ParseResult {
  kOk,          // At least zero complete commands parsed; buffer advanced.
  kNeedMore,    // Trailing partial frame; re-run after the next read().
  kError,       // Protocol violation; *error holds the human-readable why.
};

/// Decodes complete commands from buf[0..len). `*consumed` receives the
/// number of bytes holding fully parsed commands (the caller drops them or
/// transfers them with the batch); bytes past *consumed are a partial
/// frame to retry later. On kError, *consumed is untouched and the
/// connection should be torn down after sending `-ERR Protocol error: ...`.
ParseResult ParseRequests(const char* buf, size_t len,
                          std::vector<RespCommand>* out, size_t* consumed,
                          std::string* error);

// --- Reply serialization (RESP2 wire encoding onto `out`). ---

void AppendSimpleString(std::string* out, const Slice& s);
/// `msg` should already carry its error-class prefix ("ERR ...",
/// "WRONGTYPE ...").
void AppendError(std::string* out, const Slice& msg);
void AppendInteger(std::string* out, int64_t v);
void AppendBulk(std::string* out, const Slice& s);
/// RESP2 null bulk ("$-1\r\n") — the "no such key" reply.
void AppendNullBulk(std::string* out);
/// Array header only; the caller appends `n` elements after it.
void AppendArrayHeader(std::string* out, size_t n);

// --- Reply parsing (client side). ---

struct RespValue {
  enum class Type {
    kSimpleString,
    kError,
    kInteger,
    kBulkString,
    kNull,
    kArray,
  };
  Type type = Type::kNull;
  std::string str;     // Simple/error/bulk payload.
  int64_t integer = 0;
  std::vector<RespValue> elements;

  bool IsError() const { return type == Type::kError; }
  bool IsNull() const { return type == Type::kNull; }
};

/// Decodes one complete reply from buf[0..len) into *out and sets
/// *consumed to its encoded size. kNeedMore on a partial reply; kError on
/// malformed bytes (a broken or impostor server).
ParseResult ParseReply(const char* buf, size_t len, RespValue* out,
                       size_t* consumed, std::string* error);

/// Re-encodes a parsed reply onto the wire (the proxy relays replies from
/// data nodes to its own clients this way).
void AppendValue(std::string* out, const RespValue& v);

/// True when `arg` equals `upper_word` case-insensitively; `upper_word`
/// must already be uppercase (command/keyword matching).
bool EqualsUpper(const Slice& arg, const char* upper_word);

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_RESP_H_
