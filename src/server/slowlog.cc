#include "server/slowlog.h"

#include <algorithm>
#include <ctime>

namespace tierbase {
namespace server {

void SlowLog::set_capacity(size_t capacity) {
  common::MutexLock lock(&mu_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void SlowLog::Add(uint64_t duration_micros, std::vector<std::string> args) {
  Entry e;
  e.duration_micros = duration_micros;
  e.unix_seconds = static_cast<int64_t>(time(nullptr));
  e.args = std::move(args);
  common::MutexLock lock(&mu_);
  if (capacity_ == 0) return;
  e.id = next_id_++;
  ring_.push_back(std::move(e));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowLog::Entry> SlowLog::Get(size_t n) const {
  common::MutexLock lock(&mu_);
  std::vector<Entry> out;
  size_t take = std::min(n, ring_.size());
  out.reserve(take);
  for (auto it = ring_.rbegin(); take > 0; ++it, --take) out.push_back(*it);
  return out;
}

size_t SlowLog::Len() const {
  common::MutexLock lock(&mu_);
  return ring_.size();
}

void SlowLog::Reset() {
  common::MutexLock lock(&mu_);
  ring_.clear();
}

}  // namespace server
}  // namespace tierbase
