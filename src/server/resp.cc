#include "server/resp.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace tierbase {
namespace server {

namespace {

/// Finds "\r\n" starting at `pos`; returns the index of '\r' or npos.
size_t FindCrlf(const char* buf, size_t len, size_t pos) {
  while (pos + 1 < len) {
    if (buf[pos] == '\r' && buf[pos + 1] == '\n') return pos;
    ++pos;
  }
  return std::string::npos;
}

/// Parses the signed decimal between buf[pos, end). Strict: at least one
/// digit, no junk, magnitude bounded so `v * 10` can never overflow.
bool ParseInt(const char* buf, size_t pos, size_t end, int64_t* out) {
  if (pos >= end) return false;
  bool negative = false;
  if (buf[pos] == '-') {
    negative = true;
    ++pos;
    if (pos >= end) return false;
  }
  int64_t v = 0;
  for (; pos < end; ++pos) {
    char c = buf[pos];
    if (c < '0' || c > '9') return false;
    if (v > (int64_t{1} << 56)) return false;  // Way past any legal length.
    v = v * 10 + (c - '0');
  }
  *out = negative ? -v : v;
  return true;
}

/// Splits an inline command line on spaces/tabs. Redis also honours
/// quoting here; plain whitespace splitting covers every diagnostic use
/// (PING, INFO from nc) without the quote-state machine.
void SplitInline(const char* buf, size_t pos, size_t end, RespCommand* cmd) {
  while (pos < end) {
    while (pos < end && (buf[pos] == ' ' || buf[pos] == '\t')) ++pos;
    size_t start = pos;
    while (pos < end && buf[pos] != ' ' && buf[pos] != '\t') ++pos;
    if (pos > start) cmd->args.emplace_back(buf + start, pos - start);
  }
}

/// Parses one command starting at `*pos`. Advances *pos past the frame on
/// success. Returns kNeedMore without touching *pos on a partial frame.
ParseResult ParseOne(const char* buf, size_t len, size_t* pos,
                     RespCommand* cmd, std::string* error) {
  size_t p = *pos;
  if (p >= len) return ParseResult::kNeedMore;

  if (buf[p] != '*') {
    // Inline command: one line, terminated by \r\n (tolerate bare \n).
    size_t nl = std::string::npos;
    for (size_t i = p; i < len; ++i) {
      if (buf[i] == '\n') {
        nl = i;
        break;
      }
    }
    if (nl == std::string::npos) {
      if (len - p > kMaxInlineBytes) {
        *error = "too big inline request";
        return ParseResult::kError;
      }
      return ParseResult::kNeedMore;
    }
    size_t line_end = (nl > p && buf[nl - 1] == '\r') ? nl - 1 : nl;
    SplitInline(buf, p, line_end, cmd);
    *pos = nl + 1;
    return ParseResult::kOk;  // Blank line => zero args; caller skips it.
  }

  // Multibulk: *<argc>\r\n then argc of $<len>\r\n<bytes>\r\n.
  size_t crlf = FindCrlf(buf, len, p);
  if (crlf == std::string::npos) {
    if (len - p > 32) {  // "*<number>" should have ended long ago.
      *error = "invalid multibulk length";
      return ParseResult::kError;
    }
    return ParseResult::kNeedMore;
  }
  int64_t argc = 0;
  if (!ParseInt(buf, p + 1, crlf, &argc) || argc < 0 ||
      argc > kMaxArrayElements) {
    *error = "invalid multibulk length";
    return ParseResult::kError;
  }
  p = crlf + 2;

  cmd->args.reserve(static_cast<size_t>(argc));
  for (int64_t i = 0; i < argc; ++i) {
    if (p >= len) return ParseResult::kNeedMore;
    if (buf[p] != '$') {
      *error = std::string("expected '$', got '") +
               (buf[p] >= 0x20 && buf[p] < 0x7f ? std::string(1, buf[p])
                                                : std::string("?")) +
               "'";
      return ParseResult::kError;
    }
    crlf = FindCrlf(buf, len, p);
    if (crlf == std::string::npos) {
      if (len - p > 32) {
        *error = "invalid bulk length";
        return ParseResult::kError;
      }
      return ParseResult::kNeedMore;
    }
    int64_t blen = 0;
    if (!ParseInt(buf, p + 1, crlf, &blen) || blen < 0 ||
        blen > kMaxBulkBytes) {
      // Covers the torture cases: "$-5" and absurd sizes. A request bulk
      // may not be null, unlike a reply.
      *error = "invalid bulk length";
      return ParseResult::kError;
    }
    p = crlf + 2;
    if (len - p < static_cast<size_t>(blen) + 2) return ParseResult::kNeedMore;
    if (buf[p + blen] != '\r' || buf[p + blen + 1] != '\n') {
      *error = "bulk payload not CRLF-terminated";
      return ParseResult::kError;
    }
    cmd->args.emplace_back(buf + p, static_cast<size_t>(blen));
    p += static_cast<size_t>(blen) + 2;
  }
  *pos = p;
  return ParseResult::kOk;
}

}  // namespace

ParseResult ParseRequests(const char* buf, size_t len,
                          std::vector<RespCommand>* out, size_t* consumed,
                          std::string* error) {
  size_t pos = 0;
  while (pos < len) {
    RespCommand cmd;
    ParseResult r = ParseOne(buf, len, &pos, &cmd, error);
    if (r == ParseResult::kError) return r;
    if (r == ParseResult::kNeedMore) break;
    // Empty inline lines ("\r\n" keepalives) parse fine but carry nothing.
    if (!cmd.args.empty()) out->push_back(std::move(cmd));
  }
  *consumed = pos;
  return ParseResult::kOk;
}

void AppendSimpleString(std::string* out, const Slice& s) {
  out->push_back('+');
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendError(std::string* out, const Slice& msg) {
  out->push_back('-');
  out->append(msg.data(), msg.size());
  out->append("\r\n");
}

void AppendInteger(std::string* out, int64_t v) {
  char buf[32];
  int n = snprintf(buf, sizeof(buf), ":%lld\r\n", static_cast<long long>(v));
  out->append(buf, static_cast<size_t>(n));
}

void AppendBulk(std::string* out, const Slice& s) {
  char buf[32];
  int n = snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, static_cast<size_t>(n));
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendNullBulk(std::string* out) { out->append("$-1\r\n"); }

void AppendArrayHeader(std::string* out, size_t n) {
  char buf[32];
  int len = snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->append(buf, static_cast<size_t>(len));
}

namespace {

ParseResult ParseReplyAt(const char* buf, size_t len, size_t* pos,
                         RespValue* out, std::string* error, int depth) {
  if (depth > 8) {
    *error = "reply nesting too deep";
    return ParseResult::kError;
  }
  size_t p = *pos;
  if (p >= len) return ParseResult::kNeedMore;
  const char type = buf[p];
  size_t crlf = FindCrlf(buf, len, p);
  if (crlf == std::string::npos) return ParseResult::kNeedMore;

  switch (type) {
    case '+':
      out->type = RespValue::Type::kSimpleString;
      out->str.assign(buf + p + 1, crlf - p - 1);
      *pos = crlf + 2;
      return ParseResult::kOk;
    case '-':
      out->type = RespValue::Type::kError;
      out->str.assign(buf + p + 1, crlf - p - 1);
      *pos = crlf + 2;
      return ParseResult::kOk;
    case ':':
      out->type = RespValue::Type::kInteger;
      if (!ParseInt(buf, p + 1, crlf, &out->integer)) {
        *error = "bad integer reply";
        return ParseResult::kError;
      }
      *pos = crlf + 2;
      return ParseResult::kOk;
    case '$': {
      int64_t blen = 0;
      if (!ParseInt(buf, p + 1, crlf, &blen) || blen < -1 ||
          blen > kMaxBulkBytes) {
        *error = "bad bulk length in reply";
        return ParseResult::kError;
      }
      if (blen == -1) {
        out->type = RespValue::Type::kNull;
        *pos = crlf + 2;
        return ParseResult::kOk;
      }
      size_t body = crlf + 2;
      if (len - body < static_cast<size_t>(blen) + 2) {
        return ParseResult::kNeedMore;
      }
      if (buf[body + blen] != '\r' || buf[body + blen + 1] != '\n') {
        *error = "bulk reply not CRLF-terminated";
        return ParseResult::kError;
      }
      out->type = RespValue::Type::kBulkString;
      out->str.assign(buf + body, static_cast<size_t>(blen));
      *pos = body + static_cast<size_t>(blen) + 2;
      return ParseResult::kOk;
    }
    case '*': {
      int64_t n = 0;
      if (!ParseInt(buf, p + 1, crlf, &n) || n < -1 ||
          n > kMaxArrayElements) {
        *error = "bad array length in reply";
        return ParseResult::kError;
      }
      if (n == -1) {
        out->type = RespValue::Type::kNull;
        *pos = crlf + 2;
        return ParseResult::kOk;
      }
      out->type = RespValue::Type::kArray;
      out->elements.clear();
      out->elements.reserve(static_cast<size_t>(n));
      size_t q = crlf + 2;
      for (int64_t i = 0; i < n; ++i) {
        RespValue element;
        ParseResult r = ParseReplyAt(buf, len, &q, &element, error, depth + 1);
        if (r != ParseResult::kOk) return r;
        out->elements.push_back(std::move(element));
      }
      *pos = q;
      return ParseResult::kOk;
    }
    default:
      *error = "unexpected reply type byte";
      return ParseResult::kError;
  }
}

}  // namespace

ParseResult ParseReply(const char* buf, size_t len, RespValue* out,
                       size_t* consumed, std::string* error) {
  size_t pos = 0;
  ParseResult r = ParseReplyAt(buf, len, &pos, out, error, 0);
  if (r == ParseResult::kOk) *consumed = pos;
  return r;
}

bool EqualsUpper(const Slice& arg, const char* upper_word) {
  size_t n = strlen(upper_word);
  if (arg.size() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(arg[i])) != upper_word[i]) {
      return false;
    }
  }
  return true;
}

void AppendValue(std::string* out, const RespValue& v) {
  switch (v.type) {
    case RespValue::Type::kSimpleString:
      AppendSimpleString(out, v.str);
      break;
    case RespValue::Type::kError:
      AppendError(out, v.str);
      break;
    case RespValue::Type::kInteger:
      AppendInteger(out, v.integer);
      break;
    case RespValue::Type::kBulkString:
      AppendBulk(out, v.str);
      break;
    case RespValue::Type::kNull:
      AppendNullBulk(out);
      break;
    case RespValue::Type::kArray:
      AppendArrayHeader(out, v.elements.size());
      for (const RespValue& e : v.elements) AppendValue(out, e);
      break;
  }
}

}  // namespace server
}  // namespace tierbase
