// Command dispatch: maps RESP command names onto the TierBase engine API.
//
// A batch of pipelined commands is executed in one call. Runs of
// consecutive plain GETs (and plain two-argument SETs) inside a batch are
// coalesced into a single KvEngine::MultiGet / MultiSet, so a client that
// pipelines N reads pays for one cache lock round per shard instead of N —
// the same batch paths MGET/MSET and the batched YCSB runner use. Replies
// are emitted in command order regardless of coalescing.
//
// String commands go through TierBase (and therefore observe the caching
// policy: WAL logging, write-through acknowledgement, write-back dirty
// marking). Rich-type and TTL commands operate on the cache tier engine,
// which is where those types live in this reproduction.

#ifndef TIERBASE_SERVER_COMMAND_H_
#define TIERBASE_SERVER_COMMAND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tierbase.h"
#include "server/resp.h"

namespace tierbase {
namespace cluster_net {
class NodeClusterState;
}  // namespace cluster_net

namespace server {

class CommandTable {
 public:
  /// `db` is not owned and must outlive the table.
  explicit CommandTable(TierBase* db);

  /// Attaches cluster membership (not owned; must outlive the table).
  /// Enables the CLUSTER/REPLICAOF/REPLPULL/REPLSNAPSHOT/WAIT vocabulary,
  /// -MOVED checks against the installed routing snapshot, -READONLY
  /// rejection of writes while a replica, and oplog recording of applied
  /// string mutations. Call before the server starts dispatching.
  void set_cluster(cluster_net::NodeClusterState* cluster) {
    cluster_ = cluster;
  }

  /// Extra "# Server"-section lines for INFO (the Server object injects
  /// connection and executor gauges here). Called on the dispatch thread.
  using InfoExtra = std::function<void(std::string* out)>;
  void set_info_extra(InfoExtra extra) { info_extra_ = std::move(extra); }

  /// Lines for the INFO "# Robustness" section (overload-protection limits
  /// and counters owned by the event loop / Server).
  void set_info_robustness(InfoExtra extra) {
    info_robustness_ = std::move(extra);
  }

  /// Executes a pipelined batch, appending one reply per command to *out.
  /// Sets *close_connection for QUIT/SHUTDOWN (reply still sent first) and
  /// *shutdown_server for SHUTDOWN.
  void ExecuteBatch(const std::vector<RespCommand>& cmds, std::string* out,
                    bool* close_connection, bool* shutdown_server);

  // Dispatch statistics (INFO "# Stats").
  uint64_t commands() const { return commands_.load(); }
  uint64_t batches() const { return batches_.load(); }
  /// Commands served through a coalesced MultiGet/MultiSet run (pipelined
  /// GET/SET trains, ≥ 2 commands per run).
  uint64_t coalesced_commands() const { return coalesced_.load(); }
  uint64_t errors() const { return errors_.load(); }

 private:
  void ExecuteOne(const RespCommand& cmd, std::string* out,
                  bool* close_connection, bool* shutdown_server);

  // Individual command implementations (cmd.args already arity-checked
  // against the table entry).
  void Get(const RespCommand& cmd, std::string* out);
  void Set(const RespCommand& cmd, std::string* out);
  void Del(const RespCommand& cmd, std::string* out);
  void Exists(const RespCommand& cmd, std::string* out);
  void MGet(const RespCommand& cmd, std::string* out);
  void MSet(const RespCommand& cmd, std::string* out);
  void Expire(const RespCommand& cmd, std::string* out);
  void Ttl(const RespCommand& cmd, std::string* out);
  void Incr(const RespCommand& cmd, std::string* out);
  void HSet(const RespCommand& cmd, std::string* out);
  void HGet(const RespCommand& cmd, std::string* out);
  void LPush(const RespCommand& cmd, std::string* out);
  void LRange(const RespCommand& cmd, std::string* out);
  void ZAdd(const RespCommand& cmd, std::string* out);
  void ZRange(const RespCommand& cmd, std::string* out);
  void Info(const RespCommand& cmd, std::string* out);
  void Scan(const RespCommand& cmd, std::string* out);
  void DbSize(const RespCommand& cmd, std::string* out);
  void FlushAll(const RespCommand& cmd, std::string* out);
  void Cluster(const RespCommand& cmd, std::string* out);
  void ReplicaOf(const RespCommand& cmd, std::string* out);
  void ReplPull(const RespCommand& cmd, std::string* out);
  void ReplSnapshot(const RespCommand& cmd, std::string* out);
  void Wait(const RespCommand& cmd, std::string* out);

  /// Cluster gate shared by every keyed handler: emits -READONLY for
  /// writes on a replica and -MOVED for misrouted keys. Returns false when
  /// an error was emitted (the command must not execute).
  bool ClusterAdmits(const RespCommand& cmd, uint8_t flags, std::string* out);

  /// Executes cmds[begin..end) single GETs as one MultiGet.
  void CoalescedGets(const std::vector<RespCommand>& cmds, size_t begin,
                     size_t end, std::string* out);
  /// Executes cmds[begin..end) plain SETs as one MultiSet.
  void CoalescedSets(const std::vector<RespCommand>& cmds, size_t begin,
                     size_t end, std::string* out);

  TierBase* db_;
  cluster_net::NodeClusterState* cluster_ = nullptr;
  InfoExtra info_extra_;
  InfoExtra info_robustness_;

  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> errors_{0};
};

/// Appends a `-...` RESP error translated from a Status (WrongType maps to
/// -WRONGTYPE, Unavailable to -UNAVAILABLE, Busy to -BUSY, everything else
/// to -ERR <code>: <msg>).
void AppendStatusError(std::string* out, const Status& s);

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_COMMAND_H_
