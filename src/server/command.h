// Command dispatch: maps RESP command names onto the TierBase engine API.
//
// A batch of pipelined commands is executed in one call. Runs of
// consecutive plain GETs (and plain two-argument SETs) inside a batch are
// coalesced into a single KvEngine::MultiGet / MultiSet, so a client that
// pipelines N reads pays for one cache lock round per shard instead of N —
// the same batch paths MGET/MSET and the batched YCSB runner use. Replies
// are emitted in command order regardless of coalescing.
//
// String commands go through TierBase (and therefore observe the caching
// policy: WAL logging, write-through acknowledgement, write-back dirty
// marking). Rich-type and TTL commands operate on the cache tier engine,
// which is where those types live in this reproduction.
//
// Telemetry. The table owns this server's MetricsRegistry: every command
// family gets a LatencyHistogram (measured dispatch -> reply, including
// cluster admission), commands slower than the SLOWLOG threshold enter the
// slow log with value arguments redacted to key names, and INFO / METRICS
// render straight from the registry. PERF ON|OFF|GET drives the
// per-connection PerfContext (see common/perf_context.h); the state
// travels in via PerfState because the table is shared across executor
// threads and must stay stateless per request.

#ifndef TIERBASE_SERVER_COMMAND_H_
#define TIERBASE_SERVER_COMMAND_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/perf_context.h"
#include "core/tierbase.h"
#include "server/resp.h"
#include "server/slowlog.h"

namespace tierbase {
namespace cluster_net {
class NodeClusterState;
}  // namespace cluster_net

namespace server {

/// Per-connection perf-tracing state, owned by the dispatcher (the Server
/// keeps one per connection) and handed to ExecuteBatch. Plain fields:
/// only one batch per connection is in flight, and consecutive batches are
/// ordered through the executor queue.
struct PerfState {
  bool enabled = false;
  metrics::PerfContext ctx;
};

/// Batch timing measured upstream of execution (event loop + dispatch
/// queue), attributed to the parse / queue_wait perf stages.
struct BatchTiming {
  uint64_t parse_micros = 0;
  /// Clock::Real()->NowMicros() when the dispatcher submitted the batch.
  uint64_t dispatched_at_micros = 0;
};

class CommandTable {
 public:
  /// `db` is not owned and must outlive the table.
  explicit CommandTable(TierBase* db);

  /// Attaches cluster membership (not owned; must outlive the table).
  /// Enables the CLUSTER/REPLICAOF/REPLPULL/REPLSNAPSHOT/WAIT vocabulary,
  /// -MOVED checks against the installed routing snapshot, -READONLY
  /// rejection of writes while a replica, and oplog recording of applied
  /// string mutations. Call before the server starts dispatching.
  void set_cluster(cluster_net::NodeClusterState* cluster) {
    cluster_ = cluster;
  }

  /// Disables hot-path telemetry (per-command clocking, histogram
  /// recording, SLOWLOG). The registry still renders INFO/METRICS; the
  /// histograms just stay empty. (--no-telemetry)
  void set_telemetry_enabled(bool enabled) { telemetry_ = enabled; }
  bool telemetry_enabled() const { return telemetry_; }

  /// This server's instrument registry (INFO/METRICS source). The Server
  /// object registers its connection/executor/robustness instruments here.
  metrics::MetricsRegistry* registry() { return &registry_; }
  SlowLog* slowlog() { return &slowlog_; }

  /// Executes a pipelined batch, appending one reply per command to *out.
  /// Sets *close_connection for QUIT/SHUTDOWN (reply still sent first) and
  /// *shutdown_server for SHUTDOWN. `perf` (nullable) carries the
  /// connection's PERF state; `timing` (nullable) the upstream stage
  /// timings.
  void ExecuteBatch(const std::vector<RespCommand>& cmds, std::string* out,
                    bool* close_connection, bool* shutdown_server,
                    PerfState* perf = nullptr,
                    const BatchTiming* timing = nullptr);

  // Dispatch statistics (INFO "# Stats").
  uint64_t commands() const { return commands_->value(); }
  uint64_t batches() const { return batches_->value(); }
  /// Commands served through a coalesced MultiGet/MultiSet run (pipelined
  /// GET/SET trains, ≥ 2 commands per run).
  uint64_t coalesced_commands() const { return coalesced_->value(); }
  uint64_t errors() const { return errors_->value(); }

 private:
  struct Spec {
    const char* name;
    size_t min_argc;
    size_t max_argc;  // 0 = unbounded.
    void (CommandTable::*handler)(const RespCommand&, std::string*);
    uint8_t flags;
  };
  static const Spec kSpecs[];
  static const size_t kNumSpecs;

  /// Times one command, records its family histogram and the slow log,
  /// then delegates to ExecuteOneImpl.
  void ExecuteOne(const RespCommand& cmd, std::string* out,
                  bool* close_connection, bool* shutdown_server,
                  PerfState* perf);
  /// Dispatches without telemetry bookkeeping. Sets *spec_index to the
  /// kSpecs row used, or -1 for pre-table commands (PING/QUIT/...).
  void ExecuteOneImpl(const RespCommand& cmd, std::string* out,
                      bool* close_connection, bool* shutdown_server,
                      PerfState* perf, int* spec_index);

  // Individual command implementations (cmd.args already arity-checked
  // against the table entry).
  void Get(const RespCommand& cmd, std::string* out);
  void Set(const RespCommand& cmd, std::string* out);
  void Del(const RespCommand& cmd, std::string* out);
  void Exists(const RespCommand& cmd, std::string* out);
  void MGet(const RespCommand& cmd, std::string* out);
  void MSet(const RespCommand& cmd, std::string* out);
  void Expire(const RespCommand& cmd, std::string* out);
  void Ttl(const RespCommand& cmd, std::string* out);
  void Incr(const RespCommand& cmd, std::string* out);
  void HSet(const RespCommand& cmd, std::string* out);
  void HGet(const RespCommand& cmd, std::string* out);
  void LPush(const RespCommand& cmd, std::string* out);
  void LRange(const RespCommand& cmd, std::string* out);
  void ZAdd(const RespCommand& cmd, std::string* out);
  void ZRange(const RespCommand& cmd, std::string* out);
  void Info(const RespCommand& cmd, std::string* out);
  void Scan(const RespCommand& cmd, std::string* out);
  void DbSize(const RespCommand& cmd, std::string* out);
  void FlushAll(const RespCommand& cmd, std::string* out);
  void Cluster(const RespCommand& cmd, std::string* out);
  void ReplicaOf(const RespCommand& cmd, std::string* out);
  void ReplPull(const RespCommand& cmd, std::string* out);
  void ReplSnapshot(const RespCommand& cmd, std::string* out);
  void Wait(const RespCommand& cmd, std::string* out);
  void SlowLogCmd(const RespCommand& cmd, std::string* out);
  void Latency(const RespCommand& cmd, std::string* out);
  void Metrics(const RespCommand& cmd, std::string* out);
  void Analytics(const RespCommand& cmd, std::string* out);
  void HotKeys(const RespCommand& cmd, std::string* out);

  /// Registers the registry entries (sections, stats callbacks, and one
  /// latency histogram per command family). Called once from the ctor.
  void RegisterInstruments();

  /// Records one command family's latency sample: `micros` observed by
  /// `count` commands (a coalesced train shares the train's elapsed time).
  /// `spec_index` -1 = the pre-table/unknown family.
  void RecordLatency(int spec_index, uint64_t micros, uint64_t count);
  /// Logs a slow command with its arguments redacted to keys.
  void RecordSlow(const RespCommand& cmd, uint8_t flags, uint64_t micros);
  /// Logs a slow coalesced train as one redacted entry.
  void RecordSlowTrain(const std::vector<RespCommand>& cmds, size_t begin,
                       size_t end, uint64_t micros);

  /// Cluster gate shared by every keyed handler: emits -READONLY for
  /// writes on a replica and -MOVED for misrouted keys. Returns false when
  /// an error was emitted (the command must not execute).
  bool ClusterAdmits(const RespCommand& cmd, uint8_t flags, std::string* out);

  /// Executes cmds[begin..end) single GETs as one MultiGet.
  void CoalescedGets(const std::vector<RespCommand>& cmds, size_t begin,
                     size_t end, std::string* out);
  /// Executes cmds[begin..end) plain SETs as one MultiSet.
  void CoalescedSets(const std::vector<RespCommand>& cmds, size_t begin,
                     size_t end, std::string* out);

  TierBase* db_;
  cluster_net::NodeClusterState* cluster_ = nullptr;
  bool telemetry_ = true;

  metrics::MetricsRegistry registry_;
  SlowLog slowlog_;

  // Dispatch counters (registry-owned; "# Stats").
  metrics::Counter* commands_ = nullptr;
  metrics::Counter* batches_ = nullptr;
  metrics::Counter* coalesced_ = nullptr;
  metrics::Counter* errors_ = nullptr;

  // One histogram per kSpecs row, plus [kNumSpecs] for the pre-table /
  // unknown family ("cmd_other_latency_us").
  std::vector<metrics::LatencyHistogram*> cmd_hist_;
  int get_spec_index_ = -1;  // Rows used by the coalesced trains.
  int set_spec_index_ = -1;

  // One TierBase::Stats snapshot per registry render, taken by a
  // pre-render hook so the ~30 per-key callbacks don't each re-aggregate.
  // Conceptually GUARDED_BY(registry_.mu_): written and read only inside
  // registry renders, which the registry serializes.
  TierBase::Stats info_stats_;
};

/// Appends a `-...` RESP error translated from a Status (WrongType maps to
/// -WRONGTYPE, Unavailable to -UNAVAILABLE, Busy to -BUSY, everything else
/// to -ERR <code>: <msg>).
void AppendStatusError(std::string* out, const Status& s);

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_COMMAND_H_
