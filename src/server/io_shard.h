// IoShard: one reactor of the multi-reactor network core. Each shard is a
// self-contained event loop — epoll edge-triggered on Linux (poll(2)
// fallback elsewhere, or with EventLoopOptions::force_poll) — that OWNS a
// disjoint set of connections: their sockets, read buffers, reply queues
// and dispatch state live on the shard's thread and are never touched by
// another loop. The read → parse → dispatch → write path therefore takes
// no cross-loop lock; the only cross-thread seams are the per-connection
// completion slot (dispatcher threads finishing a batch), the pending-
// accept hand-off queue (the acceptor assigning a fresh socket), and the
// wakeup channel — eventfd on the Linux epoll backend, a self-pipe on the
// poll fallback.
//
// Scatter output. Replies are queued as per-batch chunks (the exact
// strings CompleteBatch delivered, moved, never concatenated) and flushed
// with one sendmsg(iovec[]) per syscall: a connection with several
// pipelined batches pending writes them all in a single scatter write
// instead of copying them into one flat buffer first.
//
// Pipelining model (unchanged from the single-loop core): the shard parses
// every complete RESP command sitting in a connection's read buffer and
// hands them to the dispatcher as ONE batch; while that batch is in flight
// the loop keeps reading but does not dispatch again for that connection,
// so commands arriving during execution coalesce into the next batch.

#ifndef TIERBASE_SERVER_IO_SHARD_H_
#define TIERBASE_SERVER_IO_SHARD_H_

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "server/resp.h"

namespace tierbase {
namespace server {

class EventLoop;
class IoShard;

/// How the acceptor spreads fresh connections over the loops.
enum class AcceptPolicy {
  kRoundRobin,        // Cheapest; even under uniform churn.
  kLeastConnections,  // Evens out long-lived-connection imbalance.
};

struct EventLoopOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog (--tcp-backlog).
  int backlog = 128;
  /// A connection whose unparsed input exceeds this is dropped (a client
  /// streaming an over-long frame or garbage without newlines).
  size_t max_read_buffer = 64u << 20;
  /// Each loop wakes at least this often to evaluate shutdown deadlines.
  int poll_interval_ms = 100;
  /// After Stop()/SHUTDOWN, pending replies get this long to flush.
  uint64_t drain_deadline_micros = 2'000'000;

  // --- Multi-reactor shape (README "Serving over the network"). ---
  /// Number of event-loop shards. 1 = the classic single-reactor server.
  /// Clamped to [1, 64].
  int io_threads = 1;
  /// With io_threads > 1, give every loop its own SO_REUSEPORT listener
  /// (the kernel distributes accepts) instead of accept-distribute from
  /// loop 0. Linux only; ignored elsewhere.
  bool so_reuseport = false;
  /// Accept-distribute policy (ignored under so_reuseport).
  AcceptPolicy accept_policy = AcceptPolicy::kRoundRobin;
  /// Use the portable poll(2) backend (self-pipe wakeup) even where epoll
  /// is available. The non-Linux build always runs this backend; the flag
  /// exists so Linux tests cover it too.
  bool force_poll = false;

  // --- Overload protection (see README "Fault tolerance"). ---
  /// 0 = unlimited. GLOBAL cap across all loops: accepts past this many
  /// live connections are answered with "-ERR max clients reached" and
  /// closed instead of admitted.
  size_t max_connections = 0;
  /// PER CONNECTION: one whose pending replies exceed this is
  /// disconnected (a slow consumer must not buffer the server's memory
  /// without bound). Accounted by the owning loop.
  size_t max_out_buffer = 64u << 20;
  /// 0 = unlimited. PER LOOP: while this many dispatch batches are in
  /// flight on a loop, newly parsed commands on that loop are shed with
  /// "-BUSY" instead of queueing behind them.
  size_t max_dispatch_inflight = 0;
};

/// One parsed pipeline batch. Owns the raw request bytes; the command
/// Slices alias `raw`, so the batch can travel to another thread without
/// copying any argument.
struct CommandBatch {
  /// Heap array, not std::string: the Slices in `cmds` point into it and
  /// the batch is moved several times on its way to the executor. An
  /// SSO-small string (e.g. a lone PING, 14 bytes) would relocate its
  /// bytes on every move and leave the Slices dangling into dead stack
  /// frames; a unique_ptr's pointee never moves.
  std::unique_ptr<char[]> raw;
  std::vector<RespCommand> cmds;
  /// Loop-thread time spent parsing/packaging this batch (PERF kParse).
  uint64_t parse_micros = 0;
};

/// Per-connection reply queue: an ordered list of owned chunks (one per
/// completed batch or loop-side error reply) flushed with a single
/// scatter write per syscall. Loop-thread only.
class OutQueue {
 public:
  /// Takes ownership of `chunk`; tiny chunks merge into the tail so error
  /// floods do not degenerate into thousands of 30-byte iovecs.
  void Append(std::string&& chunk);
  bool empty() const { return bytes_ == 0; }
  size_t bytes() const { return bytes_; }
  /// Fills up to `max` iovecs with the pending spans; returns the count.
  size_t FillIov(struct iovec* iov, size_t max) const;
  /// Drops the first `n` bytes (a successful partial/complete write).
  void Consume(size_t n);
  void Clear();

 private:
  std::deque<std::string> chunks_;
  size_t head_off_ = 0;  // Bytes of chunks_.front() already written.
  size_t bytes_ = 0;
};

/// Per-connection state. The OWNING shard's thread handles the socket and
/// the buffers; dispatcher threads interact only through CompleteBatch().
class Connection {
 public:
  Connection(IoShard* shard, int fd, uint64_t id);

  uint64_t id() const { return id_; }

  /// Opaque per-connection slot for the dispatcher (the Server parks the
  /// connection's PERF tracing state here). Only dispatcher tasks touch
  /// it, and those are serialized by the one-batch-in-flight rule.
  std::shared_ptr<void> dispatcher_state;

  /// Delivers the replies for the in-flight batch. Safe from any thread,
  /// including after the peer (or the whole loop) has gone away — the
  /// output is then discarded. `close_after` closes the connection once
  /// the replies are flushed; `shutdown_server` additionally stops EVERY
  /// loop (SHUTDOWN command).
  void CompleteBatch(std::string&& output, bool close_after,
                     bool shutdown_server);

 private:
  friend class IoShard;

  IoShard* const shard_;
  const int fd_;
  const uint64_t id_;

  // --- Owning-loop state (no lock: single-threaded by ownership). ---
  std::string in_buf;    // Unparsed request bytes.
  OutQueue out;          // Reply chunks awaiting the scatter write.
  bool busy = false;     // A dispatch batch is in flight.
  bool closing = false;  // Close once `out` drains.
  uint32_t armed_events = 0;  // epoll backend: interest mask registered.

  // --- Cross-thread completion slot. ---
  common::Mutex mu_;
  std::string done_output_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;
  bool done_close_ GUARDED_BY(mu_) = false;
  bool detached_ GUARDED_BY(mu_) = false;  // Loop dropped the connection
                                           // (peer died).
};

class IoShard {
 public:
  IoShard(int index, const EventLoopOptions& options, EventLoop* parent);
  ~IoShard();

  IoShard(const IoShard&) = delete;
  IoShard& operator=(const IoShard&) = delete;

  int index() const { return index_; }

  /// Creates the wakeup channel and (on the epoll backend) the epoll set.
  Status Open();
  /// Binds and listens on options.host:`port` (0 = ephemeral). With
  /// `reuseport`, sets SO_REUSEPORT before bind so sibling shards can
  /// share the port. After success listen_port() returns the bound port.
  Status OpenListener(uint16_t port, bool reuseport);
  uint16_t listen_port() const { return listen_port_; }
  bool has_listener() const { return listen_fd_ >= 0; }

  /// Runs until RequestStop() (then drains, bounded by the drain
  /// deadline). Call on the shard's dedicated thread.
  void Run();
  /// Requests a graceful stop; any thread. Idempotent.
  void RequestStop();
  /// Writes into the wakeup channel; any thread.
  void Notify();

  /// Hands a freshly accepted, already-admitted socket to this shard from
  /// another thread (the acceptor). The shard adopts it on its next cycle.
  void AdoptConnection(int fd);

  // Per-loop gauges (INFO "# Server" per-loop block, accept balance).
  uint64_t connections_assigned() const { return assigned_.load(); }
  uint64_t connections_active() const { return active_.load(); }
  uint64_t batches_dispatched() const { return batches_.load(); }
  uint64_t commands_dispatched() const { return commands_.load(); }
  uint64_t max_batch_commands() const { return max_batch_.load(); }
  uint64_t protocol_errors() const { return protocol_errors_.load(); }
  uint64_t connections_rejected() const { return rejected_.load(); }
  uint64_t slow_consumer_disconnects() const { return slow_consumer_.load(); }
  uint64_t busy_shed_commands() const { return busy_shed_.load(); }
  uint64_t dispatch_inflight() const { return inflight_.load(); }
  /// Times the loop was woken through the wakeup channel (eventfd on the
  /// epoll backend, self-pipe on the poll fallback).
  uint64_t wakeups() const { return wakeups_.load(); }
  /// "epoll" or "poll" — which backend this shard runs.
  const char* backend() const;

 private:
  friend class Connection;

  /// True when stop was requested and either nothing is pending or the
  /// drain deadline passed; also closes the listener on first sight.
  bool StoppingAndDrained();
  void AcceptNew();
  void DrainPendingAccepts();
  /// Registers an admitted socket with this loop.
  void AddConnection(int fd);
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Scatter-writes the connection's pending reply chunks (sendmsg over
  /// the queue's iovecs) until drained or the socket would block.
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Parses conn->in_buf and dispatches one batch if the connection is
  /// idle. Returns false if the connection was torn down.
  bool TryDispatch(const std::shared_ptr<Connection>& conn);
  /// Collects completed batches (from the completion slots) into reply
  /// queues and re-dispatches buffered pipeline input.
  void DrainCompletions();
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void DrainWakeupChannel();
  bool ConnAlive(int fd, const std::shared_ptr<Connection>& conn) const;

  void RunEpoll();
  void RunPoll();
  /// epoll backend: (re-)arms the connection's interest mask — always
  /// EPOLLIN|EPOLLET, plus EPOLLOUT while replies are pending. No-op on
  /// the poll backend (poll rebuilds its fd set every cycle).
  void UpdateInterest(const std::shared_ptr<Connection>& conn);

  const int index_;
  const EventLoopOptions& options_;  // Owned by the parent EventLoop.
  EventLoop* const parent_;
  const bool use_epoll_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // eventfd (epoll backend: same as write side).
  int wake_write_fd_ = -1;  // Self-pipe write end (poll backend).
  uint16_t listen_port_ = 0;
  uint64_t next_conn_id_ = 1;
  uint64_t stop_seen_at_ = 0;

  // Loop-thread-owned connection table: this shard's thread is the only
  // one that ever touches it (per-loop ownership).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Accept hand-off: the acceptor thread parks admitted sockets here.
  common::Mutex pending_mu_;
  std::vector<int> pending_accepts_ GUARDED_BY(pending_mu_);

  // Completion queue: connections whose batch finished (loop scans their
  // slots).
  common::Mutex completions_mu_;
  std::vector<std::weak_ptr<Connection>> completions_
      GUARDED_BY(completions_mu_);

  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> assigned_{0};  // Connections this loop was given.
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> rejected_{0};       // max_connections rejects here.
  std::atomic<uint64_t> slow_consumer_{0};  // Reply-queue cap disconnects.
  std::atomic<uint64_t> busy_shed_{0};      // Commands answered -BUSY.
  std::atomic<uint64_t> inflight_{0};       // Batches dispatched, not done.
  std::atomic<uint64_t> wakeups_{0};        // Wakeup-channel fires.
};

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_IO_SHARD_H_
