// The bundled RESP client: a small blocking client used by the tests, the
// tierbase_cli example, the loopback benchmarks, and the YCSB runner's
// --remote mode.
//
// Two layers:
//
//   * Client — socket + RESP framing. One synchronous Call(), or explicit
//     pipelining: Append() N requests, Flush() the wire, ReadReply() N
//     times. Pipelining is what makes the server's batch dispatch visible
//     from outside: N appended GETs arrive as one batch and reach the
//     engine as one MultiGet.
//   * RemoteEngine — a KvEngine adapter over a Client, so every existing
//     workload driver (YCSB load/run phases, traces) can be replayed
//     against a live server unchanged. Point ops map to GET/SET/DEL;
//     MultiGet/MultiSet map to MGET/MSET. Calls are serialized with an
//     internal mutex (one socket), so use one RemoteEngine per runner
//     thread when measuring parallel client throughput.

#ifndef TIERBASE_SERVER_CLIENT_H_
#define TIERBASE_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/kv_engine.h"
#include "common/mutex.h"
#include "common/transport.h"
#include "server/resp.h"

namespace tierbase {
namespace server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, 0);
  }
  /// With `timeout_micros` > 0 the connect is bounded (nonblocking +
  /// poll) and SO_RCVTIMEO/SO_SNDTIMEO cap every subsequent send/recv, so
  /// a hung peer turns into an IOError instead of blocking forever. The
  /// control plane uses this; data-path clients keep unbounded blocking
  /// I/O (a WAIT round trip may legitimately take seconds).
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t timeout_micros);
  void Close();
  bool connected() const { return conn_ != nullptr; }

  /// Dials through `transport` instead of the process-wide default. Must
  /// be set before Connect(); tests use this to scope injected network
  /// faults to one component. nullptr restores the global transport.
  void set_transport(common::Transport* transport) { transport_ = transport; }

  /// Encodes one command (array of bulks) into the send buffer.
  void Append(const std::vector<Slice>& args);
  /// Writes the send buffer to the socket (blocking until fully written).
  Status Flush();
  /// Blocking read of the next reply.
  Status ReadReply(RespValue* reply);

  /// Append + Flush + ReadReply — the synchronous convenience path.
  Status Call(const std::vector<Slice>& args, RespValue* reply);

 private:
  common::Transport* transport_ = nullptr;  // nullptr = GlobalTransport().
  std::unique_ptr<common::TransportConn> conn_;
  std::string send_buf_;
  std::string recv_buf_;
  size_t recv_pos_ = 0;  // Parsed-up-to offset within recv_buf_.
};

/// KvEngine view of a remote server (see file comment). Thread-safe via a
/// per-engine mutex.
class RemoteEngine : public KvEngine {
 public:
  static Result<std::unique_ptr<RemoteEngine>> Connect(
      const std::string& host, uint16_t port);

  std::string name() const override { return "remote:" + endpoint_; }

  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  void MultiGet(const std::vector<Slice>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  void MultiSet(const std::vector<Slice>& keys,
                const std::vector<Slice>& values,
                std::vector<Status>* statuses) override;
  /// Reports the remote cache footprint parsed from INFO
  /// (bytes_cached/keys_cached).
  UsageStats GetUsage() const override;
  /// PING round trip: all previously acknowledged commands are executed.
  Status WaitIdle() override;

  Client* client() { return &client_; }

 private:
  explicit RemoteEngine(std::string endpoint) : endpoint_(std::move(endpoint)) {}

  mutable common::Mutex mu_;
  // Serialized by mu_ on every KvEngine path. Not GUARDED_BY: the client()
  // escape hatch hands the raw connection to single-threaded callers (CLI,
  // tests) that bypass the engine interface entirely.
  mutable Client client_;
  std::string endpoint_;
};

/// Parses "host:port" (or ":port" / "port" with a 127.0.0.1 default).
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_CLIENT_H_
