// Server: the RESP front end for one TierBase instance. Wires together
//
//   EventLoop  — accepts connections, parses pipelined RESP batches
//   CommandTable — executes a batch against the engine
//   threading::ElasticExecutor — runs the dispatch, so the paper's thread
//       modes (§4.4) govern a real network server: kSingle is the classic
//       one-event-loop-one-worker Redis shape, kMulti a fixed pool, and
//       kElastic scales workers with the dispatch queue depth.
//
// The event loop never executes a command itself: each batch is submitted
// to the executor and the loop keeps serving other connections; replies
// come back through Connection::CompleteBatch. Per-connection ordering is
// preserved (one batch in flight per connection), cross-connection
// parallelism is the executor's thread count.

#ifndef TIERBASE_SERVER_SERVER_H_
#define TIERBASE_SERVER_SERVER_H_

#include <memory>
#include <string>
#include <thread>

#include "core/tierbase.h"
#include "server/command.h"
#include "server/event_loop.h"
#include "threading/elastic_executor.h"

namespace tierbase {
namespace server {

struct ServerOptions {
  EventLoopOptions net;
  threading::ElasticOptions executor;  // Defaults to kElastic, 4 threads.
};

class Server {
 public:
  /// `db` is not owned and must outlive the server.
  Server(TierBase* db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event-loop thread. After success the
  /// server is reachable on host():port().
  Status Start();

  /// Graceful stop: drains in-flight batches and pending replies, joins
  /// the loop thread, shuts the executor down. Idempotent; also invoked by
  /// the SHUTDOWN command and the destructor.
  void Stop();

  /// Blocks until the event loop exits (SHUTDOWN command or Stop()).
  void Wait();

  const std::string& host() const { return options_.net.host; }
  uint16_t port() const { return loop_ != nullptr ? loop_->port() : 0; }
  bool running() const { return running_; }

  EventLoop* loop() { return loop_.get(); }
  CommandTable* commands() { return &table_; }
  threading::ElasticExecutor* executor() { return executor_.get(); }

 private:
  void Dispatch(std::shared_ptr<Connection> conn, CommandBatch batch);

  TierBase* db_;
  ServerOptions options_;
  CommandTable table_;
  std::unique_ptr<threading::ElasticExecutor> executor_;
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  bool running_ = false;
};

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_SERVER_H_
