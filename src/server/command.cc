#include "server/command.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cluster_net/node_state.h"
#include "common/clock.h"
#include "common/mutex.h"

namespace tierbase {
namespace server {

namespace {

// Cluster admission flags per table entry: which arguments are keys (for
// -MOVED ownership checks) and whether the command mutates (for -READONLY
// on replicas). Doubles as the SLOWLOG redaction map: key positions are
// kept, value positions dropped.
constexpr uint8_t kFlagKey = 1;        // args[1] is a key.
constexpr uint8_t kFlagKeysAll = 2;    // args[1..] are keys.
constexpr uint8_t kFlagKeysPairs = 4;  // args[1,3,5..] are keys (MSET).
constexpr uint8_t kFlagWrite = 8;

// SLOWLOG entries keep at most this many keys per command (Redis caps
// logged args the same way).
constexpr size_t kSlowlogMaxKeys = 8;

/// Uppercases a command name into `buf`; false if it can't be a command
/// (too long for any table entry).
bool UpperName(const Slice& name, char* buf, size_t cap) {
  if (name.size() >= cap) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    buf[i] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(name[i])));
  }
  buf[name.size()] = '\0';
  return true;
}

std::string LowerName(const char* name) {
  std::string out;
  for (const char* c = name; *c != '\0'; ++c) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*c))));
  }
  return out;
}

void AppendWrongArity(std::string* out, const char* upper_name) {
  std::string msg = "ERR wrong number of arguments for '";
  msg += LowerName(upper_name);
  msg += "' command";
  AppendError(out, msg);
}

/// Strict signed-integer parse of a RESP argument.
bool ParseArgInt(const Slice& arg, int64_t* out) {
  if (arg.empty() || arg.size() > 20) return false;
  char buf[24];
  memcpy(buf, arg.data(), arg.size());
  buf[arg.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + arg.size()) return false;
  *out = v;
  return true;
}

bool ParseArgDouble(const Slice& arg, double* out) {
  if (arg.empty() || arg.size() > 63) return false;
  char buf[64];
  memcpy(buf, arg.data(), arg.size());
  buf[arg.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = strtod(buf, &end);
  if (errno != 0 || end != buf + arg.size()) return false;
  *out = v;
  return true;
}

/// Redis-style score formatting: integral scores print without a decimal
/// point, everything else with %.17g round-trip precision.
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

constexpr const char* kOk = "OK";
constexpr uint64_t kMicrosPerSecond = 1'000'000;

uint64_t NowMicros() { return Clock::Real()->NowMicros(); }

}  // namespace

void AppendStatusError(std::string* out, const Status& s) {
  if (s.IsInvalidArgument() &&
      s.message().find("wrong value type") != std::string::npos) {
    AppendError(out,
                "WRONGTYPE Operation against a key holding the wrong kind "
                "of value");
    return;
  }
  // Robustness contract (mirrored by the proxy): Unavailable and Busy keep
  // their own error classes on the wire so clients can tell "retry
  // elsewhere/later" from a hard error.
  if (s.IsUnavailable()) {
    AppendError(out, "UNAVAILABLE " + s.message());
    return;
  }
  if (s.IsBusy()) {
    AppendError(out, "BUSY " + s.message());
    return;
  }
  AppendError(out, "ERR " + s.ToString());
}

// Dispatch table. Arity rules: {min, max} inclusive argument counts
// (command name included); parity constraints checked in the handlers.
const CommandTable::Spec CommandTable::kSpecs[] = {
    {"GET", 2, 2, &CommandTable::Get, kFlagKey},
    {"SET", 3, 5, &CommandTable::Set, kFlagKey | kFlagWrite},
    {"DEL", 2, 0, &CommandTable::Del, kFlagKeysAll | kFlagWrite},
    {"EXISTS", 2, 0, &CommandTable::Exists, kFlagKeysAll},
    {"MGET", 2, 0, &CommandTable::MGet, kFlagKeysAll},
    {"MSET", 3, 0, &CommandTable::MSet, kFlagKeysPairs | kFlagWrite},
    {"EXPIRE", 3, 3, &CommandTable::Expire, kFlagKey | kFlagWrite},
    {"TTL", 2, 2, &CommandTable::Ttl, kFlagKey},
    {"INCR", 2, 2, &CommandTable::Incr, kFlagKey | kFlagWrite},
    {"HSET", 4, 0, &CommandTable::HSet, kFlagKey | kFlagWrite},
    {"HGET", 3, 3, &CommandTable::HGet, kFlagKey},
    {"LPUSH", 3, 0, &CommandTable::LPush, kFlagKey | kFlagWrite},
    {"LRANGE", 4, 4, &CommandTable::LRange, kFlagKey},
    {"ZADD", 4, 0, &CommandTable::ZAdd, kFlagKey | kFlagWrite},
    {"ZRANGE", 4, 5, &CommandTable::ZRange, kFlagKey},
    {"INFO", 1, 2, &CommandTable::Info, 0},
    {"SCAN", 2, 4, &CommandTable::Scan, 0},
    {"DBSIZE", 1, 1, &CommandTable::DbSize, 0},
    {"FLUSHALL", 1, 1, &CommandTable::FlushAll, kFlagWrite},
    {"CLUSTER", 2, 3, &CommandTable::Cluster, 0},
    {"REPLICAOF", 3, 3, &CommandTable::ReplicaOf, 0},
    {"REPLPULL", 4, 4, &CommandTable::ReplPull, 0},
    {"REPLSNAPSHOT", 3, 3, &CommandTable::ReplSnapshot, 0},
    {"WAIT", 3, 3, &CommandTable::Wait, 0},
    {"SLOWLOG", 2, 3, &CommandTable::SlowLogCmd, 0},
    {"LATENCY", 2, 3, &CommandTable::Latency, 0},
    {"METRICS", 1, 1, &CommandTable::Metrics, 0},
    {"ANALYTICS", 2, 3, &CommandTable::Analytics, 0},
    {"HOTKEYS", 1, 2, &CommandTable::HotKeys, 0},
};
const size_t CommandTable::kNumSpecs =
    sizeof(CommandTable::kSpecs) / sizeof(CommandTable::kSpecs[0]);

CommandTable::CommandTable(TierBase* db) : db_(db) { RegisterInstruments(); }

void CommandTable::RegisterInstruments() {
  // Section registration order fixes the INFO section order.
  registry_.AddText("Server", "engine", [this] { return db_->name(); });
  registry_.AddText("Server", "telemetry",
                    [this] { return telemetry_ ? "on" : "off"; });

  // Cluster membership attaches after construction (set_cluster), and its
  // key set is dynamic (role-dependent), so the whole section is a block.
  registry_.AddBlock("Cluster", [this](std::string* out) {
    char line[96];
    if (cluster_ != nullptr) {
      cluster_->AppendInfo(out);
      return;
    }
    out->append("cluster_enabled:0\r\n");
    if (db_->replicator() != nullptr) {
      snprintf(line, sizeof(line), "inprocess_replica_lag:%zu\r\n",
               db_->replicator()->lag());
      out->append(line);
      snprintf(line, sizeof(line), "inprocess_replica_applied:%" PRIu64 "\r\n",
               db_->replicator()->applied_ops());
      out->append(line);
    }
  });

  // One aggregated engine snapshot per render; the per-key callbacks below
  // read fields out of it instead of re-locking every cache shard each.
  registry_.AddPreRender([this] { info_stats_ = db_->GetStats(); });
  auto stat = [this](const char* section, const char* key, const char* help,
                     std::function<uint64_t()> fn,
                     metrics::MetricType type = metrics::MetricType::kCounter) {
    registry_.AddCallback(section, key, help, type, std::move(fn));
  };

  commands_ = registry_.AddCounter("Stats", "total_commands_processed",
                                   "Commands executed");
  batches_ = registry_.AddCounter("Stats", "dispatch_batches",
                                  "Pipelined batches executed");
  coalesced_ = registry_.AddCounter(
      "Stats", "coalesced_commands",
      "Commands served through coalesced MultiGet/MultiSet trains");
  errors_ = registry_.AddCounter("Stats", "command_errors",
                                 "Commands answered with an error reply");
  stat("Stats", "gets", "Engine point reads",
       [this] { return info_stats_.gets; });
  stat("Stats", "sets", "Engine point writes",
       [this] { return info_stats_.sets; });
  stat("Stats", "keyspace_hits", "Cache-tier read hits",
       [this] { return info_stats_.cache_hits; });
  stat("Stats", "keyspace_misses", "Cache-tier read misses",
       [this] { return info_stats_.cache_misses; });
  stat("Stats", "evicted_keys", "Keys evicted by the cache budget",
       [this] { return info_stats_.evictions; });
  stat("Stats", "expired_keys", "Keys removed by TTL expiry",
       [this] { return info_stats_.expirations; });
  stat("Stats", "lru_touches", "LRU promotions on hit",
       [this] { return info_stats_.lru_touches; });
  stat("Stats", "multi_shard_locks", "Multi-op shard lock rounds",
       [this] { return info_stats_.multi_shard_locks; });
  stat("Stats", "multi_batches", "MultiGet/MultiSet engine batches",
       [this] { return info_stats_.multi_batches; });
  stat("Stats", "storage_populates", "Cache fills from the storage tier",
       [this] { return info_stats_.storage_populates; });
  stat("Stats", "write_back_flushed_ops",
       "Dirty entries flushed to storage",
       [this] { return info_stats_.write_back.flushed_ops; });
  stat("Stats", "write_back_flush_batches", "Write-back flush batches",
       [this] { return info_stats_.write_back.flush_batches; });
  stat("Stats", "write_through_storage_writes",
       "Synchronous storage-tier writes",
       [this] { return info_stats_.write_through.storage_writes; });
  stat("Stats", "deferred_fetches", "Deferred storage fetches",
       [this] { return info_stats_.deferred_fetch.fetches; });

  // # Commandstats: one latency histogram per command family, recorded
  // dispatch -> reply. [kNumSpecs] catches pre-table commands (PING,
  // QUIT, SHUTDOWN, COMMAND, PERF) and unknown names.
  cmd_hist_.resize(kNumSpecs + 1);
  for (size_t i = 0; i < kNumSpecs; ++i) {
    std::string lower = LowerName(kSpecs[i].name);
    cmd_hist_[i] = registry_.AddHistogram(
        "Commandstats", "cmd_" + lower + "_latency_us",
        std::string(kSpecs[i].name) +
            " latency, dispatch to reply, microseconds");
    if (strcmp(kSpecs[i].name, "GET") == 0) {
      get_spec_index_ = static_cast<int>(i);
    } else if (strcmp(kSpecs[i].name, "SET") == 0) {
      set_spec_index_ = static_cast<int>(i);
    }
  }
  cmd_hist_[kNumSpecs] = registry_.AddHistogram(
      "Commandstats", "cmd_other_latency_us",
      "Latency of pre-table and unknown commands, microseconds");

  registry_.AddText("Persistence", "policy", [this] { return db_->name(); });
  stat("Persistence", "wb_dirty", "Dirty write-back entries pending flush",
       [this] { return info_stats_.write_back_dirty; },
       metrics::MetricType::kGauge);
  stat("Persistence", "wb_flush_batches", "Write-back flush batches",
       [this] { return info_stats_.write_back.flush_batches; });
  stat("Persistence", "wb_flushed_ops", "Dirty entries flushed",
       [this] { return info_stats_.write_back.flushed_ops; });
  stat("Persistence", "wb_flush_failures", "Write-back flush failures",
       [this] { return info_stats_.write_back.flush_failures; });
  stat("Persistence", "wb_flush_retries", "Write-back flush retries",
       [this] { return info_stats_.write_back.flush_retries; });
  stat("Persistence", "wb_backpressure_waits",
       "Writes stalled on the dirty-set cap",
       [this] { return info_stats_.write_back.backpressure_waits; });
  registry_.AddText("Persistence", "wb_flush_error", [this] {
    return info_stats_.flush_error.empty() ? std::string("ok")
                                           : info_stats_.flush_error;
  });
  stat("Persistence", "wal_replayed_records", "Cache WAL records replayed",
       [this] { return info_stats_.wal_replayed_records; });
  stat("Persistence", "wal_truncated_tails", "Cache WAL tails truncated",
       [this] { return info_stats_.wal_truncated_tails; });
  stat("Persistence", "wal_skipped_bytes", "Cache WAL bytes skipped",
       [this] { return info_stats_.wal_skipped_bytes; });
  stat("Persistence", "storage_wal_replayed_records",
       "Storage WAL records replayed",
       [this] { return info_stats_.storage_wal.records_replayed; });
  stat("Persistence", "storage_wal_truncated_tails",
       "Storage WAL tails truncated",
       [this] { return info_stats_.storage_wal.truncated_tails; });
  stat("Persistence", "storage_wal_skipped_bytes",
       "Storage WAL bytes skipped",
       [this] { return info_stats_.storage_wal.skipped_bytes; });

  stat("Memory", "bytes_cached", "Bytes resident in the cache tier",
       [this] { return info_stats_.bytes_cached; },
       metrics::MetricType::kGauge);
  stat("Memory", "pmem_bytes", "Bytes resident in the pmem tier",
       [this] { return info_stats_.pmem_bytes; },
       metrics::MetricType::kGauge);

  stat("Keyspace", "keys_cached", "Keys resident in the cache tier",
       [this] { return info_stats_.keys_cached; },
       metrics::MetricType::kGauge);
  stat("Keyspace", "slowlog_len", "Entries currently in the slow log",
       [this] { return static_cast<uint64_t>(slowlog_.Len()); },
       metrics::MetricType::kGauge);

  // # Workload: the observatory's live view of the traffic itself (miss-
  // ratio curve, hot keys, keyspace shape), fed by the TierBase-owned
  // WorkloadAnalytics. Shared registration with the proxy.
  analytics::RegisterWorkloadInstruments(&registry_, db_->analytics());
}

void CommandTable::ExecuteBatch(const std::vector<RespCommand>& cmds,
                                std::string* out, bool* close_connection,
                                bool* shutdown_server, PerfState* perf,
                                const BatchTiming* timing) {
  batches_->Inc();
  commands_->Inc(cmds.size());

  // PERF tracing: install the connection's context for this batch. The
  // enabled flag is sampled once — PERF ON inside the batch takes effect
  // from the next batch on.
  metrics::PerfContext* pctx =
      (perf != nullptr && perf->enabled) ? &perf->ctx : nullptr;
  uint64_t exec_start = 0;
  uint64_t upstream_micros = 0;  // parse + queue wait, part of wall time.
  if (pctx != nullptr) {
    exec_start = NowMicros();
    if (timing != nullptr) {
      pctx->AddStage(metrics::PerfContext::kParse, timing->parse_micros);
      upstream_micros = timing->parse_micros;
      if (timing->dispatched_at_micros != 0 &&
          exec_start > timing->dispatched_at_micros) {
        const uint64_t queue_wait = exec_start - timing->dispatched_at_micros;
        pctx->AddStage(metrics::PerfContext::kQueueWait, queue_wait);
        upstream_micros += queue_wait;
      }
    }
  }
  metrics::ScopedPerfContext perf_scope(pctx);

  // Coalesced batches must be uniformly admissible in cluster mode: every
  // key owned here and (for SETs) not a read-only replica. A train with
  // any inadmissible command falls back to per-command dispatch so each
  // gets its own -MOVED / -READONLY reply.
  auto batch_admissible = [&](size_t begin, size_t end, bool write) {
    if (cluster_ == nullptr) return true;
    if (write && cluster_->is_replica()) return false;
    // One routing-snapshot fetch for the whole train, then lock-free
    // per-key checks.
    cluster_net::NodeClusterState::RouteChecker checker =
        cluster_->route_checker();
    for (size_t k = begin; k < end; ++k) {
      if (checker.Misrouted(cmds[k].args[1])) return false;
    }
    return true;
  };

  char name[16];
  size_t i = 0;
  while (i < cmds.size()) {
    // Coalesce trains of plain single-key GETs / two-argument SETs that a
    // pipelining client queued back-to-back into one batched engine call.
    if (cmds[i].args.size() == 2 && UpperName(cmds[i].args[0], name, 16) &&
        strcmp(name, "GET") == 0) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 2 &&
             UpperName(cmds[j].args[0], name, 16) &&
             strcmp(name, "GET") == 0) {
        ++j;
      }
      if (j - i >= 2 && batch_admissible(i, j, /*write=*/false)) {
        const uint64_t t0 = telemetry_ ? NowMicros() : 0;
        CoalescedGets(cmds, i, j, out);
        if (telemetry_) {
          const uint64_t elapsed = NowMicros() - t0;
          RecordLatency(get_spec_index_, elapsed, j - i);
          if (slowlog_.ShouldLog(elapsed)) {
            RecordSlowTrain(cmds, i, j, elapsed);
          }
        }
        coalesced_->Inc(j - i);
        i = j;
        continue;
      }
    } else if (cmds[i].args.size() == 3 &&
               UpperName(cmds[i].args[0], name, 16) &&
               strcmp(name, "SET") == 0) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 3 &&
             UpperName(cmds[j].args[0], name, 16) &&
             strcmp(name, "SET") == 0) {
        ++j;
      }
      if (j - i >= 2 && batch_admissible(i, j, /*write=*/true)) {
        const uint64_t t0 = telemetry_ ? NowMicros() : 0;
        CoalescedSets(cmds, i, j, out);
        if (telemetry_) {
          const uint64_t elapsed = NowMicros() - t0;
          RecordLatency(set_spec_index_, elapsed, j - i);
          if (slowlog_.ShouldLog(elapsed)) {
            RecordSlowTrain(cmds, i, j, elapsed);
          }
        }
        coalesced_->Inc(j - i);
        i = j;
        continue;
      }
    }
    ExecuteOne(cmds[i], out, close_connection, shutdown_server, perf);
    ++i;
  }

  if (pctx != nullptr) {
    pctx->AddBatch(NowMicros() - exec_start + upstream_micros, cmds.size());
  }
}

void CommandTable::RecordLatency(int spec_index, uint64_t micros,
                                 uint64_t count) {
  const size_t idx =
      spec_index >= 0 ? static_cast<size_t>(spec_index) : kNumSpecs;
  cmd_hist_[idx]->Record(micros, count);
}

void CommandTable::RecordSlow(const RespCommand& cmd, uint8_t flags,
                              uint64_t micros) {
  std::vector<std::string> args;
  args.push_back(cmd.args[0].ToString());
  size_t total_keys = 0;
  auto push_key = [&](const Slice& key) {
    ++total_keys;
    if (args.size() <= kSlowlogMaxKeys) args.push_back(key.ToString());
  };
  if ((flags & kFlagKey) && cmd.args.size() > 1) push_key(cmd.args[1]);
  if (flags & kFlagKeysAll) {
    for (size_t i = 1; i < cmd.args.size(); ++i) push_key(cmd.args[i]);
  }
  if (flags & kFlagKeysPairs) {
    for (size_t i = 1; i < cmd.args.size(); i += 2) push_key(cmd.args[i]);
  }
  if (total_keys > kSlowlogMaxKeys) {
    args.push_back("... (" + std::to_string(total_keys - kSlowlogMaxKeys) +
                   " more keys)");
  }
  slowlog_.Add(micros, std::move(args));
}

void CommandTable::RecordSlowTrain(const std::vector<RespCommand>& cmds,
                                   size_t begin, size_t end,
                                   uint64_t micros) {
  std::vector<std::string> args;
  args.push_back(cmds[begin].args[0].ToString());
  const size_t keys = end - begin;
  for (size_t k = begin; k < end && k - begin < kSlowlogMaxKeys; ++k) {
    args.push_back(cmds[k].args[1].ToString());
  }
  if (keys > kSlowlogMaxKeys) {
    args.push_back("... (" + std::to_string(keys - kSlowlogMaxKeys) +
                   " more keys)");
  }
  slowlog_.Add(micros, std::move(args));
}

bool CommandTable::ClusterAdmits(const RespCommand& cmd, uint8_t flags,
                                 std::string* out) {
  if (cluster_ == nullptr || flags == 0) return true;
  if ((flags & kFlagWrite) && cluster_->is_replica()) {
    AppendError(out,
                "READONLY You can't write against a read only replica.");
    return false;
  }
  // One snapshot fetch per command; CheckMoved (second fetch) only runs on
  // the rare misrouted path to format the -MOVED payload.
  cluster_net::NodeClusterState::RouteChecker checker =
      cluster_->route_checker();
  std::string moved;
  auto admit = [&](const Slice& key) {
    if (!checker.Misrouted(key)) return true;
    if (!cluster_->CheckMoved(key, &moved)) {
      moved = "MOVED 0 stale-route ?:0";  // Routing changed mid-check.
    }
    AppendError(out, moved);
    return false;
  };
  if ((flags & kFlagKey) && cmd.args.size() > 1) {
    if (!admit(cmd.args[1])) return false;
  }
  if (flags & kFlagKeysAll) {
    for (size_t i = 1; i < cmd.args.size(); ++i) {
      if (!admit(cmd.args[i])) return false;
    }
  }
  if (flags & kFlagKeysPairs) {
    for (size_t i = 1; i < cmd.args.size(); i += 2) {
      if (!admit(cmd.args[i])) return false;
    }
  }
  return true;
}

void CommandTable::CoalescedGets(const std::vector<RespCommand>& cmds,
                                 size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys;
  keys.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) keys.push_back(cmds[i].args[1]);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet(keys, &values, &statuses);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (statuses[i].ok()) {
      AppendBulk(out, values[i]);
    } else if (statuses[i].IsNotFound()) {
      AppendNullBulk(out);
    } else {
      AppendStatusError(out, statuses[i]);
      errors_->Inc();
    }
  }
}

void CommandTable::CoalescedSets(const std::vector<RespCommand>& cmds,
                                 size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys, values;
  keys.reserve(end - begin);
  values.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    keys.push_back(cmds[i].args[1]);
    values.push_back(cmds[i].args[2]);
  }
  std::vector<Status> statuses;
  {
    // Apply + oplog-append atomically so replicas see writes in apply
    // order (see NodeClusterState::write_order_mu).
    common::OptionalMutexLock order_lock(
      cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
    db_->MultiSet(keys, values, &statuses);
    if (cluster_ != nullptr) {
      metrics::ScopedPerfStage oplog_stage(
          metrics::PerfContext::kOplogAppend);
      for (size_t i = 0; i < statuses.size(); ++i) {
        if (statuses[i].ok()) cluster_->RecordSet(keys[i], values[i], 0);
      }
    }
  }
  for (const Status& s : statuses) {
    if (s.ok()) {
      AppendSimpleString(out, kOk);
    } else {
      AppendStatusError(out, s);
      errors_->Inc();
    }
  }
}

void CommandTable::ExecuteOne(const RespCommand& cmd, std::string* out,
                              bool* close_connection, bool* shutdown_server,
                              PerfState* perf) {
  int spec_index = -1;
  if (!telemetry_) {
    ExecuteOneImpl(cmd, out, close_connection, shutdown_server, perf,
                   &spec_index);
    return;
  }
  const uint64_t t0 = NowMicros();
  ExecuteOneImpl(cmd, out, close_connection, shutdown_server, perf,
                 &spec_index);
  const uint64_t elapsed = NowMicros() - t0;
  RecordLatency(spec_index, elapsed, 1);
  if (slowlog_.ShouldLog(elapsed) && !cmd.args.empty()) {
    RecordSlow(cmd, spec_index >= 0 ? kSpecs[spec_index].flags : 0, elapsed);
  }
}

void CommandTable::ExecuteOneImpl(const RespCommand& cmd, std::string* out,
                                  bool* close_connection,
                                  bool* shutdown_server, PerfState* perf,
                                  int* spec_index) {
  *spec_index = -1;
  char name[16];
  if (cmd.args.empty() || !UpperName(cmd.args[0], name, 16)) {
    AppendError(out, "ERR unknown command");
    errors_->Inc();
    return;
  }
  const size_t argc = cmd.args.size();
  const size_t before_errors = out->size();

  if (strcmp(name, "PING") == 0) {
    if (argc == 1) {
      AppendSimpleString(out, "PONG");
    } else if (argc == 2) {
      AppendBulk(out, cmd.args[1]);
    } else {
      AppendWrongArity(out, name);
    }
    return;
  }
  if (strcmp(name, "QUIT") == 0) {
    AppendSimpleString(out, kOk);
    *close_connection = true;
    return;
  }
  if (strcmp(name, "SHUTDOWN") == 0) {
    bool nosave = false;
    if (argc == 2 && EqualsUpper(cmd.args[1], "NOSAVE")) {
      nosave = true;
    } else if (argc != 1) {
      AppendWrongArity(out, name);
      return;
    }
    // A polite shutdown must not lose acknowledged dirty entries: drain
    // the write-back tier (and sync the WAL / wait out storage) before
    // acking. On drain failure refuse to stop — data would be lost;
    // SHUTDOWN NOSAVE forces the exit.
    if (!nosave) {
      Status drain = db_->WaitIdle();
      if (!drain.ok()) {
        AppendError(out, "ERR shutdown aborted, flush failed (" +
                             drain.ToString() + "); SHUTDOWN NOSAVE forces");
        errors_->Inc();
        return;
      }
    }
    // Reply before stopping so a synchronous client sees the ack; the
    // event loop flushes pending output during teardown.
    AppendSimpleString(out, kOk);
    *close_connection = true;
    *shutdown_server = true;
    return;
  }
  if (strcmp(name, "COMMAND") == 0) {
    // Stub so redis-cli's startup probe doesn't error out.
    AppendArrayHeader(out, 0);
    return;
  }
  if (strcmp(name, "PERF") == 0) {
    // Handled before the table: PERF mutates the connection's own tracing
    // state, which only the batch path carries.
    if (argc != 2) {
      AppendWrongArity(out, name);
      errors_->Inc();
      return;
    }
    if (perf == nullptr) {
      AppendError(out, "ERR PERF requires a client connection");
      errors_->Inc();
      return;
    }
    if (EqualsUpper(cmd.args[1], "ON")) {
      perf->ctx.Reset();
      perf->enabled = true;
      AppendSimpleString(out, kOk);
    } else if (EqualsUpper(cmd.args[1], "OFF")) {
      perf->enabled = false;
      AppendSimpleString(out, kOk);
    } else if (EqualsUpper(cmd.args[1], "GET")) {
      std::string report;
      perf->ctx.AppendReport(&report);
      AppendBulk(out, report);
    } else {
      AppendError(out, "ERR unknown PERF subcommand, try ON|OFF|GET");
      errors_->Inc();
    }
    return;
  }

  for (size_t si = 0; si < kNumSpecs; ++si) {
    const Spec& entry = kSpecs[si];
    if (strcmp(name, entry.name) != 0) continue;
    *spec_index = static_cast<int>(si);
    if (argc < entry.min_argc ||
        (entry.max_argc != 0 && argc > entry.max_argc)) {
      AppendWrongArity(out, name);
      errors_->Inc();
      return;
    }
    if (!ClusterAdmits(cmd, entry.flags, out)) {
      errors_->Inc();
      return;
    }
    (this->*entry.handler)(cmd, out);
    if (out->size() > before_errors && (*out)[before_errors] == '-') {
      errors_->Inc();
    }
    return;
  }

  std::string msg = "ERR unknown command '";
  msg.append(cmd.args[0].data(),
             std::min<size_t>(cmd.args[0].size(), 64));
  msg += "'";
  AppendError(out, msg);
  errors_->Inc();
}

void CommandTable::Get(const RespCommand& cmd, std::string* out) {
  std::string value;
  Status s = db_->Get(cmd.args[1], &value);
  if (s.ok()) {
    AppendBulk(out, value);
  } else if (s.IsNotFound()) {
    AppendNullBulk(out);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::Set(const RespCommand& cmd, std::string* out) {
  uint64_t ttl_micros = 0;
  if (cmd.args.size() > 3) {
    // SET key value [EX seconds | PX millis].
    if (cmd.args.size() != 5) {
      AppendError(out, "ERR syntax error");
      return;
    }
    int64_t amount = 0;
    if (!ParseArgInt(cmd.args[4], &amount) || amount <= 0) {
      AppendError(out, "ERR invalid expire time in 'set' command");
      return;
    }
    if (EqualsUpper(cmd.args[3], "EX")) {
      ttl_micros = static_cast<uint64_t>(amount) * kMicrosPerSecond;
    } else if (EqualsUpper(cmd.args[3], "PX")) {
      ttl_micros = static_cast<uint64_t>(amount) * 1000;
    } else {
      AppendError(out, "ERR syntax error");
      return;
    }
  }
  Status s;
  {
    common::OptionalMutexLock order_lock(
      cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
    s = ttl_micros == 0 ? db_->Set(cmd.args[1], cmd.args[2])
                        : db_->SetEx(cmd.args[1], cmd.args[2], ttl_micros);
    if (s.ok() && cluster_ != nullptr) {
      metrics::ScopedPerfStage oplog_stage(metrics::PerfContext::kOplogAppend);
      cluster_->RecordSet(cmd.args[1], cmd.args[2], ttl_micros);
    }
  }
  if (s.ok()) {
    AppendSimpleString(out, kOk);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::Del(const RespCommand& cmd, std::string* out) {
  int64_t removed = 0;
  for (size_t i = 1; i < cmd.args.size(); ++i) {
    // Delete is policy-aware (tombstones under write-back, synchronous
    // under write-through); count only keys that were present. For
    // cache-cold keys the storage tier is probed directly — no value
    // round trip through the Get path and no cache populate just to
    // answer a count. (The probe can overcount a key whose write-back
    // delete tombstone has not flushed yet; Redis-exact counting there
    // would need a dirty-buffer existence API for a rare edge.)
    bool existed = db_->cache()->Exists(cmd.args[i]);
    if (!existed && db_->storage() != nullptr) {
      std::string scratch;
      existed = db_->storage()->Read(cmd.args[i], &scratch).ok();
    }
    Status s;
    {
      common::OptionalMutexLock order_lock(
        cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
      s = db_->Delete(cmd.args[i]);
      if (s.ok() && cluster_ != nullptr) {
        metrics::ScopedPerfStage oplog_stage(
            metrics::PerfContext::kOplogAppend);
        cluster_->RecordDelete(cmd.args[i]);
      }
    }
    if (s.ok() && existed) ++removed;
  }
  AppendInteger(out, removed);
}

void CommandTable::Exists(const RespCommand& cmd, std::string* out) {
  int64_t count = 0;
  for (size_t i = 1; i < cmd.args.size(); ++i) {
    if (db_->cache()->Exists(cmd.args[i])) {
      ++count;
    } else if (db_->storage() != nullptr) {
      // Tiered: the key may live only in the storage tier; a Get both
      // answers existence and warms the cache.
      std::string scratch;
      if (db_->Get(cmd.args[i], &scratch).ok()) ++count;
    }
  }
  AppendInteger(out, count);
}

void CommandTable::MGet(const RespCommand& cmd, std::string* out) {
  std::vector<Slice> keys(cmd.args.begin() + 1, cmd.args.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet(keys, &values, &statuses);
  AppendArrayHeader(out, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (statuses[i].ok()) {
      AppendBulk(out, values[i]);
    } else {
      AppendNullBulk(out);  // Redis: wrong-type/missing both read as null.
    }
  }
}

void CommandTable::MSet(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 1) {
    AppendError(out, "ERR wrong number of arguments for 'mset' command");
    return;
  }
  std::vector<Slice> keys, values;
  for (size_t i = 1; i < cmd.args.size(); i += 2) {
    keys.push_back(cmd.args[i]);
    values.push_back(cmd.args[i + 1]);
  }
  std::vector<Status> statuses;
  {
    common::OptionalMutexLock order_lock(
      cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
    db_->MultiSet(keys, values, &statuses);
    if (cluster_ != nullptr) {
      metrics::ScopedPerfStage oplog_stage(metrics::PerfContext::kOplogAppend);
      for (size_t i = 0; i < keys.size(); ++i) {
        if (statuses[i].ok()) cluster_->RecordSet(keys[i], values[i], 0);
      }
    }
  }
  for (const Status& s : statuses) {
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
  }
  AppendSimpleString(out, kOk);
}

void CommandTable::Expire(const RespCommand& cmd, std::string* out) {
  int64_t seconds = 0;
  if (!ParseArgInt(cmd.args[2], &seconds)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  common::OptionalMutexLock order_lock(
    cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
  if (seconds <= 0) {
    // Redis deletes the key on a non-positive TTL.
    bool existed = db_->cache()->Exists(cmd.args[1]);
    if (existed) {
      db_->Delete(cmd.args[1]);
      if (cluster_ != nullptr) cluster_->RecordDelete(cmd.args[1]);
    }
    AppendInteger(out, existed ? 1 : 0);
    return;
  }
  const uint64_t ttl_micros =
      static_cast<uint64_t>(seconds) * kMicrosPerSecond;
  Status s = db_->cache()->Expire(cmd.args[1], ttl_micros);
  if (s.ok() && cluster_ != nullptr) {
    cluster_->RecordExpire(cmd.args[1], ttl_micros);
  }
  AppendInteger(out, s.ok() ? 1 : 0);
}

void CommandTable::Ttl(const RespCommand& cmd, std::string* out) {
  Result<uint64_t> ttl = db_->cache()->Ttl(cmd.args[1]);
  if (!ttl.ok()) {
    AppendInteger(out, -2);  // No such key.
    return;
  }
  if (*ttl == 0) {
    AppendInteger(out, -1);  // No expiry set.
    return;
  }
  AppendInteger(out,
                static_cast<int64_t>((*ttl + kMicrosPerSecond - 1) /
                                     kMicrosPerSecond));
}

void CommandTable::Incr(const RespCommand& cmd, std::string* out) {
  // Lock-free counter bump via the engine's CAS: read, add one, swap;
  // retry on interleaved writers.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string current;
    Status s = db_->Get(cmd.args[1], &current);
    bool create = s.IsNotFound();
    int64_t value = 0;
    if (s.ok()) {
      if (!ParseArgInt(current, &value)) {
        AppendError(out, "ERR value is not an integer or out of range");
        return;
      }
    } else if (!create) {
      AppendStatusError(out, s);
      return;
    }
    if (value == INT64_MAX) {
      AppendError(out, "ERR increment or decrement would overflow");
      return;
    }
    const std::string next = std::to_string(value + 1);
    {
      common::OptionalMutexLock order_lock(
        cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
      s = create ? db_->Cas(cmd.args[1], "", next, /*allow_create=*/true)
                 : db_->Cas(cmd.args[1], current, next);
      // Replicate the outcome, not the increment: replays are idempotent.
      if (s.ok() && cluster_ != nullptr) {
        metrics::ScopedPerfStage oplog_stage(
            metrics::PerfContext::kOplogAppend);
        cluster_->RecordSet(cmd.args[1], next, 0);
      }
    }
    if (s.ok()) {
      AppendInteger(out, value + 1);
      return;
    }
    if (!s.IsAborted()) {
      AppendStatusError(out, s);
      return;
    }
  }
  AppendError(out, "ERR INCR retry budget exhausted under contention");
}

void CommandTable::HSet(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 0) {
    AppendError(out, "ERR wrong number of arguments for 'hset' command");
    return;
  }
  cache::HashEngine* cache = db_->cache();
  int64_t added = 0;
  for (size_t i = 2; i < cmd.args.size(); i += 2) {
    std::string existing;
    const bool is_new = !cache->HGet(cmd.args[1], cmd.args[i], &existing).ok();
    Status s = cache->HSet(cmd.args[1], cmd.args[i], cmd.args[i + 1]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
    if (is_new) ++added;
  }
  AppendInteger(out, added);
}

void CommandTable::HGet(const RespCommand& cmd, std::string* out) {
  std::string value;
  Status s = db_->cache()->HGet(cmd.args[1], cmd.args[2], &value);
  if (s.ok()) {
    AppendBulk(out, value);
  } else if (s.IsNotFound()) {
    AppendNullBulk(out);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::LPush(const RespCommand& cmd, std::string* out) {
  cache::HashEngine* cache = db_->cache();
  for (size_t i = 2; i < cmd.args.size(); ++i) {
    Status s = cache->LPush(cmd.args[1], cmd.args[i]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
  }
  Result<uint64_t> len = cache->LLen(cmd.args[1]);
  AppendInteger(out, len.ok() ? static_cast<int64_t>(*len) : 0);
}

void CommandTable::LRange(const RespCommand& cmd, std::string* out) {
  int64_t start = 0, stop = 0;
  if (!ParseArgInt(cmd.args[2], &start) || !ParseArgInt(cmd.args[3], &stop)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  std::vector<std::string> elements;
  Status s = db_->cache()->LRange(cmd.args[1], start, stop, &elements);
  if (!s.ok() && !s.IsNotFound()) {
    AppendStatusError(out, s);
    return;
  }
  AppendArrayHeader(out, elements.size());
  for (const std::string& e : elements) AppendBulk(out, e);
}

void CommandTable::ZAdd(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 0) {
    AppendError(out, "ERR syntax error");
    return;
  }
  cache::HashEngine* cache = db_->cache();
  int64_t added = 0;
  for (size_t i = 2; i < cmd.args.size(); i += 2) {
    double score = 0;
    if (!ParseArgDouble(cmd.args[i], &score)) {
      AppendError(out, "ERR value is not a valid float");
      return;
    }
    const bool is_new = !cache->ZScore(cmd.args[1], cmd.args[i + 1]).ok();
    Status s = cache->ZAdd(cmd.args[1], score, cmd.args[i + 1]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
    if (is_new) ++added;
  }
  AppendInteger(out, added);
}

void CommandTable::ZRange(const RespCommand& cmd, std::string* out) {
  int64_t start = 0, stop = 0;
  if (!ParseArgInt(cmd.args[2], &start) || !ParseArgInt(cmd.args[3], &stop)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  bool with_scores = false;
  if (cmd.args.size() == 5) {
    if (!EqualsUpper(cmd.args[4], "WITHSCORES")) {
      AppendError(out, "ERR syntax error");
      return;
    }
    with_scores = true;
  }
  std::vector<std::pair<std::string, double>> members;
  Status s = db_->cache()->ZRange(cmd.args[1], start, stop, &members);
  if (!s.ok() && !s.IsNotFound()) {
    AppendStatusError(out, s);
    return;
  }
  AppendArrayHeader(out, members.size() * (with_scores ? 2 : 1));
  for (const auto& [member, score] : members) {
    AppendBulk(out, member);
    if (with_scores) AppendBulk(out, FormatDouble(score));
  }
}

void CommandTable::Info(const RespCommand& cmd, std::string* out) {
  (void)cmd;  // Section filters are accepted but the full report is sent.
  std::string body;
  registry_.RenderInfo(&body);
  AppendBulk(out, body);
}

void CommandTable::Metrics(const RespCommand& cmd, std::string* out) {
  (void)cmd;
  std::string body;
  registry_.RenderPrometheus(&body);
  AppendBulk(out, body);
}

void CommandTable::Analytics(const RespCommand& cmd, std::string* out) {
  analytics::WorkloadAnalytics* wa = db_->analytics();
  if (wa == nullptr) {
    AppendError(out,
                "ERR analytics disabled (server started with --no-analytics)");
    return;
  }
  char sub[16];
  if (!UpperName(cmd.args[1], sub, 16)) {
    AppendError(out, "ERR unknown ANALYTICS subcommand");
    return;
  }
  if (strcmp(sub, "MRC") == 0) {
    // Whole-cache curve by default; ANALYTICS MRC <shard> narrows to one
    // reuse tracker (shard-local entry counts).
    int shard = -1;
    if (cmd.args.size() == 3) {
      int64_t v = 0;
      if (!ParseArgInt(cmd.args[2], &v) || v < 0 || v >= wa->shards()) {
        AppendError(out, "ERR shard index out of range");
        return;
      }
      shard = static_cast<int>(v);
    }
    AppendBulk(out, analytics::FormatMrcReport(wa->Mrc(shard), wa->shards()));
    return;
  }
  if (strcmp(sub, "RESET") == 0) {
    wa->Reset();
    AppendSimpleString(out, kOk);
    return;
  }
  AppendError(out, "ERR unknown ANALYTICS subcommand, try MRC|RESET");
}

void CommandTable::HotKeys(const RespCommand& cmd, std::string* out) {
  analytics::WorkloadAnalytics* wa = db_->analytics();
  if (wa == nullptr) {
    AppendError(out,
                "ERR analytics disabled (server started with --no-analytics)");
    return;
  }
  int64_t k = 10;
  if (cmd.args.size() == 2 &&
      (!ParseArgInt(cmd.args[1], &k) || k <= 0 || k > 10'000)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  std::vector<analytics::HotKey> top = wa->TopKeys(static_cast<size_t>(k));
  // Flat [key, estimated-count, key, estimated-count, ...] pairs, hottest
  // first. Counts are estimated true counts in the current decay window.
  AppendArrayHeader(out, top.size() * 2);
  for (const analytics::HotKey& h : top) {
    AppendBulk(out, h.key);
    AppendInteger(out, static_cast<int64_t>(h.count));
  }
}

void CommandTable::SlowLogCmd(const RespCommand& cmd, std::string* out) {
  char sub[16];
  if (!UpperName(cmd.args[1], sub, 16)) {
    AppendError(out, "ERR unknown SLOWLOG subcommand");
    return;
  }
  if (strcmp(sub, "GET") == 0) {
    int64_t n = 10;
    if (cmd.args.size() == 3 &&
        (!ParseArgInt(cmd.args[2], &n) || n < 0)) {
      AppendError(out, "ERR value is not an integer or out of range");
      return;
    }
    std::vector<SlowLog::Entry> entries =
        slowlog_.Get(static_cast<size_t>(n));
    AppendArrayHeader(out, entries.size());
    for (const SlowLog::Entry& e : entries) {
      AppendArrayHeader(out, 4);
      AppendInteger(out, static_cast<int64_t>(e.id));
      AppendInteger(out, e.unix_seconds);
      AppendInteger(out, static_cast<int64_t>(e.duration_micros));
      AppendArrayHeader(out, e.args.size());
      for (const std::string& a : e.args) AppendBulk(out, a);
    }
    return;
  }
  if (strcmp(sub, "RESET") == 0) {
    slowlog_.Reset();
    AppendSimpleString(out, kOk);
    return;
  }
  if (strcmp(sub, "LEN") == 0) {
    AppendInteger(out, static_cast<int64_t>(slowlog_.Len()));
    return;
  }
  AppendError(out, "ERR unknown SLOWLOG subcommand, try GET|RESET|LEN");
}

void CommandTable::Latency(const RespCommand& cmd, std::string* out) {
  char sub[16];
  if (!UpperName(cmd.args[1], sub, 16)) {
    AppendError(out, "ERR unknown LATENCY subcommand");
    return;
  }
  // An optional third arg names one command family (e.g. "get").
  std::string only_key;
  if (cmd.args.size() == 3) {
    only_key = "cmd_";
    for (size_t i = 0; i < cmd.args[2].size(); ++i) {
      only_key.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(cmd.args[2][i]))));
    }
    only_key += "_latency_us";
  }
  std::vector<std::pair<std::string, metrics::LatencyHistogram*>> hists;
  for (auto& [key, hist] : registry_.Histograms()) {
    if (only_key.empty() || key == only_key) hists.emplace_back(key, hist);
  }
  if (strcmp(sub, "HISTOGRAM") == 0) {
    if (!only_key.empty() && hists.empty()) {
      AppendError(out, "ERR no latency histogram for that command");
      return;
    }
    AppendArrayHeader(out, hists.size() * 2);
    for (auto& [key, hist] : hists) {
      AppendBulk(out, key);
      AppendBulk(out, metrics::HistogramInfoValue(hist->Snapshot()));
    }
    return;
  }
  if (strcmp(sub, "RESET") == 0) {
    for (auto& [key, hist] : hists) {
      (void)key;
      hist->Reset();
    }
    AppendInteger(out, static_cast<int64_t>(hists.size()));
    return;
  }
  AppendError(out, "ERR unknown LATENCY subcommand, try HISTOGRAM|RESET");
}

void CommandTable::Scan(const RespCommand& cmd, std::string* out) {
  int64_t cursor = 0;
  if (!ParseArgInt(cmd.args[1], &cursor) || cursor < 0) {
    AppendError(out, "ERR invalid cursor");
    return;
  }
  int64_t count = 10;
  if (cmd.args.size() > 2) {
    if (cmd.args.size() != 4 || !EqualsUpper(cmd.args[2], "COUNT") ||
        !ParseArgInt(cmd.args[3], &count) || count <= 0) {
      AppendError(out, "ERR syntax error");
      return;
    }
  }
  std::vector<std::string> keys;
  uint64_t next = db_->cache()->Scan(static_cast<uint64_t>(cursor),
                                     static_cast<size_t>(count), &keys);
  AppendArrayHeader(out, 2);
  AppendBulk(out, std::to_string(next));
  AppendArrayHeader(out, keys.size());
  for (const std::string& key : keys) AppendBulk(out, key);
}

void CommandTable::DbSize(const RespCommand& cmd, std::string* out) {
  (void)cmd;
  AppendInteger(out,
                static_cast<int64_t>(db_->cache()->GetUsage().keys));
}

void CommandTable::FlushAll(const RespCommand& cmd, std::string* out) {
  (void)cmd;
  if (db_->storage() != nullptr) {
    // A cache-only wipe would quietly resurrect from the storage tier on
    // the next miss; refuse rather than lie.
    AppendError(out,
                "ERR FLUSHALL wipes the cache tier only and this instance "
                "has a storage tier (write-through/write-back)");
    return;
  }
  common::OptionalMutexLock order_lock(
    cluster_ != nullptr ? &cluster_->write_order_mu() : nullptr);
  db_->cache()->Clear();
  if (cluster_ != nullptr) cluster_->RecordFlush();
  AppendSimpleString(out, kOk);
}

void CommandTable::Cluster(const RespCommand& cmd, std::string* out) {
  char sub[16];
  if (!UpperName(cmd.args[1], sub, 16)) {
    AppendError(out, "ERR unknown CLUSTER subcommand");
    return;
  }
  if (cluster_ == nullptr) {
    AppendError(out, "ERR This instance has cluster support disabled");
    return;
  }
  if (strcmp(sub, "EPOCH") == 0) {
    AppendInteger(out, static_cast<int64_t>(cluster_->epoch()));
  } else if (strcmp(sub, "MYID") == 0) {
    AppendBulk(out, cluster_->id());
  } else if (strcmp(sub, "NODES") == 0) {
    std::shared_ptr<const cluster_net::RoutingView> view = cluster_->routing();
    AppendBulk(out, view == nullptr ? std::string() : view->wire.Serialize());
  } else if (strcmp(sub, "SETSLOTS") == 0) {
    if (cmd.args.size() != 3) {
      AppendWrongArity(out, "CLUSTER");
      return;
    }
    Status s = cluster_->InstallRouting(cmd.args[2].ToString());
    if (s.ok()) {
      AppendSimpleString(out, kOk);
    } else {
      AppendStatusError(out, s);
    }
  } else {
    AppendError(out, "ERR unknown CLUSTER subcommand");
  }
}

void CommandTable::ReplicaOf(const RespCommand& cmd, std::string* out) {
  if (cluster_ == nullptr) {
    AppendError(out, "ERR This instance has cluster support disabled");
    return;
  }
  if (EqualsUpper(cmd.args[1], "NO") &&
      EqualsUpper(cmd.args[2], "ONE")) {
    cluster_->StopReplication();  // Promotion: keep serving as a master.
    AppendSimpleString(out, kOk);
    return;
  }
  int64_t port = 0;
  if (!ParseArgInt(cmd.args[2], &port) || port <= 0 || port > 65535) {
    AppendError(out, "ERR invalid master port");
    return;
  }
  Status s = cluster_->StartReplicaOf(cmd.args[1].ToString(),
                                      static_cast<uint16_t>(port));
  if (s.ok()) {
    AppendSimpleString(out, kOk);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::ReplPull(const RespCommand& cmd, std::string* out) {
  if (cluster_ == nullptr) {
    AppendError(out, "ERR This instance has cluster support disabled");
    return;
  }
  int64_t from = 0, max_ops = 0;
  if (!ParseArgInt(cmd.args[2], &from) || from <= 0 ||
      !ParseArgInt(cmd.args[3], &max_ops) || max_ops <= 0) {
    AppendError(out, "ERR invalid REPLPULL arguments");
    return;
  }
  cluster_net::OpLog* log = cluster_->oplog();
  cluster_->NoteReplicaAck(cmd.args[1].ToString(),
                           static_cast<uint64_t>(from) - 1);
  std::vector<cluster_net::ReplOp> ops;
  if (!log->Read(static_cast<uint64_t>(from), static_cast<size_t>(max_ops),
                 &ops)) {
    char msg[64];
    snprintf(msg, sizeof(msg), "REPLGAP %llu %llu",
             static_cast<unsigned long long>(log->min_seq()),
             static_cast<unsigned long long>(log->head_seq()));
    AppendError(out, msg);
    return;
  }
  AppendArrayHeader(out, ops.size() + 1);
  AppendInteger(out, static_cast<int64_t>(log->head_seq()));
  for (const cluster_net::ReplOp& op : ops) {
    AppendArrayHeader(out, 5);
    AppendInteger(out, static_cast<int64_t>(op.seq));
    switch (op.type) {
      case cluster_net::ReplOp::Type::kSet:
        AppendBulk(out, "SET");
        break;
      case cluster_net::ReplOp::Type::kDelete:
        AppendBulk(out, "DEL");
        break;
      case cluster_net::ReplOp::Type::kFlushAll:
        AppendBulk(out, "FLUSH");
        break;
      case cluster_net::ReplOp::Type::kExpire:
        AppendBulk(out, "EXPIRE");
        break;
    }
    AppendBulk(out, op.key);
    AppendBulk(out, op.value);
    AppendInteger(out, static_cast<int64_t>(op.ttl_micros));
  }
}

void CommandTable::ReplSnapshot(const RespCommand& cmd, std::string* out) {
  if (cluster_ == nullptr) {
    AppendError(out, "ERR This instance has cluster support disabled");
    return;
  }
  int64_t cursor = 0, count = 0;
  if (!ParseArgInt(cmd.args[1], &cursor) || cursor < 0 ||
      !ParseArgInt(cmd.args[2], &count) || count <= 0) {
    AppendError(out, "ERR invalid REPLSNAPSHOT arguments");
    return;
  }
  std::vector<std::string> keys;
  uint64_t next = db_->cache()->Scan(static_cast<uint64_t>(cursor),
                                     static_cast<size_t>(count), &keys);
  // String values only: rich types are node-local in this reproduction.
  // Each entry ships (key, value, remaining-TTL) so a resynced replica
  // keeps the same expiry behavior as one that streamed incrementally.
  struct SnapshotEntry {
    std::string key;
    std::string value;
    uint64_t ttl_micros;
  };
  std::vector<SnapshotEntry> entries;
  entries.reserve(keys.size());
  for (std::string& key : keys) {
    std::string value;
    if (!db_->Get(key, &value).ok()) continue;
    Result<uint64_t> ttl = db_->cache()->Ttl(key);
    entries.push_back({std::move(key), std::move(value),
                       ttl.ok() ? *ttl : uint64_t{0}});
  }
  AppendArrayHeader(out, 2 + entries.size() * 3);
  AppendBulk(out, std::to_string(next));
  AppendInteger(out, static_cast<int64_t>(cluster_->oplog()->head_seq()));
  for (const SnapshotEntry& e : entries) {
    AppendBulk(out, e.key);
    AppendBulk(out, e.value);
    AppendInteger(out, static_cast<int64_t>(e.ttl_micros));
  }
}

// WAIT occupies its dispatch worker while polling. The executor's
// stall-aware scale-up activates a reserve thread so queued REPLPULLs
// (which advance the acks WAIT is watching) keep flowing — but kSingle
// mode pins max_threads to 1, so there WAIT can only report the acks
// already in; run cluster masters in multi/elastic mode.
void CommandTable::Wait(const RespCommand& cmd, std::string* out) {
  int64_t num_replicas = 0, timeout_ms = 0;
  if (!ParseArgInt(cmd.args[1], &num_replicas) || num_replicas < 0 ||
      !ParseArgInt(cmd.args[2], &timeout_ms) || timeout_ms < 0) {
    AppendError(out, "ERR invalid WAIT arguments");
    return;
  }
  if (cluster_ == nullptr) {
    AppendInteger(out, 0);
    return;
  }
  metrics::ScopedPerfStage wait_stage(metrics::PerfContext::kReplicaWait);
  const uint64_t target = cluster_->oplog()->head_seq();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  size_t acked = cluster_->CountReplicasAtLeast(target);
  while (acked < static_cast<size_t>(num_replicas) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    acked = cluster_->CountReplicasAtLeast(target);
  }
  AppendInteger(out, static_cast<int64_t>(acked));
}

}  // namespace server
}  // namespace tierbase
