#include "server/command.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tierbase {
namespace server {

namespace {

/// Uppercases a command name into `buf`; false if it can't be a command
/// (too long for any table entry).
bool UpperName(const Slice& name, char* buf, size_t cap) {
  if (name.size() >= cap) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    buf[i] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(name[i])));
  }
  buf[name.size()] = '\0';
  return true;
}

void AppendWrongArity(std::string* out, const char* upper_name) {
  std::string msg = "ERR wrong number of arguments for '";
  for (const char* c = upper_name; *c != '\0'; ++c) {
    msg.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*c))));
  }
  msg += "' command";
  AppendError(out, msg);
}

/// Strict signed-integer parse of a RESP argument.
bool ParseArgInt(const Slice& arg, int64_t* out) {
  if (arg.empty() || arg.size() > 20) return false;
  char buf[24];
  memcpy(buf, arg.data(), arg.size());
  buf[arg.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + arg.size()) return false;
  *out = v;
  return true;
}

bool ParseArgDouble(const Slice& arg, double* out) {
  if (arg.empty() || arg.size() > 63) return false;
  char buf[64];
  memcpy(buf, arg.data(), arg.size());
  buf[arg.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = strtod(buf, &end);
  if (errno != 0 || end != buf + arg.size()) return false;
  *out = v;
  return true;
}

/// Redis-style score formatting: integral scores print without a decimal
/// point, everything else with %.17g round-trip precision.
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

bool EqualsIgnoreCase(const Slice& arg, const char* word) {
  size_t n = strlen(word);
  if (arg.size() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(arg[i])) != word[i]) {
      return false;
    }
  }
  return true;
}

constexpr const char* kOk = "OK";
constexpr uint64_t kMicrosPerSecond = 1'000'000;

}  // namespace

void AppendStatusError(std::string* out, const Status& s) {
  if (s.IsInvalidArgument() &&
      s.message().find("wrong value type") != std::string::npos) {
    AppendError(out,
                "WRONGTYPE Operation against a key holding the wrong kind "
                "of value");
    return;
  }
  AppendError(out, "ERR " + s.ToString());
}

CommandTable::CommandTable(TierBase* db) : db_(db) {}

void CommandTable::ExecuteBatch(const std::vector<RespCommand>& cmds,
                                std::string* out, bool* close_connection,
                                bool* shutdown_server) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  commands_.fetch_add(cmds.size(), std::memory_order_relaxed);

  char name[16];
  size_t i = 0;
  while (i < cmds.size()) {
    // Coalesce trains of plain single-key GETs / two-argument SETs that a
    // pipelining client queued back-to-back into one batched engine call.
    if (cmds[i].args.size() == 2 && UpperName(cmds[i].args[0], name, 16) &&
        strcmp(name, "GET") == 0) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 2 &&
             UpperName(cmds[j].args[0], name, 16) &&
             strcmp(name, "GET") == 0) {
        ++j;
      }
      if (j - i >= 2) {
        CoalescedGets(cmds, i, j, out);
        coalesced_.fetch_add(j - i, std::memory_order_relaxed);
        i = j;
        continue;
      }
    } else if (cmds[i].args.size() == 3 &&
               UpperName(cmds[i].args[0], name, 16) &&
               strcmp(name, "SET") == 0) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 3 &&
             UpperName(cmds[j].args[0], name, 16) &&
             strcmp(name, "SET") == 0) {
        ++j;
      }
      if (j - i >= 2) {
        CoalescedSets(cmds, i, j, out);
        coalesced_.fetch_add(j - i, std::memory_order_relaxed);
        i = j;
        continue;
      }
    }
    ExecuteOne(cmds[i], out, close_connection, shutdown_server);
    ++i;
  }
}

void CommandTable::CoalescedGets(const std::vector<RespCommand>& cmds,
                                 size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys;
  keys.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) keys.push_back(cmds[i].args[1]);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet(keys, &values, &statuses);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (statuses[i].ok()) {
      AppendBulk(out, values[i]);
    } else if (statuses[i].IsNotFound()) {
      AppendNullBulk(out);
    } else {
      AppendStatusError(out, statuses[i]);
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CommandTable::CoalescedSets(const std::vector<RespCommand>& cmds,
                                 size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys, values;
  keys.reserve(end - begin);
  values.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    keys.push_back(cmds[i].args[1]);
    values.push_back(cmds[i].args[2]);
  }
  std::vector<Status> statuses;
  db_->MultiSet(keys, values, &statuses);
  for (const Status& s : statuses) {
    if (s.ok()) {
      AppendSimpleString(out, kOk);
    } else {
      AppendStatusError(out, s);
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CommandTable::ExecuteOne(const RespCommand& cmd, std::string* out,
                              bool* close_connection, bool* shutdown_server) {
  char name[16];
  if (cmd.args.empty() || !UpperName(cmd.args[0], name, 16)) {
    AppendError(out, "ERR unknown command");
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t argc = cmd.args.size();
  const size_t before_errors = out->size();

  // Dispatch. Arity rules: {min, max} inclusive argument counts
  // (command name included); parity constraints checked in the handlers.
  struct Entry {
    const char* name;
    size_t min_argc;
    size_t max_argc;  // 0 = unbounded.
    void (CommandTable::*handler)(const RespCommand&, std::string*);
  };
  static constexpr Entry kTable[] = {
      {"GET", 2, 2, &CommandTable::Get},
      {"SET", 3, 5, &CommandTable::Set},
      {"DEL", 2, 0, &CommandTable::Del},
      {"EXISTS", 2, 0, &CommandTable::Exists},
      {"MGET", 2, 0, &CommandTable::MGet},
      {"MSET", 3, 0, &CommandTable::MSet},
      {"EXPIRE", 3, 3, &CommandTable::Expire},
      {"TTL", 2, 2, &CommandTable::Ttl},
      {"INCR", 2, 2, &CommandTable::Incr},
      {"HSET", 4, 0, &CommandTable::HSet},
      {"HGET", 3, 3, &CommandTable::HGet},
      {"LPUSH", 3, 0, &CommandTable::LPush},
      {"LRANGE", 4, 4, &CommandTable::LRange},
      {"ZADD", 4, 0, &CommandTable::ZAdd},
      {"ZRANGE", 4, 5, &CommandTable::ZRange},
      {"INFO", 1, 2, &CommandTable::Info},
  };

  if (strcmp(name, "PING") == 0) {
    if (argc == 1) {
      AppendSimpleString(out, "PONG");
    } else if (argc == 2) {
      AppendBulk(out, cmd.args[1]);
    } else {
      AppendWrongArity(out, name);
    }
    return;
  }
  if (strcmp(name, "QUIT") == 0) {
    AppendSimpleString(out, kOk);
    *close_connection = true;
    return;
  }
  if (strcmp(name, "SHUTDOWN") == 0) {
    // Reply before stopping so a synchronous client sees the ack; the
    // event loop flushes pending output during teardown.
    AppendSimpleString(out, kOk);
    *close_connection = true;
    *shutdown_server = true;
    return;
  }
  if (strcmp(name, "COMMAND") == 0) {
    // Stub so redis-cli's startup probe doesn't error out.
    AppendArrayHeader(out, 0);
    return;
  }

  for (const Entry& entry : kTable) {
    if (strcmp(name, entry.name) != 0) continue;
    if (argc < entry.min_argc ||
        (entry.max_argc != 0 && argc > entry.max_argc)) {
      AppendWrongArity(out, name);
      errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    (this->*entry.handler)(cmd, out);
    if (out->size() > before_errors && (*out)[before_errors] == '-') {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  std::string msg = "ERR unknown command '";
  msg.append(cmd.args[0].data(),
             std::min<size_t>(cmd.args[0].size(), 64));
  msg += "'";
  AppendError(out, msg);
  errors_.fetch_add(1, std::memory_order_relaxed);
}

void CommandTable::Get(const RespCommand& cmd, std::string* out) {
  std::string value;
  Status s = db_->Get(cmd.args[1], &value);
  if (s.ok()) {
    AppendBulk(out, value);
  } else if (s.IsNotFound()) {
    AppendNullBulk(out);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::Set(const RespCommand& cmd, std::string* out) {
  uint64_t ttl_micros = 0;
  if (cmd.args.size() > 3) {
    // SET key value [EX seconds | PX millis].
    if (cmd.args.size() != 5) {
      AppendError(out, "ERR syntax error");
      return;
    }
    int64_t amount = 0;
    if (!ParseArgInt(cmd.args[4], &amount) || amount <= 0) {
      AppendError(out, "ERR invalid expire time in 'set' command");
      return;
    }
    if (EqualsIgnoreCase(cmd.args[3], "EX")) {
      ttl_micros = static_cast<uint64_t>(amount) * kMicrosPerSecond;
    } else if (EqualsIgnoreCase(cmd.args[3], "PX")) {
      ttl_micros = static_cast<uint64_t>(amount) * 1000;
    } else {
      AppendError(out, "ERR syntax error");
      return;
    }
  }
  Status s = ttl_micros == 0 ? db_->Set(cmd.args[1], cmd.args[2])
                             : db_->SetEx(cmd.args[1], cmd.args[2], ttl_micros);
  if (s.ok()) {
    AppendSimpleString(out, kOk);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::Del(const RespCommand& cmd, std::string* out) {
  int64_t removed = 0;
  for (size_t i = 1; i < cmd.args.size(); ++i) {
    // Delete is policy-aware (tombstones under write-back, synchronous
    // under write-through); count only keys that were present. For
    // cache-cold keys the storage tier is probed directly — no value
    // round trip through the Get path and no cache populate just to
    // answer a count. (The probe can overcount a key whose write-back
    // delete tombstone has not flushed yet; Redis-exact counting there
    // would need a dirty-buffer existence API for a rare edge.)
    bool existed = db_->cache()->Exists(cmd.args[i]);
    if (!existed && db_->storage() != nullptr) {
      std::string scratch;
      existed = db_->storage()->Read(cmd.args[i], &scratch).ok();
    }
    Status s = db_->Delete(cmd.args[i]);
    if (s.ok() && existed) ++removed;
  }
  AppendInteger(out, removed);
}

void CommandTable::Exists(const RespCommand& cmd, std::string* out) {
  int64_t count = 0;
  for (size_t i = 1; i < cmd.args.size(); ++i) {
    if (db_->cache()->Exists(cmd.args[i])) {
      ++count;
    } else if (db_->storage() != nullptr) {
      // Tiered: the key may live only in the storage tier; a Get both
      // answers existence and warms the cache.
      std::string scratch;
      if (db_->Get(cmd.args[i], &scratch).ok()) ++count;
    }
  }
  AppendInteger(out, count);
}

void CommandTable::MGet(const RespCommand& cmd, std::string* out) {
  std::vector<Slice> keys(cmd.args.begin() + 1, cmd.args.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet(keys, &values, &statuses);
  AppendArrayHeader(out, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (statuses[i].ok()) {
      AppendBulk(out, values[i]);
    } else {
      AppendNullBulk(out);  // Redis: wrong-type/missing both read as null.
    }
  }
}

void CommandTable::MSet(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 1) {
    AppendError(out, "ERR wrong number of arguments for 'mset' command");
    return;
  }
  std::vector<Slice> keys, values;
  for (size_t i = 1; i < cmd.args.size(); i += 2) {
    keys.push_back(cmd.args[i]);
    values.push_back(cmd.args[i + 1]);
  }
  std::vector<Status> statuses;
  db_->MultiSet(keys, values, &statuses);
  for (const Status& s : statuses) {
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
  }
  AppendSimpleString(out, kOk);
}

void CommandTable::Expire(const RespCommand& cmd, std::string* out) {
  int64_t seconds = 0;
  if (!ParseArgInt(cmd.args[2], &seconds)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  if (seconds <= 0) {
    // Redis deletes the key on a non-positive TTL.
    bool existed = db_->cache()->Exists(cmd.args[1]);
    if (existed) db_->Delete(cmd.args[1]);
    AppendInteger(out, existed ? 1 : 0);
    return;
  }
  Status s = db_->cache()->Expire(
      cmd.args[1], static_cast<uint64_t>(seconds) * kMicrosPerSecond);
  AppendInteger(out, s.ok() ? 1 : 0);
}

void CommandTable::Ttl(const RespCommand& cmd, std::string* out) {
  Result<uint64_t> ttl = db_->cache()->Ttl(cmd.args[1]);
  if (!ttl.ok()) {
    AppendInteger(out, -2);  // No such key.
    return;
  }
  if (*ttl == 0) {
    AppendInteger(out, -1);  // No expiry set.
    return;
  }
  AppendInteger(out,
                static_cast<int64_t>((*ttl + kMicrosPerSecond - 1) /
                                     kMicrosPerSecond));
}

void CommandTable::Incr(const RespCommand& cmd, std::string* out) {
  // Lock-free counter bump via the engine's CAS: read, add one, swap;
  // retry on interleaved writers.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string current;
    Status s = db_->Get(cmd.args[1], &current);
    bool create = s.IsNotFound();
    int64_t value = 0;
    if (s.ok()) {
      if (!ParseArgInt(current, &value)) {
        AppendError(out, "ERR value is not an integer or out of range");
        return;
      }
    } else if (!create) {
      AppendStatusError(out, s);
      return;
    }
    if (value == INT64_MAX) {
      AppendError(out, "ERR increment or decrement would overflow");
      return;
    }
    const std::string next = std::to_string(value + 1);
    s = create ? db_->Cas(cmd.args[1], "", next, /*allow_create=*/true)
               : db_->Cas(cmd.args[1], current, next);
    if (s.ok()) {
      AppendInteger(out, value + 1);
      return;
    }
    if (!s.IsAborted()) {
      AppendStatusError(out, s);
      return;
    }
  }
  AppendError(out, "ERR INCR retry budget exhausted under contention");
}

void CommandTable::HSet(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 0) {
    AppendError(out, "ERR wrong number of arguments for 'hset' command");
    return;
  }
  cache::HashEngine* cache = db_->cache();
  int64_t added = 0;
  for (size_t i = 2; i < cmd.args.size(); i += 2) {
    std::string existing;
    const bool is_new = !cache->HGet(cmd.args[1], cmd.args[i], &existing).ok();
    Status s = cache->HSet(cmd.args[1], cmd.args[i], cmd.args[i + 1]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
    if (is_new) ++added;
  }
  AppendInteger(out, added);
}

void CommandTable::HGet(const RespCommand& cmd, std::string* out) {
  std::string value;
  Status s = db_->cache()->HGet(cmd.args[1], cmd.args[2], &value);
  if (s.ok()) {
    AppendBulk(out, value);
  } else if (s.IsNotFound()) {
    AppendNullBulk(out);
  } else {
    AppendStatusError(out, s);
  }
}

void CommandTable::LPush(const RespCommand& cmd, std::string* out) {
  cache::HashEngine* cache = db_->cache();
  for (size_t i = 2; i < cmd.args.size(); ++i) {
    Status s = cache->LPush(cmd.args[1], cmd.args[i]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
  }
  Result<uint64_t> len = cache->LLen(cmd.args[1]);
  AppendInteger(out, len.ok() ? static_cast<int64_t>(*len) : 0);
}

void CommandTable::LRange(const RespCommand& cmd, std::string* out) {
  int64_t start = 0, stop = 0;
  if (!ParseArgInt(cmd.args[2], &start) || !ParseArgInt(cmd.args[3], &stop)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  std::vector<std::string> elements;
  Status s = db_->cache()->LRange(cmd.args[1], start, stop, &elements);
  if (!s.ok() && !s.IsNotFound()) {
    AppendStatusError(out, s);
    return;
  }
  AppendArrayHeader(out, elements.size());
  for (const std::string& e : elements) AppendBulk(out, e);
}

void CommandTable::ZAdd(const RespCommand& cmd, std::string* out) {
  if (cmd.args.size() % 2 != 0) {
    AppendError(out, "ERR syntax error");
    return;
  }
  cache::HashEngine* cache = db_->cache();
  int64_t added = 0;
  for (size_t i = 2; i < cmd.args.size(); i += 2) {
    double score = 0;
    if (!ParseArgDouble(cmd.args[i], &score)) {
      AppendError(out, "ERR value is not a valid float");
      return;
    }
    const bool is_new = !cache->ZScore(cmd.args[1], cmd.args[i + 1]).ok();
    Status s = cache->ZAdd(cmd.args[1], score, cmd.args[i + 1]);
    if (!s.ok()) {
      AppendStatusError(out, s);
      return;
    }
    if (is_new) ++added;
  }
  AppendInteger(out, added);
}

void CommandTable::ZRange(const RespCommand& cmd, std::string* out) {
  int64_t start = 0, stop = 0;
  if (!ParseArgInt(cmd.args[2], &start) || !ParseArgInt(cmd.args[3], &stop)) {
    AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  bool with_scores = false;
  if (cmd.args.size() == 5) {
    if (!EqualsIgnoreCase(cmd.args[4], "WITHSCORES")) {
      AppendError(out, "ERR syntax error");
      return;
    }
    with_scores = true;
  }
  std::vector<std::pair<std::string, double>> members;
  Status s = db_->cache()->ZRange(cmd.args[1], start, stop, &members);
  if (!s.ok() && !s.IsNotFound()) {
    AppendStatusError(out, s);
    return;
  }
  AppendArrayHeader(out, members.size() * (with_scores ? 2 : 1));
  for (const auto& [member, score] : members) {
    AppendBulk(out, member);
    if (with_scores) AppendBulk(out, FormatDouble(score));
  }
}

void CommandTable::Info(const RespCommand& cmd, std::string* out) {
  (void)cmd;  // Section filters are accepted but the full report is sent.
  TierBase::Stats stats = db_->GetStats();

  std::string body;
  char line[160];
  auto add = [&](const char* fmt, auto... args) {
    snprintf(line, sizeof(line), fmt, args...);
    body += line;
    body += "\r\n";
  };

  body += "# Server\r\n";
  add("engine:%s", db_->name().c_str());
  if (info_extra_) info_extra_(&body);

  body += "\r\n# Stats\r\n";
  add("total_commands_processed:%" PRIu64, commands());
  add("dispatch_batches:%" PRIu64, batches());
  add("coalesced_commands:%" PRIu64, coalesced_commands());
  add("command_errors:%" PRIu64, errors());
  add("gets:%" PRIu64, stats.gets);
  add("sets:%" PRIu64, stats.sets);
  add("keyspace_hits:%" PRIu64, stats.cache_hits);
  add("keyspace_misses:%" PRIu64, stats.cache_misses);
  add("evicted_keys:%" PRIu64, stats.evictions);
  add("expired_keys:%" PRIu64, stats.expirations);
  add("lru_touches:%" PRIu64, stats.lru_touches);
  add("multi_shard_locks:%" PRIu64, stats.multi_shard_locks);
  add("multi_batches:%" PRIu64, stats.multi_batches);
  add("storage_populates:%" PRIu64, stats.storage_populates);
  add("write_back_flushed_ops:%" PRIu64, stats.write_back.flushed_ops);
  add("write_back_flush_batches:%" PRIu64, stats.write_back.flush_batches);
  add("write_through_storage_writes:%" PRIu64,
      stats.write_through.storage_writes);
  add("deferred_fetches:%" PRIu64, stats.deferred_fetch.fetches);

  body += "\r\n# Memory\r\n";
  add("bytes_cached:%" PRIu64, stats.bytes_cached);
  add("pmem_bytes:%" PRIu64, stats.pmem_bytes);

  body += "\r\n# Keyspace\r\n";
  add("keys_cached:%" PRIu64, stats.keys_cached);

  AppendBulk(out, body);
}

}  // namespace server
}  // namespace tierbase
