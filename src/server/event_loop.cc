#include "server/event_loop.h"

#include <algorithm>
#include <thread>

namespace tierbase {
namespace server {

EventLoop::EventLoop(EventLoopOptions options, Dispatcher dispatcher)
    : options_(std::move(options)), dispatcher_(std::move(dispatcher)) {}

EventLoop::~EventLoop() = default;

Status EventLoop::Listen() {
  const int n = std::max(1, std::min(options_.io_threads, 64));
  options_.io_threads = n;
#if defined(__linux__) && defined(SO_REUSEPORT)
  reuseport_ = options_.so_reuseport && n > 1;
#else
  reuseport_ = false;
#endif

  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<IoShard>(i, options_, this));
    TIERBASE_RETURN_IF_ERROR(shards_.back()->Open());
  }

  // Shard 0 binds first (possibly to an ephemeral port); under
  // SO_REUSEPORT the siblings then bind the SAME resolved port so the
  // kernel distributes accepts across all of them. Without reuseport only
  // shard 0 listens and distributes accepts itself.
  TIERBASE_RETURN_IF_ERROR(shards_[0]->OpenListener(options_.port, reuseport_));
  port_ = shards_[0]->listen_port();
  if (reuseport_) {
    for (int i = 1; i < n; ++i) {
      TIERBASE_RETURN_IF_ERROR(shards_[i]->OpenListener(port_, true));
    }
  }
  return Status::OK();
}

void EventLoop::Run() {
  if (shards_.empty()) return;
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back([shard = shards_[i].get()] { shard->Run(); });
  }
  // Shard 0 (the acceptor in non-reuseport mode) runs on the caller's
  // thread, preserving the classic "Run() on a dedicated thread" shape.
  shards_[0]->Run();
  for (std::thread& t : threads) t.join();
}

void EventLoop::Stop() {
  for (const std::unique_ptr<IoShard>& shard : shards_) {
    shard->RequestStop();
  }
}

bool EventLoop::TryAdmitConnection() {
  if (options_.max_connections == 0) {
    active_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  uint64_t cur = active_.load(std::memory_order_relaxed);
  while (cur < options_.max_connections) {
    if (active_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void EventLoop::ReleaseConnection() {
  active_.fetch_sub(1, std::memory_order_relaxed);
}

IoShard* EventLoop::PickShard(IoShard* accepting) {
  if (reuseport_ || shards_.size() == 1) return accepting;
  if (options_.accept_policy == AcceptPolicy::kLeastConnections) {
    IoShard* best = shards_[0].get();
    uint64_t best_n = best->connections_active();
    for (size_t i = 1; i < shards_.size(); ++i) {
      const uint64_t n = shards_[i]->connections_active();
      if (n < best_n) {
        best = shards_[i].get();
        best_n = n;
      }
    }
    return best;
  }
  // Round-robin, starting at shard 0 so single-connection tests land on
  // the acceptor loop deterministically.
  const uint64_t k = rr_next_.fetch_add(1, std::memory_order_relaxed);
  return shards_[k % shards_.size()].get();
}

uint64_t EventLoop::connections_accepted() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->connections_assigned();
  return sum;
}

uint64_t EventLoop::batches_dispatched() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->batches_dispatched();
  return sum;
}

uint64_t EventLoop::commands_dispatched() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->commands_dispatched();
  return sum;
}

uint64_t EventLoop::max_batch_commands() const {
  uint64_t m = 0;
  for (const auto& s : shards_) m = std::max(m, s->max_batch_commands());
  return m;
}

uint64_t EventLoop::protocol_errors() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->protocol_errors();
  return sum;
}

uint64_t EventLoop::connections_rejected() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->connections_rejected();
  return sum;
}

uint64_t EventLoop::slow_consumer_disconnects() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->slow_consumer_disconnects();
  return sum;
}

uint64_t EventLoop::busy_shed_commands() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->busy_shed_commands();
  return sum;
}

uint64_t EventLoop::dispatch_inflight() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->dispatch_inflight();
  return sum;
}

uint64_t EventLoop::loop_wakeups() const {
  uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->wakeups();
  return sum;
}

}  // namespace server
}  // namespace tierbase
