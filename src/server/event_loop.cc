#include "server/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace tierbase {
namespace server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Connection::Connection(EventLoop* loop, int fd, uint64_t id)
    : loop_(loop), fd_(fd), id_(id) {}

void Connection::CompleteBatch(std::string&& output, bool close_after,
                               bool shutdown_server) {
  {
    common::MutexLock lock(&mu_);
    if (detached_) return;  // Peer already gone; nobody will read this.
    done_output_ = std::move(output);
    done_close_ = close_after;
    done_ = true;
  }
  // The loop finds us through the completion list it registered at
  // dispatch time (EventLoop::TryDispatch); just wake it.
  if (shutdown_server) loop_->Stop();  // Stop() itself notifies the loop.
  loop_->Notify();
}

EventLoop::EventLoop(EventLoopOptions options, Dispatcher dispatcher)
    : options_(std::move(options)), dispatcher_(std::move(dispatcher)) {}

EventLoop::~EventLoop() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status EventLoop::Listen() {
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::IOError(std::string("pipe: ") + strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  TIERBASE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  Notify();
}

void EventLoop::Notify() {
  if (wake_write_fd_ < 0) return;
  char byte = 1;
  // Nonblocking: if the pipe is full a wakeup is already pending.
  ssize_t unused = write(wake_write_fd_, &byte, 1);
  (void)unused;
}

void EventLoop::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      TB_LOG_WARN("server: accept failed: %s", strerror(errno));
      return;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      // Overload guard: answer with a clean error instead of silently
      // dropping the handshake. The fresh fd is still blocking (accepted
      // sockets do not inherit the listener's O_NONBLOCK on Linux), so the
      // short write either completes or fails immediately — never EAGAIN.
      static const char kReject[] = "-ERR max clients reached\r\n";
      ssize_t unused = send(fd, kReject, sizeof(kReject) - 1, MSG_NOSIGNAL);
      (void)unused;
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(this, fd, next_conn_id_++);
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    // Detach first so an in-flight CompleteBatch discards its output
    // instead of waking the loop for a dead socket.
    common::MutexLock lock(&conn->mu_);
    conn->detached_ = true;
  }
  if (conn->busy) {
    // The peer died with a batch still executing; its completion will be
    // discarded via detach, so release the dispatch-queue slot here.
    conn->busy = false;
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  close(conn->fd_);
  conns_.erase(conn->fd_);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

bool EventLoop::TryDispatch(const std::shared_ptr<Connection>& conn) {
  if (conn->busy || conn->closing || conn->in_buf.empty()) return true;

  std::vector<RespCommand> cmds;
  size_t consumed = 0;
  std::string error;
  const uint64_t parse_start = Clock::Real()->NowMicros();
  ParseResult r = ParseRequests(conn->in_buf.data(), conn->in_buf.size(),
                                &cmds, &consumed, &error);
  if (r == ParseResult::kError) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    AppendError(&conn->out_buf, "ERR Protocol error: " + error);
    conn->closing = true;  // Flush the error, then hang up (Redis-style).
    conn->in_buf.clear();
    return true;
  }
  if (cmds.empty()) {
    // Still drop what the parser consumed (blank inline keepalives), or
    // an idle-but-chatty client's buffer would grow and re-parse forever.
    if (consumed > 0) conn->in_buf.erase(0, consumed);
    return true;
  }

  if (options_.max_dispatch_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) >=
          options_.max_dispatch_inflight) {
    // Load shedding: the dispatch queue is at its high watermark, so
    // answer each parsed command with -BUSY instead of queueing behind
    // work the server is already failing to keep up with. The connection
    // stays open; the client decides when to retry.
    for (size_t i = 0; i < cmds.size(); ++i) {
      AppendError(&conn->out_buf, "BUSY dispatch queue full, retry later");
    }
    busy_shed_.fetch_add(cmds.size(), std::memory_order_relaxed);
    conn->in_buf.erase(0, consumed);
    return true;
  }

  // Package the batch: the raw bytes move with it so the argument Slices
  // survive the trip to the executor thread. (One buffer copy per batch;
  // no per-argument copies. The Slices are rebased onto the batch's heap
  // buffer, which stays put through every later move of the batch.)
  CommandBatch batch;
  const char* old_base = conn->in_buf.data();
  batch.raw = std::make_unique<char[]>(consumed);
  memcpy(batch.raw.get(), old_base, consumed);
  batch.cmds = std::move(cmds);
  for (RespCommand& cmd : batch.cmds) {
    for (Slice& arg : cmd.args) {
      arg = Slice(batch.raw.get() + (arg.data() - old_base), arg.size());
    }
  }
  conn->in_buf.erase(0, consumed);
  conn->busy = true;
  batch.parse_micros = Clock::Real()->NowMicros() - parse_start;

  batches_.fetch_add(1, std::memory_order_relaxed);
  commands_.fetch_add(batch.cmds.size(), std::memory_order_relaxed);
  uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (batch.cmds.size() > prev &&
         !max_batch_.compare_exchange_weak(prev, batch.cmds.size())) {
  }

  // Register for completion pickup before handing off: CompleteBatch may
  // run before dispatcher_ returns.
  {
    common::MutexLock lock(&completions_mu_);
    completions_.push_back(conn);
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  dispatcher_(conn, std::move(batch));
  return true;
}

void EventLoop::DrainCompletions() {
  std::vector<std::weak_ptr<Connection>> ready;
  {
    common::MutexLock lock(&completions_mu_);
    ready.swap(completions_);
  }
  std::vector<std::weak_ptr<Connection>> still_pending;
  for (auto& weak : ready) {
    std::shared_ptr<Connection> conn = weak.lock();
    if (conn == nullptr) continue;
    bool done = false;
    {
      common::MutexLock lock(&conn->mu_);
      if (conn->done_) {
        conn->out_buf.append(conn->done_output_);
        conn->done_output_.clear();
        conn->done_ = false;
        if (conn->done_close_) conn->closing = true;
        done = true;
      }
    }
    if (!done) {
      still_pending.push_back(std::move(weak));
      continue;
    }
    // Identity check, not just fd presence: the fd number may have been
    // reused by a newly accepted connection after this one closed.
    auto it = conns_.find(conn->fd_);
    if (it == conns_.end() || it->second != conn) continue;  // Peer died.
    if (conn->busy) {
      // (CloseConnection releases the slot for peers that died mid-batch.)
      conn->busy = false;
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (options_.max_out_buffer > 0 &&
        conn->out_buf.size() > options_.max_out_buffer) {
      // Slow-consumer guard: replies are piling up faster than the peer
      // drains them. Checked here — after the batch's output lands, before
      // any flush attempt — so the decision is deterministic regardless of
      // kernel buffer sizes.
      slow_consumer_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      continue;
    }
    HandleWritable(conn);  // Opportunistic flush without waiting for poll.
    it = conns_.find(conn->fd_);
    if (it != conns_.end() && it->second == conn && !conn->closing) {
      TryDispatch(conn);  // Pipeline input buffered during execution.
    }
  }
  if (!still_pending.empty()) {
    common::MutexLock lock(&completions_mu_);
    for (auto& weak : still_pending) completions_.push_back(std::move(weak));
  }
}

void EventLoop::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char chunk[16384];
  for (;;) {
    ssize_t n = recv(conn->fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in_buf.append(chunk, static_cast<size_t>(n));
      // Enforce the buffer cap here, not in TryDispatch: while a batch is
      // in flight dispatch is skipped, and that is exactly when a
      // flooding client could otherwise grow in_buf without bound.
      if (conn->in_buf.size() > options_.max_read_buffer) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendError(&conn->out_buf, "ERR Protocol error: request too large");
        conn->closing = true;
        conn->in_buf.clear();
        HandleWritable(conn);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed — possibly mid-frame, possibly mid-dispatch. Tear the
      // connection down; CompleteBatch output is discarded via detach.
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    CloseConnection(conn);
    return;
  }
  TryDispatch(conn);
}

void EventLoop::HandleWritable(const std::shared_ptr<Connection>& conn) {
  while (!conn->out_buf.empty()) {
    ssize_t n = send(conn->fd_, conn->out_buf.data(), conn->out_buf.size(),
                     MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_buf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;  // Kernel buffer full; poll will re-arm POLLOUT.
    }
    CloseConnection(conn);
    return;
  }
  if (conn->closing && !conn->busy) CloseConnection(conn);
}

void EventLoop::Run() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  uint64_t stop_seen_at = 0;

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping) {
      if (stop_seen_at == 0) {
        stop_seen_at = Clock::Real()->NowMicros();
        // Stop accepting at the kernel level too: without the close a
        // handshake would still complete against the listen backlog and
        // clients would see a connection that nobody ever serves.
        close(listen_fd_);
        listen_fd_ = -1;
      }
      // Done when nothing is left to flush or execute, or on deadline.
      bool pending = false;
      for (const auto& [fd, conn] : conns_) {
        if (conn->busy || !conn->out_buf.empty()) {
          pending = true;
          break;
        }
      }
      if (!pending || Clock::Real()->NowMicros() - stop_seen_at >
                          options_.drain_deadline_micros) {
        break;
      }
    }

    fds.clear();
    polled.clear();
    if (!stopping) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const size_t first_conn = fds.size();
    for (const auto& [fd, conn] : conns_) {
      short events = 0;
      // While a batch is in flight keep reading (pipelining input), and
      // ask for POLLOUT only when bytes are pending.
      if (!conn->closing) events |= POLLIN;
      if (!conn->out_buf.empty()) events |= POLLOUT;
      if (events == 0) events = POLLIN;  // Still notice hangups.
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                  options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      TB_LOG_ERROR("server: poll failed: %s", strerror(errno));
      break;
    }

    size_t idx = 0;
    if (!stopping) {
      if (fds[idx].revents & POLLIN) AcceptNew();
      ++idx;
    }
    if (fds[idx].revents & POLLIN) {
      char sink[256];
      while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }

    for (size_t c = 0; c < polled.size(); ++c) {
      const pollfd& p = fds[first_conn + c];
      const std::shared_ptr<Connection>& conn = polled[c];
      auto alive = [&] {
        auto it = conns_.find(p.fd);
        return it != conns_.end() && it->second == conn;
      };
      if (!alive()) continue;  // Closed earlier this cycle.
      if (p.revents & (POLLERR | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (p.revents & POLLIN) {
        HandleReadable(conn);
        if (!alive()) continue;
      } else if (p.revents & POLLHUP) {
        // POLLHUP without readable data: nothing more will arrive.
        CloseConnection(conn);
        continue;
      }
      if (p.revents & POLLOUT) HandleWritable(conn);
    }

    DrainCompletions();
  }

  // Teardown: every remaining socket closes (in-flight completions detach).
  while (!conns_.empty()) {
    CloseConnection(conns_.begin()->second);
  }
}

}  // namespace server
}  // namespace tierbase
