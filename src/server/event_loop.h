// The network front end's reactor: a poll(2)-based event loop (portable —
// no epoll/kqueue dependency) multiplexing a nonblocking listener, a
// self-pipe wakeup channel, and N nonblocking client connections with
// per-connection read/write buffers.
//
// Pipelining model. The loop parses every complete RESP command sitting in
// a connection's read buffer and hands them to the dispatcher as ONE
// batch; while that batch is in flight the loop keeps reading (and
// buffering) but does not dispatch again for that connection, so all
// commands arriving during execution coalesce into the next batch. A
// client that pipelines N GETs therefore reaches the engine as one
// N-command batch, which the command layer turns into one MultiGet. This
// is the mechanism that makes the paper's single event-loop thread
// (§4.4 kSingle) efficient: batch depth grows exactly when the server
// falls behind.
//
// Threading. The loop itself is single-threaded. The dispatcher runs
// batches elsewhere (the Server submits them to an ElasticExecutor) and
// completes them from any thread via Connection::CompleteBatch(), which
// enqueues the replies and wakes the loop through the self-pipe. Per-batch
// ordering per connection is guaranteed by the one-in-flight rule.

#ifndef TIERBASE_SERVER_EVENT_LOOP_H_
#define TIERBASE_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "server/resp.h"

namespace tierbase {
namespace server {

struct EventLoopOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  uint16_t port = 0;
  int backlog = 128;
  /// A connection whose unparsed input exceeds this is dropped (a client
  /// streaming an over-long frame or garbage without newlines).
  size_t max_read_buffer = 64u << 20;
  /// Run() wakes at least this often to evaluate shutdown deadlines.
  int poll_interval_ms = 100;
  /// After Stop()/SHUTDOWN, pending replies get this long to flush.
  uint64_t drain_deadline_micros = 2'000'000;

  // --- Overload protection (see README "Fault tolerance"). ---
  /// 0 = unlimited. Accepts past this many live connections are answered
  /// with "-ERR max clients reached" and closed instead of admitted.
  size_t max_connections = 0;
  /// A connection whose pending replies exceed this is disconnected (a
  /// slow consumer must not buffer the server's memory without bound).
  size_t max_out_buffer = 64u << 20;
  /// 0 = unlimited. While this many dispatch batches are in flight across
  /// all connections, newly parsed commands are shed with "-BUSY" instead
  /// of queueing behind them.
  size_t max_dispatch_inflight = 0;
};

class EventLoop;

/// One parsed pipeline batch. Owns the raw request bytes; the command
/// Slices alias `raw`, so the batch can travel to another thread without
/// copying any argument.
struct CommandBatch {
  /// Heap array, not std::string: the Slices in `cmds` point into it and
  /// the batch is moved several times on its way to the executor. An
  /// SSO-small string (e.g. a lone PING, 14 bytes) would relocate its
  /// bytes on every move and leave the Slices dangling into dead stack
  /// frames; a unique_ptr's pointee never moves.
  std::unique_ptr<char[]> raw;
  std::vector<RespCommand> cmds;
  /// Loop-thread time spent parsing/packaging this batch (PERF kParse).
  uint64_t parse_micros = 0;
};

/// Per-connection state. The loop thread owns the socket and the buffers;
/// dispatcher threads interact only through CompleteBatch().
class Connection {
 public:
  Connection(EventLoop* loop, int fd, uint64_t id);

  uint64_t id() const { return id_; }

  /// Opaque per-connection slot for the dispatcher (the Server parks the
  /// connection's PERF tracing state here). Only dispatcher tasks touch
  /// it, and those are serialized by the one-batch-in-flight rule.
  std::shared_ptr<void> dispatcher_state;

  /// Delivers the replies for the in-flight batch. Safe from any thread,
  /// including after the peer (or the whole loop) has gone away — the
  /// output is then discarded. `close_after` closes the connection once
  /// the replies are flushed; `shutdown_server` additionally stops the
  /// loop (SHUTDOWN command).
  void CompleteBatch(std::string&& output, bool close_after,
                     bool shutdown_server);

 private:
  friend class EventLoop;

  EventLoop* const loop_;
  const int fd_;
  const uint64_t id_;

  // --- Loop-thread state. ---
  std::string in_buf;    // Unparsed request bytes.
  std::string out_buf;   // Encoded replies awaiting write().
  bool busy = false;     // A dispatch batch is in flight.
  bool closing = false;  // Close once out_buf drains.

  // --- Cross-thread completion slot. ---
  common::Mutex mu_;
  std::string done_output_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;
  bool done_close_ GUARDED_BY(mu_) = false;
  bool detached_ GUARDED_BY(mu_) = false;  // Loop dropped the connection
                                           // (peer died).
};

class EventLoop {
 public:
  /// The dispatcher receives each parsed batch on the loop thread and must
  /// (eventually, from any thread) call conn->CompleteBatch exactly once.
  using Dispatcher =
      std::function<void(std::shared_ptr<Connection> conn, CommandBatch batch)>;

  EventLoop(EventLoopOptions options, Dispatcher dispatcher);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds and listens; after success port() returns the bound port.
  Status Listen();
  uint16_t port() const { return port_; }

  /// Runs until Stop() (or a SHUTDOWN completion). Call on a dedicated
  /// thread; returns after all sockets are closed.
  void Run();

  /// Requests a graceful stop: pending replies are flushed (bounded by
  /// drain_deadline_micros), then every socket closes. Any thread.
  void Stop();

  // Gauges for INFO and tests.
  uint64_t connections_accepted() const { return accepted_.load(); }
  uint64_t connections_active() const { return active_.load(); }
  uint64_t batches_dispatched() const { return batches_.load(); }
  uint64_t commands_dispatched() const { return commands_.load(); }
  /// Largest command count a single dispatch batch carried (pipelining
  /// depth actually achieved).
  uint64_t max_batch_commands() const { return max_batch_.load(); }
  uint64_t protocol_errors() const { return protocol_errors_.load(); }
  uint64_t connections_rejected() const { return rejected_.load(); }
  uint64_t slow_consumer_disconnects() const { return slow_consumer_.load(); }
  uint64_t busy_shed_commands() const { return busy_shed_.load(); }
  uint64_t dispatch_inflight() const { return inflight_.load(); }

 private:
  friend class Connection;

  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Parses conn->in_buf and dispatches one batch if the connection is
  /// idle. Returns false if the connection was torn down (protocol error).
  bool TryDispatch(const std::shared_ptr<Connection>& conn);
  /// Collects completed batches (from the completion slots) into write
  /// buffers and re-dispatches buffered pipeline input.
  void DrainCompletions();
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Writes one byte into the self-pipe; any thread.
  void Notify();

  EventLoopOptions options_;
  Dispatcher dispatcher_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;

  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Completion queue: connections whose batch finished (loop scans their
  // slots).
  common::Mutex completions_mu_;
  std::vector<std::weak_ptr<Connection>> completions_
      GUARDED_BY(completions_mu_);

  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> rejected_{0};       // max_connections rejects.
  std::atomic<uint64_t> slow_consumer_{0};  // out_buf cap disconnects.
  std::atomic<uint64_t> busy_shed_{0};      // Commands answered -BUSY.
  std::atomic<uint64_t> inflight_{0};       // Batches dispatched, not done.
};

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_EVENT_LOOP_H_
