// The network front end's multi-reactor core. EventLoop is the facade over
// N IoShard reactors (io_shard.h): epoll edge-triggered loops on Linux,
// poll(2) elsewhere, sized by EventLoopOptions::io_threads.
//
//                       ┌─ IoShard 0 ── owns conns {a, d, ...}
//   listener ─ accept ──┼─ IoShard 1 ── owns conns {b, e, ...}
//   (shard 0, or one    └─ IoShard 2 ── owns conns {c, f, ...}
//    SO_REUSEPORT
//    listener per shard)
//
// Accepts land on shard 0 (or on every shard under SO_REUSEPORT) and are
// distributed round-robin or least-connections; from then on a connection
// belongs to exactly one loop — its buffers, parser state and reply queue
// are touched only by that loop's thread, so the read → parse → dispatch →
// write path never takes a cross-loop lock. Batches still execute on the
// shared ElasticExecutor; completions come home to the owning loop through
// the per-connection completion slot plus an eventfd (Linux) / self-pipe
// wakeup.
//
// With io_threads == 1 (the default) this is exactly the classic
// single-reactor server: one loop, one listener, identical semantics.
//
// Stop()/SHUTDOWN quiesces every loop: each shard stops accepting, drains
// its in-flight batches and pending replies (bounded by
// drain_deadline_micros), then Run() joins the shard threads and returns.

#ifndef TIERBASE_SERVER_EVENT_LOOP_H_
#define TIERBASE_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/io_shard.h"

namespace tierbase {
namespace server {

class EventLoop {
 public:
  /// The dispatcher receives each parsed batch on the owning loop's thread
  /// and must (eventually, from any thread) call conn->CompleteBatch
  /// exactly once. With io_threads > 1 it runs concurrently on several
  /// loop threads, so it must be thread-safe.
  using Dispatcher =
      std::function<void(std::shared_ptr<Connection> conn, CommandBatch batch)>;

  EventLoop(EventLoopOptions options, Dispatcher dispatcher);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the shards and binds the listener(s); after success port()
  /// returns the bound port (shared by every SO_REUSEPORT listener).
  Status Listen();
  uint16_t port() const { return port_; }

  /// Runs until Stop() (or a SHUTDOWN completion): shards 1..N-1 get
  /// dedicated threads, shard 0 runs on the calling thread. Returns after
  /// every shard drained and all sockets closed.
  void Run();

  /// Requests a graceful stop of EVERY loop: pending replies are flushed
  /// (bounded by drain_deadline_micros), then every socket closes. Any
  /// thread; async-signal-safe (atomic stores + wakeup-fd writes only).
  void Stop();

  /// Number of reactor shards actually running (after Listen()).
  int io_threads() const { return static_cast<int>(shards_.size()); }
  size_t shard_count() const { return shards_.size(); }
  /// Per-loop instruments (INFO per-loop block, tests). Valid after
  /// Listen(); index < shard_count().
  const IoShard* shard(size_t i) const { return shards_[i].get(); }
  /// "epoll" or "poll" — the backend the shards run.
  const char* backend() const {
    return shards_.empty() ? "unbound" : shards_[0]->backend();
  }

  // Gauges for INFO and tests — aggregated across all shards.
  uint64_t connections_accepted() const;
  uint64_t connections_active() const { return active_.load(); }
  uint64_t batches_dispatched() const;
  uint64_t commands_dispatched() const;
  /// Largest command count a single dispatch batch carried (pipelining
  /// depth actually achieved, max over shards).
  uint64_t max_batch_commands() const;
  uint64_t protocol_errors() const;
  uint64_t connections_rejected() const;
  uint64_t slow_consumer_disconnects() const;
  uint64_t busy_shed_commands() const;
  uint64_t dispatch_inflight() const;
  /// Total wakeup-channel fires across all loops (per-loop: shard(i)).
  uint64_t loop_wakeups() const;

 private:
  friend class Connection;
  friend class IoShard;

  // --- Services IoShard uses (all thread-safe). ---
  void DispatchBatch(const std::shared_ptr<Connection>& conn,
                     CommandBatch&& batch) {
    dispatcher_(conn, std::move(batch));
  }
  /// Global admission control (max_connections spans all loops). True =
  /// admitted; pair with ReleaseConnection().
  bool TryAdmitConnection();
  void ReleaseConnection();
  /// Picks the loop that will own a freshly accepted connection. Under
  /// SO_REUSEPORT the kernel already distributed the accept, so the
  /// accepting shard keeps it.
  IoShard* PickShard(IoShard* accepting);

  EventLoopOptions options_;
  Dispatcher dispatcher_;
  std::vector<std::unique_ptr<IoShard>> shards_;
  uint16_t port_ = 0;
  bool reuseport_ = false;  // Effective mode (requested AND supported).

  std::atomic<uint64_t> active_{0};   // Admitted, not yet closed. Global.
  std::atomic<uint64_t> rr_next_{0};  // Round-robin accept cursor.
};

}  // namespace server
}  // namespace tierbase

#endif  // TIERBASE_SERVER_EVENT_LOOP_H_
