// PmemDevice: a simulated byte-addressable persistent memory device.
//
// The paper evaluates TierBase on Intel Optane DCPMM (App Direct mode).
// That hardware is unavailable here, so we model the two properties the
// cost-model experiments depend on:
//   1. Latency/bandwidth between DRAM and SSD: loads ~3x DRAM latency,
//      stores ~8x, bandwidth a fraction of DRAM (defaults follow published
//      Optane measurements; all knobs configurable).
//   2. Persistence: contents survive "crashes". An optional backing file is
//      flushed on Persist(), and a fresh PmemDevice on the same file
//      recovers the bytes — letting tests exercise real recovery paths.
//
// The space-cost side (PMem cheaper per GB than DRAM) is modeled in the
// cost model via ResourceInstance pricing, not here.

#ifndef TIERBASE_PMEM_PMEM_DEVICE_H_
#define TIERBASE_PMEM_PMEM_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

struct PmemOptions {
  size_t capacity = 64 << 20;  // 64 MiB default device.
  /// Extra latency injected per operation, emulating media access.
  uint32_t read_latency_ns = 170;   // ~3x DRAM random load.
  uint32_t write_latency_ns = 500;  // Write path is markedly slower.
  /// Sustained bandwidth caps (bytes/sec); 0 disables the bandwidth term.
  uint64_t read_bandwidth = 6ULL << 30;   // 6 GB/s.
  uint64_t write_bandwidth = 2ULL << 30;  // 2 GB/s.
  /// When false, no latency is injected (fast unit tests).
  bool inject_latency = true;
  /// Optional backing file enabling crash/recovery simulation.
  std::string backing_file;
};

class PmemDevice {
 public:
  /// Creates the device; if options.backing_file exists, its contents are
  /// loaded (recovery after "crash").
  static Result<std::unique_ptr<PmemDevice>> Create(const PmemOptions& options);

  ~PmemDevice();

  size_t capacity() const { return options_.capacity; }

  /// Reads n bytes at offset into out. Injects read latency.
  Status Read(uint64_t offset, size_t n, char* out) const;
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  /// Writes data at offset. Injects write latency. Data is NOT durable
  /// until Persist() covers the range (mirrors clwb/fence semantics).
  Status Write(uint64_t offset, const Slice& data);

  /// Makes [offset, offset+n) durable (flush to backing file when present).
  Status Persist(uint64_t offset, size_t n);

  /// Simulates a crash: drops all non-persisted bytes. Tests only.
  void CrashForTesting();

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t persists = 0;
  };
  Stats GetStats() const;

 private:
  explicit PmemDevice(const PmemOptions& options);

  Status LoadBackingFile();
  void InjectLatency(uint32_t base_ns, uint64_t bytes, uint64_t bandwidth) const;

  PmemOptions options_;
  std::vector<char> mem_;        // "Media" contents (post-flush state).
  std::vector<char> volatile_;   // Store buffer: written but not persisted.
  std::vector<bool> dirty_;      // Page-granular dirty map (4 KiB pages).
  int backing_fd_ = -1;

  mutable std::atomic<uint64_t> reads_{0};
  mutable std::atomic<uint64_t> writes_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  mutable std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> persists_{0};
};

}  // namespace tierbase

#endif  // TIERBASE_PMEM_PMEM_DEVICE_H_
