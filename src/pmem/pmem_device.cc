#include "pmem/pmem_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace tierbase {

namespace {
constexpr size_t kPageSize = 4096;

// Busy-wait for ns (sleep syscalls are far too coarse at these scales).
inline void SpinNanos(uint64_t ns) {
  if (ns == 0) return;
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}
}  // namespace

Result<std::unique_ptr<PmemDevice>> PmemDevice::Create(
    const PmemOptions& options) {
  if (options.capacity == 0) {
    return Status::InvalidArgument("pmem: zero capacity");
  }
  std::unique_ptr<PmemDevice> dev(new PmemDevice(options));
  if (!options.backing_file.empty()) {
    Status s = dev->LoadBackingFile();
    if (!s.ok()) return s;
  }
  return dev;
}

PmemDevice::PmemDevice(const PmemOptions& options)
    : options_(options),
      mem_(options.capacity, 0),
      volatile_(options.capacity, 0),
      dirty_((options.capacity + kPageSize - 1) / kPageSize, false) {}

PmemDevice::~PmemDevice() {
  if (backing_fd_ >= 0) close(backing_fd_);
}

Status PmemDevice::LoadBackingFile() {
  backing_fd_ = open(options_.backing_file.c_str(), O_RDWR | O_CREAT, 0644);
  if (backing_fd_ < 0) {
    return Status::IOError("pmem: cannot open backing file " +
                           options_.backing_file);
  }
  off_t size = lseek(backing_fd_, 0, SEEK_END);
  if (size > 0) {
    size_t to_read =
        std::min(static_cast<size_t>(size), options_.capacity);
    ssize_t n = pread(backing_fd_, mem_.data(), to_read, 0);
    if (n < 0) return Status::IOError("pmem: backing file read failed");
  }
  // Recovered contents are the persisted state.
  volatile_ = mem_;
  return Status::OK();
}

void PmemDevice::InjectLatency(uint32_t base_ns, uint64_t bytes,
                               uint64_t bandwidth) const {
  if (!options_.inject_latency) return;
  uint64_t ns = base_ns;
  if (bandwidth > 0) {
    ns += bytes * 1000000000ULL / bandwidth;
  }
  SpinNanos(ns);
}

Status PmemDevice::Read(uint64_t offset, size_t n, char* out) const {
  if (offset + n > options_.capacity) {
    return Status::InvalidArgument("pmem: read out of range");
  }
  InjectLatency(options_.read_latency_ns, n, options_.read_bandwidth);
  memcpy(out, volatile_.data() + offset, n);
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  return Status::OK();
}

Status PmemDevice::Read(uint64_t offset, size_t n, std::string* out) const {
  out->resize(n);
  return Read(offset, n, out->data());
}

Status PmemDevice::Write(uint64_t offset, const Slice& data) {
  if (offset + data.size() > options_.capacity) {
    return Status::InvalidArgument("pmem: write out of range");
  }
  InjectLatency(options_.write_latency_ns, data.size(),
                options_.write_bandwidth);
  memcpy(volatile_.data() + offset, data.data(), data.size());
  for (size_t page = offset / kPageSize;
       page <= (offset + data.size() - 1) / kPageSize && data.size() > 0;
       ++page) {
    dirty_[page] = true;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status PmemDevice::Persist(uint64_t offset, size_t n) {
  if (n == 0) return Status::OK();
  if (offset + n > options_.capacity) {
    return Status::InvalidArgument("pmem: persist out of range");
  }
  // Flush cost is ~a store fence plus media write of the dirty lines.
  InjectLatency(options_.write_latency_ns, 0, 0);

  size_t first_page = offset / kPageSize;
  size_t last_page = (offset + n - 1) / kPageSize;
  for (size_t page = first_page; page <= last_page; ++page) {
    if (!dirty_[page]) continue;
    size_t page_off = page * kPageSize;
    size_t page_len = std::min(kPageSize, options_.capacity - page_off);
    memcpy(mem_.data() + page_off, volatile_.data() + page_off, page_len);
    if (backing_fd_ >= 0) {
      ssize_t w = pwrite(backing_fd_, mem_.data() + page_off, page_len,
                         static_cast<off_t>(page_off));
      if (w < 0) return Status::IOError("pmem: backing file write failed");
    }
    dirty_[page] = false;
  }
  persists_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void PmemDevice::CrashForTesting() {
  // All non-persisted stores are lost.
  volatile_ = mem_;
  std::fill(dirty_.begin(), dirty_.end(), false);
}

PmemDevice::Stats PmemDevice::GetStats() const {
  Stats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.persists = persists_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tierbase
