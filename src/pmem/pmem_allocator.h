// PmemAllocator: size-class allocator over a PmemDevice region, used by the
// cache engine's DRAM/PMem split placement (paper §4.3: small hot keys and
// indexes stay in DRAM; larger values live in PMem).

#ifndef TIERBASE_PMEM_PMEM_ALLOCATOR_H_
#define TIERBASE_PMEM_PMEM_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "pmem/pmem_device.h"

namespace tierbase {

/// Offset-based allocation handle; kInvalidPmemPtr means "not allocated".
using PmemPtr = uint64_t;
constexpr PmemPtr kInvalidPmemPtr = ~0ULL;

class PmemAllocator {
 public:
  /// Manages [region_start, region_start + region_size) of `device`.
  /// The device must outlive the allocator.
  PmemAllocator(PmemDevice* device, uint64_t region_start,
                uint64_t region_size);

  /// Allocates `size` bytes; returns kInvalidPmemPtr when out of space.
  PmemPtr Allocate(size_t size);

  /// Frees an allocation previously returned by Allocate with this size.
  void Free(PmemPtr ptr, size_t size);

  /// Convenience: allocate + write + persist. Returns kInvalidPmemPtr on
  /// allocation failure.
  PmemPtr Store(const Slice& data);
  Status Load(PmemPtr ptr, size_t size, std::string* out) const;

  uint64_t bytes_in_use() const {
    common::MutexLock lock(&mu_);
    return bytes_in_use_;
  }
  uint64_t region_size() const { return region_size_; }
  PmemDevice* device() const { return device_; }

 private:
  static constexpr int kNumClasses = 24;  // 16 B ... 128 MiB, power of two.
  static int ClassFor(size_t size);
  static size_t ClassSize(int cls);

  PmemDevice* device_;
  uint64_t region_start_;
  uint64_t region_size_;

  mutable common::Mutex mu_;
  uint64_t bump_ GUARDED_BY(mu_);  // Next never-used offset.
  std::vector<std::vector<uint64_t>> free_lists_
      GUARDED_BY(mu_);  // Per size class.
  uint64_t bytes_in_use_ GUARDED_BY(mu_) = 0;
};

}  // namespace tierbase

#endif  // TIERBASE_PMEM_PMEM_ALLOCATOR_H_
