#include "pmem/pmem_allocator.h"

#include <algorithm>

namespace tierbase {

PmemAllocator::PmemAllocator(PmemDevice* device, uint64_t region_start,
                             uint64_t region_size)
    : device_(device),
      region_start_(region_start),
      region_size_(region_size),
      bump_(region_start),
      free_lists_(kNumClasses) {}

int PmemAllocator::ClassFor(size_t size) {
  if (size <= 16) return 0;
  int bits = 64 - __builtin_clzll(static_cast<uint64_t>(size - 1));
  return std::min(kNumClasses - 1, bits - 4);  // Class 0 = 2^4 bytes.
}

size_t PmemAllocator::ClassSize(int cls) { return 16ULL << cls; }

PmemPtr PmemAllocator::Allocate(size_t size) {
  if (size == 0) return kInvalidPmemPtr;
  int cls = ClassFor(size);
  size_t block = ClassSize(cls);

  common::MutexLock lock(&mu_);
  if (!free_lists_[cls].empty()) {
    PmemPtr ptr = free_lists_[cls].back();
    free_lists_[cls].pop_back();
    bytes_in_use_ += block;
    return ptr;
  }
  if (bump_ + block > region_start_ + region_size_) {
    return kInvalidPmemPtr;  // Region exhausted.
  }
  PmemPtr ptr = bump_;
  bump_ += block;
  bytes_in_use_ += block;
  return ptr;
}

void PmemAllocator::Free(PmemPtr ptr, size_t size) {
  if (ptr == kInvalidPmemPtr) return;
  int cls = ClassFor(size);
  common::MutexLock lock(&mu_);
  free_lists_[cls].push_back(ptr);
  bytes_in_use_ -= ClassSize(cls);
}

PmemPtr PmemAllocator::Store(const Slice& data) {
  PmemPtr ptr = Allocate(data.size());
  if (ptr == kInvalidPmemPtr) return ptr;
  if (!device_->Write(ptr, data).ok() ||
      !device_->Persist(ptr, data.size()).ok()) {
    Free(ptr, data.size());
    return kInvalidPmemPtr;
  }
  return ptr;
}

Status PmemAllocator::Load(PmemPtr ptr, size_t size, std::string* out) const {
  if (ptr == kInvalidPmemPtr) {
    return Status::InvalidArgument("pmem-alloc: invalid pointer");
  }
  return device_->Read(ptr, size, out);
}

}  // namespace tierbase
