#include "pmem/ring_buffer.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace tierbase {

PmemRingBuffer::PmemRingBuffer(PmemDevice* device)
    : device_(device), data_capacity_(device->capacity() - kHeaderSize) {}

Result<std::unique_ptr<PmemRingBuffer>> PmemRingBuffer::Open(
    PmemDevice* device) {
  if (device->capacity() <= kHeaderSize + kRecordHeader) {
    return Status::InvalidArgument("pmem-ring: device too small");
  }
  std::unique_ptr<PmemRingBuffer> ring(new PmemRingBuffer(device));

  std::string header;
  TIERBASE_RETURN_IF_ERROR(device->Read(0, kHeaderSize, &header));
  uint64_t magic = DecodeFixed64(header.data());
  {
    common::MutexLock lock(&ring->mu_);
    Status s = magic == kMagic ? ring->RecoverHeader() : ring->InitHeader();
    if (!s.ok()) return s;
  }
  return ring;
}

Status PmemRingBuffer::InitHeader() {
  head_ = tail_ = 0;
  record_count_ = 0;
  return PersistHeader();
}

Status PmemRingBuffer::RecoverHeader() {
  std::string header;
  TIERBASE_RETURN_IF_ERROR(device_->Read(0, kHeaderSize, &header));
  uint64_t capacity = DecodeFixed64(header.data() + 8);
  head_ = DecodeFixed64(header.data() + 16);
  tail_ = DecodeFixed64(header.data() + 24);
  uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(header.data() + 32));
  uint32_t actual_crc = crc32c::Value(header.data(), 32);
  if (stored_crc != actual_crc) {
    return Status::Corruption("pmem-ring: header crc mismatch");
  }
  if (capacity != data_capacity_) {
    return Status::Corruption("pmem-ring: capacity changed");
  }

  // Count and validate the resident records; truncate at first corruption
  // (a record whose append didn't complete before the crash).
  record_count_ = 0;
  uint64_t pos = head_;
  while (pos < tail_) {
    std::string rec_header;
    Status s = ReadCircular(pos, kRecordHeader, &rec_header);
    if (!s.ok()) break;
    uint32_t crc = crc32c::Unmask(DecodeFixed32(rec_header.data()));
    uint32_t len = DecodeFixed32(rec_header.data() + 4);
    if (len == 0) {  // Wrap filler.
      uint64_t to_end = data_capacity_ - (pos % data_capacity_);
      pos += to_end;
      continue;
    }
    if (pos + kRecordHeader + len > tail_) break;
    std::string payload;
    s = ReadCircular(pos + kRecordHeader, len, &payload);
    if (!s.ok() || crc32c::Value(payload.data(), payload.size()) != crc) {
      break;
    }
    ++record_count_;
    pos += kRecordHeader + len;
  }
  tail_ = pos;
  return PersistHeader();
}

Status PmemRingBuffer::PersistHeader() {
  std::string header(kHeaderSize, '\0');
  EncodeFixed64(header.data(), kMagic);
  EncodeFixed64(header.data() + 8, data_capacity_);
  EncodeFixed64(header.data() + 16, head_);
  EncodeFixed64(header.data() + 24, tail_);
  EncodeFixed32(header.data() + 32,
                crc32c::Mask(crc32c::Value(header.data(), 32)));
  TIERBASE_RETURN_IF_ERROR(device_->Write(0, header));
  return device_->Persist(0, kHeaderSize);
}

Status PmemRingBuffer::WriteCircular(uint64_t logical, const Slice& data) {
  uint64_t off = logical % data_capacity_;
  size_t first = std::min(data.size(), data_capacity_ - off);
  TIERBASE_RETURN_IF_ERROR(
      device_->Write(kHeaderSize + off, Slice(data.data(), first)));
  TIERBASE_RETURN_IF_ERROR(device_->Persist(kHeaderSize + off, first));
  if (first < data.size()) {
    Slice rest(data.data() + first, data.size() - first);
    TIERBASE_RETURN_IF_ERROR(device_->Write(kHeaderSize, rest));
    TIERBASE_RETURN_IF_ERROR(device_->Persist(kHeaderSize, rest.size()));
  }
  return Status::OK();
}

Status PmemRingBuffer::ReadCircular(uint64_t logical, size_t n,
                                    std::string* out) const {
  uint64_t off = logical % data_capacity_;
  size_t first = std::min(n, data_capacity_ - off);
  TIERBASE_RETURN_IF_ERROR(device_->Read(kHeaderSize + off, first, out));
  if (first < n) {
    std::string rest;
    TIERBASE_RETURN_IF_ERROR(device_->Read(kHeaderSize, n - first, &rest));
    out->append(rest);
  }
  return Status::OK();
}

Status PmemRingBuffer::Append(const Slice& record) {
  if (record.empty()) return Status::InvalidArgument("pmem-ring: empty record");
  common::MutexLock lock(&mu_);

  size_t need = kRecordHeader + record.size();
  if (need > data_capacity_) {
    return Status::InvalidArgument("pmem-ring: record larger than buffer");
  }

  // If the record header would straddle the wrap point awkwardly we could
  // split it, but WriteCircular already handles splits; only the logical
  // free-space check matters here.
  uint64_t used = tail_ - head_;
  if (used + need > data_capacity_) {
    return Status::Busy("pmem-ring: full, drain required");
  }

  std::string framed;
  framed.reserve(need);
  PutFixed32(&framed,
             crc32c::Mask(crc32c::Value(record.data(), record.size())));
  PutFixed32(&framed, static_cast<uint32_t>(record.size()));
  framed.append(record.data(), record.size());

  TIERBASE_RETURN_IF_ERROR(WriteCircular(tail_, framed));
  tail_ += framed.size();
  ++record_count_;
  return PersistHeader();
}

Status PmemRingBuffer::Drain(size_t max_records,
                             std::vector<std::string>* out) {
  out->clear();
  common::MutexLock lock(&mu_);
  uint64_t pos = head_;
  while (out->size() < max_records && pos < tail_) {
    std::string rec_header;
    TIERBASE_RETURN_IF_ERROR(ReadCircular(pos, kRecordHeader, &rec_header));
    uint32_t crc = crc32c::Unmask(DecodeFixed32(rec_header.data()));
    uint32_t len = DecodeFixed32(rec_header.data() + 4);
    std::string payload;
    TIERBASE_RETURN_IF_ERROR(ReadCircular(pos + kRecordHeader, len, &payload));
    if (crc32c::Value(payload.data(), payload.size()) != crc) {
      return Status::Corruption("pmem-ring: record crc mismatch on drain");
    }
    out->push_back(std::move(payload));
    pos += kRecordHeader + len;
  }
  head_ = pos;
  record_count_ -= out->size();
  return PersistHeader();
}

Status PmemRingBuffer::Peek(size_t max_records,
                            std::vector<std::string>* out) const {
  out->clear();
  common::MutexLock lock(&mu_);
  uint64_t pos = head_;
  while (out->size() < max_records && pos < tail_) {
    std::string rec_header;
    TIERBASE_RETURN_IF_ERROR(ReadCircular(pos, kRecordHeader, &rec_header));
    uint32_t crc = crc32c::Unmask(DecodeFixed32(rec_header.data()));
    uint32_t len = DecodeFixed32(rec_header.data() + 4);
    std::string payload;
    TIERBASE_RETURN_IF_ERROR(ReadCircular(pos + kRecordHeader, len, &payload));
    if (crc32c::Value(payload.data(), payload.size()) != crc) {
      return Status::Corruption("pmem-ring: record crc mismatch on peek");
    }
    out->push_back(std::move(payload));
    pos += kRecordHeader + len;
  }
  return Status::OK();
}

Status PmemRingBuffer::Discard(size_t n) {
  if (n == 0) return Status::OK();
  common::MutexLock lock(&mu_);
  if (n > record_count_) {
    return Status::InvalidArgument("pmem-ring: discard past resident count");
  }
  uint64_t pos = head_;
  for (size_t i = 0; i < n; ++i) {
    std::string rec_header;
    TIERBASE_RETURN_IF_ERROR(ReadCircular(pos, kRecordHeader, &rec_header));
    uint32_t len = DecodeFixed32(rec_header.data() + 4);
    pos += kRecordHeader + len;
  }
  head_ = pos;
  record_count_ -= n;
  return PersistHeader();
}

size_t PmemRingBuffer::pending() const {
  common::MutexLock lock(&mu_);
  return record_count_;
}

size_t PmemRingBuffer::free_bytes() const {
  common::MutexLock lock(&mu_);
  return data_capacity_ - static_cast<size_t>(tail_ - head_);
}

}  // namespace tierbase
