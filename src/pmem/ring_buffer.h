// PmemRingBuffer: the persistent ring buffer of paper §4.3 ("WAL files are
// first written to a PMem-based persistent ring buffer, then batch-moved to
// cloud storage"). Appends are durable per record (transaction-grained
// persistence, matching the WAL-PMem mode measured in Fig 8); a background
// drain moves committed records out in batches.
//
// On-device layout:
//   [0, kHeaderSize):  header { magic, capacity, head, tail, crc }
//   [kHeaderSize, capacity): record area (circular)
// Record framing: fixed32 masked-crc | fixed32 length | payload.
// A zero length marks a wrap-around filler.

#ifndef TIERBASE_PMEM_RING_BUFFER_H_
#define TIERBASE_PMEM_RING_BUFFER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "pmem/pmem_device.h"

namespace tierbase {

class PmemRingBuffer {
 public:
  static constexpr uint64_t kMagic = 0x54425052494e4721ULL;  // "TBPRING!"
  static constexpr size_t kHeaderSize = 64;
  static constexpr size_t kRecordHeader = 8;  // crc32 + len32.

  /// Uses the whole device. Recovers head/tail from a previously
  /// persisted header when the device was loaded from a backing file.
  static Result<std::unique_ptr<PmemRingBuffer>> Open(PmemDevice* device);

  /// Appends one record durably. Returns Busy when the buffer is full
  /// (caller should drain or apply backpressure).
  Status Append(const Slice& record);

  /// Pops up to `max_records` committed records in FIFO order into `out`
  /// and durably advances the head. This is the "batch move to cloud
  /// storage" step; the caller owns writing them to the slow tier.
  /// NOTE: the head advance is durable *before* the caller has persisted
  /// the records anywhere else — for a crash-safe hand-off use
  /// Peek() + (write + sync elsewhere) + Discard() instead.
  Status Drain(size_t max_records, std::vector<std::string>* out);

  /// Non-destructive Drain: reads up to `max_records` committed records
  /// without moving the durable head. Pair with Discard() once the
  /// records are durable in the next tier.
  Status Peek(size_t max_records, std::vector<std::string>* out) const;

  /// Durably advances the head past the first `n` resident records.
  Status Discard(size_t n);

  /// Records currently resident (committed, not yet drained).
  size_t pending() const;
  /// Bytes free for new appends.
  size_t free_bytes() const;
  size_t data_capacity() const { return data_capacity_; }

 private:
  explicit PmemRingBuffer(PmemDevice* device);

  Status InitHeader() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Status RecoverHeader() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Status PersistHeader() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  uint64_t DataOffset(uint64_t logical) const {
    return kHeaderSize + (logical % data_capacity_);
  }
  /// Writes `data` at logical position, handling wrap.
  Status WriteCircular(uint64_t logical, const Slice& data);
  Status ReadCircular(uint64_t logical, size_t n, std::string* out) const;

  PmemDevice* device_;
  size_t data_capacity_;

  mutable common::Mutex mu_;
  // Logical byte positions of the oldest record / one past the newest.
  uint64_t head_ GUARDED_BY(mu_) = 0;
  uint64_t tail_ GUARDED_BY(mu_) = 0;
  size_t record_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace tierbase

#endif  // TIERBASE_PMEM_RING_BUFFER_H_
