#include "workload/recorder.h"

namespace tierbase {
namespace workload {

void RecordingEngine::Record(OpType type, const Slice& key) {
  common::MutexLock lock(&mu_);
  std::string k = key.ToString();
  auto [it, inserted] = key_index_.emplace(k, keys_.size());
  if (inserted) keys_.push_back(k);
  ops_.push_back({type, it->second});
}

Trace RecordingEngine::ToTrace(const DatasetOptions& dataset) const {
  common::MutexLock lock(&mu_);
  Trace trace;
  trace.ops = ops_;
  trace.key_space = keys_.size();
  trace.dataset = dataset;
  return trace;
}

std::vector<std::string> RecordingEngine::Keys() const {
  common::MutexLock lock(&mu_);
  return keys_;
}

}  // namespace workload
}  // namespace tierbase
