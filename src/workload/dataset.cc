#include "workload/dataset.h"

#include <array>
#include <cstdio>

#include "common/hash.h"

namespace tierbase {
namespace workload {

namespace {

// Vocabulary pools shared across records — the source of the cross-record
// redundancy that dictionary and pattern compression exploit.
constexpr std::array<const char*, 16> kCountries = {
    "CN", "US", "IN", "BR", "RU", "JP", "DE", "FR",
    "GB", "IT", "AU", "CA", "KR", "ES", "MX", "ID"};
constexpr std::array<const char*, 12> kTimezones = {
    "Asia/Shanghai",    "America/New_York", "Asia/Kolkata",
    "America/Sao_Paulo", "Europe/Moscow",   "Asia/Tokyo",
    "Europe/Berlin",     "Europe/Paris",    "Europe/London",
    "Australia/Sydney",  "America/Toronto", "Asia/Seoul"};
constexpr std::array<const char*, 12> kFeatureCodes = {
    "PPL", "PPLA", "PPLA2", "PPLA3", "PPLC", "PPLX",
    "ADM1", "ADM2", "ADM3", "ADM4", "LK",   "MT"};
constexpr std::array<const char*, 10> kSyllables = {
    "an", "ber", "chi", "dor", "el", "fan", "gra", "hol", "ing", "jo"};
constexpr std::array<const char*, 8> kChannels = {
    "alipay", "wechat", "unionpay", "visa", "master", "bank", "cash", "card"};
constexpr std::array<const char*, 8> kStatuses = {
    "SUCCESS", "PENDING", "FAILED", "TIMEOUT",
    "REVERSED", "SETTLED", "FROZEN", "REFUND"};

std::string MakeName(Random* rng, int syllables) {
  std::string name;
  for (int i = 0; i < syllables; ++i) {
    name += kSyllables[rng->Uniform(kSyllables.size())];
  }
  name[0] = static_cast<char>(name[0] - 'a' + 'A');
  return name;
}

std::string MakeCitiesRecord(Random* rng, uint64_t index, size_t mean_bytes) {
  // geonames-like TSV: id, name, asciiname, lat, lon, feature, country,
  // population, elevation, timezone, moddate.
  char buf[512];
  std::string name = MakeName(rng, 2 + static_cast<int>(rng->Uniform(3)));
  double lat = (rng->NextDouble() - 0.5) * 180.0;
  double lon = (rng->NextDouble() - 0.5) * 360.0;
  int len = snprintf(
      buf, sizeof(buf),
      "%llu\t%s\t%s\t%.5f\t%.5f\t%s\t%s\t%llu\t%d\t%s\t2024-%02d-%02d",
      static_cast<unsigned long long>(3000000 + index), name.c_str(),
      name.c_str(), lat, lon, kFeatureCodes[rng->Uniform(kFeatureCodes.size())],
      kCountries[rng->Uniform(kCountries.size())],
      static_cast<unsigned long long>(rng->Uniform(10000000)),
      static_cast<int>(rng->Uniform(4000)),
      kTimezones[rng->Uniform(kTimezones.size())],
      static_cast<int>(1 + rng->Uniform(12)),
      static_cast<int>(1 + rng->Uniform(28)));
  std::string record(buf, static_cast<size_t>(len));
  // Pad toward the target mean with an alternate-names column (repeats the
  // city name with suffixes — realistic and compressible).
  while (record.size() + name.size() + 6 < mean_bytes) {
    record += "\t";
    record += name;
    record += kSyllables[rng->Uniform(kSyllables.size())];
  }
  return record;
}

std::string MakeKv1Record(Random* rng, uint64_t index, size_t mean_bytes) {
  // Serialized user-profile-ish object.
  char buf[640];
  int len = snprintf(
      buf, sizeof(buf),
      "{\"uid\":\"2088%012llu\",\"nick\":\"%s\",\"level\":%d,"
      "\"vip\":%s,\"score\":%llu,\"country\":\"%s\",\"timezone\":\"%s\","
      "\"last_login\":\"2025-%02d-%02dT%02d:%02d:%02dZ\","
      "\"device\":\"iPhone%d,%d\",\"app_version\":\"10.%d.%d\"",
      static_cast<unsigned long long>(index),
      MakeName(rng, 2 + static_cast<int>(rng->Uniform(2))).c_str(),
      static_cast<int>(1 + rng->Uniform(10)),
      rng->Bernoulli(0.2) ? "true" : "false",
      static_cast<unsigned long long>(rng->Uniform(1000000)),
      kCountries[rng->Uniform(kCountries.size())],
      kTimezones[rng->Uniform(kTimezones.size())],
      static_cast<int>(1 + rng->Uniform(12)),
      static_cast<int>(1 + rng->Uniform(28)),
      static_cast<int>(rng->Uniform(24)), static_cast<int>(rng->Uniform(60)),
      static_cast<int>(rng->Uniform(60)),
      static_cast<int>(12 + rng->Uniform(5)),
      static_cast<int>(1 + rng->Uniform(4)),
      static_cast<int>(rng->Uniform(9)), static_cast<int>(rng->Uniform(30)));
  std::string record(buf, static_cast<size_t>(len));
  int tag = 0;
  while (record.size() + 24 < mean_bytes) {
    char ext[64];
    int n = snprintf(ext, sizeof(ext), ",\"tag_%d\":\"%s\"", tag++,
                     kStatuses[rng->Uniform(kStatuses.size())]);
    record.append(ext, static_cast<size_t>(n));
  }
  record += "}";
  return record;
}

std::string MakeKv2Record(Random* rng, uint64_t index, size_t mean_bytes) {
  // Transaction/reconciliation-ish record: very rigid template.
  char buf[640];
  int len = snprintf(
      buf, sizeof(buf),
      "biz_order_id=2025%016llu&channel=%s&amount=%llu.%02llu&currency=CNY"
      "&status=%s&merchant_id=M%08llu&settle_batch=B2025%06llu"
      "&check_flag=%d&gmt_create=2025-%02d-%02d %02d:%02d:%02d",
      static_cast<unsigned long long>(index),
      kChannels[rng->Uniform(kChannels.size())],
      static_cast<unsigned long long>(rng->Uniform(100000)),
      static_cast<unsigned long long>(rng->Uniform(100)),
      kStatuses[rng->Uniform(kStatuses.size())],
      static_cast<unsigned long long>(rng->Uniform(100000000)),
      static_cast<unsigned long long>(rng->Uniform(1000000)),
      static_cast<int>(rng->Uniform(2)),
      static_cast<int>(1 + rng->Uniform(12)),
      static_cast<int>(1 + rng->Uniform(28)),
      static_cast<int>(rng->Uniform(24)), static_cast<int>(rng->Uniform(60)),
      static_cast<int>(rng->Uniform(60)));
  std::string record(buf, static_cast<size_t>(len));
  int leg = 0;
  while (record.size() + 40 < mean_bytes) {
    char ext[96];
    int n = snprintf(
        ext, sizeof(ext), "&leg_%d_account=6222%012llu&leg_%d_amount=%llu",
        leg, static_cast<unsigned long long>(rng->Uniform(999999999999ULL)),
        leg, static_cast<unsigned long long>(rng->Uniform(100000)));
    record.append(ext, static_cast<size_t>(n));
    ++leg;
  }
  return record;
}

std::string MakeRandomRecord(Random* rng, size_t mean_bytes) {
  size_t len = mean_bytes / 2 + rng->Uniform(mean_bytes);
  std::string record(len, '\0');
  for (auto& c : record) {
    c = static_cast<char>(rng->Uniform(256));
  }
  return record;
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCities: return "Cities";
    case DatasetKind::kKv1: return "KV1";
    case DatasetKind::kKv2: return "KV2";
    case DatasetKind::kRandom: return "Random";
  }
  return "?";
}

std::string MakeRecord(const DatasetOptions& options, uint64_t index) {
  Random rng(MixU64(options.seed) ^ MixU64(index));
  switch (options.kind) {
    case DatasetKind::kCities:
      return MakeCitiesRecord(&rng, index, options.mean_record_bytes);
    case DatasetKind::kKv1:
      return MakeKv1Record(&rng, index, options.mean_record_bytes);
    case DatasetKind::kKv2:
      return MakeKv2Record(&rng, index, options.mean_record_bytes);
    case DatasetKind::kRandom:
      return MakeRandomRecord(&rng, options.mean_record_bytes);
  }
  return "";
}

std::vector<std::string> MakeDataset(const DatasetOptions& options) {
  std::vector<std::string> records;
  records.reserve(options.num_records);
  for (uint64_t i = 0; i < options.num_records; ++i) {
    records.push_back(MakeRecord(options, i));
  }
  return records;
}

}  // namespace workload
}  // namespace tierbase
