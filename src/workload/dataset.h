// Dataset generators for the paper's evaluation inputs.
//
// The paper uses the public geonames "Cities" dataset as YCSB values and
// two proprietary machine-generated KV datasets (KV1, KV2). Neither is
// bundled offline, so we synthesize records with the statistical property
// the compression experiments depend on: records share rigid templates
// (schema boilerplate, repeated field names, enumerated vocabulary) with
// variable fields (names, numbers, coordinates). Cities-like records mimic
// geonames TSV rows; KV1/KV2 mimic serialized business objects with
// key=value fields — the "distinctive patterns within the values" the
// paper credits for PBC's edge on KV datasets.

#ifndef TIERBASE_WORKLOAD_DATASET_H_
#define TIERBASE_WORKLOAD_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace tierbase {
namespace workload {

enum class DatasetKind {
  kCities,  // Geonames-like TSV rows.
  kKv1,     // Serialized user-profile-like objects, moderate templating.
  kKv2,     // Serialized transaction-like objects, heavy templating.
  kRandom,  // Incompressible random bytes (control).
};

const char* DatasetKindName(DatasetKind kind);

struct DatasetOptions {
  DatasetKind kind = DatasetKind::kCities;
  size_t num_records = 10000;
  /// Target mean record size; actual sizes vary naturally around it.
  size_t mean_record_bytes = 160;
  uint64_t seed = 42;
};

/// Generates the i-th record deterministically (same seed → same dataset).
std::string MakeRecord(const DatasetOptions& options, uint64_t index);

/// Generates the whole dataset.
std::vector<std::string> MakeDataset(const DatasetOptions& options);

}  // namespace workload
}  // namespace tierbase

#endif  // TIERBASE_WORKLOAD_DATASET_H_
