#include "workload/trace.h"

#include <algorithm>

#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/coding.h"
#include "common/env.h"

namespace tierbase {
namespace workload {

double Trace::ReadFraction() const {
  if (ops.empty()) return 0;
  uint64_t reads = 0;
  for (const auto& op : ops) {
    if (op.type == OpType::kRead) ++reads;
  }
  return static_cast<double>(reads) / static_cast<double>(ops.size());
}

Trace SynthesizeTrace(const SynthesizeOptions& options) {
  Trace trace;
  trace.key_space = options.key_space;
  trace.dataset = options.dataset;
  trace.ops.reserve(options.num_ops);
  Random rng(options.seed);

  switch (options.profile) {
    case TraceProfile::kUserInfo: {
      // 32:1 read:write (500K updates vs 16M reads per second, §6.5),
      // Zipfian popularity over the whole user base.
      ScrambledZipfianGenerator zipf(options.key_space, options.zipfian_theta,
                                     options.seed + 1);
      const double write_fraction = 1.0 / 33.0;
      for (uint64_t i = 0; i < options.num_ops; ++i) {
        uint64_t key = zipf.Next();
        bool write = rng.Bernoulli(write_fraction);
        trace.ops.push_back({write ? OpType::kUpdate : OpType::kRead, key});
      }
      break;
    }
    case TraceProfile::kReconciliation: {
      // 1:1 read:write. Writes append new records (channel data flowing
      // in); reads hit recent writes with high probability ("recent data
      // is frequently accessed, long-term data occasionally retrieved" —
      // §6.5 observes ~80% hit rate with ~1% of the data cached). Reads
      // draw from a small recency window most of the time, with a uniform
      // tail over the history for the occasional audit look-ups.
      uint64_t next_key = 0;
      const double kRecentReadFraction = 0.85;
      const uint64_t kRecencyWindow =
          std::max<uint64_t>(1, options.key_space / 100);  // ~1% of keys.
      ZipfianGenerator recency(kRecencyWindow, 0.99, options.seed + 2);
      for (uint64_t i = 0; i < options.num_ops; ++i) {
        if (i % 2 == 0 || next_key == 0) {
          trace.ops.push_back(
              {OpType::kUpdate, next_key % options.key_space});
          ++next_key;
        } else {
          uint64_t back = rng.Bernoulli(kRecentReadFraction)
                              ? recency.Next()          // Just-written data.
                              : rng.Uniform(next_key);  // Cold audit read.
          uint64_t key = back >= next_key ? 0 : (next_key - 1 - back);
          trace.ops.push_back({OpType::kRead, key % options.key_space});
        }
      }
      break;
    }
  }
  return trace;
}

Status WriteTrace(const Trace& trace, const std::string& path) {
  std::string out;
  PutFixed64(&out, trace.key_space);
  PutFixed32(&out, static_cast<uint32_t>(trace.dataset.kind));
  PutFixed64(&out, trace.dataset.num_records);
  PutFixed64(&out, trace.dataset.mean_record_bytes);
  PutFixed64(&out, trace.dataset.seed);
  PutFixed64(&out, trace.ops.size());
  for (const auto& op : trace.ops) {
    out.push_back(static_cast<char>(op.type));
    PutVarint64(&out, op.key_index);
  }
  return env::WriteStringToFileSync(path, out);
}

Result<Trace> ReadTrace(const std::string& path) {
  std::string contents;
  Status s = env::ReadFileToString(path, &contents);
  if (!s.ok()) return s;
  Slice in(contents);
  Trace trace;
  uint64_t n = 0, kind = 0;
  uint32_t kind32 = 0;
  if (!GetFixed64(&in, &trace.key_space) || !GetFixed32(&in, &kind32) ||
      !GetFixed64(&in, &trace.dataset.num_records) ||
      !GetFixed64(&in, &n)) {
    return Status::Corruption("trace: bad header");
  }
  trace.dataset.mean_record_bytes = n;
  if (!GetFixed64(&in, &trace.dataset.seed) || !GetFixed64(&in, &n)) {
    return Status::Corruption("trace: bad header");
  }
  kind = kind32;
  trace.dataset.kind = static_cast<DatasetKind>(kind);
  trace.ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (in.empty()) return Status::Corruption("trace: truncated");
    TraceOp op;
    op.type = static_cast<OpType>(in[0]);
    in.remove_prefix(1);
    if (!GetVarint64(&in, &op.key_index)) {
      return Status::Corruption("trace: bad op");
    }
    trace.ops.push_back(op);
  }
  return trace;
}

RunResult ReplayTrace(KvEngine* engine, const Trace& trace, int threads,
                      double target_qps) {
  std::vector<std::thread> workers;
  std::vector<Histogram> histograms(static_cast<size_t>(threads));
  std::atomic<uint64_t> errors{0}, not_found{0};
  Stopwatch watch;

  // Threads claim ops from a shared cursor rather than a round-robin
  // pre-partition: no thread can run more than its one in-flight op ahead
  // of the others, preserving the trace's temporal order (and therefore
  // its recency locality) under concurrent replay.
  std::atomic<uint64_t> cursor{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      double per_thread_interval =
          target_qps > 0 ? 1e6 * threads / target_qps : 0;
      double next = static_cast<double>(Clock::Real()->NowMicros());
      for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < trace.ops.size();
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        if (per_thread_interval > 0) {
          next += per_thread_interval;
          uint64_t now = Clock::Real()->NowMicros();
          if (next > static_cast<double>(now)) {
            Clock::Real()->SleepMicros(static_cast<uint64_t>(next) - now);
          }
        }
        const TraceOp& op = trace.ops[i];
        std::string key = KeyFor(op.key_index);
        uint64_t start = Clock::Real()->NowMicros();
        Status s;
        if (op.type == OpType::kRead) {
          std::string out;
          s = engine->Get(key, &out);
        } else if (op.type == OpType::kDelete) {
          s = engine->Delete(key);
        } else {
          s = engine->Set(key, MakeRecord(trace.dataset, op.key_index));
        }
        histograms[static_cast<size_t>(t)].Add(Clock::Real()->NowMicros() -
                                               start);
        if (s.IsNotFound()) {
          not_found.fetch_add(1, std::memory_order_relaxed);
        } else if (!s.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.ops = trace.ops.size();
  result.throughput = result.seconds > 0
                          ? static_cast<double>(result.ops) / result.seconds
                          : 0;
  for (const auto& h : histograms) result.latency.Merge(h);
  result.errors = errors.load();
  result.not_found = not_found.load();
  return result;
}

double AverageReuseDistanceOps(const Trace& trace) {
  std::unordered_map<uint64_t, uint64_t> last_access;
  double total = 0;
  uint64_t count = 0;
  for (uint64_t i = 0; i < trace.ops.size(); ++i) {
    uint64_t key = trace.ops[i].key_index;
    auto it = last_access.find(key);
    if (it != last_access.end()) {
      total += static_cast<double>(i - it->second);
      ++count;
      it->second = i;
    } else {
      last_access.emplace(key, i);
    }
  }
  return count == 0 ? static_cast<double>(trace.ops.size())
                    : total / static_cast<double>(count);
}

}  // namespace workload
}  // namespace tierbase
