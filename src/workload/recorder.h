// RecordingEngine: step 1 of the cost-optimization framework (paper §5.3,
// "record a representative period of workload from production instances").
// Wraps any KvEngine and appends every operation flowing through it to a
// Trace, which WriteTrace can persist for later replay against candidate
// configurations.
//
// Key-index mapping: trace ops reference dense key indexes, so the
// recorder interns keys in arrival order. ToTrace() emits the trace; the
// interned key table can be exported to re-create the preload snapshot.

#ifndef TIERBASE_WORKLOAD_RECORDER_H_
#define TIERBASE_WORKLOAD_RECORDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/kv_engine.h"
#include "common/mutex.h"
#include "workload/trace.h"

namespace tierbase {
namespace workload {

class RecordingEngine : public KvEngine {
 public:
  /// `inner` is not owned and must outlive the recorder.
  explicit RecordingEngine(KvEngine* inner) : inner_(inner) {}

  std::string name() const override { return "recording+" + inner_->name(); }

  Status Set(const Slice& key, const Slice& value) override {
    Record(OpType::kUpdate, key);
    return inner_->Set(key, value);
  }
  Status Get(const Slice& key, std::string* value) override {
    Record(OpType::kRead, key);
    return inner_->Get(key, value);
  }
  Status Delete(const Slice& key) override {
    Record(OpType::kDelete, key);
    return inner_->Delete(key);
  }
  UsageStats GetUsage() const override { return inner_->GetUsage(); }
  Status WaitIdle() override { return inner_->WaitIdle(); }

  /// Snapshot of the recorded trace so far. `dataset` describes the value
  /// source replays should use (recorded values are not retained — the
  /// cost framework replays with representative synthetic values).
  Trace ToTrace(const DatasetOptions& dataset) const;

  /// Keys in interned order (index i is the trace's key_index i).
  std::vector<std::string> Keys() const;

  size_t recorded_ops() const {
    common::MutexLock lock(&mu_);
    return ops_.size();
  }

 private:
  void Record(OpType type, const Slice& key);

  KvEngine* inner_;
  mutable common::Mutex mu_;
  std::vector<TraceOp> ops_ GUARDED_BY(mu_);
  std::vector<std::string> keys_ GUARDED_BY(mu_);
  std::unordered_map<std::string, uint64_t> key_index_ GUARDED_BY(mu_);
};

}  // namespace workload
}  // namespace tierbase

#endif  // TIERBASE_WORKLOAD_RECORDER_H_
