#include "workload/ycsb.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/clock.h"

namespace tierbase {
namespace workload {

YcsbOptions WorkloadA() {
  YcsbOptions o;
  o.update_proportion = 0.5;
  return o;
}

YcsbOptions WorkloadB() {
  YcsbOptions o;
  o.update_proportion = 0.05;
  return o;
}

YcsbOptions WorkloadC() {
  YcsbOptions o;
  o.update_proportion = 0.0;
  return o;
}

YcsbOptions WorkloadD() {
  YcsbOptions o;
  o.update_proportion = 0.0;
  o.insert_proportion = 0.05;
  o.distribution = Distribution::kLatest;
  return o;
}

YcsbOptions WorkloadE() {
  // Scans are approximated as reads (see header); the insert fraction and
  // Zipfian popularity match the core workload definition.
  YcsbOptions o;
  o.update_proportion = 0.0;
  o.insert_proportion = 0.05;
  return o;
}

YcsbOptions WorkloadF() {
  // Read-modify-write issued as update (the read half is the same Zipfian
  // read the mix already contains).
  YcsbOptions o;
  o.update_proportion = 0.5;
  return o;
}

bool WorkloadByName(char name, YcsbOptions* out) {
  switch (name) {
    case 'a': case 'A': *out = WorkloadA(); return true;
    case 'b': case 'B': *out = WorkloadB(); return true;
    case 'c': case 'C': *out = WorkloadC(); return true;
    case 'd': case 'D': *out = WorkloadD(); return true;
    case 'e': case 'E': *out = WorkloadE(); return true;
    case 'f': case 'F': *out = WorkloadF(); return true;
    default: return false;
  }
}

std::string KeyFor(uint64_t index) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%016llu",
           static_cast<unsigned long long>(index));
  return buf;
}

YcsbGenerator::YcsbGenerator(const YcsbOptions& options, uint64_t thread_seed)
    : options_(options),
      rng_(options.seed ^ MixU64(thread_seed + 1)),
      insert_cursor_(options.record_count) {
  switch (options_.distribution) {
    case Distribution::kUniform:
      break;
    case Distribution::kZipfian:
      zipf_ = std::make_unique<ScrambledZipfianGenerator>(
          options_.record_count, options_.zipfian_theta,
          options_.seed ^ MixU64(thread_seed + 99));
      break;
    case Distribution::kLatest:
      latest_ = std::make_unique<LatestGenerator>(
          options_.record_count, options_.seed ^ MixU64(thread_seed + 99));
      break;
  }
}

Op YcsbGenerator::Next() {
  double p = rng_.NextDouble();
  OpType type;
  if (p < options_.update_proportion) {
    type = OpType::kUpdate;
  } else if (p < options_.update_proportion + options_.insert_proportion) {
    type = OpType::kInsert;
  } else {
    type = OpType::kRead;
  }

  if (type == OpType::kInsert) {
    return Op{type, insert_cursor_++};
  }
  uint64_t key_index = 0;
  switch (options_.distribution) {
    case Distribution::kUniform:
      key_index = rng_.Uniform(options_.record_count);
      break;
    case Distribution::kZipfian:
      key_index = zipf_->Next();
      break;
    case Distribution::kLatest:
      key_index = latest_->Next();
      break;
  }
  return Op{type, key_index};
}

std::string YcsbGenerator::Value(uint64_t key_index) const {
  return MakeRecord(options_.dataset, key_index);
}

namespace {

/// Simple token-less pacing: each thread sleeps to hold its per-thread rate.
class Pacer {
 public:
  Pacer(double per_thread_qps, Clock* clock)
      : interval_micros_(per_thread_qps > 0 ? 1e6 / per_thread_qps : 0),
        clock_(clock),
        next_(clock->NowMicros()) {}

  void Wait() {
    if (interval_micros_ <= 0) return;
    next_ += interval_micros_;
    uint64_t now = clock_->NowMicros();
    if (next_ > static_cast<double>(now)) {
      clock_->SleepMicros(static_cast<uint64_t>(next_) - now);
    } else if (static_cast<double>(now) - next_ > 1e6) {
      next_ = static_cast<double>(now);  // Don't accumulate unbounded debt.
    }
  }

 private:
  double interval_micros_;
  Clock* clock_;
  double next_;
};

RunResult RunThreads(
    int threads, uint64_t total_ops, double target_qps,
    const std::function<Status(int thread, uint64_t op_index)>& body) {
  std::vector<std::thread> workers;
  std::vector<Histogram> histograms(static_cast<size_t>(threads));
  std::atomic<uint64_t> errors{0}, not_found{0};

  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Pacer pacer(target_qps > 0 ? target_qps / threads : 0, Clock::Real());
      uint64_t ops_for_me = total_ops / static_cast<uint64_t>(threads) +
                            (static_cast<uint64_t>(t) <
                                     total_ops % static_cast<uint64_t>(threads)
                                 ? 1
                                 : 0);
      for (uint64_t i = 0; i < ops_for_me; ++i) {
        pacer.Wait();
        uint64_t start = Clock::Real()->NowMicros();
        Status s = body(t, i);
        histograms[static_cast<size_t>(t)].Add(Clock::Real()->NowMicros() -
                                               start);
        if (s.IsNotFound()) {
          not_found.fetch_add(1, std::memory_order_relaxed);
        } else if (!s.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.ops = total_ops;
  result.throughput =
      result.seconds > 0 ? static_cast<double>(total_ops) / result.seconds : 0;
  for (const auto& h : histograms) result.latency.Merge(h);
  result.errors = errors.load();
  result.not_found = not_found.load();
  return result;
}

/// Batched run phase: each thread slices its op stream into batches of
/// `batch_size`, splits every batch into its read and write halves and
/// issues them as one MultiGet + one MultiSet. Per-batch latency lands in
/// the histogram; errors/not-found aggregate per op.
RunResult RunBatchedPhase(KvEngine* engine, const YcsbOptions& options,
                          const RunnerOptions& runner) {
  const size_t batch_size = static_cast<size_t>(runner.batch_size);
  std::vector<std::unique_ptr<YcsbGenerator>> generators;
  for (int t = 0; t < runner.threads; ++t) {
    generators.push_back(
        std::make_unique<YcsbGenerator>(options, static_cast<uint64_t>(t)));
  }

  std::vector<std::thread> workers;
  std::vector<Histogram> histograms(static_cast<size_t>(runner.threads));
  std::atomic<uint64_t> errors{0}, not_found{0}, ops_done{0};

  Stopwatch watch;
  for (int t = 0; t < runner.threads; ++t) {
    workers.emplace_back([&, t] {
      // Throttle per batch: a batch of K ops counts K ops against the
      // per-thread share of target_qps.
      Pacer pacer(runner.target_qps > 0
                      ? runner.target_qps / runner.threads /
                            static_cast<double>(batch_size)
                      : 0,
                  Clock::Real());
      YcsbGenerator* gen = generators[static_cast<size_t>(t)].get();
      uint64_t ops_for_me =
          options.operation_count / static_cast<uint64_t>(runner.threads) +
          (static_cast<uint64_t>(t) <
                   options.operation_count %
                       static_cast<uint64_t>(runner.threads)
               ? 1
               : 0);
      // Reused across batches: the keys are stable strings, the Slices
      // point into them.
      std::vector<std::string> read_keys, write_keys, write_values;
      std::vector<Slice> rk, wk, wv;
      std::vector<std::string> read_out;
      std::vector<Status> statuses;

      uint64_t remaining = ops_for_me;
      while (remaining > 0) {
        pacer.Wait();
        const size_t this_batch =
            static_cast<size_t>(std::min<uint64_t>(remaining, batch_size));
        read_keys.clear();
        write_keys.clear();
        write_values.clear();
        for (size_t i = 0; i < this_batch; ++i) {
          Op op = gen->Next();
          if (op.type == OpType::kRead) {
            read_keys.push_back(KeyFor(op.key_index));
          } else {
            write_keys.push_back(KeyFor(op.key_index));
            write_values.push_back(gen->Value(op.key_index));
          }
        }
        rk.assign(read_keys.begin(), read_keys.end());
        wk.assign(write_keys.begin(), write_keys.end());
        wv.assign(write_values.begin(), write_values.end());

        uint64_t start = Clock::Real()->NowMicros();
        if (!rk.empty()) {
          engine->MultiGet(rk, &read_out, &statuses);
          for (const Status& s : statuses) {
            if (s.IsNotFound()) {
              not_found.fetch_add(1, std::memory_order_relaxed);
            } else if (!s.ok()) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (!wk.empty()) {
          engine->MultiSet(wk, wv, &statuses);
          for (const Status& s : statuses) {
            if (!s.ok()) errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        histograms[static_cast<size_t>(t)].Add(Clock::Real()->NowMicros() -
                                               start);
        ops_done.fetch_add(this_batch, std::memory_order_relaxed);
        remaining -= this_batch;
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.ops = ops_done.load();
  result.throughput =
      result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds
                         : 0;
  for (const auto& h : histograms) result.latency.Merge(h);
  result.errors = errors.load();
  result.not_found = not_found.load();
  return result;
}

}  // namespace

RunResult RunLoadPhase(KvEngine* engine, const YcsbOptions& options,
                       const RunnerOptions& runner) {
  if (runner.batch_size > 1) {
    // Batched load: contiguous index ranges per MultiSet call.
    const size_t batch_size = static_cast<size_t>(runner.batch_size);
    std::vector<std::thread> workers;
    std::vector<Histogram> histograms(static_cast<size_t>(runner.threads));
    std::atomic<uint64_t> errors{0};
    Stopwatch watch;
    for (int t = 0; t < runner.threads; ++t) {
      workers.emplace_back([&, t] {
        Pacer pacer(runner.target_qps > 0
                        ? runner.target_qps / runner.threads /
                              static_cast<double>(batch_size)
                        : 0,
                    Clock::Real());
        std::vector<std::string> keys, values;
        std::vector<Slice> ks, vs;
        std::vector<Status> statuses;
        for (uint64_t index = static_cast<uint64_t>(t);
             index < options.record_count;) {
          pacer.Wait();
          keys.clear();
          values.clear();
          while (keys.size() < batch_size && index < options.record_count) {
            keys.push_back(KeyFor(index));
            values.push_back(MakeRecord(options.dataset, index));
            index += static_cast<uint64_t>(runner.threads);
          }
          ks.assign(keys.begin(), keys.end());
          vs.assign(values.begin(), values.end());
          uint64_t start = Clock::Real()->NowMicros();
          engine->MultiSet(ks, vs, &statuses);
          histograms[static_cast<size_t>(t)].Add(
              Clock::Real()->NowMicros() - start);
          for (const Status& s : statuses) {
            if (!s.ok()) errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    RunResult result;
    result.seconds = watch.ElapsedSeconds();
    result.ops = options.record_count;
    result.throughput =
        result.seconds > 0
            ? static_cast<double>(result.ops) / result.seconds
            : 0;
    for (const auto& h : histograms) result.latency.Merge(h);
    result.errors = errors.load();
    return result;
  }
  return RunThreads(
      runner.threads, options.record_count, runner.target_qps,
      [&](int thread, uint64_t i) {
        uint64_t index =
            static_cast<uint64_t>(thread) +
            i * static_cast<uint64_t>(runner.threads);
        if (index >= options.record_count) index %= options.record_count;
        return engine->Set(KeyFor(index), MakeRecord(options.dataset, index));
      });
}

RunResult RunPhase(KvEngine* engine, const YcsbOptions& options,
                   const RunnerOptions& runner) {
  if (runner.batch_size > 1) {
    return RunBatchedPhase(engine, options, runner);
  }
  return RunPhaseWith(options, runner,
                      [&](const Op& op, const std::string& key,
                          const std::string& value) {
                        if (op.type == OpType::kRead) {
                          std::string out;
                          return engine->Get(key, &out);
                        }
                        if (op.type == OpType::kDelete) {
                          return engine->Delete(key);
                        }
                        return engine->Set(key, value);
                      });
}

RunResult RunPhaseWith(
    const YcsbOptions& options, const RunnerOptions& runner,
    const std::function<Status(const Op& op, const std::string& key,
                               const std::string& value)>& execute) {
  std::vector<std::unique_ptr<YcsbGenerator>> generators;
  for (int t = 0; t < runner.threads; ++t) {
    generators.push_back(
        std::make_unique<YcsbGenerator>(options, static_cast<uint64_t>(t)));
  }
  return RunThreads(
      runner.threads, options.operation_count, runner.target_qps,
      [&](int thread, uint64_t) {
        YcsbGenerator* gen = generators[static_cast<size_t>(thread)].get();
        Op op = gen->Next();
        std::string key = KeyFor(op.key_index);
        std::string value;
        if (op.type != OpType::kRead) value = gen->Value(op.key_index);
        return execute(op, key, value);
      });
}

}  // namespace workload
}  // namespace tierbase
