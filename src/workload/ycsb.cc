#include "workload/ycsb.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/clock.h"

namespace tierbase {
namespace workload {

YcsbOptions WorkloadA() {
  YcsbOptions o;
  o.update_proportion = 0.5;
  return o;
}

YcsbOptions WorkloadB() {
  YcsbOptions o;
  o.update_proportion = 0.05;
  return o;
}

YcsbOptions WorkloadC() {
  YcsbOptions o;
  o.update_proportion = 0.0;
  return o;
}

std::string KeyFor(uint64_t index) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%016llu",
           static_cast<unsigned long long>(index));
  return buf;
}

YcsbGenerator::YcsbGenerator(const YcsbOptions& options, uint64_t thread_seed)
    : options_(options),
      rng_(options.seed ^ MixU64(thread_seed + 1)),
      insert_cursor_(options.record_count) {
  switch (options_.distribution) {
    case Distribution::kUniform:
      break;
    case Distribution::kZipfian:
      zipf_ = std::make_unique<ScrambledZipfianGenerator>(
          options_.record_count, options_.zipfian_theta,
          options_.seed ^ MixU64(thread_seed + 99));
      break;
    case Distribution::kLatest:
      latest_ = std::make_unique<LatestGenerator>(
          options_.record_count, options_.seed ^ MixU64(thread_seed + 99));
      break;
  }
}

Op YcsbGenerator::Next() {
  double p = rng_.NextDouble();
  OpType type;
  if (p < options_.update_proportion) {
    type = OpType::kUpdate;
  } else if (p < options_.update_proportion + options_.insert_proportion) {
    type = OpType::kInsert;
  } else {
    type = OpType::kRead;
  }

  if (type == OpType::kInsert) {
    return Op{type, insert_cursor_++};
  }
  uint64_t key_index = 0;
  switch (options_.distribution) {
    case Distribution::kUniform:
      key_index = rng_.Uniform(options_.record_count);
      break;
    case Distribution::kZipfian:
      key_index = zipf_->Next();
      break;
    case Distribution::kLatest:
      key_index = latest_->Next();
      break;
  }
  return Op{type, key_index};
}

std::string YcsbGenerator::Value(uint64_t key_index) const {
  return MakeRecord(options_.dataset, key_index);
}

namespace {

/// Simple token-less pacing: each thread sleeps to hold its per-thread rate.
class Pacer {
 public:
  Pacer(double per_thread_qps, Clock* clock)
      : interval_micros_(per_thread_qps > 0 ? 1e6 / per_thread_qps : 0),
        clock_(clock),
        next_(clock->NowMicros()) {}

  void Wait() {
    if (interval_micros_ <= 0) return;
    next_ += interval_micros_;
    uint64_t now = clock_->NowMicros();
    if (next_ > static_cast<double>(now)) {
      clock_->SleepMicros(static_cast<uint64_t>(next_) - now);
    } else if (static_cast<double>(now) - next_ > 1e6) {
      next_ = static_cast<double>(now);  // Don't accumulate unbounded debt.
    }
  }

 private:
  double interval_micros_;
  Clock* clock_;
  double next_;
};

RunResult RunThreads(
    int threads, uint64_t total_ops, double target_qps,
    const std::function<Status(int thread, uint64_t op_index)>& body) {
  std::vector<std::thread> workers;
  std::vector<Histogram> histograms(static_cast<size_t>(threads));
  std::atomic<uint64_t> errors{0}, not_found{0};

  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Pacer pacer(target_qps > 0 ? target_qps / threads : 0, Clock::Real());
      uint64_t ops_for_me = total_ops / static_cast<uint64_t>(threads) +
                            (static_cast<uint64_t>(t) <
                                     total_ops % static_cast<uint64_t>(threads)
                                 ? 1
                                 : 0);
      for (uint64_t i = 0; i < ops_for_me; ++i) {
        pacer.Wait();
        uint64_t start = Clock::Real()->NowMicros();
        Status s = body(t, i);
        histograms[static_cast<size_t>(t)].Add(Clock::Real()->NowMicros() -
                                               start);
        if (s.IsNotFound()) {
          not_found.fetch_add(1, std::memory_order_relaxed);
        } else if (!s.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.ops = total_ops;
  result.throughput =
      result.seconds > 0 ? static_cast<double>(total_ops) / result.seconds : 0;
  for (const auto& h : histograms) result.latency.Merge(h);
  result.errors = errors.load();
  result.not_found = not_found.load();
  return result;
}

}  // namespace

RunResult RunLoadPhase(KvEngine* engine, const YcsbOptions& options,
                       const RunnerOptions& runner) {
  return RunThreads(
      runner.threads, options.record_count, runner.target_qps,
      [&](int thread, uint64_t i) {
        uint64_t index =
            static_cast<uint64_t>(thread) +
            i * static_cast<uint64_t>(runner.threads);
        if (index >= options.record_count) index %= options.record_count;
        return engine->Set(KeyFor(index), MakeRecord(options.dataset, index));
      });
}

RunResult RunPhase(KvEngine* engine, const YcsbOptions& options,
                   const RunnerOptions& runner) {
  return RunPhaseWith(options, runner,
                      [&](const Op& op, const std::string& key,
                          const std::string& value) {
                        if (op.type == OpType::kRead) {
                          std::string out;
                          return engine->Get(key, &out);
                        }
                        if (op.type == OpType::kDelete) {
                          return engine->Delete(key);
                        }
                        return engine->Set(key, value);
                      });
}

RunResult RunPhaseWith(
    const YcsbOptions& options, const RunnerOptions& runner,
    const std::function<Status(const Op& op, const std::string& key,
                               const std::string& value)>& execute) {
  std::vector<std::unique_ptr<YcsbGenerator>> generators;
  for (int t = 0; t < runner.threads; ++t) {
    generators.push_back(
        std::make_unique<YcsbGenerator>(options, static_cast<uint64_t>(t)));
  }
  return RunThreads(
      runner.threads, options.operation_count, runner.target_qps,
      [&](int thread, uint64_t) {
        YcsbGenerator* gen = generators[static_cast<size_t>(thread)].get();
        Op op = gen->Next();
        std::string key = KeyFor(op.key_index);
        std::string value;
        if (op.type != OpType::kRead) value = gen->Value(op.key_index);
        return execute(op, key, value);
      });
}

}  // namespace workload
}  // namespace tierbase
