// YCSB-style workload generation and a multi-threaded runner, matching the
// paper's setup (§6.1): load phase inserts a dataset, run phase issues a
// read/update mix with Zipfian key popularity; workload A = 50% read / 50%
// update, workload B = 95% read / 5% update. Values come from the dataset
// generators (the paper adapts YCSB to take user-specified datasets).

#ifndef TIERBASE_WORKLOAD_YCSB_H_
#define TIERBASE_WORKLOAD_YCSB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/kv_engine.h"
#include "common/random.h"
#include "workload/dataset.h"

namespace tierbase {
namespace workload {

enum class Distribution {
  kUniform,
  kZipfian,
  kLatest,
};

enum class OpType : uint8_t {
  kRead = 0,
  kUpdate = 1,
  kInsert = 2,
  kDelete = 3,
};

struct Op {
  OpType type;
  uint64_t key_index;
};

struct YcsbOptions {
  /// Mix proportions; must sum to <= 1 (remainder = reads).
  double update_proportion = 0.5;
  double insert_proportion = 0.0;
  Distribution distribution = Distribution::kZipfian;
  double zipfian_theta = ZipfianGenerator::kDefaultTheta;

  uint64_t record_count = 100000;
  uint64_t operation_count = 100000;
  DatasetOptions dataset;
  uint64_t seed = 7;
};

/// Standard mixes from the YCSB core workloads. D's "read latest" uses the
/// Latest key distribution; E and F are approximated within this runner's
/// op set — E's scans are issued as reads (no range scans over the hash
/// cache tier) and F's read-modify-write as updates.
YcsbOptions WorkloadA();  // 50/50 read/update.
YcsbOptions WorkloadB();  // 95/5 read/update.
YcsbOptions WorkloadC();  // 100% read.
YcsbOptions WorkloadD();  // 95/5 read-latest/insert.
YcsbOptions WorkloadE();  // 95/5 "scan"(read)/insert.
YcsbOptions WorkloadF();  // 50/50 read/read-modify-write(update).

/// Workload by letter 'A'..'F' (case-insensitive); false if unknown.
bool WorkloadByName(char name, YcsbOptions* out);

/// Key for record i ("user################", YCSB-style fixed width).
std::string KeyFor(uint64_t index);

/// Deterministic op-stream generator (thread-safe when each thread owns
/// its own generator instance with a distinct seed).
class YcsbGenerator {
 public:
  explicit YcsbGenerator(const YcsbOptions& options, uint64_t thread_seed = 0);

  Op Next();
  std::string Value(uint64_t key_index) const;

 private:
  YcsbOptions options_;
  Random rng_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;
  std::unique_ptr<LatestGenerator> latest_;
  uint64_t insert_cursor_;
};

/// Result of one workload phase.
struct RunResult {
  double seconds = 0;
  uint64_t ops = 0;
  double throughput = 0;  // ops/sec.
  Histogram latency;      // Microseconds.
  uint64_t errors = 0;
  uint64_t not_found = 0;
};

struct RunnerOptions {
  int threads = 1;
  /// Target ops/sec across all threads; 0 = unthrottled (max throughput).
  double target_qps = 0;
  /// Ops per engine call. > 1 routes reads through MultiGet and writes
  /// through MultiSet so batched workloads exercise the engines' real
  /// batch paths; latency is then recorded per batch.
  int batch_size = 1;
};

/// Loads the dataset into `engine` (insert all records).
RunResult RunLoadPhase(KvEngine* engine, const YcsbOptions& options,
                       const RunnerOptions& runner);

/// Runs the op mix against `engine`.
RunResult RunPhase(KvEngine* engine, const YcsbOptions& options,
                   const RunnerOptions& runner);

/// Like RunPhase but drives ops through an arbitrary closure (used to push
/// work through an ElasticExecutor or a cluster client).
RunResult RunPhaseWith(
    const YcsbOptions& options, const RunnerOptions& runner,
    const std::function<Status(const Op& op, const std::string& key,
                               const std::string& value)>& execute);

}  // namespace workload
}  // namespace tierbase

#endif  // TIERBASE_WORKLOAD_YCSB_H_
