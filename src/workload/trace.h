// Operation traces: the currency of the cost optimization framework
// (paper §5.3 — "record a representative period of workload from production
// instances … replay the recorded real-world key-value operation traces").
//
// Since Ant Group's production traces are proprietary, SynthesizeTrace
// builds traces to the published statistics of the two case studies:
//   * User Info Service  (§6.5 case 1): ~32 reads per write, Zipfian
//     popularity, long average re-access interval.
//   * Capital Reconciliation (§6.5 case 2): ~1:1 read:write with strong
//     temporal skew — recent data hot, long-tail occasionally read
//     (modeled with a "latest"-shifted window over an insert stream).

#ifndef TIERBASE_WORKLOAD_TRACE_H_
#define TIERBASE_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/ycsb.h"

namespace tierbase {
namespace workload {

struct TraceOp {
  OpType type;
  uint64_t key_index;
};

struct Trace {
  std::vector<TraceOp> ops;
  uint64_t key_space = 0;       // Distinct key indexes referenced.
  DatasetOptions dataset;        // Value source for writes.

  double ReadFraction() const;
};

enum class TraceProfile {
  kUserInfo,        // Case 1: read-heavy, Zipfian.
  kReconciliation,  // Case 2: 1:1, temporal skew.
};

struct SynthesizeOptions {
  TraceProfile profile = TraceProfile::kUserInfo;
  uint64_t num_ops = 100000;
  uint64_t key_space = 20000;
  double zipfian_theta = 0.99;
  uint64_t seed = 31;
  DatasetOptions dataset;
};

Trace SynthesizeTrace(const SynthesizeOptions& options);

/// Binary trace file I/O (record/replay across processes).
Status WriteTrace(const Trace& trace, const std::string& path);
Result<Trace> ReadTrace(const std::string& path);

/// Replays a trace against an engine. `threads` split the op stream
/// round-robin. Keys must have been pre-loaded where the trace expects it.
RunResult ReplayTrace(KvEngine* engine, const Trace& trace, int threads,
                      double target_qps = 0);

/// Average re-access interval of keys in the trace, in "operations between
/// accesses" — multiplied by the replay period to give the seconds-based
/// interval that the break-even analysis (Table 3) consumes.
double AverageReuseDistanceOps(const Trace& trace);

}  // namespace workload
}  // namespace tierbase

#endif  // TIERBASE_WORKLOAD_TRACE_H_
