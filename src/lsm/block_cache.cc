#include "lsm/block_cache.h"

#include <vector>

namespace tierbase {
namespace lsm {

BlockCache::BlockCache(size_t capacity_bytes, int shards)
    : capacity_per_shard_(capacity_bytes / static_cast<size_t>(shards)),
      shards_(static_cast<size_t>(shards)) {}

std::shared_ptr<Block> BlockCache::Lookup(uint64_t file_number,
                                          uint64_t offset) {
  Key key{file_number, offset};
  Shard& shard = ShardFor(key);
  common::MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void BlockCache::Insert(uint64_t file_number, uint64_t offset,
                        std::shared_ptr<Block> block) {
  Key key{file_number, offset};
  Shard& shard = ShardFor(key);
  common::MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) return;  // Racing insert; keep existing.
  shard.charge += block->size();
  shard.lru.emplace_front(key, std::move(block));
  shard.index[key] = shard.lru.begin();
  EvictIfNeeded(shard);
}

void BlockCache::EvictIfNeeded(Shard& shard) {
  while (shard.charge > capacity_per_shard_ && !shard.lru.empty()) {
    auto& back = shard.lru.back();
    shard.charge -= back.second->size();
    shard.index.erase(back.first);
    shard.lru.pop_back();
  }
}

void BlockCache::EraseFile(uint64_t file_number) {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.file_number == file_number) {
        shard.charge -= it->second->size();
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BlockCache::TotalCharge() const {
  size_t total = 0;
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard.mu);
    total += shard.charge;
  }
  return total;
}

}  // namespace lsm
}  // namespace tierbase
