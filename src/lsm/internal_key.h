// Internal key encoding for the LSM tree: user_key ++ fixed64(seq << 8 | type).
// Ordering: user key ascending, then sequence number descending, so the
// newest version of a key sorts first.

#ifndef TIERBASE_LSM_INTERNAL_KEY_H_
#define TIERBASE_LSM_INTERNAL_KEY_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace tierbase {
namespace lsm {

using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ULL << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0,
  kTypeValue = 1,
};

/// Type used when constructing seek targets: sorts before all entries with
/// the same (user_key, seq).
constexpr ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType type) {
  return (seq << 8) | type;
}

inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, ValueType type) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSequenceAndType(seq, type));
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xff);
}

/// Comparator over internal keys.
struct InternalKeyComparator {
  int operator()(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t atag = ExtractTag(a);
    uint64_t btag = ExtractTag(b);
    // Larger tag (newer) sorts first.
    if (atag > btag) return -1;
    if (atag < btag) return 1;
    return 0;
  }
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_INTERNAL_KEY_H_
