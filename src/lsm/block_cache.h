// Sharded LRU cache of decoded SST blocks, keyed by (file_number, offset).
// Charged by block byte size.

#ifndef TIERBASE_LSM_BLOCK_CACHE_H_
#define TIERBASE_LSM_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "lsm/block.h"

namespace tierbase {
namespace lsm {

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes, int shards = 8);

  std::shared_ptr<Block> Lookup(uint64_t file_number, uint64_t offset);
  void Insert(uint64_t file_number, uint64_t offset,
              std::shared_ptr<Block> block);
  /// Drops all blocks of a file (after compaction deletes it).
  void EraseFile(uint64_t file_number);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t TotalCharge() const;

 private:
  struct Key {
    uint64_t file_number;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return file_number == o.file_number && offset == o.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.file_number * 0x9E3779B97F4A7C15ULL ^
                                 k.offset);
    }
  };
  struct Shard {
    mutable common::Mutex mu;
    // Front = MRU.
    std::list<std::pair<Key, std::shared_ptr<Block>>> lru GUARDED_BY(mu);
    std::unordered_map<Key, decltype(lru)::iterator, KeyHash> index
        GUARDED_BY(mu);
    size_t charge GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& k) {
    return shards_[KeyHash()(k) % shards_.size()];
  }
  void EvictIfNeeded(Shard& shard) EXCLUSIVE_LOCKS_REQUIRED(shard.mu);

  size_t capacity_per_shard_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_BLOCK_CACHE_H_
