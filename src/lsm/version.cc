#include "lsm/version.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/env.h"

namespace tierbase {
namespace lsm {

std::vector<std::shared_ptr<FileMeta>> Version::Overlapping(
    int level, const Slice& smallest_user, const Slice& largest_user) const {
  std::vector<std::shared_ptr<FileMeta>> out;
  for (const auto& f : levels[static_cast<size_t>(level)]) {
    Slice file_smallest = ExtractUserKey(Slice(f->smallest));
    Slice file_largest = ExtractUserKey(Slice(f->largest));
    if (file_largest.compare(smallest_user) < 0) continue;
    if (file_smallest.compare(largest_user) > 0) continue;
    out.push_back(f);
  }
  return out;
}

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : levels[static_cast<size_t>(level)]) total += f->size;
  return total;
}

int Version::NumFiles() const {
  int n = 0;
  for (const auto& level : levels) n += static_cast<int>(level.size());
  return n;
}

VersionSet::VersionSet(std::string dir, BlockCache* block_cache)
    : dir_(std::move(dir)),
      block_cache_(block_cache),
      current_(std::make_shared<Version>()) {}

std::string VersionSet::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

std::string VersionSet::WalFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.wal",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

Status VersionSet::Recover() {
  std::string manifest = dir_ + "/MANIFEST";
  if (!env::FileExists(manifest)) return Status::OK();  // Fresh directory.

  auto v = std::make_shared<Version>();
  TIERBASE_RETURN_IF_ERROR(LoadManifest(v.get()));

  // Open every table referenced by the manifest.
  for (auto& level : v->levels) {
    for (auto& f : level) {
      auto table =
          Table::Open(TableFileName(f->number), f->number, block_cache_);
      if (!table.ok()) return table.status();
      f->table = *table;
      BumpFileNumber(f->number);
    }
  }
  common::MutexLock lock(&mu_);
  current_ = v;
  return Status::OK();
}

Status VersionSet::Apply(const VersionEdit& edit) {
  auto next = std::make_shared<Version>(*current());

  for (const auto& [level, number] : edit.removed) {
    auto& files = next->levels[static_cast<size_t>(level)];
    files.erase(std::remove_if(files.begin(), files.end(),
                               [number](const auto& f) {
                                 return f->number == number;
                               }),
                files.end());
  }
  for (const auto& nf : edit.added) {
    next->levels[static_cast<size_t>(nf.level)].push_back(nf.meta);
  }
  // Keep invariants: L0 ordered by file number (age), L1+ by key.
  std::sort(next->levels[0].begin(), next->levels[0].end(),
            [](const auto& a, const auto& b) { return a->number < b->number; });
  for (int level = 1; level < kNumLevels; ++level) {
    auto& files = next->levels[static_cast<size_t>(level)];
    std::sort(files.begin(), files.end(), [](const auto& a, const auto& b) {
      return Slice(a->smallest).compare(Slice(b->smallest)) < 0;
    });
  }

  TIERBASE_RETURN_IF_ERROR(SaveManifest(*next));
  common::MutexLock lock(&mu_);
  current_ = next;
  return Status::OK();
}

Status VersionSet::SaveManifest(const Version& v) {
  std::string out;
  PutFixed64(&out, next_file_number_);
  PutFixed64(&out, last_sequence_);
  for (int level = 0; level < kNumLevels; ++level) {
    const auto& files = v.levels[static_cast<size_t>(level)];
    PutVarint32(&out, static_cast<uint32_t>(files.size()));
    for (const auto& f : files) {
      PutVarint64(&out, f->number);
      PutVarint64(&out, f->size);
      PutLengthPrefixedSlice(&out, Slice(f->smallest));
      PutLengthPrefixedSlice(&out, Slice(f->largest));
    }
  }
  std::string framed;
  PutFixed32(&framed, crc32c::Mask(crc32c::Value(out.data(), out.size())));
  framed.append(out);

  std::string tmp = dir_ + "/MANIFEST.tmp";
  TIERBASE_RETURN_IF_ERROR(env::WriteStringToFileSync(tmp, framed));
  return env::RenameFile(tmp, dir_ + "/MANIFEST");
}

Status VersionSet::LoadManifest(Version* v) {
  std::string framed;
  TIERBASE_RETURN_IF_ERROR(env::ReadFileToString(dir_ + "/MANIFEST", &framed));
  if (framed.size() < 4) return Status::Corruption("manifest: too small");
  uint32_t crc = crc32c::Unmask(DecodeFixed32(framed.data()));
  Slice in(framed.data() + 4, framed.size() - 4);
  if (crc32c::Value(in.data(), in.size()) != crc) {
    return Status::Corruption("manifest: crc mismatch");
  }

  uint64_t next_file = 0, last_seq = 0;
  if (!GetFixed64(&in, &next_file) || !GetFixed64(&in, &last_seq)) {
    return Status::Corruption("manifest: bad header");
  }
  next_file_number_ = next_file;
  last_sequence_ = last_seq;

  for (int level = 0; level < kNumLevels; ++level) {
    uint32_t count = 0;
    if (!GetVarint32(&in, &count)) {
      return Status::Corruption("manifest: bad level count");
    }
    for (uint32_t i = 0; i < count; ++i) {
      auto f = std::make_shared<FileMeta>();
      Slice smallest, largest;
      if (!GetVarint64(&in, &f->number) || !GetVarint64(&in, &f->size) ||
          !GetLengthPrefixedSlice(&in, &smallest) ||
          !GetLengthPrefixedSlice(&in, &largest)) {
        return Status::Corruption("manifest: bad file entry");
      }
      f->smallest = smallest.ToString();
      f->largest = largest.ToString();
      v->levels[static_cast<size_t>(level)].push_back(std::move(f));
    }
  }
  return Status::OK();
}

}  // namespace lsm
}  // namespace tierbase
