// Lock-free-read skiplist over an Arena, LevelDB-style: one writer at a
// time (the memtable serializes writers), concurrent readers without locks.

#ifndef TIERBASE_LSM_SKIPLIST_H_
#define TIERBASE_LSM_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "common/arena.h"
#include "common/random.h"

namespace tierbase {
namespace lsm {

template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. REQUIRES: key not already present; external write mutex.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) { return next_[n].load(std::memory_order_acquire); }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrier_Next(int n) {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrier_SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

   private:
    std::atomic<Node*> next_[1];  // Over-allocated to the node's height.
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_SKIPLIST_H_
