// LsmStore: the storage-tier engine. Stands in for the paper's UCS
// (Universal Configurable Storage, an internal Ant Group LSM service) behind
// TierBase's pluggable StorageAdapter.
//
// A leveled LSM tree: writes land in the WAL and a skiplist memtable; full
// memtables become immutable and are flushed to L0 SSTs by a background
// thread; leveled compaction keeps read amplification bounded. The WAL can
// run on a file (async or per-record sync) or on simulated persistent
// memory via a durable ring buffer (the WAL-PMem mode of paper Fig 8).

#ifndef TIERBASE_LSM_LSM_STORE_H_
#define TIERBASE_LSM_LSM_STORE_H_

#include <memory>
#include <string>
#include <thread>

#include "common/kv_engine.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "lsm/block_cache.h"
#include "lsm/memtable.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "pmem/ring_buffer.h"

namespace tierbase {
namespace lsm {

enum class WalMode {
  kNone,        // No WAL (cache-like durability).
  kFile,        // File WAL, interval sync (paper's "WAL").
  kFileSync,    // File WAL, fsync per record.
  kPmem,        // PMem ring buffer front-end (paper's "WAL-PMem").
};

struct LsmOptions {
  std::string dir;
  size_t memtable_bytes = 4 << 20;
  size_t block_cache_bytes = 8 << 20;
  size_t target_file_bytes = 2 << 20;
  int l0_compaction_trigger = 4;
  uint64_t level1_max_bytes = 16 << 20;  // Level n max = level1 * 10^(n-1).
  WalMode wal_mode = WalMode::kFile;
  uint64_t wal_sync_interval_micros = 1'000'000;
  /// Required when wal_mode == kPmem; not owned.
  PmemDevice* pmem_device = nullptr;
  TableBuilderOptions table_options;
};

class LsmStore : public KvEngine {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const LsmOptions& options);
  ~LsmStore() override;

  std::string name() const override { return "lsm"; }

  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;

  /// Applies a batch of (key, value-or-tombstone) with one WAL append —
  /// the write-back flush path uses this to amortize storage-tier cost.
  struct BatchOp {
    std::string key;
    std::string value;
    bool is_delete = false;
  };
  Status ApplyBatch(const std::vector<BatchOp>& batch);

  UsageStats GetUsage() const override;
  Status WaitIdle() override;

  /// Forces a memtable flush (tests).
  Status FlushForTesting();

  struct Stats {
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t bytes_flushed = 0;
    uint64_t bytes_compacted = 0;
    uint64_t write_stalls = 0;
    // Recovery audit trail (set once by Open's WAL replay).
    uint64_t wal_records_replayed = 0;
    uint64_t wal_truncated_tails = 0;  // WALs that ended in a torn write.
    uint64_t wal_skipped_bytes = 0;    // Torn-suffix bytes dropped at tails.
  };
  Stats GetStats() const;

 private:
  explicit LsmStore(const LsmOptions& options);

  // Init and RecoverWals run strictly before bg_thread_ is spawned (the
  // store is single-threaded during Open), so they touch guarded members
  // without mu_; the analysis is disabled for them rather than taking an
  // uncontended lock around a recovery that calls back into locking code.
  Status Init() NO_THREAD_SAFETY_ANALYSIS;
  Status RecoverWals() NO_THREAD_SAFETY_ANALYSIS;
  Status ReplayWalRecord(const Slice& record);
  Status WriteInternal(const Slice& key, const Slice& value, ValueType type);
  Status LogRecord(const Slice& record) EXCLUSIVE_LOCKS_REQUIRED(mu_);

  /// Rotates memtable → immutable; creates a fresh WAL.
  Status SwitchMemtable() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  void BackgroundWork();
  Status FlushImmutable();
  Status MaybeCompact();
  Status CompactLevel(int level);
  uint64_t MaxBytesForLevel(int level) const;

  LsmOptions options_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<VersionSet> versions_;

  mutable common::Mutex mu_;
  common::CondVar bg_cv_{&mu_};     // Wakes the background thread.
  common::CondVar stall_cv_{&mu_};  // Wakes stalled writers.
  std::shared_ptr<MemTable> mem_ GUARDED_BY(mu_);
  std::shared_ptr<MemTable> imm_ GUARDED_BY(mu_);  // Being flushed; or null.
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;        // WAL backing mem_.
  uint64_t imm_wal_number_ GUARDED_BY(mu_) = 0;    // WAL backing imm_.
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  std::unique_ptr<PmemRingBuffer> ring_;  // WalMode::kPmem only; set at
                                          // Open, internally synchronized.

  std::thread bg_thread_;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  bool bg_error_set_ GUARDED_BY(mu_) = false;
  Status bg_error_ GUARDED_BY(mu_);

  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_LSM_STORE_H_
