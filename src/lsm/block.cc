#include "lsm/block.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace tierbase {
namespace lsm {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  restarts_.push_back(0);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t unshared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(unshared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, unshared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, unshared);
  ++counter_;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) PutFixed32(&buffer_, restart);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

Block::Block(std::string contents) : contents_(std::move(contents)) {
  if (contents_.size() < 4) {
    num_restarts_ = 0;
    restarts_offset_ = 0;
    return;
  }
  num_restarts_ = DecodeFixed32(contents_.data() + contents_.size() - 4);
  restarts_offset_ =
      static_cast<uint32_t>(contents_.size() - 4 - 4 * num_restarts_);
}

Block::Iterator::Iterator(const Block* block)
    : block_(block),
      num_restarts_(block->num_restarts_),
      restarts_offset_(block->restarts_offset_),
      current_(restarts_offset_),
      next_(restarts_offset_) {}

uint32_t Block::Iterator::RestartPoint(uint32_t index) const {
  return DecodeFixed32(block_->contents_.data() + restarts_offset_ + 4 * index);
}

void Block::Iterator::SeekToRestart(uint32_t index) {
  key_.clear();
  next_ = RestartPoint(index);
  current_ = next_;
  ParseCurrent();
}

bool Block::Iterator::ParseCurrent() {
  current_ = next_;
  if (current_ >= restarts_offset_) return false;
  const char* p = block_->contents_.data() + current_;
  const char* limit = block_->contents_.data() + restarts_offset_;
  uint32_t shared = 0, unshared = 0, value_len = 0;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p == nullptr) {
    status_ = Status::Corruption("block: bad entry header");
    return false;
  }
  p = GetVarint32Ptr(p, limit, &unshared);
  if (p == nullptr) {
    status_ = Status::Corruption("block: bad entry header");
    return false;
  }
  p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr || p + unshared + value_len > limit ||
      shared > key_.size()) {
    status_ = Status::Corruption("block: bad entry");
    return false;
  }
  key_.resize(shared);
  key_.append(p, unshared);
  value_ = Slice(p + unshared, value_len);
  next_ = static_cast<uint32_t>((p + unshared + value_len) -
                                block_->contents_.data());
  return true;
}

void Block::Iterator::SeekToFirst() {
  if (num_restarts_ == 0) {
    current_ = restarts_offset_;
    return;
  }
  SeekToRestart(0);
}

void Block::Iterator::Seek(const Slice& target) {
  if (num_restarts_ == 0) {
    current_ = restarts_offset_;
    return;
  }
  InternalKeyComparator cmp;

  // Binary search over restart points: find the last restart whose key is
  // < target, then scan linearly.
  uint32_t left = 0, right = num_restarts_ - 1;
  while (left < right) {
    uint32_t mid = (left + right + 1) / 2;
    // Decode the full key at the restart (shared == 0 there).
    const char* p = block_->contents_.data() + RestartPoint(mid);
    const char* limit = block_->contents_.data() + restarts_offset_;
    uint32_t shared = 0, unshared = 0, value_len = 0;
    p = GetVarint32Ptr(p, limit, &shared);
    p = GetVarint32Ptr(p, limit, &unshared);
    p = GetVarint32Ptr(p, limit, &value_len);
    Slice restart_key(p, unshared);
    if (cmp(restart_key, target) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }

  SeekToRestart(left);
  while (Valid()) {
    if (cmp(Slice(key_), target) >= 0) return;
    Next();
  }
}

void Block::Iterator::Next() {
  assert(Valid());
  ParseCurrent();
}

}  // namespace lsm
}  // namespace tierbase
