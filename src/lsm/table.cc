#include "lsm/table.h"

#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"

namespace tierbase {
namespace lsm {

TableBuilder::TableBuilder(std::unique_ptr<WritableFile> file,
                           TableBuilderOptions options)
    : file_(std::move(file)),
      options_(options),
      data_block_(options.restart_interval),
      index_block_(1),
      bloom_(options.bloom_bits_per_key) {}

Status TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  if (smallest_.empty()) smallest_.assign(internal_key.data(),
                                          internal_key.size());
  largest_.assign(internal_key.data(), internal_key.size());

  bloom_.AddKey(ExtractUserKey(internal_key));
  data_block_.Add(internal_key, value);
  ++num_entries_;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  pending_index_key_ = data_block_.last_key();
  Slice contents = data_block_.Finish();

  uint64_t offset = file_->Size();
  TIERBASE_RETURN_IF_ERROR(file_->Append(contents));
  std::string crc;
  PutFixed32(&crc, crc32c::Mask(crc32c::Value(contents.data(), contents.size())));
  TIERBASE_RETURN_IF_ERROR(file_->Append(crc));

  std::string handle;
  PutVarint64(&handle, offset);
  PutVarint64(&handle, contents.size());
  index_block_.Add(pending_index_key_, handle);

  data_block_.Reset();
  return Status::OK();
}

Status TableBuilder::Finish() {
  assert(!finished_);
  TIERBASE_RETURN_IF_ERROR(FlushDataBlock());

  // Filter section.
  uint64_t filter_off = file_->Size();
  std::string filter = bloom_.Finish();
  TIERBASE_RETURN_IF_ERROR(file_->Append(filter));

  // Index block.
  uint64_t index_off = file_->Size();
  Slice index_contents = index_block_.Finish();
  TIERBASE_RETURN_IF_ERROR(file_->Append(index_contents));

  // Footer.
  std::string footer;
  PutFixed64(&footer, filter_off);
  PutFixed64(&footer, filter.size());
  PutFixed64(&footer, index_off);
  PutFixed64(&footer, index_contents.size());
  PutFixed64(&footer, kTableMagic);
  TIERBASE_RETURN_IF_ERROR(file_->Append(footer));

  TIERBASE_RETURN_IF_ERROR(file_->Sync());
  TIERBASE_RETURN_IF_ERROR(file_->Close());
  finished_ = true;
  return Status::OK();
}

Result<std::shared_ptr<Table>> Table::Open(const std::string& path,
                                           uint64_t file_number,
                                           BlockCache* block_cache) {
  std::shared_ptr<Table> table(new Table());
  table->file_number_ = file_number;
  table->block_cache_ = block_cache;
  Status s = env::NewRandomAccessFile(path, &table->file_);
  if (!s.ok()) return s;

  uint64_t size = table->file_->Size();
  if (size < kFooterSize) return Status::Corruption("table: too small");

  std::string footer;
  s = table->file_->Read(size - kFooterSize, kFooterSize, &footer);
  if (!s.ok()) return s;
  uint64_t filter_off = DecodeFixed64(footer.data());
  uint64_t filter_size = DecodeFixed64(footer.data() + 8);
  uint64_t index_off = DecodeFixed64(footer.data() + 16);
  uint64_t index_size = DecodeFixed64(footer.data() + 24);
  uint64_t magic = DecodeFixed64(footer.data() + 32);
  if (magic != kTableMagic) return Status::Corruption("table: bad magic");

  s = table->file_->Read(filter_off, filter_size, &table->filter_);
  if (!s.ok()) return s;

  std::string index_contents;
  s = table->file_->Read(index_off, index_size, &index_contents);
  if (!s.ok()) return s;
  table->index_ = std::make_unique<Block>(std::move(index_contents));
  return table;
}

Status Table::ReadBlockAt(uint64_t offset, uint64_t size,
                          std::shared_ptr<Block>* block) {
  if (block_cache_ != nullptr) {
    *block = block_cache_->Lookup(file_number_, offset);
    if (*block != nullptr) return Status::OK();
  }
  std::string contents;
  TIERBASE_RETURN_IF_ERROR(file_->Read(offset, size + 4, &contents));
  if (contents.size() != size + 4) {
    return Status::Corruption("table: short block read");
  }
  uint32_t stored = crc32c::Unmask(DecodeFixed32(contents.data() + size));
  contents.resize(size);
  if (crc32c::Value(contents.data(), size) != stored) {
    return Status::Corruption("table: block crc mismatch");
  }
  *block = std::make_shared<Block>(std::move(contents));
  if (block_cache_ != nullptr) {
    block_cache_->Insert(file_number_, offset, *block);
  }
  return Status::OK();
}

Status Table::Get(const Slice& user_key, SequenceNumber snapshot,
                  std::string* value, bool* is_deleted) {
  if (!BloomFilterMayMatch(filter_, user_key)) {
    return Status::NotFound("bloom");
  }

  std::string seek_key;
  AppendInternalKey(&seek_key, user_key, snapshot, kValueTypeForSeek);

  Block::Iterator index_iter(index_.get());
  index_iter.Seek(seek_key);
  if (!index_iter.Valid()) return Status::NotFound("");

  Slice handle = index_iter.value();
  uint64_t offset = 0, size = 0;
  if (!GetVarint64(&handle, &offset) || !GetVarint64(&handle, &size)) {
    return Status::Corruption("table: bad index handle");
  }

  std::shared_ptr<Block> block;
  TIERBASE_RETURN_IF_ERROR(ReadBlockAt(offset, size, &block));

  Block::Iterator data_iter(block.get());
  data_iter.Seek(seek_key);
  if (!data_iter.Valid()) return Status::NotFound("");
  Slice found = data_iter.key();
  if (ExtractUserKey(found) != user_key) return Status::NotFound("");

  if (ExtractValueType(found) == kTypeDeletion) {
    *is_deleted = true;
    return Status::OK();
  }
  *is_deleted = false;
  value->assign(data_iter.value().data(), data_iter.value().size());
  return Status::OK();
}

Table::Iterator::Iterator(Table* table)
    : table_(table),
      index_iter_(std::make_unique<Block::Iterator>(table->index_.get())) {}

bool Table::Iterator::Valid() const {
  return data_iter_ != nullptr && data_iter_->Valid();
}

void Table::Iterator::LoadBlock(uint32_t /*index_pos*/) {
  data_iter_.reset();
  data_block_.reset();
  if (!index_iter_->Valid()) return;
  Slice handle = index_iter_->value();
  uint64_t offset = 0, size = 0;
  if (!GetVarint64(&handle, &offset) || !GetVarint64(&handle, &size)) return;
  if (!table_->ReadBlockAt(offset, size, &data_block_).ok()) return;
  data_iter_ = std::make_unique<Block::Iterator>(data_block_.get());
}

void Table::Iterator::SkipEmptyBlocks() {
  while ((data_iter_ == nullptr || !data_iter_->Valid()) &&
         index_iter_->Valid()) {
    index_iter_->Next();
    if (!index_iter_->Valid()) break;
    LoadBlock(0);
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
  }
}

void Table::Iterator::SeekToFirst() {
  index_iter_->SeekToFirst();
  if (!index_iter_->Valid()) {
    data_iter_.reset();
    return;
  }
  LoadBlock(0);
  if (data_iter_ != nullptr) data_iter_->SeekToFirst();
  SkipEmptyBlocks();
}

void Table::Iterator::Seek(const Slice& internal_key) {
  index_iter_->Seek(internal_key);
  if (!index_iter_->Valid()) {
    data_iter_.reset();
    return;
  }
  LoadBlock(0);
  if (data_iter_ != nullptr) data_iter_->Seek(internal_key);
  SkipEmptyBlocks();
}

void Table::Iterator::Next() {
  assert(Valid());
  data_iter_->Next();
  SkipEmptyBlocks();
}

Slice Table::Iterator::key() const { return data_iter_->key(); }
Slice Table::Iterator::value() const { return data_iter_->value(); }

}  // namespace lsm
}  // namespace tierbase
