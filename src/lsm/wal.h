// Write-ahead log for the LSM engine and for TierBase's cache-tier
// persistence modes. Three sink flavours (paper Fig 8):
//   * file with async sync (WAL on SSD, flushed every sync_interval),
//   * file with per-record sync,
//   * PMem ring buffer with per-record persistence and background drain
//     to a file (WAL-PMem).
//
// Record framing on file sinks: fixed32 masked-crc | fixed32 len | payload.

#ifndef TIERBASE_LSM_WAL_H_
#define TIERBASE_LSM_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "pmem/ring_buffer.h"

namespace tierbase {
namespace lsm {

enum class WalSyncMode {
  kNone,         // OS-buffered only (fast, loses recent writes on crash).
  kEveryRecord,  // fsync per record.
  kInterval,     // fsync at most every sync_interval_micros.
};

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kInterval;
  uint64_t sync_interval_micros = 1'000'000;  // 1 s, as in the paper's WAL.
  Clock* clock = Clock::Real();
};

/// Append-only log writer over a file.
class WalWriter {
 public:
  /// `append` reopens an existing log and continues after its last record
  /// (the crash-safe recovery path: already-synced records stay synced).
  /// The default truncates — only correct for brand-new log files.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 const WalOptions& options,
                                                 bool append = false);
  /// Flushes buffered records to the OS on clean shutdown (interval mode
  /// buffers appends between syncs).
  ~WalWriter() {
    if (file_ != nullptr) file_->Close();
  }

  Status AddRecord(const Slice& record);
  Status Sync();
  uint64_t size() const { return file_->Size(); }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, const WalOptions& options)
      : file_(std::move(file)), options_(options) {}

  std::unique_ptr<WritableFile> file_;  // Never reseated; calls serialize
                                        // under mu_.
  WalOptions options_;
  common::Mutex mu_;
  uint64_t last_sync_micros_ GUARDED_BY(mu_) = 0;
};

/// Outcome of one WalReader::ReadRecord call. The reader distinguishes a
/// clean tail from damage, and tail damage from mid-log damage — the
/// difference between "crash mid-append, recoverable" and "acknowledged
/// data lost, surface it":
enum class WalRead {
  kOk,             // *record holds the next complete, CRC-verified record.
  kEof,            // Clean end of log: the last record ended exactly at EOF.
  kTruncatedTail,  // Partial record at the tail (torn final write). All
                   // complete records were already returned; skipped_bytes()
                   // counts the torn suffix. Recoverable: log and continue.
  kCorruption,     // CRC/framing damage before the tail — records after the
                   // damage point are unreachable. Callers must surface
                   // Status::Corruption, not silently succeed.
};

/// Sequential log reader. Complete records before any damage are always
/// returned; a torn final record never poisons replay of earlier records.
class WalReader {
 public:
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Damage outcomes are sticky: once kTruncatedTail/kCorruption is
  /// returned, every subsequent call repeats it.
  WalRead ReadRecord(std::string* record);

  uint64_t offset() const { return pos_; }          // Parse position.
  uint64_t size() const { return contents_.size(); }
  /// Bytes from the damage point to EOF (after a non-kOk/kEof outcome).
  uint64_t skipped_bytes() const { return contents_.size() - pos_; }
  /// Human-readable damage detail (after kTruncatedTail/kCorruption).
  const std::string& damage() const { return damage_; }

 private:
  explicit WalReader(std::string contents) : contents_(std::move(contents)) {}

  std::string contents_;
  size_t pos_ = 0;
  WalRead sticky_ = WalRead::kOk;  // Latched damage state.
  std::string damage_;
};

/// WAL backed by a persistent-memory ring buffer (paper §4.3): every record
/// is durable on PMem at Append return; DrainTo() batch-moves records to a
/// file-based log, freeing ring space.
class PmemWal {
 public:
  PmemWal(PmemRingBuffer* ring, WalWriter* backing_log)
      : ring_(ring), backing_log_(backing_log) {}

  /// Durable on PMem when this returns. If the ring is full, drains
  /// synchronously first (the backpressure path).
  Status AddRecord(const Slice& record);

  /// Moves up to `max_records` to the backing file log.
  Status Drain(size_t max_records = 256);

  size_t pending() const { return ring_->pending(); }

 private:
  PmemRingBuffer* ring_;
  WalWriter* backing_log_;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_WAL_H_
