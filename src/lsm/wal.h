// Write-ahead log for the LSM engine and for TierBase's cache-tier
// persistence modes. Three sink flavours (paper Fig 8):
//   * file with async sync (WAL on SSD, flushed every sync_interval),
//   * file with per-record sync,
//   * PMem ring buffer with per-record persistence and background drain
//     to a file (WAL-PMem).
//
// Record framing on file sinks: fixed32 masked-crc | fixed32 len | payload.

#ifndef TIERBASE_LSM_WAL_H_
#define TIERBASE_LSM_WAL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "pmem/ring_buffer.h"

namespace tierbase {
namespace lsm {

enum class WalSyncMode {
  kNone,         // OS-buffered only (fast, loses recent writes on crash).
  kEveryRecord,  // fsync per record.
  kInterval,     // fsync at most every sync_interval_micros.
};

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kInterval;
  uint64_t sync_interval_micros = 1'000'000;  // 1 s, as in the paper's WAL.
  Clock* clock = Clock::Real();
};

/// Append-only log writer over a file.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 const WalOptions& options);
  /// Flushes buffered records to the OS on clean shutdown (interval mode
  /// buffers appends between syncs).
  ~WalWriter() {
    if (file_ != nullptr) file_->Close();
  }

  Status AddRecord(const Slice& record);
  Status Sync();
  uint64_t size() const { return file_->Size(); }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, const WalOptions& options)
      : file_(std::move(file)), options_(options) {}

  std::unique_ptr<WritableFile> file_;
  WalOptions options_;
  std::mutex mu_;
  uint64_t last_sync_micros_ = 0;
};

/// Sequential log reader; stops at the first corrupt/truncated record.
class WalReader {
 public:
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Returns false at end-of-log.
  bool ReadRecord(std::string* record);

 private:
  explicit WalReader(std::string contents) : contents_(std::move(contents)) {}

  std::string contents_;
  size_t pos_ = 0;
};

/// WAL backed by a persistent-memory ring buffer (paper §4.3): every record
/// is durable on PMem at Append return; DrainTo() batch-moves records to a
/// file-based log, freeing ring space.
class PmemWal {
 public:
  PmemWal(PmemRingBuffer* ring, WalWriter* backing_log)
      : ring_(ring), backing_log_(backing_log) {}

  /// Durable on PMem when this returns. If the ring is full, drains
  /// synchronously first (the backpressure path).
  Status AddRecord(const Slice& record);

  /// Moves up to `max_records` to the backing file log.
  Status Drain(size_t max_records = 256);

  size_t pending() const { return ring_->pending(); }

 private:
  PmemRingBuffer* ring_;
  WalWriter* backing_log_;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_WAL_H_
