// MemTable: in-memory write buffer of the LSM tree, a skiplist over
// arena-allocated encoded entries.
//
// Entry encoding: varint32 internal_key_len | internal_key | varint32
// value_len | value, where internal_key = user_key ++ fixed64(seq<<8|type).

#ifndef TIERBASE_LSM_MEMTABLE_H_
#define TIERBASE_LSM_MEMTABLE_H_

#include <string>

#include "common/arena.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/internal_key.h"
#include "lsm/skiplist.h"

namespace tierbase {
namespace lsm {

/// Compares skiplist entries (length-prefixed internal keys).
class MemTableKeyComparator {
 public:
  int operator()(const char* a, const char* b) const;
};

class MemTable {
 public:
  MemTable() : table_(MemTableKeyComparator(), &arena_) {}
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Adds an entry. Writers must be externally serialized.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup at snapshot `seq`: returns true if the key's state is
  /// determined by this memtable — `*found_value` on kTypeValue, NotFound
  /// status via `*is_deleted` on tombstone.
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* found_value,
           bool* is_deleted) const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t num_entries() const { return num_entries_; }

  /// Ordered iteration over encoded entries (flush to SST).
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem) : iter_(&mem->table_) {}
    bool Valid() const { return iter_.Valid(); }
    void SeekToFirst() { iter_.SeekToFirst(); }
    void Seek(const Slice& internal_key);
    void Next() { iter_.Next(); }
    Slice internal_key() const;
    Slice user_key() const { return ExtractUserKey(internal_key()); }
    Slice value() const;

   private:
    friend class MemTable;
    SkipList<const char*, MemTableKeyComparator>::Iterator iter_;
    mutable std::string seek_scratch_;
  };

 private:
  friend class Iterator;

  Arena arena_;
  SkipList<const char*, MemTableKeyComparator> table_;
  uint64_t num_entries_ = 0;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_MEMTABLE_H_
