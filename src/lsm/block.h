// SST data/index blocks with prefix compression and restart points,
// following the classic LevelDB block layout:
//
//   entry*: varint32 shared_len | varint32 unshared_len | varint32 value_len
//           | unshared key bytes | value bytes
//   trailer: fixed32 restart_offset* | fixed32 num_restarts
//
// Keys within a block are internal keys in sorted order.

#ifndef TIERBASE_LSM_BLOCK_H_
#define TIERBASE_LSM_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/internal_key.h"

namespace tierbase {
namespace lsm {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing internal-key order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart trailer and returns the finished block contents.
  Slice Finish();

  void Reset();
  size_t CurrentSizeEstimate() const;
  bool empty() const { return counter_ == 0 && buffer_.empty(); }
  const std::string& last_key() const { return last_key_; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

/// Read-side view over a finished block (owns a copy of the bytes).
class Block {
 public:
  explicit Block(std::string contents);

  size_t size() const { return contents_.size(); }

  class Iterator {
   public:
    explicit Iterator(const Block* block);

    bool Valid() const { return current_ < restarts_offset_; }
    void SeekToFirst();
    /// Positions at the first entry with internal key >= target.
    void Seek(const Slice& target);
    void Next();
    Slice key() const { return Slice(key_); }
    Slice value() const { return value_; }
    Status status() const { return status_; }

   private:
    void SeekToRestart(uint32_t index);
    bool ParseCurrent();
    uint32_t RestartPoint(uint32_t index) const;

    const Block* block_;
    uint32_t num_restarts_;
    uint32_t restarts_offset_;  // Offset where the restart array begins.
    uint32_t current_;          // Offset of current entry.
    uint32_t next_;             // Offset of next entry.
    std::string key_;
    Slice value_;
    Status status_;
  };

 private:
  friend class Iterator;
  std::string contents_;
  uint32_t num_restarts_;
  uint32_t restarts_offset_;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_BLOCK_H_
