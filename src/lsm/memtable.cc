#include "lsm/memtable.h"

#include <cstring>

#include "common/coding.h"

namespace tierbase {
namespace lsm {

namespace {

/// Decodes the length-prefixed internal key of an encoded entry.
Slice GetLengthPrefixed(const char* data) {
  uint32_t len = 0;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTableKeyComparator::operator()(const char* a, const char* b) const {
  Slice ka = GetLengthPrefixed(a);
  Slice kb = GetLengthPrefixed(b);
  return InternalKeyComparator()(ka, kb);
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  const size_t ikey_size = user_key.size() + 8;
  const size_t encoded_len = VarintLength(ikey_size) + ikey_size +
                             VarintLength(value.size()) + value.size();
  char* buf = arena_.Allocate(encoded_len);
  std::string scratch;  // Small; encode through a string for clarity.
  scratch.reserve(encoded_len);
  PutVarint32(&scratch, static_cast<uint32_t>(ikey_size));
  AppendInternalKey(&scratch, user_key, seq, type);
  PutVarint32(&scratch, static_cast<uint32_t>(value.size()));
  scratch.append(value.data(), value.size());
  memcpy(buf, scratch.data(), encoded_len);
  table_.Insert(buf);
  ++num_entries_;
}

bool MemTable::Get(const Slice& user_key, SequenceNumber seq,
                   std::string* found_value, bool* is_deleted) const {
  // Seek to the first entry with this user key at or below `seq`.
  std::string seek_key;
  PutVarint32(&seek_key, static_cast<uint32_t>(user_key.size() + 8));
  AppendInternalKey(&seek_key, user_key, seq, kValueTypeForSeek);

  SkipList<const char*, MemTableKeyComparator>::Iterator iter(&table_);
  iter.Seek(seek_key.data());
  if (!iter.Valid()) return false;

  Slice ikey = GetLengthPrefixed(iter.key());
  if (ExtractUserKey(ikey) != user_key) return false;

  if (ExtractValueType(ikey) == kTypeDeletion) {
    *is_deleted = true;
    return true;
  }
  *is_deleted = false;
  // Value follows the internal key.
  const char* p = iter.key();
  uint32_t klen = 0;
  p = GetVarint32Ptr(p, p + 5, &klen);
  p += klen;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  found_value->assign(p, vlen);
  return true;
}

void MemTable::Iterator::Seek(const Slice& internal_key) {
  seek_scratch_.clear();
  PutVarint32(&seek_scratch_, static_cast<uint32_t>(internal_key.size()));
  seek_scratch_.append(internal_key.data(), internal_key.size());
  iter_.Seek(seek_scratch_.data());
}

Slice MemTable::Iterator::internal_key() const {
  return GetLengthPrefixed(iter_.key());
}

Slice MemTable::Iterator::value() const {
  const char* p = iter_.key();
  uint32_t klen = 0;
  p = GetVarint32Ptr(p, p + 5, &klen);
  p += klen;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  return Slice(p, vlen);
}

}  // namespace lsm
}  // namespace tierbase
