// Version management for the LSM tree: which SST files live at which level,
// plus manifest persistence.
//
// A Version is an immutable snapshot of the file layout; readers pin it via
// shared_ptr while the writer installs new versions copy-on-write under the
// engine mutex. The manifest is a full binary snapshot rewritten atomically
// (write temp + rename) on every version change — simpler than a log of
// edits and plenty fast at our file counts.

#ifndef TIERBASE_LSM_VERSION_H_
#define TIERBASE_LSM_VERSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "lsm/internal_key.h"
#include "lsm/table.h"

namespace tierbase {
namespace lsm {

constexpr int kNumLevels = 7;

struct FileMeta {
  uint64_t number = 0;
  uint64_t size = 0;
  std::string smallest;  // Internal keys.
  std::string largest;
  std::shared_ptr<Table> table;  // Opened lazily at version install.
};

struct Version {
  /// levels[0] may overlap and is ordered oldest → newest (by file number);
  /// levels[1..] are key-ordered and disjoint.
  std::vector<std::vector<std::shared_ptr<FileMeta>>> levels{kNumLevels};

  /// Files in `level` whose range overlaps [smallest_user, largest_user].
  std::vector<std::shared_ptr<FileMeta>> Overlapping(
      int level, const Slice& smallest_user, const Slice& largest_user) const;

  uint64_t LevelBytes(int level) const;
  int NumFiles() const;
};

/// One atomic change to the file layout.
struct VersionEdit {
  struct NewFile {
    int level;
    std::shared_ptr<FileMeta> meta;
  };
  std::vector<NewFile> added;
  std::vector<std::pair<int, uint64_t>> removed;  // (level, file number).
};

class VersionSet {
 public:
  VersionSet(std::string dir, BlockCache* block_cache);

  /// Loads the manifest (if present) and opens all referenced tables.
  Status Recover();

  /// Applies the edit, persists the manifest, installs the new version.
  /// Caller must serialize Apply calls (the engine mutex does).
  Status Apply(const VersionEdit& edit);

  std::shared_ptr<const Version> current() const {
    common::MutexLock lock(&mu_);
    return current_;
  }

  uint64_t NewFileNumber() { return next_file_number_++; }
  uint64_t next_file_number() const { return next_file_number_; }
  void BumpFileNumber(uint64_t n) {
    if (n >= next_file_number_) next_file_number_ = n + 1;
  }

  SequenceNumber last_sequence() const { return last_sequence_; }
  void set_last_sequence(SequenceNumber s) { last_sequence_ = s; }

  std::string TableFileName(uint64_t number) const;
  std::string WalFileName(uint64_t number) const;

 private:
  Status SaveManifest(const Version& v);
  Status LoadManifest(Version* v);

  std::string dir_;
  BlockCache* block_cache_;
  mutable common::Mutex mu_;
  std::shared_ptr<const Version> current_ GUARDED_BY(mu_);
  // Serialized by the engine mutex (see Apply's contract), not by mu_.
  uint64_t next_file_number_ = 1;
  SequenceNumber last_sequence_ = 0;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_VERSION_H_
