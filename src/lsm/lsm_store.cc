#include "lsm/lsm_store.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/coding.h"
#include "common/env.h"
#include "common/logging.h"

namespace tierbase {
namespace lsm {

namespace {

// WAL record payload: op (1 byte) | lp(key) | lp(value).
constexpr char kWalPut = 1;
constexpr char kWalDelete = 0;

std::string EncodeWalRecord(char op, const Slice& key, const Slice& value) {
  std::string rec;
  rec.push_back(op);
  PutLengthPrefixedSlice(&rec, key);
  PutLengthPrefixedSlice(&rec, value);
  return rec;
}

}  // namespace

LsmStore::LsmStore(const LsmOptions& options) : options_(options) {}

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const LsmOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("lsm: dir required");
  }
  if (options.wal_mode == WalMode::kPmem && options.pmem_device == nullptr) {
    return Status::InvalidArgument("lsm: WAL-PMem requires a pmem device");
  }
  std::unique_ptr<LsmStore> store(new LsmStore(options));
  Status s = store->Init();
  if (!s.ok()) return s;
  return store;
}

Status LsmStore::Init() {
  TIERBASE_RETURN_IF_ERROR(env::CreateDirIfMissing(options_.dir));
  block_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  versions_ = std::make_unique<VersionSet>(options_.dir, block_cache_.get());
  TIERBASE_RETURN_IF_ERROR(versions_->Recover());

  mem_ = std::make_shared<MemTable>();

  if (options_.wal_mode == WalMode::kPmem) {
    auto ring = PmemRingBuffer::Open(options_.pmem_device);
    if (!ring.ok()) return ring.status();
    ring_ = std::move(*ring);
  }

  TIERBASE_RETURN_IF_ERROR(RecoverWals());

  // Fresh WAL for the live memtable.
  if (options_.wal_mode != WalMode::kNone) {
    wal_number_ = versions_->NewFileNumber();
    WalOptions wal_options;
    wal_options.sync_mode = options_.wal_mode == WalMode::kFileSync
                                ? WalSyncMode::kEveryRecord
                                : WalSyncMode::kInterval;
    wal_options.sync_interval_micros = options_.wal_sync_interval_micros;
    auto wal = WalWriter::Open(versions_->WalFileName(wal_number_),
                               wal_options);
    if (!wal.ok()) return wal.status();
    wal_ = std::move(*wal);
  }

  bg_thread_ = std::thread(&LsmStore::BackgroundWork, this);
  return Status::OK();
}

LsmStore::~LsmStore() {
  {
    common::MutexLock lock(&mu_);
    shutting_down_ = true;
    bg_cv_.SignalAll();
  }
  if (bg_thread_.joinable()) bg_thread_.join();
}

Status LsmStore::RecoverWals() {
  // Replay every *.wal in numeric order, then (WAL-PMem mode) the records
  // still resident in the persistent ring buffer — they are newest.
  std::vector<std::string> names;
  TIERBASE_RETURN_IF_ERROR(env::ListDir(options_.dir, &names));
  std::vector<uint64_t> wal_numbers;
  for (const auto& name : names) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".wal") {
      wal_numbers.push_back(std::stoull(name.substr(0, name.size() - 4)));
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());

  for (size_t i = 0; i < wal_numbers.size(); ++i) {
    const uint64_t number = wal_numbers[i];
    const bool newest = i + 1 == wal_numbers.size();
    versions_->BumpFileNumber(number);
    auto reader = WalReader::Open(versions_->WalFileName(number));
    if (!reader.ok()) return reader.status();
    std::string record;
    bool done = false;
    while (!done) {
      switch ((*reader)->ReadRecord(&record)) {
        case WalRead::kOk:
          TIERBASE_RETURN_IF_ERROR(ReplayWalRecord(record));
          ++stats_.wal_records_replayed;
          break;
        case WalRead::kEof:
          done = true;
          break;
        case WalRead::kTruncatedTail:
          // Recoverable only on the newest WAL: rotation syncs a log
          // before retiring it, so a torn tail on an older WAL means
          // acknowledged data vanished.
          if (!newest) {
            return Status::Corruption(
                "wal " + versions_->WalFileName(number) +
                ": truncated before the newest log (" + (*reader)->damage() +
                ")");
          }
          TB_LOG_WARN("lsm recovery: %s: torn tail, skipping %llu bytes (%s)",
                      versions_->WalFileName(number).c_str(),
                      static_cast<unsigned long long>(
                          (*reader)->skipped_bytes()),
                      (*reader)->damage().c_str());
          ++stats_.wal_truncated_tails;
          stats_.wal_skipped_bytes += (*reader)->skipped_bytes();
          done = true;
          break;
        case WalRead::kCorruption:
          return Status::Corruption(
              "wal " + versions_->WalFileName(number) + ": " +
              (*reader)->damage() + " at offset " +
              std::to_string((*reader)->offset()));
      }
    }
  }

  size_t ring_resident = 0;
  if (ring_ != nullptr) {
    // Replay ring-resident records non-destructively: the ring's durable
    // head only advances after the flush below has made them durable in
    // an SST — a destructive drain would leave them in the volatile
    // memtable only, and a crash mid-recovery would lose them for good.
    std::vector<std::string> records;
    TIERBASE_RETURN_IF_ERROR(
        ring_->Peek(std::numeric_limits<size_t>::max(), &records));
    ring_resident = records.size();
    for (const auto& rec : records) {
      TIERBASE_RETURN_IF_ERROR(ReplayWalRecord(rec));
      ++stats_.wal_records_replayed;
    }
  }

  // Flush recovered state so old WAL files (and ring records) can be
  // retired — they stay in place until the SST + manifest are durable.
  if (mem_->num_entries() > 0) {
    imm_ = mem_;
    mem_ = std::make_shared<MemTable>();
    TIERBASE_RETURN_IF_ERROR(FlushImmutable());
  }
  for (uint64_t number : wal_numbers) {
    TIERBASE_RETURN_IF_ERROR(env::RemoveFile(versions_->WalFileName(number)));
  }
  if (ring_ != nullptr && ring_resident > 0) {
    TIERBASE_RETURN_IF_ERROR(ring_->Discard(ring_resident));
  }
  return Status::OK();
}

Status LsmStore::ReplayWalRecord(const Slice& record) {
  Slice in = record;
  if (in.empty()) return Status::Corruption("wal: empty record");
  char op = in[0];
  in.remove_prefix(1);
  Slice key, value;
  if (!GetLengthPrefixedSlice(&in, &key) ||
      !GetLengthPrefixedSlice(&in, &value)) {
    return Status::Corruption("wal: bad record");
  }
  SequenceNumber seq = versions_->last_sequence() + 1;
  versions_->set_last_sequence(seq);
  mem_->Add(seq, op == kWalPut ? kTypeValue : kTypeDeletion, key, value);
  return Status::OK();
}

Status LsmStore::LogRecord(const Slice& record) {
  switch (options_.wal_mode) {
    case WalMode::kNone:
      return Status::OK();
    case WalMode::kFile:
    case WalMode::kFileSync:
      return wal_->AddRecord(record);
    case WalMode::kPmem: {
      Status s = ring_->Append(record);
      if (s.IsBusy()) {
        // Ring full: batch-move resident records to the file log, then
        // retry. Peek + sync + discard, in that order — the ring's
        // durable head must not advance before the file copy is synced,
        // or a crash in between loses acknowledged records.
        std::vector<std::string> batch;
        TIERBASE_RETURN_IF_ERROR(ring_->Peek(1024, &batch));
        for (const auto& rec : batch) {
          TIERBASE_RETURN_IF_ERROR(wal_->AddRecord(rec));
        }
        TIERBASE_RETURN_IF_ERROR(wal_->Sync());
        TIERBASE_RETURN_IF_ERROR(ring_->Discard(batch.size()));
        s = ring_->Append(record);
      }
      return s;
    }
  }
  return Status::OK();
}

Status LsmStore::WriteInternal(const Slice& key, const Slice& value,
                               ValueType type) {
  common::MutexLock lock(&mu_);
  if (bg_error_set_) return bg_error_;

  // Stall when both memtables are full.
  while (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes &&
         imm_ != nullptr) {
    ++stats_.write_stalls;
    bg_cv_.SignalAll();
    stall_cv_.Wait();
    if (bg_error_set_) return bg_error_;
  }
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    TIERBASE_RETURN_IF_ERROR(SwitchMemtable());
  }

  TIERBASE_RETURN_IF_ERROR(LogRecord(
      EncodeWalRecord(type == kTypeValue ? kWalPut : kWalDelete, key, value)));

  SequenceNumber seq = versions_->last_sequence() + 1;
  versions_->set_last_sequence(seq);
  mem_->Add(seq, type, key, value);
  return Status::OK();
}

Status LsmStore::Set(const Slice& key, const Slice& value) {
  return WriteInternal(key, value, kTypeValue);
}

Status LsmStore::Delete(const Slice& key) {
  return WriteInternal(key, Slice(), kTypeDeletion);
}

Status LsmStore::ApplyBatch(const std::vector<BatchOp>& batch) {
  // One WAL append for the whole batch would need a composite record; we
  // keep per-op records but only sync once by relying on interval sync.
  for (const auto& op : batch) {
    TIERBASE_RETURN_IF_ERROR(WriteInternal(
        op.key, op.value, op.is_delete ? kTypeDeletion : kTypeValue));
  }
  return Status::OK();
}

Status LsmStore::SwitchMemtable() {
  mu_.AssertHeld();
  if (options_.wal_mode == WalMode::kPmem) {
    // Move everything resident in the ring to the current file log so the
    // ring only ever holds records of the live memtable. Peek + sync +
    // discard keeps the records durable somewhere at every instant.
    std::vector<std::string> batch;
    do {
      TIERBASE_RETURN_IF_ERROR(ring_->Peek(1024, &batch));
      for (const auto& rec : batch) {
        TIERBASE_RETURN_IF_ERROR(wal_->AddRecord(rec));
      }
      if (!batch.empty()) {
        TIERBASE_RETURN_IF_ERROR(wal_->Sync());
        TIERBASE_RETURN_IF_ERROR(ring_->Discard(batch.size()));
      }
    } while (!batch.empty());
    TIERBASE_RETURN_IF_ERROR(wal_->Sync());
  } else if (wal_ != nullptr) {
    TIERBASE_RETURN_IF_ERROR(wal_->Sync());
  }

  imm_ = mem_;
  imm_wal_number_ = wal_number_;
  mem_ = std::make_shared<MemTable>();

  if (options_.wal_mode != WalMode::kNone) {
    wal_number_ = versions_->NewFileNumber();
    WalOptions wal_options;
    wal_options.sync_mode = options_.wal_mode == WalMode::kFileSync
                                ? WalSyncMode::kEveryRecord
                                : WalSyncMode::kInterval;
    wal_options.sync_interval_micros = options_.wal_sync_interval_micros;
    auto wal = WalWriter::Open(versions_->WalFileName(wal_number_),
                               wal_options);
    if (!wal.ok()) return wal.status();
    wal_ = std::move(*wal);
  }

  bg_cv_.SignalAll();
  return Status::OK();
}

Status LsmStore::Get(const Slice& key, std::string* value) {
  std::shared_ptr<MemTable> mem, imm;
  std::shared_ptr<const Version> version;
  SequenceNumber snapshot;
  {
    common::MutexLock lock(&mu_);
    mem = mem_;
    imm = imm_;
    version = versions_->current();
    snapshot = versions_->last_sequence();
  }

  bool is_deleted = false;
  if (mem->Get(key, snapshot, value, &is_deleted)) {
    return is_deleted ? Status::NotFound("") : Status::OK();
  }
  if (imm != nullptr && imm->Get(key, snapshot, value, &is_deleted)) {
    return is_deleted ? Status::NotFound("") : Status::OK();
  }

  // L0: newest file first.
  const auto& l0 = version->levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    Status s = (*it)->table->Get(key, snapshot, value, &is_deleted);
    if (s.ok()) return is_deleted ? Status::NotFound("") : Status::OK();
    if (!s.IsNotFound()) return s;
  }

  // L1+: at most one candidate file per level.
  for (int level = 1; level < kNumLevels; ++level) {
    const auto& files = version->levels[static_cast<size_t>(level)];
    // Binary search for the first file whose largest user key >= key.
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ExtractUserKey(Slice(files[mid]->largest)).compare(key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= files.size()) continue;
    const auto& f = files[lo];
    if (ExtractUserKey(Slice(f->smallest)).compare(key) > 0) continue;
    Status s = f->table->Get(key, snapshot, value, &is_deleted);
    if (s.ok()) return is_deleted ? Status::NotFound("") : Status::OK();
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound("");
}

uint64_t LsmStore::MaxBytesForLevel(int level) const {
  uint64_t max = options_.level1_max_bytes;
  for (int i = 1; i < level; ++i) max *= 10;
  return max;
}

void LsmStore::BackgroundWork() {
  while (true) {
    bool have_imm = false;
    {
      common::MutexLock lock(&mu_);
      auto needs_work = [this]() EXCLUSIVE_LOCKS_REQUIRED(mu_) {
        if (shutting_down_) return true;
        if (imm_ != nullptr) return true;
        auto v = versions_->current();
        if (static_cast<int>(v->levels[0].size()) >=
            options_.l0_compaction_trigger) {
          return true;
        }
        for (int level = 1; level < kNumLevels - 1; ++level) {
          if (v->LevelBytes(level) > MaxBytesForLevel(level)) return true;
        }
        return false;
      };
      while (!needs_work()) bg_cv_.Wait();
      if (shutting_down_ && imm_ == nullptr) return;
      have_imm = imm_ != nullptr;
    }

    Status s = Status::OK();
    if (have_imm) s = FlushImmutable();
    if (s.ok()) s = MaybeCompact();

    {
      common::MutexLock lock(&mu_);
      if (!s.ok()) {
        TB_LOG_ERROR("lsm background error: %s", s.ToString().c_str());
        bg_error_set_ = true;
        bg_error_ = s;
        stall_cv_.SignalAll();
        return;
      }
      stall_cv_.SignalAll();
    }
  }
}

Status LsmStore::FlushImmutable() {
  std::shared_ptr<MemTable> imm;
  uint64_t old_wal = 0;
  {
    common::MutexLock lock(&mu_);
    imm = imm_;
    old_wal = imm_wal_number_;
  }
  if (imm == nullptr) return Status::OK();

  uint64_t file_number;
  {
    common::MutexLock lock(&mu_);
    file_number = versions_->NewFileNumber();
  }

  std::unique_ptr<WritableFile> file;
  std::string path;
  {
    common::MutexLock lock(&mu_);
    path = versions_->TableFileName(file_number);
  }
  TIERBASE_RETURN_IF_ERROR(env::NewWritableFile(path, &file));

  TableBuilder builder(std::move(file), options_.table_options);
  MemTable::Iterator iter(imm.get());
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    TIERBASE_RETURN_IF_ERROR(builder.Add(iter.internal_key(), iter.value()));
  }
  TIERBASE_RETURN_IF_ERROR(builder.Finish());

  auto meta = std::make_shared<FileMeta>();
  meta->number = file_number;
  meta->size = env::FileSize(path);
  meta->smallest = builder.smallest_key();
  meta->largest = builder.largest_key();
  auto table = Table::Open(path, file_number, block_cache_.get());
  if (!table.ok()) return table.status();
  meta->table = *table;

  {
    common::MutexLock lock(&mu_);
    VersionEdit edit;
    edit.added.push_back({0, meta});
    TIERBASE_RETURN_IF_ERROR(versions_->Apply(edit));
    imm_.reset();
    ++stats_.flushes;
    stats_.bytes_flushed += meta->size;
  }

  if (old_wal != 0) {
    std::string wal_path;
    {
      common::MutexLock lock(&mu_);
      wal_path = versions_->WalFileName(old_wal);
    }
    env::RemoveFile(wal_path);
  }
  {
    common::MutexLock lock(&mu_);
    stall_cv_.SignalAll();
  }
  return Status::OK();
}

Status LsmStore::MaybeCompact() {
  while (true) {
    int best_level = -1;
    double best_score = 1.0;
    {
      common::MutexLock lock(&mu_);
      auto v = versions_->current();
      double l0_score = static_cast<double>(v->levels[0].size()) /
                        options_.l0_compaction_trigger;
      if (l0_score >= 1.0) {
        best_level = 0;
        best_score = l0_score;
      }
      for (int level = 1; level < kNumLevels - 1; ++level) {
        double score = static_cast<double>(v->LevelBytes(level)) /
                       static_cast<double>(MaxBytesForLevel(level));
        if (score > best_score) {
          best_score = score;
          best_level = level;
        }
      }
    }
    if (best_level < 0) return Status::OK();
    TIERBASE_RETURN_IF_ERROR(CompactLevel(best_level));
  }
}

Status LsmStore::CompactLevel(int level) {
  std::vector<std::shared_ptr<FileMeta>> inputs;
  std::vector<std::shared_ptr<FileMeta>> next_inputs;
  std::shared_ptr<const Version> version;
  {
    common::MutexLock lock(&mu_);
    version = versions_->current();
    if (level == 0) {
      inputs = version->levels[0];
    } else {
      // Pick the file with the smallest key (simple deterministic policy).
      if (version->levels[static_cast<size_t>(level)].empty()) {
        return Status::OK();
      }
      inputs.push_back(version->levels[static_cast<size_t>(level)].front());
    }
    if (inputs.empty()) return Status::OK();

    // Key range of the inputs → overlapping files in level+1.
    std::string smallest = inputs[0]->smallest, largest = inputs[0]->largest;
    for (const auto& f : inputs) {
      if (Slice(f->smallest).compare(Slice(smallest)) < 0) {
        smallest = f->smallest;
      }
      if (Slice(f->largest).compare(Slice(largest)) > 0) largest = f->largest;
    }
    next_inputs = version->Overlapping(level + 1,
                                       ExtractUserKey(Slice(smallest)),
                                       ExtractUserKey(Slice(largest)));
  }

  const int target_level = level + 1;
  const bool bottommost = [&] {
    for (int l = target_level + 1; l < kNumLevels; ++l) {
      if (!version->levels[static_cast<size_t>(l)].empty()) return false;
    }
    return true;
  }();

  // K-way merge over all input tables. L0 inputs may contain multiple
  // versions of a key across files; the internal-key comparator yields the
  // newest first, so we keep the first occurrence of each user key.
  struct Source {
    std::unique_ptr<Table::Iterator> iter;
  };
  std::vector<Source> sources;
  for (auto& f : inputs) {
    sources.push_back({std::make_unique<Table::Iterator>(f->table.get())});
    sources.back().iter->SeekToFirst();
  }
  for (auto& f : next_inputs) {
    sources.push_back({std::make_unique<Table::Iterator>(f->table.get())});
    sources.back().iter->SeekToFirst();
  }

  InternalKeyComparator cmp;
  VersionEdit edit;
  uint64_t bytes_compacted = 0;  // Folded into stats_ under mu_ at apply.
  std::unique_ptr<TableBuilder> builder;
  uint64_t out_number = 0;
  std::string out_path;
  std::string last_user_key;
  bool has_last = false;

  auto open_output = [&]() -> Status {
    {
      common::MutexLock lock(&mu_);
      out_number = versions_->NewFileNumber();
      out_path = versions_->TableFileName(out_number);
    }
    std::unique_ptr<WritableFile> file;
    TIERBASE_RETURN_IF_ERROR(env::NewWritableFile(out_path, &file));
    builder = std::make_unique<TableBuilder>(std::move(file),
                                             options_.table_options);
    return Status::OK();
  };
  auto close_output = [&]() -> Status {
    if (builder == nullptr || builder->num_entries() == 0) {
      // Abandon an opened-but-empty output. out_path is cleared after each
      // successful close below, so this never touches a finished file.
      builder.reset();
      if (!out_path.empty()) env::RemoveFile(out_path);
      out_path.clear();
      return Status::OK();
    }
    TIERBASE_RETURN_IF_ERROR(builder->Finish());
    auto meta = std::make_shared<FileMeta>();
    meta->number = out_number;
    meta->size = env::FileSize(out_path);
    meta->smallest = builder->smallest_key();
    meta->largest = builder->largest_key();
    auto table = Table::Open(out_path, out_number, block_cache_.get());
    if (!table.ok()) return table.status();
    meta->table = *table;
    edit.added.push_back({target_level, meta});
    bytes_compacted += meta->size;
    builder.reset();
    out_path.clear();
    return Status::OK();
  };

  while (true) {
    // Pick the source with the smallest internal key.
    int min_idx = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].iter->Valid()) continue;
      if (min_idx < 0 ||
          cmp(sources[i].iter->key(), sources[min_idx].iter->key()) < 0) {
        min_idx = static_cast<int>(i);
      }
    }
    if (min_idx < 0) break;

    Slice ikey = sources[min_idx].iter->key();
    Slice user_key = ExtractUserKey(ikey);
    bool shadowed = has_last && user_key == Slice(last_user_key);
    if (!shadowed) {
      last_user_key.assign(user_key.data(), user_key.size());
      has_last = true;
      bool drop = bottommost && ExtractValueType(ikey) == kTypeDeletion;
      if (!drop) {
        if (builder == nullptr) TIERBASE_RETURN_IF_ERROR(open_output());
        TIERBASE_RETURN_IF_ERROR(
            builder->Add(ikey, sources[min_idx].iter->value()));
        if (builder->file_size() >= options_.target_file_bytes) {
          TIERBASE_RETURN_IF_ERROR(close_output());
        }
      }
    }
    sources[min_idx].iter->Next();
  }
  TIERBASE_RETURN_IF_ERROR(close_output());

  for (const auto& f : inputs) edit.removed.push_back({level, f->number});
  for (const auto& f : next_inputs) {
    edit.removed.push_back({target_level, f->number});
  }

  {
    common::MutexLock lock(&mu_);
    TIERBASE_RETURN_IF_ERROR(versions_->Apply(edit));
    ++stats_.compactions;
    stats_.bytes_compacted += bytes_compacted;
  }

  // Delete obsolete inputs and drop their cached blocks.
  auto cleanup = [&](const std::vector<std::shared_ptr<FileMeta>>& files) {
    for (const auto& f : files) {
      std::string p;
      {
        common::MutexLock lock(&mu_);
        p = versions_->TableFileName(f->number);
      }
      block_cache_->EraseFile(f->number);
      env::RemoveFile(p);
    }
  };
  cleanup(inputs);
  cleanup(next_inputs);
  return Status::OK();
}

Status LsmStore::WaitIdle() {
  while (true) {
    {
      common::MutexLock lock(&mu_);
      if (bg_error_set_) return bg_error_;
      auto v = versions_->current();
      bool busy = imm_ != nullptr ||
                  static_cast<int>(v->levels[0].size()) >=
                      options_.l0_compaction_trigger;
      for (int level = 1; !busy && level < kNumLevels - 1; ++level) {
        busy = v->LevelBytes(level) > MaxBytesForLevel(level);
      }
      if (!busy) return Status::OK();
      bg_cv_.SignalAll();
    }
    Clock::Real()->SleepMicros(1000);
  }
}

Status LsmStore::FlushForTesting() {
  {
    common::MutexLock lock(&mu_);
    while (imm_ != nullptr) {
      bg_cv_.SignalAll();
      stall_cv_.Wait();
    }
    if (mem_->num_entries() > 0) {
      TIERBASE_RETURN_IF_ERROR(SwitchMemtable());
    }
  }
  return WaitIdle();
}

UsageStats LsmStore::GetUsage() const {
  UsageStats usage;
  common::MutexLock lock(&mu_);
  usage.memory_bytes = mem_->ApproximateMemoryUsage() +
                       (imm_ ? imm_->ApproximateMemoryUsage() : 0) +
                       block_cache_->TotalCharge();
  auto v = versions_->current();
  for (int level = 0; level < kNumLevels; ++level) {
    usage.disk_bytes += v->LevelBytes(level);
  }
  if (wal_ != nullptr) usage.disk_bytes += wal_->size();
  usage.keys = versions_->last_sequence();  // Upper bound (writes issued).
  return usage;
}

LsmStore::Stats LsmStore::GetStats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace lsm
}  // namespace tierbase
