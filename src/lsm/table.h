// SST file format and reader.
//
// Layout:
//   data block*        (prefix-compressed Block, fixed32 masked-crc trailer)
//   bloom filter       (serialized BloomFilterBuilder output)
//   index block        (key = last internal key of data block,
//                       value = varint64 offset ++ varint64 size)
//   footer (40 bytes)  fixed64 filter_off | fixed64 filter_size |
//                      fixed64 index_off  | fixed64 index_size  |
//                      fixed64 magic

#ifndef TIERBASE_LSM_TABLE_H_
#define TIERBASE_LSM_TABLE_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/internal_key.h"

namespace tierbase {
namespace lsm {

constexpr uint64_t kTableMagic = 0x54425f5353543231ULL;  // "TB_SST21"
constexpr size_t kFooterSize = 40;

struct TableBuilderOptions {
  size_t block_size = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
};

class TableBuilder {
 public:
  TableBuilder(std::unique_ptr<WritableFile> file,
               TableBuilderOptions options = {});

  /// Keys must arrive in strictly increasing internal-key order.
  Status Add(const Slice& internal_key, const Slice& value);
  /// Flushes remaining data, writes filter/index/footer, syncs, closes.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return file_->Size(); }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  Status FlushDataBlock();

  std::unique_ptr<WritableFile> file_;
  TableBuilderOptions options_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  uint64_t num_entries_ = 0;
  std::string smallest_;
  std::string largest_;
  std::string pending_index_key_;  // Last key of the block being flushed.
  uint64_t pending_offset_ = 0;
  bool finished_ = false;
};

class Table {
 public:
  /// Opens an SST; the reader caches the index and filter in memory and
  /// serves data blocks through the (optional) shared block cache.
  static Result<std::shared_ptr<Table>> Open(const std::string& path,
                                             uint64_t file_number,
                                             BlockCache* block_cache);

  /// Point lookup. Sets *is_deleted on tombstone hits.
  /// Returns NotFound when the key is absent from this table.
  Status Get(const Slice& user_key, SequenceNumber snapshot,
             std::string* value, bool* is_deleted);

  /// Full-scan iterator (compaction and range scans).
  class Iterator {
   public:
    explicit Iterator(Table* table);
    bool Valid() const;
    void SeekToFirst();
    void Seek(const Slice& internal_key);
    void Next();
    Slice key() const;    // Internal key.
    Slice value() const;

   private:
    void LoadBlock(uint32_t index_pos);
    void SkipEmptyBlocks();

    Table* table_;
    std::unique_ptr<Block::Iterator> index_iter_;
    std::shared_ptr<Block> data_block_;
    std::unique_ptr<Block::Iterator> data_iter_;
  };

  uint64_t file_number() const { return file_number_; }
  uint64_t file_size() const { return file_->Size(); }

 private:
  Table() = default;

  Status ReadBlockAt(uint64_t offset, uint64_t size,
                     std::shared_ptr<Block>* block);

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_ = 0;
  BlockCache* block_cache_ = nullptr;
  std::string filter_;
  std::unique_ptr<Block> index_;
};

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_TABLE_H_
