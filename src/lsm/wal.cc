#include "lsm/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace tierbase {
namespace lsm {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   const WalOptions& options,
                                                   bool append) {
  std::unique_ptr<WritableFile> file;
  Status s = append ? env::NewAppendableFile(path, &file)
                    : env::NewWritableFile(path, &file);
  if (!s.ok()) return s;
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), options));
}

Status WalWriter::AddRecord(const Slice& record) {
  common::MutexLock lock(&mu_);
  std::string framed;
  framed.reserve(8 + record.size());
  PutFixed32(&framed,
             crc32c::Mask(crc32c::Value(record.data(), record.size())));
  PutFixed32(&framed, static_cast<uint32_t>(record.size()));
  framed.append(record.data(), record.size());
  TIERBASE_RETURN_IF_ERROR(file_->Append(framed));

  switch (options_.sync_mode) {
    case WalSyncMode::kNone:
      return Status::OK();  // Buffered; pushed out on close or rotation.
    case WalSyncMode::kEveryRecord:
      return file_->Sync();
    case WalSyncMode::kInterval: {
      // The paper's "WAL" mode: records accumulate in the writer's buffer
      // and hit the disk on the sync interval ("asynchronous disk flushes
      // every second"), bounding loss to one interval.
      uint64_t now = options_.clock->NowMicros();
      if (now - last_sync_micros_ >= options_.sync_interval_micros) {
        last_sync_micros_ = now;
        return file_->Sync();
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  common::MutexLock lock(&mu_);
  last_sync_micros_ = options_.clock->NowMicros();
  return file_->Sync();
}

Result<std::unique_ptr<WalReader>> WalReader::Open(const std::string& path) {
  std::string contents;
  Status s = env::ReadFileToString(path, &contents);
  if (!s.ok()) return s;
  return std::unique_ptr<WalReader>(new WalReader(std::move(contents)));
}

WalRead WalReader::ReadRecord(std::string* record) {
  if (sticky_ != WalRead::kOk) return sticky_;
  if (pos_ == contents_.size()) return WalRead::kEof;
  if (pos_ + 8 > contents_.size()) {
    damage_ = "partial record header at tail";
    return sticky_ = WalRead::kTruncatedTail;
  }
  uint32_t crc = crc32c::Unmask(DecodeFixed32(contents_.data() + pos_));
  uint64_t len = DecodeFixed32(contents_.data() + pos_ + 4);
  if (pos_ + 8 + len > contents_.size()) {
    // The payload runs past EOF: either the append was torn mid-payload,
    // or the 8-byte header itself was torn and the length field is
    // garbage. Both are tail damage — nothing readable follows.
    damage_ = "partial record payload at tail";
    return sticky_ = WalRead::kTruncatedTail;
  }
  const char* payload = contents_.data() + pos_ + 8;
  if (crc32c::Value(payload, static_cast<size_t>(len)) != crc) {
    if (pos_ + 8 + len == contents_.size()) {
      // Point-in-time recovery semantics (RocksDB's default): a checksum
      // mismatch on the final record is indistinguishable from a torn
      // write persisted out of order — treat it as tail damage.
      damage_ = "crc mismatch on final record";
      return sticky_ = WalRead::kTruncatedTail;
    }
    damage_ = "crc mismatch mid-log";
    return sticky_ = WalRead::kCorruption;
  }
  record->assign(payload, static_cast<size_t>(len));
  pos_ += 8 + len;
  return WalRead::kOk;
}

Status PmemWal::AddRecord(const Slice& record) {
  Status s = ring_->Append(record);
  if (s.IsBusy()) {
    TIERBASE_RETURN_IF_ERROR(Drain());
    s = ring_->Append(record);
  }
  return s;
}

Status PmemWal::Drain(size_t max_records) {
  // Crash-safe hand-off: the ring's durable head only advances once the
  // records are synced into the backing file log — a plain destructive
  // drain would leave them nowhere durable until the file sync.
  std::vector<std::string> batch;
  TIERBASE_RETURN_IF_ERROR(ring_->Peek(max_records, &batch));
  if (batch.empty()) return Status::OK();
  for (const auto& rec : batch) {
    TIERBASE_RETURN_IF_ERROR(backing_log_->AddRecord(rec));
  }
  TIERBASE_RETURN_IF_ERROR(backing_log_->Sync());
  return ring_->Discard(batch.size());
}

}  // namespace lsm
}  // namespace tierbase
