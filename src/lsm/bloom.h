// Bloom filter for SST files: double-hashing variant with configurable
// bits per key (default 10 → ~1% false positive rate).

#ifndef TIERBASE_LSM_BLOOM_H_
#define TIERBASE_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace tierbase {
namespace lsm {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(const Slice& key);

  /// Serializes the filter (bit array + 1 byte of probe count).
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> hashes_;
};

/// Membership test over a serialized filter. An empty filter matches
/// everything (filterless tables degrade gracefully).
bool BloomFilterMayMatch(const Slice& filter, const Slice& key);

}  // namespace lsm
}  // namespace tierbase

#endif  // TIERBASE_LSM_BLOOM_H_
