// TierBase: the paper's primary contribution — a tiered key-value store
// that synchronizes data between a fast cache tier (hash engine over
// DRAM/PMem) and a capacity-oriented storage tier (LSM engine behind a
// pluggable adapter), under a configurable caching policy:
//
//   kCacheOnly     pure in-memory store (Redis/Memcached comparison mode)
//   kWalFile       cache + append-only WAL on disk   (Fig 8 "WAL")
//   kWalPmem       cache + WAL on PMem ring buffer   (Fig 8 "WAL-PMem")
//   kWriteThrough  tiered, synchronous storage update (Fig 8 "wt")
//   kWriteBack     tiered, deferred batched storage update (Fig 8 "wb")
//
// Write-through uses per-key write queues and write coalescing (§4.1.1);
// write-back uses dirty tracking with batched merged flushes, backpressure,
// and deferred cache-fetching (§4.1.2). An optional in-process replica
// models the dual-replica reliability configuration of §6.4. Value
// compression (§4.2) and PMem placement (§4.3) are configured through the
// embedded cache engine options.

#ifndef TIERBASE_CORE_TIERBASE_H_
#define TIERBASE_CORE_TIERBASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "cache/hash_engine.h"
#include "core/deferred_fetch.h"
#include "core/options.h"
#include "core/replication.h"
#include "core/storage_adapter.h"
#include "core/write_back.h"
#include "core/write_through.h"
#include "lsm/wal.h"
#include "pmem/ring_buffer.h"

namespace tierbase {

class TierBase : public KvEngine {
 public:
  /// `storage` is required for tiered policies (kWriteThrough/kWriteBack)
  /// and ignored otherwise; not owned.
  static Result<std::unique_ptr<TierBase>> Open(const TierBaseOptions& options,
                                                StorageAdapter* storage);
  ~TierBase() override;

  std::string name() const override;

  // --- KvEngine. ---
  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  /// Batched reads: one cache MultiGet, then (tiered policies) one dirty-
  /// buffer pass and one batched storage MultiRead for the misses, with a
  /// single batched cache populate.
  void MultiGet(const std::vector<Slice>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  /// Batched writes under every caching policy: cache-only and WAL modes
  /// use the cache's per-shard batching; write-through coalesces the batch
  /// into one storage call; write-back marks the whole batch dirty under
  /// one dirty-set lock.
  void MultiSet(const std::vector<Slice>& keys,
                const std::vector<Slice>& values,
                std::vector<Status>* statuses) override;
  UsageStats GetUsage() const override;
  Status WaitIdle() override;

  // --- Extensions. ---
  Status SetEx(const Slice& key, const Slice& value, uint64_t ttl_micros);
  /// Compare-and-set; in tiered modes a cache miss triggers a (deferred)
  /// fetch before comparing, per §4.1.2's update-on-missing-key path.
  Status Cas(const Slice& key, const Slice& expected, const Slice& value,
             bool allow_create = false);

  /// The cache-tier engine (rich data-type ops are reachable here; they are
  /// cache-tier-only in this reproduction).
  cache::HashEngine* cache() { return cache_.get(); }
  StorageAdapter* storage() { return storage_; }
  /// Non-null when ReplicationMode::kMasterReplica is configured (INFO
  /// surfaces its lag; the wire-replication layer is separate).
  Replicator* replicator() { return replicator_.get(); }
  const Replicator* replicator() const { return replicator_.get(); }
  /// The workload observatory (live MRC / hot keys / keyspace shape), or
  /// null when options.analytics.enabled is false.
  analytics::WorkloadAnalytics* analytics() { return analytics_.get(); }
  const analytics::WorkloadAnalytics* analytics() const {
    return analytics_.get();
  }

  /// Aggregated snapshot across the whole instance: the engine's own op
  /// counters plus the cache tier's eviction/recency/batching gauges and
  /// footprint, so one call yields everything the server's INFO reply
  /// (and any external monitoring) needs.
  struct Stats {
    uint64_t gets = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;     // Misses that consulted storage.
    uint64_t sets = 0;
    uint64_t storage_populates = 0;
    // Cache-tier aggregates (from the embedded HashEngine).
    uint64_t evictions = 0;
    uint64_t expirations = 0;
    uint64_t lru_touches = 0;
    uint64_t multi_shard_locks = 0;  // Shard locks taken by batch ops.
    uint64_t multi_batches = 0;      // MultiGet/MultiSet calls served.
    uint64_t bytes_cached = 0;       // DRAM charged to cached entries.
    uint64_t pmem_bytes = 0;         // Simulated-PMem value bytes.
    uint64_t keys_cached = 0;
    // Persistence / crash-recovery audit trail.
    uint64_t wal_replayed_records = 0;  // Applied by the last recovery.
    uint64_t wal_truncated_tails = 0;   // Torn tails found (and cut).
    uint64_t wal_skipped_bytes = 0;     // Torn-suffix bytes dropped.
    // Same, for the storage tier's own WAL (tiered policies: the only WAL
    // in play — TierBase's counters above are for the wal/wal-pmem modes).
    StorageAdapter::WalRecoveryStats storage_wal;
    uint64_t write_back_dirty = 0;      // Unflushed dirty entries right now.
    std::string flush_error;            // Last write-back flush error; empty
                                        // when healthy (cleared on success).
    PerKeyCoalescer::Stats write_through;
    WriteBackManager::Stats write_back;
    DeferredFetcher::Stats deferred_fetch;
  };
  Stats GetStats() const;

  double hit_ratio() const {
    uint64_t h = stats_hits_.load(), m = stats_misses_.load();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / (h + m);
  }

 private:
  TierBase(const TierBaseOptions& options, StorageAdapter* storage);

  Status Init();
  Status RecoverFromWal();
  Status LogMutation(const Slice& key, const Slice& value, bool is_delete);
  Status SetInternal(const Slice& key, const Slice& value,
                     uint64_t ttl_micros);
  bool tiered() const {
    return options_.policy == CachingPolicy::kWriteThrough ||
           options_.policy == CachingPolicy::kWriteBack;
  }

  TierBaseOptions options_;
  StorageAdapter* storage_;

  // Created before cache_ (the engine records into it) and therefore
  // destroyed after it.
  std::unique_ptr<analytics::WorkloadAnalytics> analytics_;
  std::unique_ptr<cache::HashEngine> cache_;
  std::unique_ptr<PerKeyCoalescer> write_through_;
  std::unique_ptr<WriteBackManager> write_back_;
  std::unique_ptr<DeferredFetcher> fetcher_;
  std::unique_ptr<Replicator> replicator_;

  // WAL persistence modes.
  std::unique_ptr<lsm::WalWriter> wal_;
  std::unique_ptr<PmemRingBuffer> wal_ring_;

  // Recovery counters: written once during Init (single-threaded), read
  // by GetStats.
  uint64_t wal_replayed_records_ = 0;
  uint64_t wal_truncated_tails_ = 0;
  uint64_t wal_skipped_bytes_ = 0;

  std::atomic<uint64_t> stats_gets_{0};
  std::atomic<uint64_t> stats_hits_{0};
  std::atomic<uint64_t> stats_misses_{0};
  std::atomic<uint64_t> stats_sets_{0};
  std::atomic<uint64_t> stats_populates_{0};
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_TIERBASE_H_
