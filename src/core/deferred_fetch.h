// Deferred cache-fetching (paper §4.1.2): when concurrent operations miss
// the cache, their storage reads are accumulated for a short window and
// submitted as one batched MultiRead, "reducing read requests and
// minimizing costs in both tiers".

#ifndef TIERBASE_CORE_DEFERRED_FETCH_H_
#define TIERBASE_CORE_DEFERRED_FETCH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/options.h"
#include "core/storage_adapter.h"

namespace tierbase {

class DeferredFetcher {
 public:
  DeferredFetcher(StorageAdapter* storage, DeferredFetchOptions options,
                  Clock* clock = Clock::Real());

  /// Fetches `key` from storage, sharing a batch with concurrent callers.
  /// Returns NotFound when the key is absent from the storage tier.
  Status Fetch(const Slice& key, std::string* value);

  /// Fetches a whole batch in (at most) one MultiRead, deduplicating
  /// against concurrently in-flight fetches of the same keys. Per-key
  /// outcomes land in statuses[i] (NotFound for absent keys).
  void FetchMany(const std::vector<Slice>& keys,
                 std::vector<std::string>* values,
                 std::vector<Status>* statuses);

  struct Stats {
    uint64_t fetches = 0;
    uint64_t batch_calls = 0;  // fetches/batch_calls = batching factor.
    uint64_t shared = 0;       // Fetches that piggybacked on another's call.
  };
  Stats GetStats() const;

 private:
  struct PendingKey {
    bool done = false;
    bool found = false;
    std::string value;
    Status error;
    int waiters = 0;
  };

  /// Leader: issues MultiReads until no pending keys remain, then clears
  /// batch_leader_active_ and wakes the waiters.
  void LeaderDrain();

  StorageAdapter* storage_;
  DeferredFetchOptions options_;
  Clock* clock_;

  mutable common::Mutex mu_;
  common::CondVar cv_{&mu_};
  /// Keys with a storage read in flight (or forming). The PendingKey
  /// payload is written by the batch leader under mu_ and read by waiters
  /// only after observing done == true under mu_.
  std::unordered_map<std::string, std::shared_ptr<PendingKey>> pending_
      GUARDED_BY(mu_);
  bool batch_leader_active_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_DEFERRED_FETCH_H_
