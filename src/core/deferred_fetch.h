// Deferred cache-fetching (paper §4.1.2): when concurrent operations miss
// the cache, their storage reads are accumulated for a short window and
// submitted as one batched MultiRead, "reducing read requests and
// minimizing costs in both tiers".

#ifndef TIERBASE_CORE_DEFERRED_FETCH_H_
#define TIERBASE_CORE_DEFERRED_FETCH_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "core/options.h"
#include "core/storage_adapter.h"

namespace tierbase {

class DeferredFetcher {
 public:
  DeferredFetcher(StorageAdapter* storage, DeferredFetchOptions options,
                  Clock* clock = Clock::Real());

  /// Fetches `key` from storage, sharing a batch with concurrent callers.
  /// Returns NotFound when the key is absent from the storage tier.
  Status Fetch(const Slice& key, std::string* value);

  /// Fetches a whole batch in (at most) one MultiRead, deduplicating
  /// against concurrently in-flight fetches of the same keys. Per-key
  /// outcomes land in statuses[i] (NotFound for absent keys).
  void FetchMany(const std::vector<Slice>& keys,
                 std::vector<std::string>* values,
                 std::vector<Status>* statuses);

  struct Stats {
    uint64_t fetches = 0;
    uint64_t batch_calls = 0;  // fetches/batch_calls = batching factor.
    uint64_t shared = 0;       // Fetches that piggybacked on another's call.
  };
  Stats GetStats() const;

 private:
  struct PendingKey {
    bool done = false;
    bool found = false;
    std::string value;
    Status error;
    int waiters = 0;
  };

  /// Leader: issues MultiReads until no pending keys remain, then clears
  /// batch_leader_active_ and wakes the waiters.
  void LeaderDrain();

  StorageAdapter* storage_;
  DeferredFetchOptions options_;
  Clock* clock_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::shared_ptr<PendingKey>> pending_;
  bool batch_leader_active_ = false;
  Stats stats_;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_DEFERRED_FETCH_H_
