// Write-through machinery (paper §4.1.1): per-key write queues keep
// sequential order, and write coalescing merges concurrent writes to the
// same key into one storage update ("similar to group commit"), lowering
// the miss penalty PC_miss.
//
// PerKeyCoalescer: callers submit (key, value, generation). The first
// caller for a key becomes the leader: it repeatedly pushes the *latest*
// pending value to storage until no newer value is pending. Every caller
// returns once a storage write covering a generation >= its own has
// succeeded, preserving write-through semantics while collapsing redundant
// storage updates.

#ifndef TIERBASE_CORE_WRITE_THROUGH_H_
#define TIERBASE_CORE_WRITE_THROUGH_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/thread_annotations.h"
#include "common/status.h"

namespace tierbase {

class PerKeyCoalescer {
 public:
  /// Pushes one (key, value-or-delete) to the storage tier.
  using StorageWriteFn =
      std::function<Status(const Slice& key, const Slice& value,
                           bool is_delete)>;

  /// One element of a batched storage write.
  struct BatchWrite {
    std::string key;
    std::string value;
    bool is_delete = false;
  };
  /// Pushes a whole batch to the storage tier in one remote call.
  using BatchStorageWriteFn =
      std::function<Status(const std::vector<BatchWrite>& ops)>;

  explicit PerKeyCoalescer(StorageWriteFn write_fn, bool coalesce = true,
                           BatchStorageWriteFn batch_write_fn = nullptr)
      : write_fn_(std::move(write_fn)),
        batch_write_fn_(std::move(batch_write_fn)),
        coalesce_(coalesce) {}

  /// Write-through one update. Returns after a storage write covering this
  /// update (or a newer one for the same key) succeeds; on storage failure
  /// returns the error.
  Status Write(const Slice& key, const Slice& value, bool is_delete);

  /// Write-through a batch: duplicate keys coalesce to the last value, the
  /// surviving updates go to storage as ONE batched call, and updates to
  /// keys with an in-flight leader are delegated to that leader (keeping
  /// per-key ordering). Per-op outcomes land in statuses[i]. Falls back to
  /// per-key Write when no batch function was supplied.
  void WriteBatch(const std::vector<Slice>& keys,
                  const std::vector<Slice>& values,
                  std::vector<Status>* statuses);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t storage_writes = 0;  // submitted - storage_writes = coalesced.
    uint64_t batch_calls = 0;     // Remote calls made by WriteBatch.
  };
  Stats GetStats() const;

 private:
  /// Per-key coalescing state. Every field is guarded by the coalescer's
  /// mu_ (the cv is bound to it); KeyState lives in keys_, which the same
  /// mutex guards, so the analysis checks access through the map.
  struct KeyState {
    explicit KeyState(common::Mutex* mu) : cv(mu) {}

    uint64_t next_gen = 1;
    uint64_t flushed_gen = 0;    // Highest generation durably in storage.
    uint64_t processed_gen = 0;  // Highest generation whose write finished.
    bool in_flight = false;
    bool pending = false;       // A newer value awaits flush.
    std::string latest_value;
    bool latest_is_delete = false;
    uint64_t latest_gen = 0;
    Status last_error;
    int waiters = 0;
    common::CondVar cv;
  };

  /// Leader drain loop: flushes the key's latest pending value until no
  /// newer one arrives. Requires mu_ held; releases it around storage
  /// calls (re-held on return). The caller owns ks->in_flight.
  void DrainLocked(const std::string& key, KeyState* ks)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  StorageWriteFn write_fn_;
  BatchStorageWriteFn batch_write_fn_;
  bool coalesce_;

  mutable common::Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<KeyState>> keys_
      GUARDED_BY(mu_);
  uint64_t submitted_ GUARDED_BY(mu_) = 0;
  uint64_t storage_writes_ GUARDED_BY(mu_) = 0;
  uint64_t batch_calls_ GUARDED_BY(mu_) = 0;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_WRITE_THROUGH_H_
