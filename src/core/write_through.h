// Write-through machinery (paper §4.1.1): per-key write queues keep
// sequential order, and write coalescing merges concurrent writes to the
// same key into one storage update ("similar to group commit"), lowering
// the miss penalty PC_miss.
//
// PerKeyCoalescer: callers submit (key, value, generation). The first
// caller for a key becomes the leader: it repeatedly pushes the *latest*
// pending value to storage until no newer value is pending. Every caller
// returns once a storage write covering a generation >= its own has
// succeeded, preserving write-through semantics while collapsing redundant
// storage updates.

#ifndef TIERBASE_CORE_WRITE_THROUGH_H_
#define TIERBASE_CORE_WRITE_THROUGH_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"

namespace tierbase {

class PerKeyCoalescer {
 public:
  /// Pushes one (key, value-or-delete) to the storage tier.
  using StorageWriteFn =
      std::function<Status(const Slice& key, const Slice& value,
                           bool is_delete)>;

  explicit PerKeyCoalescer(StorageWriteFn write_fn, bool coalesce = true)
      : write_fn_(std::move(write_fn)), coalesce_(coalesce) {}

  /// Write-through one update. Returns after a storage write covering this
  /// update (or a newer one for the same key) succeeds; on storage failure
  /// returns the error.
  Status Write(const Slice& key, const Slice& value, bool is_delete);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t storage_writes = 0;  // submitted - storage_writes = coalesced.
  };
  Stats GetStats() const;

 private:
  struct KeyState {
    uint64_t next_gen = 1;
    uint64_t flushed_gen = 0;    // Highest generation durably in storage.
    uint64_t processed_gen = 0;  // Highest generation whose write finished.
    bool in_flight = false;
    bool pending = false;       // A newer value awaits flush.
    std::string latest_value;
    bool latest_is_delete = false;
    uint64_t latest_gen = 0;
    Status last_error;
    int waiters = 0;
    std::condition_variable cv;
  };

  StorageWriteFn write_fn_;
  bool coalesce_;

  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<KeyState>> keys_;
  uint64_t submitted_ = 0;
  uint64_t storage_writes_ = 0;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_WRITE_THROUGH_H_
