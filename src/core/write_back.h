// Write-back machinery (paper §4.1.2): dirty tracking, deferred batched
// flushes with per-key update merging, interval-bounded staleness, and a
// backpressure mechanism when dirty data approaches its cap.

#ifndef TIERBASE_CORE_WRITE_BACK_H_
#define TIERBASE_CORE_WRITE_BACK_H_

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/options.h"
#include "core/storage_adapter.h"

namespace tierbase {

class WriteBackManager {
 public:
  WriteBackManager(StorageAdapter* storage, WriteBackOptions options,
                   Clock* clock = Clock::Real());
  ~WriteBackManager();

  /// Records a dirty update (latest value wins — multiple updates to the
  /// same key merge into one storage op, "Optimizing Update" in §4.1.2).
  /// Blocks when max_dirty is reached (backpressure).
  Status MarkDirty(const Slice& key, const Slice& value, bool is_delete);

  /// Batched MarkDirty for keys[i] = values[i]: the dirty-set mutex is
  /// taken once for the whole batch (released only while backpressure
  /// blocks mid-batch). Flush errors are sticky, so on one the batch
  /// aborts immediately — the remaining ops would fail identically.
  Status MarkDirtyBatch(const std::vector<Slice>& keys,
                        const std::vector<Slice>& values);

  /// True while the key has an unflushed update; such keys must not be
  /// evicted from the cache (the eviction filter consults this).
  bool IsDirty(const Slice& key) const;

  /// Reads the dirty (not yet flushed) value if present. Lets reads see
  /// pending writes without touching storage.
  bool GetDirty(const Slice& key, std::string* value, bool* is_delete) const;

  /// Batched GetDirty: one dirty-set lock acquisition for the whole
  /// batch. found[i]/values[i]/deletes[i] are filled per key.
  void GetDirtyBatch(const std::vector<Slice>& keys,
                     std::vector<bool>* found,
                     std::vector<std::string>* values,
                     std::vector<bool>* deletes) const;

  /// Flushes everything and blocks until clean (shutdown, WaitIdle).
  Status FlushAll();

  size_t dirty_count() const;

  struct Stats {
    uint64_t updates = 0;
    uint64_t merged_updates = 0;   // Updates absorbed by a pending entry.
    uint64_t flush_batches = 0;
    uint64_t flushed_ops = 0;
    uint64_t backpressure_waits = 0;
    uint64_t flush_failures = 0;   // Storage batches that errored.
    uint64_t flush_retries = 0;    // Successful flushes that cleared an
                                   // error (storage healed).
  };
  Stats GetStats() const;

  /// The last flush error, or OK. No longer latched forever: retried with
  /// backoff by the flusher and cleared by the next successful flush.
  Status flush_error() const;

 private:
  struct DirtyEntry {
    std::string value;
    bool is_delete = false;
    uint64_t gen = 0;
  };

  void FlusherLoop();
  /// Takes up to max_batch dirty entries and writes them as one batch.
  /// Returns number flushed.
  Result<size_t> FlushBatch();

  StorageAdapter* storage_;
  WriteBackOptions options_;
  Clock* clock_;

  mutable common::Mutex mu_;
  common::CondVar flush_cv_{&mu_};  // Wakes the flusher.
  common::CondVar space_cv_{&mu_};  // Wakes backpressured writers.
  common::CondVar clean_cv_{&mu_};  // Signals "all clean".
  std::unordered_map<std::string, DirtyEntry> dirty_ GUARDED_BY(mu_);
  uint64_t next_gen_ GUARDED_BY(mu_) = 1;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  int flush_waiters_ GUARDED_BY(mu_) = 0;  // FlushAll calls in progress;
                                           // while > 0 the flusher flushes
                                           // regardless of
                                           // threshold/interval.

  std::thread flusher_;
  Stats stats_ GUARDED_BY(mu_);
  Status flush_error_ GUARDED_BY(mu_);  // Cleared on flush success.
  size_t consecutive_flush_failures_ GUARDED_BY(mu_) = 0;  // Bounds
                                                           // FlushAll and
                                                           // shutdown waits.
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_WRITE_BACK_H_
