#include "core/write_back.h"

#include <algorithm>
#include <chrono>
#include <vector>

namespace tierbase {

WriteBackManager::WriteBackManager(StorageAdapter* storage,
                                   WriteBackOptions options, Clock* clock)
    : storage_(storage), options_(options), clock_(clock) {
  flusher_ = std::thread(&WriteBackManager::FlusherLoop, this);
}

WriteBackManager::~WriteBackManager() {
  FlushAll();
  {
    common::MutexLock lock(&mu_);
    shutting_down_ = true;
    flush_cv_.SignalAll();
  }
  if (flusher_.joinable()) flusher_.join();
}

Status WriteBackManager::MarkDirty(const Slice& key, const Slice& value,
                                   bool is_delete) {
  common::MutexLock lock(&mu_);
  if (!flush_error_.ok()) return flush_error_;

  // Backpressure: block while the dirty set is at capacity (§4.1.2 "a
  // backpressure mechanism is activated when dirty data approaches a
  // predefined threshold").
  while (dirty_.size() >= options_.max_dirty &&
         dirty_.find(key.ToString()) == dirty_.end()) {
    ++stats_.backpressure_waits;
    flush_cv_.SignalAll();
    space_cv_.Wait();
    if (!flush_error_.ok()) return flush_error_;
  }

  ++stats_.updates;
  auto [it, inserted] = dirty_.try_emplace(key.ToString());
  if (!inserted) ++stats_.merged_updates;
  it->second.value = value.ToString();
  it->second.is_delete = is_delete;
  it->second.gen = next_gen_++;

  if (dirty_.size() >= options_.flush_threshold) {
    flush_cv_.SignalAll();
  }
  return Status::OK();
}

Status WriteBackManager::MarkDirtyBatch(const std::vector<Slice>& keys,
                                        const std::vector<Slice>& values) {
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!flush_error_.ok()) return flush_error_;
    while (dirty_.size() >= options_.max_dirty &&
           dirty_.find(keys[i].ToString()) == dirty_.end()) {
      ++stats_.backpressure_waits;
      flush_cv_.SignalAll();
      space_cv_.Wait();
      if (!flush_error_.ok()) return flush_error_;
    }
    ++stats_.updates;
    auto [it, inserted] = dirty_.try_emplace(keys[i].ToString());
    if (!inserted) ++stats_.merged_updates;
    it->second.value = values[i].ToString();
    it->second.is_delete = false;
    it->second.gen = next_gen_++;
  }
  if (dirty_.size() >= options_.flush_threshold) {
    flush_cv_.SignalAll();
  }
  return Status::OK();
}

bool WriteBackManager::IsDirty(const Slice& key) const {
  common::MutexLock lock(&mu_);
  return dirty_.find(key.ToString()) != dirty_.end();
}

bool WriteBackManager::GetDirty(const Slice& key, std::string* value,
                                bool* is_delete) const {
  common::MutexLock lock(&mu_);
  auto it = dirty_.find(key.ToString());
  if (it == dirty_.end()) return false;
  *value = it->second.value;
  *is_delete = it->second.is_delete;
  return true;
}

void WriteBackManager::GetDirtyBatch(const std::vector<Slice>& keys,
                                     std::vector<bool>* found,
                                     std::vector<std::string>* values,
                                     std::vector<bool>* deletes) const {
  const size_t n = keys.size();
  found->assign(n, false);
  values->assign(n, std::string());
  deletes->assign(n, false);
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < n; ++i) {
    auto it = dirty_.find(keys[i].ToString());
    if (it == dirty_.end()) continue;
    (*found)[i] = true;
    (*values)[i] = it->second.value;
    (*deletes)[i] = it->second.is_delete;
  }
}

Result<size_t> WriteBackManager::FlushBatch() {
  // Snapshot a batch under the lock, write it outside, then remove entries
  // that were not re-dirtied during the write.
  std::vector<StorageAdapter::BatchOp> batch;
  std::vector<std::pair<std::string, uint64_t>> taken;
  {
    common::MutexLock lock(&mu_);
    for (const auto& [key, entry] : dirty_) {
      if (batch.size() >= options_.max_batch) break;
      batch.push_back({key, entry.value, entry.is_delete});
      taken.emplace_back(key, entry.gen);
    }
  }
  if (batch.empty()) return size_t{0};

  Status s = storage_->WriteBatch(batch);

  common::MutexLock lock(&mu_);
  if (!s.ok()) {
    // Leave entries dirty; record the error so writers observe it. The
    // flusher retries with backoff and a later success clears the error.
    flush_error_ = s;
    ++stats_.flush_failures;
    ++consecutive_flush_failures_;
    space_cv_.SignalAll();
    clean_cv_.SignalAll();  // FlushAll re-checks its failure bound.
    return s;
  }
  if (!flush_error_.ok()) {
    // Storage healed: un-latch so writers stop bouncing.
    flush_error_ = Status::OK();
    ++stats_.flush_retries;
  }
  consecutive_flush_failures_ = 0;
  for (const auto& [key, gen] : taken) {
    auto it = dirty_.find(key);
    if (it != dirty_.end() && it->second.gen == gen) {
      dirty_.erase(it);
    }
  }
  ++stats_.flush_batches;
  stats_.flushed_ops += batch.size();
  space_cv_.SignalAll();
  if (dirty_.empty()) clean_cv_.SignalAll();
  return batch.size();
}

void WriteBackManager::FlusherLoop() {
  uint64_t backoff_micros = 0;  // 0 = healthy, no backoff pending.
  while (true) {
    {
      common::MutexLock lock(&mu_);
      if (backoff_micros > 0) {
        // Retry backoff after a failed flush. Deliberately ignores
        // flush_waiters_/threshold wakeups: hammering a failing storage
        // tier harder doesn't help.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(backoff_micros);
        while (!shutting_down_ && flush_cv_.WaitUntil(deadline)) {
        }
      } else {
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.flush_interval_micros);
        while (!(shutting_down_ || flush_waiters_ > 0 ||
                 dirty_.size() >= options_.flush_threshold) &&
               flush_cv_.WaitUntil(deadline)) {
        }
      }
      if (shutting_down_ &&
          (dirty_.empty() ||
           consecutive_flush_failures_ >= options_.max_flush_failures)) {
        return;  // Clean, or the storage tier stayed down: give up.
      }
    }
    Result<size_t> flushed = FlushBatch();
    // Keep draining without sleeping while there is a backlog.
    while (flushed.ok() && *flushed > 0) {
      {
        common::MutexLock lock(&mu_);
        if (dirty_.size() < options_.flush_threshold && !shutting_down_ &&
            flush_waiters_ == 0) {
          break;
        }
      }
      flushed = FlushBatch();
    }
    if (!flushed.ok()) {
      backoff_micros =
          backoff_micros == 0
              ? options_.retry_backoff_micros
              : std::min(backoff_micros * 2, options_.retry_backoff_max_micros);
      continue;
    }
    backoff_micros = 0;
    {
      common::MutexLock lock(&mu_);
      if (shutting_down_ && dirty_.empty()) return;
    }
  }
}

Status WriteBackManager::FlushAll() {
  common::MutexLock lock(&mu_);
  ++flush_waiters_;
  while (!dirty_.empty() && !shutting_down_ &&
         consecutive_flush_failures_ < options_.max_flush_failures) {
    flush_cv_.SignalAll();
    clean_cv_.WaitFor(5'000);
  }
  --flush_waiters_;
  if (!dirty_.empty() && !flush_error_.ok()) return flush_error_;
  return Status::OK();
}

size_t WriteBackManager::dirty_count() const {
  common::MutexLock lock(&mu_);
  return dirty_.size();
}

WriteBackManager::Stats WriteBackManager::GetStats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

Status WriteBackManager::flush_error() const {
  common::MutexLock lock(&mu_);
  return flush_error_;
}

}  // namespace tierbase
