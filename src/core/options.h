// TierBase configuration. A "storage configuration s" in the cost model is
// exactly one instance of these options; the cost optimization framework
// (§5.3) iterates over candidate TierBaseOptions and measures each.

#ifndef TIERBASE_CORE_OPTIONS_H_
#define TIERBASE_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "analytics/workload_analytics.h"
#include "cache/hash_engine.h"
#include "compression/compressor.h"

namespace tierbase {

/// How the cache tier synchronizes with the storage tier (paper §4.1), or
/// persists on its own (§4.3 WAL modes, measured in Fig 8).
enum class CachingPolicy {
  kCacheOnly,      // Pure in-memory cache; no durability.
  kWalFile,        // Cache + append-only WAL on disk, interval sync ("WAL").
  kWalPmem,        // Cache + WAL on a PMem ring buffer ("WAL-PMem").
  kWriteThrough,   // Tiered; storage updated synchronously ("wt").
  kWriteBack,      // Tiered; storage updated in deferred batches ("wb").
};

const char* CachingPolicyName(CachingPolicy policy);

enum class ReplicationMode {
  kNone,
  kMasterReplica,  // One in-process replica applied from an oplog.
};

struct WriteBackOptions {
  /// Dirty-entry count that triggers an early flush.
  size_t flush_threshold = 1024;
  /// Maximum interval between batch flushes.
  uint64_t flush_interval_micros = 50'000;
  /// Maximum ops per storage batch.
  size_t max_batch = 256;
  /// Backpressure: writers block when this many entries are dirty.
  size_t max_dirty = 8192;
  /// Failed flushes are retried with exponential backoff starting here
  /// and capped at the max; the flush error clears on the first success.
  uint64_t retry_backoff_micros = 1'000;
  uint64_t retry_backoff_max_micros = 500'000;
  /// After this many consecutive flush failures, FlushAll and shutdown
  /// stop waiting for the storage tier to heal and surface the error
  /// (entries stay dirty; the flusher keeps retrying until shutdown).
  size_t max_flush_failures = 16;
};

struct DeferredFetchOptions {
  bool enabled = true;
  /// Collect concurrent misses for up to this long before issuing one
  /// batched MultiRead to the storage tier.
  uint64_t batch_window_micros = 200;
  size_t max_batch = 64;
};

struct TierBaseOptions {
  CachingPolicy policy = CachingPolicy::kCacheOnly;
  ReplicationMode replication = ReplicationMode::kNone;

  /// Cache-tier engine configuration (budget, shards, compressor, PMem).
  cache::HashEngineOptions cache;

  /// Directory for WAL files (kWalFile/kWalPmem backing log).
  std::string wal_dir;
  uint64_t wal_sync_interval_micros = 1'000'000;
  /// PMem device for kWalPmem's ring buffer (not owned).
  PmemDevice* wal_pmem_device = nullptr;

  /// Populate cache on a storage-tier read hit (tiered policies).
  bool populate_on_miss = true;

  WriteBackOptions write_back;
  DeferredFetchOptions deferred_fetch;

  /// Workload observatory (live MRC, hot keys, keyspace shape). When
  /// enabled, TierBase owns a WorkloadAnalytics wired into the cache
  /// engine's hot path; analytics.shards == 0 inherits cache.shards.
  /// Disabled ( --no-analytics ) costs literally nothing: the engine's
  /// sink pointer stays null.
  analytics::WorkloadAnalyticsOptions analytics;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_OPTIONS_H_
