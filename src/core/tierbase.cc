#include "core/tierbase.h"

#include <limits>
#include <map>

#include "common/coding.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/perf_context.h"

namespace tierbase {

namespace {

constexpr char kOpSet = 1;
constexpr char kOpDelete = 0;

std::string EncodeMutation(char op, const Slice& key, const Slice& value) {
  std::string rec;
  rec.push_back(op);
  PutLengthPrefixedSlice(&rec, key);
  PutLengthPrefixedSlice(&rec, value);
  return rec;
}

bool DecodeMutation(const Slice& record, char* op, Slice* key, Slice* value) {
  Slice in = record;
  if (in.empty()) return false;
  *op = in[0];
  in.remove_prefix(1);
  return GetLengthPrefixedSlice(&in, key) &&
         GetLengthPrefixedSlice(&in, value);
}

}  // namespace

const char* CachingPolicyName(CachingPolicy policy) {
  switch (policy) {
    case CachingPolicy::kCacheOnly: return "cache-only";
    case CachingPolicy::kWalFile: return "wal";
    case CachingPolicy::kWalPmem: return "wal-pmem";
    case CachingPolicy::kWriteThrough: return "write-through";
    case CachingPolicy::kWriteBack: return "write-back";
  }
  return "?";
}

TierBase::TierBase(const TierBaseOptions& options, StorageAdapter* storage)
    : options_(options), storage_(storage) {}

TierBase::~TierBase() {
  // Flush write-back state before tearing anything down.
  if (write_back_ != nullptr) write_back_->FlushAll();
}

std::string TierBase::name() const {
  return std::string("tierbase-") + CachingPolicyName(options_.policy);
}

Result<std::unique_ptr<TierBase>> TierBase::Open(
    const TierBaseOptions& options, StorageAdapter* storage) {
  if ((options.policy == CachingPolicy::kWriteThrough ||
       options.policy == CachingPolicy::kWriteBack) &&
      storage == nullptr) {
    return Status::InvalidArgument("tierbase: tiered policy needs storage");
  }
  if (options.policy == CachingPolicy::kWalPmem &&
      options.wal_pmem_device == nullptr) {
    return Status::InvalidArgument("tierbase: WAL-PMem needs a pmem device");
  }
  if ((options.policy == CachingPolicy::kWalFile ||
       options.policy == CachingPolicy::kWalPmem) &&
      options.wal_dir.empty()) {
    return Status::InvalidArgument("tierbase: WAL policy needs wal_dir");
  }
  std::unique_ptr<TierBase> tb(new TierBase(options, storage));
  Status s = tb->Init();
  if (!s.ok()) return s;
  return tb;
}

Status TierBase::Init() {
  if (options_.analytics.enabled) {
    analytics::WorkloadAnalyticsOptions aopts = options_.analytics;
    if (aopts.shards == 0) aopts.shards = options_.cache.shards;
    analytics_ = std::make_unique<analytics::WorkloadAnalytics>(aopts);
    options_.cache.analytics = analytics_.get();
  }
  cache_ = std::make_unique<cache::HashEngine>(options_.cache);

  if (options_.replication == ReplicationMode::kMasterReplica) {
    Replicator::Options ropts;
    ropts.replica_engine = options_.cache;
    // The replica replays the master's oplog; that apply traffic is not
    // client workload and must not feed the observatory.
    ropts.replica_engine.analytics = nullptr;
    replicator_ = std::make_unique<Replicator>(ropts);
  }

  switch (options_.policy) {
    case CachingPolicy::kCacheOnly:
      break;

    case CachingPolicy::kWalFile:
    case CachingPolicy::kWalPmem: {
      TIERBASE_RETURN_IF_ERROR(env::CreateDirIfMissing(options_.wal_dir));
      if (options_.policy == CachingPolicy::kWalPmem) {
        auto ring = PmemRingBuffer::Open(options_.wal_pmem_device);
        if (!ring.ok()) return ring.status();
        wal_ring_ = std::move(*ring);
      }
      TIERBASE_RETURN_IF_ERROR(RecoverFromWal());
      break;
    }

    case CachingPolicy::kWriteThrough: {
      write_through_ = std::make_unique<PerKeyCoalescer>(
          [this](const Slice& key, const Slice& value, bool is_delete) {
            return is_delete ? storage_->Delete(key)
                             : storage_->Write(key, value);
          },
          /*coalesce=*/true,
          [this](const std::vector<PerKeyCoalescer::BatchWrite>& ops) {
            std::vector<StorageAdapter::BatchOp> batch;
            batch.reserve(ops.size());
            for (const auto& op : ops) {
              batch.push_back({op.key, op.value, op.is_delete});
            }
            return storage_->WriteBatch(batch);
          });
      fetcher_ = std::make_unique<DeferredFetcher>(storage_,
                                                   options_.deferred_fetch);
      break;
    }

    case CachingPolicy::kWriteBack: {
      write_back_ = std::make_unique<WriteBackManager>(
          storage_, options_.write_back);
      fetcher_ = std::make_unique<DeferredFetcher>(storage_,
                                                   options_.deferred_fetch);
      // Dirty entries must stay cached until flushed (§4.1.2 reliability).
      cache_->SetEvictionFilter([this](const Slice& key) {
        return !write_back_->IsDirty(key);
      });
      break;
    }
  }
  return Status::OK();
}

Status TierBase::RecoverFromWal() {
  const std::string wal_path = options_.wal_dir + "/tierbase.wal";
  const std::string compact_path = wal_path + ".compact";
  // A leftover .compact is a crash mid-compaction (before the rename):
  // unreferenced and possibly incomplete — discard it.
  TIERBASE_RETURN_IF_ERROR(env::RemoveFile(compact_path));

  // Fold the surviving history straight into its live state (last writer
  // wins; deletes cancel earlier sets): backing file first (older), then
  // the PMem ring (newest).
  std::map<std::string, std::string> live;
  auto fold = [&](const Slice& rec) -> Status {
    char op;
    Slice key, value;
    if (!DecodeMutation(rec, &op, &key, &value)) {
      // The CRC passed but the payload doesn't parse: writer-side damage,
      // not a torn write. Refuse to guess.
      return Status::Corruption("tierbase wal: undecodable record payload");
    }
    ++wal_replayed_records_;
    if (op == kOpDelete) {
      live.erase(key.ToString());
    } else {
      live[key.ToString()] = value.ToString();
    }
    return Status::OK();
  };

  if (env::FileExists(wal_path)) {
    auto reader = lsm::WalReader::Open(wal_path);
    if (!reader.ok()) return reader.status();
    std::string rec;
    bool done = false;
    while (!done) {
      switch ((*reader)->ReadRecord(&rec)) {
        case lsm::WalRead::kOk:
          TIERBASE_RETURN_IF_ERROR(fold(rec));
          break;
        case lsm::WalRead::kEof:
          done = true;
          break;
        case lsm::WalRead::kTruncatedTail:
          // Recoverable: the torn suffix never made it to a sync. The
          // compaction rewrite below drops it for good.
          TB_LOG_WARN(
              "tierbase recovery: %s: torn tail, skipping %llu bytes (%s)",
              wal_path.c_str(),
              static_cast<unsigned long long>((*reader)->skipped_bytes()),
              (*reader)->damage().c_str());
          ++wal_truncated_tails_;
          wal_skipped_bytes_ += (*reader)->skipped_bytes();
          done = true;
          break;
        case lsm::WalRead::kCorruption:
          return Status::Corruption(
              "tierbase wal: " + (*reader)->damage() + " at offset " +
              std::to_string((*reader)->offset()));
      }
    }
  }
  size_t ring_resident = 0;
  if (wal_ring_ != nullptr) {
    // Non-destructive: the ring's durable head only advances once the
    // compacted log below is durable. A destructive drain here would
    // leave these acknowledged records in memory only, and a crash (or a
    // failed compaction write) mid-recovery would lose them for good.
    std::vector<std::string> ring_records;
    TIERBASE_RETURN_IF_ERROR(
        wal_ring_->Peek(std::numeric_limits<size_t>::max(), &ring_records));
    ring_resident = ring_records.size();
    for (const auto& rec : ring_records) {
      TIERBASE_RETURN_IF_ERROR(fold(rec));
    }
  }

  // Compact the log: write the live records to a temp file, sync it, then
  // atomically replace the old log. A crash before the rename keeps the
  // old log (and the ring contents), after it the compacted one — synced
  // data survives either way. (The previous startup-rewrite scheme
  // truncated the log in place and re-appended un-synced, so a crash
  // right after a reboot lost every previously acknowledged record.)
  lsm::WalOptions wal_options;
  wal_options.sync_mode = lsm::WalSyncMode::kInterval;
  wal_options.sync_interval_micros = options_.wal_sync_interval_micros;
  {
    auto compact = lsm::WalWriter::Open(compact_path, wal_options);
    if (!compact.ok()) return compact.status();
    for (const auto& [key, value] : live) {
      TIERBASE_RETURN_IF_ERROR(
          (*compact)->AddRecord(EncodeMutation(kOpSet, key, value)));
    }
    TIERBASE_RETURN_IF_ERROR((*compact)->Sync());
  }
  TIERBASE_RETURN_IF_ERROR(env::RenameFile(compact_path, wal_path));
  // The ring records are now durable in the compacted log; retire them.
  if (wal_ring_ != nullptr && ring_resident > 0) {
    TIERBASE_RETURN_IF_ERROR(wal_ring_->Discard(ring_resident));
  }

  // Populate the cache from the folded live state.
  for (const auto& [key, value] : live) {
    TIERBASE_RETURN_IF_ERROR(cache_->Set(key, value));
  }

  // Continue appending to the compacted log (never O_TRUNC).
  auto wal = lsm::WalWriter::Open(wal_path, wal_options, /*append=*/true);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(*wal);
  return Status::OK();
}

Status TierBase::LogMutation(const Slice& key, const Slice& value,
                             bool is_delete) {
  metrics::ScopedPerfStage wal_stage(metrics::PerfContext::kWalAppend);
  std::string rec =
      EncodeMutation(is_delete ? kOpDelete : kOpSet, key, value);
  if (options_.policy == CachingPolicy::kWalFile) {
    return wal_->AddRecord(rec);
  }
  // WAL-PMem: durable on the ring per record; batch-moved to the file when
  // the ring fills (§4.3 "batch-moved to cloud storage"). Peek + sync +
  // discard: the ring's durable head must not advance before the file
  // copy is synced, or a crash in between loses acknowledged records.
  Status s = wal_ring_->Append(rec);
  if (s.IsBusy()) {
    std::vector<std::string> batch;
    TIERBASE_RETURN_IF_ERROR(wal_ring_->Peek(1024, &batch));
    for (const auto& r : batch) {
      TIERBASE_RETURN_IF_ERROR(wal_->AddRecord(r));
    }
    TIERBASE_RETURN_IF_ERROR(wal_->Sync());
    TIERBASE_RETURN_IF_ERROR(wal_ring_->Discard(batch.size()));
    s = wal_ring_->Append(rec);
  }
  return s;
}

Status TierBase::Set(const Slice& key, const Slice& value) {
  return SetInternal(key, value, 0);
}

Status TierBase::SetEx(const Slice& key, const Slice& value,
                       uint64_t ttl_micros) {
  return SetInternal(key, value, ttl_micros);
}

Status TierBase::SetInternal(const Slice& key, const Slice& value,
                             uint64_t ttl_micros) {
  stats_sets_.fetch_add(1, std::memory_order_relaxed);

  switch (options_.policy) {
    case CachingPolicy::kCacheOnly:
      TIERBASE_RETURN_IF_ERROR(cache_->SetEx(key, value, ttl_micros));
      break;

    case CachingPolicy::kWalFile:
    case CachingPolicy::kWalPmem:
      TIERBASE_RETURN_IF_ERROR(LogMutation(key, value, /*is_delete=*/false));
      TIERBASE_RETURN_IF_ERROR(cache_->SetEx(key, value, ttl_micros));
      break;

    case CachingPolicy::kWriteThrough: {
      // §4.1.1: the update is held in a temporary buffer (here: the
      // coalescer's pending slot) and only applied to the main cache after
      // the storage tier acknowledges; on failure the cache entry is
      // invalidated so subsequent reads fetch the authoritative value.
      Status s;
      {
        metrics::ScopedPerfStage st(metrics::PerfContext::kStorageWrite);
        s = write_through_->Write(key, value, /*is_delete=*/false);
      }
      if (!s.ok()) {
        cache_->Delete(key);
        return s;
      }
      TIERBASE_RETURN_IF_ERROR(cache_->SetEx(key, value, ttl_micros));
      break;
    }

    case CachingPolicy::kWriteBack: {
      // §4.1.2: update the cache immediately, defer the storage write.
      Status s = cache_->SetEx(key, value, ttl_micros);
      if (s.IsOutOfSpace()) {
        // The cache is full of pinned dirty entries; skip the cache copy.
        // The dirty buffer (replicated in production) serves reads until
        // the batch flush lands, and MarkDirty's max_dirty backpressure —
        // not a synchronous flush — bounds the backlog.
        s = Status::OK();
      }
      TIERBASE_RETURN_IF_ERROR(s);
      TIERBASE_RETURN_IF_ERROR(
          write_back_->MarkDirty(key, value, /*is_delete=*/false));
      break;
    }
  }

  if (replicator_ != nullptr) replicator_->ReplicateSet(key, value);
  return Status::OK();
}

Status TierBase::Get(const Slice& key, std::string* value) {
  stats_gets_.fetch_add(1, std::memory_order_relaxed);

  Status s;
  {
    metrics::ScopedPerfStage probe(metrics::PerfContext::kCacheProbe);
    s = cache_->Get(key, value);
  }
  if (s.ok()) {
    stats_hits_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  if (!s.IsNotFound()) return s;

  if (!tiered()) {
    stats_misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("");
  }

  // Write-back: consult the dirty buffer before declaring a miss — it is
  // part of the cache tier (a dirty delete means the key is gone even if
  // storage still has it; a dirty value may never have had a cache copy).
  if (write_back_ != nullptr) {
    std::string dirty_value;
    bool dirty_delete = false;
    if (write_back_->GetDirty(key, &dirty_value, &dirty_delete)) {
      stats_hits_.fetch_add(1, std::memory_order_relaxed);
      if (dirty_delete) return Status::NotFound("");
      *value = std::move(dirty_value);
      return Status::OK();
    }
  }

  stats_misses_.fetch_add(1, std::memory_order_relaxed);

  {
    metrics::ScopedPerfStage read_stage(metrics::PerfContext::kStorageRead);
    s = fetcher_->Fetch(key, value);
  }
  if (!s.ok()) return s;

  if (options_.populate_on_miss) {
    // Populate without dirtying: this value is already durable in storage.
    Status ps = cache_->Set(key, *value);
    if (ps.ok()) {
      stats_populates_.fetch_add(1, std::memory_order_relaxed);
      if (replicator_ != nullptr) replicator_->ReplicateSet(key, *value);
    }
    // OutOfSpace here is fine — serving from storage still works.
  }
  return Status::OK();
}

void TierBase::MultiGet(const std::vector<Slice>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  const size_t n = keys.size();
  stats_gets_.fetch_add(n, std::memory_order_relaxed);

  {
    metrics::ScopedPerfStage probe(metrics::PerfContext::kCacheProbe);
    cache_->MultiGet(keys, values, statuses);
  }

  uint64_t hits = 0;
  std::vector<uint32_t> misses;
  for (size_t i = 0; i < n; ++i) {
    if ((*statuses)[i].ok()) {
      ++hits;
    } else if ((*statuses)[i].IsNotFound()) {
      misses.push_back(static_cast<uint32_t>(i));
    }
    // Other errors (e.g. wrong type) pass through untouched.
  }
  stats_hits_.fetch_add(hits, std::memory_order_relaxed);

  if (!tiered()) {
    stats_misses_.fetch_add(misses.size(), std::memory_order_relaxed);
    return;
  }

  // Write-back: the dirty buffer is part of the cache tier — consult it
  // before going to storage, one dirty-set lock for the whole batch.
  if (write_back_ != nullptr && !misses.empty()) {
    std::vector<Slice> miss_keys;
    miss_keys.reserve(misses.size());
    for (uint32_t i : misses) miss_keys.push_back(keys[i]);
    std::vector<bool> dirty_found, dirty_deletes;
    std::vector<std::string> dirty_values;
    write_back_->GetDirtyBatch(miss_keys, &dirty_found, &dirty_values,
                               &dirty_deletes);
    std::vector<uint32_t> still_missing;
    for (size_t m = 0; m < misses.size(); ++m) {
      const uint32_t i = misses[m];
      if (dirty_found[m]) {
        stats_hits_.fetch_add(1, std::memory_order_relaxed);
        if (!dirty_deletes[m]) {
          (*values)[i] = std::move(dirty_values[m]);
          (*statuses)[i] = Status::OK();
        }
        // A dirty delete keeps NotFound: the key is gone even if storage
        // still has it.
      } else {
        still_missing.push_back(i);
      }
    }
    misses.swap(still_missing);
  }
  if (misses.empty()) return;
  stats_misses_.fetch_add(misses.size(), std::memory_order_relaxed);

  // One batched storage fetch for all remaining misses.
  std::vector<Slice> miss_keys;
  miss_keys.reserve(misses.size());
  for (uint32_t i : misses) miss_keys.push_back(keys[i]);
  std::vector<std::string> fetched;
  std::vector<Status> fetch_statuses;
  {
    metrics::ScopedPerfStage read_stage(metrics::PerfContext::kStorageRead);
    fetcher_->FetchMany(miss_keys, &fetched, &fetch_statuses);
  }

  std::vector<Slice> populate_keys;
  std::vector<Slice> populate_values;
  for (size_t m = 0; m < misses.size(); ++m) {
    const uint32_t i = misses[m];
    (*statuses)[i] = fetch_statuses[m];
    if (fetch_statuses[m].ok()) {
      (*values)[i] = std::move(fetched[m]);
      if (options_.populate_on_miss) {
        populate_keys.push_back(keys[i]);
        populate_values.push_back(Slice((*values)[i]));
      }
    }
  }

  if (!populate_keys.empty()) {
    // Populate without dirtying: these values are already durable in
    // storage. OutOfSpace is fine — serving from storage still works.
    std::vector<Status> populate_statuses;
    cache_->MultiSet(populate_keys, populate_values, &populate_statuses);
    for (size_t p = 0; p < populate_keys.size(); ++p) {
      if (populate_statuses[p].ok()) {
        stats_populates_.fetch_add(1, std::memory_order_relaxed);
        if (replicator_ != nullptr) {
          replicator_->ReplicateSet(populate_keys[p], populate_values[p]);
        }
      }
    }
  }
}

void TierBase::MultiSet(const std::vector<Slice>& keys,
                        const std::vector<Slice>& values,
                        std::vector<Status>* statuses) {
  const size_t n = keys.size();
  stats_sets_.fetch_add(n, std::memory_order_relaxed);
  statuses->assign(n, Status::OK());
  if (n == 0) return;

  switch (options_.policy) {
    case CachingPolicy::kCacheOnly:
      cache_->MultiSet(keys, values, statuses);
      break;

    case CachingPolicy::kWalFile:
    case CachingPolicy::kWalPmem: {
      // Log sequentially (the WAL is a single append stream), then apply
      // the surviving ops to the cache as one batch.
      std::vector<Slice> logged_keys, logged_values;
      std::vector<uint32_t> logged_index;
      for (size_t i = 0; i < n; ++i) {
        Status s = LogMutation(keys[i], values[i], /*is_delete=*/false);
        if (s.ok()) {
          logged_keys.push_back(keys[i]);
          logged_values.push_back(values[i]);
          logged_index.push_back(static_cast<uint32_t>(i));
        } else {
          (*statuses)[i] = s;
        }
      }
      std::vector<Status> cache_statuses;
      cache_->MultiSet(logged_keys, logged_values, &cache_statuses);
      for (size_t m = 0; m < logged_index.size(); ++m) {
        (*statuses)[logged_index[m]] = cache_statuses[m];
      }
      break;
    }

    case CachingPolicy::kWriteThrough: {
      // §4.1.1 batched: the whole batch is coalesced into one storage
      // call; the cache is updated only for acknowledged writes and
      // invalidated for failed ones.
      {
        metrics::ScopedPerfStage st(metrics::PerfContext::kStorageWrite);
        write_through_->WriteBatch(keys, values, statuses);
      }
      std::vector<Slice> ok_keys, ok_values;
      std::vector<uint32_t> ok_index;
      for (size_t i = 0; i < n; ++i) {
        if ((*statuses)[i].ok()) {
          ok_keys.push_back(keys[i]);
          ok_values.push_back(values[i]);
          ok_index.push_back(static_cast<uint32_t>(i));
        } else {
          cache_->Delete(keys[i]);
        }
      }
      std::vector<Status> cache_statuses;
      cache_->MultiSet(ok_keys, ok_values, &cache_statuses);
      for (size_t m = 0; m < ok_index.size(); ++m) {
        (*statuses)[ok_index[m]] = cache_statuses[m];
      }
      break;
    }

    case CachingPolicy::kWriteBack: {
      // §4.1.2 batched: update the cache immediately, then mark the whole
      // batch dirty under one dirty-set lock acquisition.
      std::vector<Status> cache_statuses;
      cache_->MultiSet(keys, values, &cache_statuses);
      std::vector<Slice> dirty_keys, dirty_values;
      std::vector<uint32_t> dirty_index;
      for (size_t i = 0; i < n; ++i) {
        // OutOfSpace: the cache is full of pinned dirty entries; the dirty
        // buffer still serves reads until the flush lands.
        if (cache_statuses[i].ok() || cache_statuses[i].IsOutOfSpace()) {
          dirty_keys.push_back(keys[i]);
          dirty_values.push_back(values[i]);
          dirty_index.push_back(static_cast<uint32_t>(i));
        } else {
          (*statuses)[i] = cache_statuses[i];
        }
      }
      Status s = write_back_->MarkDirtyBatch(dirty_keys, dirty_values);
      if (!s.ok()) {
        for (uint32_t i : dirty_index) (*statuses)[i] = s;
      }
      break;
    }
  }

  if (replicator_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if ((*statuses)[i].ok()) {
        replicator_->ReplicateSet(keys[i], values[i]);
      }
    }
  }
}

Status TierBase::Delete(const Slice& key) {
  switch (options_.policy) {
    case CachingPolicy::kCacheOnly: {
      Status s = cache_->Delete(key);
      if (replicator_ != nullptr) replicator_->ReplicateDelete(key);
      return s;
    }
    case CachingPolicy::kWalFile:
    case CachingPolicy::kWalPmem: {
      TIERBASE_RETURN_IF_ERROR(LogMutation(key, Slice(), /*is_delete=*/true));
      Status s = cache_->Delete(key);
      if (replicator_ != nullptr) replicator_->ReplicateDelete(key);
      return s;
    }
    case CachingPolicy::kWriteThrough: {
      Status s;
      {
        metrics::ScopedPerfStage st(metrics::PerfContext::kStorageWrite);
        s = write_through_->Write(key, Slice(), /*is_delete=*/true);
      }
      if (!s.ok()) {
        cache_->Delete(key);  // Invalidate regardless.
        return s;
      }
      cache_->Delete(key);
      if (replicator_ != nullptr) replicator_->ReplicateDelete(key);
      return Status::OK();
    }
    case CachingPolicy::kWriteBack: {
      // Keep a tombstone in the dirty set; drop the cached value.
      TIERBASE_RETURN_IF_ERROR(
          write_back_->MarkDirty(key, Slice(), /*is_delete=*/true));
      cache_->Delete(key);
      if (replicator_ != nullptr) replicator_->ReplicateDelete(key);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status TierBase::Cas(const Slice& key, const Slice& expected,
                     const Slice& value, bool allow_create) {
  // Tiered modes: fetch the authoritative value into the cache first
  // (deferred cache-fetching path for update ops on missing keys, §4.1.2).
  if (tiered() && !cache_->Exists(key)) {
    bool dirty_delete = false;
    std::string dirty_value;
    bool have_dirty =
        write_back_ != nullptr &&
        write_back_->GetDirty(key, &dirty_value, &dirty_delete);
    if (have_dirty && !dirty_delete) {
      cache_->Set(key, dirty_value);
    } else if (!have_dirty) {
      std::string stored;
      Status s = fetcher_->Fetch(key, &stored);
      if (s.ok()) {
        cache_->Set(key, stored);
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
  }

  TIERBASE_RETURN_IF_ERROR(cache_->Cas(key, expected, value, allow_create));

  // Propagate the accepted write like a Set.
  switch (options_.policy) {
    case CachingPolicy::kCacheOnly:
      break;
    case CachingPolicy::kWalFile:
    case CachingPolicy::kWalPmem:
      TIERBASE_RETURN_IF_ERROR(LogMutation(key, value, false));
      break;
    case CachingPolicy::kWriteThrough: {
      Status s = write_through_->Write(key, value, false);
      if (!s.ok()) {
        cache_->Delete(key);
        return s;
      }
      break;
    }
    case CachingPolicy::kWriteBack:
      TIERBASE_RETURN_IF_ERROR(write_back_->MarkDirty(key, value, false));
      break;
  }
  if (replicator_ != nullptr) replicator_->ReplicateSet(key, value);
  return Status::OK();
}

UsageStats TierBase::GetUsage() const {
  UsageStats usage = cache_->GetUsage();
  if (replicator_ != nullptr) {
    UsageStats replica = replicator_->replica().GetUsage();
    usage.memory_bytes += replica.memory_bytes;
    usage.pmem_bytes += replica.pmem_bytes;
  }
  if (wal_ != nullptr) usage.disk_bytes += wal_->size();
  if (wal_ring_ != nullptr) {
    usage.pmem_bytes +=
        wal_ring_->data_capacity() - wal_ring_->free_bytes();
  }
  return usage;
}

Status TierBase::WaitIdle() {
  if (write_back_ != nullptr) {
    TIERBASE_RETURN_IF_ERROR(write_back_->FlushAll());
  }
  if (replicator_ != nullptr) replicator_->WaitCaughtUp();
  if (wal_ != nullptr) TIERBASE_RETURN_IF_ERROR(wal_->Sync());
  if (storage_ != nullptr) TIERBASE_RETURN_IF_ERROR(storage_->WaitIdle());
  return Status::OK();
}

TierBase::Stats TierBase::GetStats() const {
  Stats s;
  s.gets = stats_gets_.load(std::memory_order_relaxed);
  s.cache_hits = stats_hits_.load(std::memory_order_relaxed);
  s.cache_misses = stats_misses_.load(std::memory_order_relaxed);
  s.sets = stats_sets_.load(std::memory_order_relaxed);
  s.storage_populates = stats_populates_.load(std::memory_order_relaxed);
  s.evictions = cache_->evictions();
  s.expirations = cache_->expirations();
  s.lru_touches = cache_->lru_touches();
  s.multi_shard_locks = cache_->multi_shard_locks();
  s.multi_batches = cache_->multi_batches();
  UsageStats cache_usage = cache_->GetUsage();
  s.bytes_cached = cache_usage.memory_bytes;
  s.pmem_bytes = cache_usage.pmem_bytes;
  s.keys_cached = cache_usage.keys;
  s.wal_replayed_records = wal_replayed_records_;
  s.wal_truncated_tails = wal_truncated_tails_;
  s.wal_skipped_bytes = wal_skipped_bytes_;
  if (storage_ != nullptr) s.storage_wal = storage_->GetWalRecoveryStats();
  if (write_through_ != nullptr) s.write_through = write_through_->GetStats();
  if (write_back_ != nullptr) {
    s.write_back = write_back_->GetStats();
    s.write_back_dirty = write_back_->dirty_count();
    Status fe = write_back_->flush_error();
    if (!fe.ok()) s.flush_error = fe.ToString();
  }
  if (fetcher_ != nullptr) s.deferred_fetch = fetcher_->GetStats();
  return s;
}

}  // namespace tierbase
