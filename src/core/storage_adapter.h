// StorageAdapter: TierBase's pluggable disaggregated-storage interface
// (paper §3, "TierBase offers various disaggregated storage options through
// a pluggable storage adapter"). The production system speaks to UCS; this
// repo ships an LSM-backed adapter (our UCS substitute) and an in-memory
// mock with injectable failures/latency for tests.

#ifndef TIERBASE_CORE_STORAGE_ADAPTER_H_
#define TIERBASE_CORE_STORAGE_ADAPTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/kv_engine.h"
#include "common/mutex.h"
#include "lsm/lsm_store.h"

namespace tierbase {

class StorageAdapter {
 public:
  struct BatchOp {
    std::string key;
    std::string value;
    bool is_delete = false;
  };

  virtual ~StorageAdapter() = default;

  virtual std::string name() const = 0;
  virtual Status Write(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Read(const Slice& key, std::string* value) = 0;

  /// Batched write — the write-back flush path (one remote call).
  virtual Status WriteBatch(const std::vector<BatchOp>& ops) = 0;

  /// Batched read — the deferred cache-fetch path. `values[i]` is filled
  /// and `found[i]` set per key.
  virtual Status MultiRead(const std::vector<std::string>& keys,
                           std::vector<std::string>* values,
                           std::vector<bool>* found) = 0;

  virtual UsageStats GetUsage() const = 0;
  virtual Status WaitIdle() { return Status::OK(); }

  /// Crash-recovery audit trail of the storage tier's own WAL (what the
  /// last Open replayed). Zero for adapters without a WAL.
  struct WalRecoveryStats {
    uint64_t records_replayed = 0;
    uint64_t truncated_tails = 0;
    uint64_t skipped_bytes = 0;
  };
  virtual WalRecoveryStats GetWalRecoveryStats() const { return {}; }

  struct Counters {
    uint64_t reads = 0;
    uint64_t writes = 0;       // Individual ops, incl. batched ones.
    uint64_t batch_calls = 0;  // Remote calls for batches.
  };
  Counters counters() const {
    Counters c;
    c.reads = reads_.load(std::memory_order_relaxed);
    c.writes = writes_.load(std::memory_order_relaxed);
    c.batch_calls = batch_calls_.load(std::memory_order_relaxed);
    return c;
  }

 protected:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> batch_calls_{0};
};

/// LSM-backed adapter: the storage tier used by benches and examples.
class LsmStorageAdapter : public StorageAdapter {
 public:
  static Result<std::unique_ptr<LsmStorageAdapter>> Open(
      const lsm::LsmOptions& options);

  std::string name() const override { return "lsm-storage"; }
  Status Write(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Read(const Slice& key, std::string* value) override;
  Status WriteBatch(const std::vector<BatchOp>& ops) override;
  Status MultiRead(const std::vector<std::string>& keys,
                   std::vector<std::string>* values,
                   std::vector<bool>* found) override;
  UsageStats GetUsage() const override;
  Status WaitIdle() override;
  WalRecoveryStats GetWalRecoveryStats() const override;

  lsm::LsmStore* store() { return store_.get(); }

 private:
  explicit LsmStorageAdapter(std::unique_ptr<lsm::LsmStore> store)
      : store_(std::move(store)) {}
  std::unique_ptr<lsm::LsmStore> store_;
};

/// In-memory adapter for unit tests: ordered map + optional injected
/// latency and failure-every-N.
class MockStorageAdapter : public StorageAdapter {
 public:
  struct Options {
    uint64_t latency_micros = 0;     // Injected per remote call.
    uint64_t fail_every = 0;         // Every Nth write fails (0 = never).
    uint64_t fail_first = 0;         // The first N writes fail, then the
                                     // "storage tier" heals (0 = never).
    Clock* clock = Clock::Real();
  };

  MockStorageAdapter() : MockStorageAdapter(Options()) {}
  explicit MockStorageAdapter(Options options) : options_(options) {}

  std::string name() const override { return "mock-storage"; }
  Status Write(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Read(const Slice& key, std::string* value) override;
  Status WriteBatch(const std::vector<BatchOp>& ops) override;
  Status MultiRead(const std::vector<std::string>& keys,
                   std::vector<std::string>* values,
                   std::vector<bool>* found) override;
  UsageStats GetUsage() const override;

  size_t size() const;

 private:
  Status MaybeFail();
  void InjectLatency() {
    if (options_.latency_micros > 0) {
      options_.clock->SleepMicros(options_.latency_micros);
    }
  }

  Options options_;
  mutable common::Mutex mu_;
  std::map<std::string, std::string> map_ GUARDED_BY(mu_);
  std::atomic<uint64_t> op_counter_{0};
};

/// Decorator modeling a *disaggregated* storage tier: every remote call
/// pays one network round trip regardless of how many ops it carries --
/// exactly why write-back batching, write coalescing and deferred
/// cache-fetching reduce PC_miss/PC_storage (paper Â§4.1). Wraps any
/// adapter; the inner adapter is not owned unless `owned` is supplied.
class RemoteStorageAdapter : public StorageAdapter {
 public:
  RemoteStorageAdapter(StorageAdapter* inner, uint64_t rtt_micros,
                       std::unique_ptr<StorageAdapter> owned = nullptr,
                       Clock* clock = Clock::Real())
      : inner_(inner), owned_(std::move(owned)), rtt_micros_(rtt_micros),
        clock_(clock) {}

  std::string name() const override { return "remote+" + inner_->name(); }

  Status Write(const Slice& key, const Slice& value) override {
    RoundTrip();
    return Forward(inner_->Write(key, value));
  }
  Status Delete(const Slice& key) override {
    RoundTrip();
    return Forward(inner_->Delete(key));
  }
  Status Read(const Slice& key, std::string* value) override {
    RoundTrip();
    Status s = inner_->Read(key, value);
    if (s.ok()) reads_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  Status WriteBatch(const std::vector<BatchOp>& ops) override {
    RoundTrip();  // One round trip for the whole batch.
    Status s = inner_->WriteBatch(ops);
    if (s.ok()) {
      writes_.fetch_add(ops.size(), std::memory_order_relaxed);
      batch_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  Status MultiRead(const std::vector<std::string>& keys,
                   std::vector<std::string>* values,
                   std::vector<bool>* found) override {
    RoundTrip();
    Status s = inner_->MultiRead(keys, values, found);
    if (s.ok()) {
      reads_.fetch_add(keys.size(), std::memory_order_relaxed);
      batch_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  UsageStats GetUsage() const override { return inner_->GetUsage(); }
  Status WaitIdle() override { return inner_->WaitIdle(); }

  StorageAdapter* inner() { return inner_; }

 private:
  void RoundTrip() const {
    // Busy-spin rather than sleep: OS sleep granularity can be ~1 ms,
    // which would swamp a sub-millisecond RTT model. The calling thread is
    // "on the wire" for exactly rtt_micros_.
    if (rtt_micros_ > 0) BusySpinNanos(rtt_micros_ * 1000);
  }
  Status Forward(Status s) {
    if (s.ok()) writes_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  StorageAdapter* inner_;
  std::unique_ptr<StorageAdapter> owned_;
  uint64_t rtt_micros_;
  Clock* clock_;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_STORAGE_ADAPTER_H_
