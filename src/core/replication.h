// Master→replica replication for the cache tier (paper §4.1.2 "TierBase
// maintains multiple replicas of dirty data and cache contents" and §6.4
// "we implement a master-replica setup in the cache tier to ensure data
// reliability"). Ops are appended to a bounded oplog and applied to the
// replica engine by an apply thread; WaitCaughtUp() provides a sync point.

#ifndef TIERBASE_CORE_REPLICATION_H_
#define TIERBASE_CORE_REPLICATION_H_

#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "cache/hash_engine.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tierbase {

class Replicator {
 public:
  struct Options {
    size_t max_lag_ops = 16384;  // Oplog bound; appenders block beyond it.
    cache::HashEngineOptions replica_engine;
  };

  Replicator() : Replicator(Options()) {}
  explicit Replicator(Options options);
  ~Replicator();

  /// Appends one op to the oplog (blocking if the replica lags too far).
  void ReplicateSet(const Slice& key, const Slice& value);
  void ReplicateDelete(const Slice& key);

  /// Blocks until the replica has applied everything appended so far.
  void WaitCaughtUp();

  const cache::HashEngine& replica() const { return *replica_; }
  cache::HashEngine* mutable_replica() { return replica_.get(); }
  uint64_t applied_ops() const;
  size_t lag() const;

 private:
  struct Op {
    bool is_delete;
    std::string key;
    std::string value;
    uint64_t seq;
  };

  void ApplyLoop();
  void Append(Op op);

  Options options_;
  std::unique_ptr<cache::HashEngine> replica_;

  mutable common::Mutex mu_;
  common::CondVar apply_cv_{&mu_};
  common::CondVar space_cv_{&mu_};
  common::CondVar caught_up_cv_{&mu_};
  std::deque<Op> oplog_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  uint64_t applied_seq_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::thread apply_thread_;
};

}  // namespace tierbase

#endif  // TIERBASE_CORE_REPLICATION_H_
