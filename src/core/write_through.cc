#include "core/write_through.h"

#include <algorithm>

namespace tierbase {

void PerKeyCoalescer::DrainLocked(const std::string& key, KeyState* ks) {
  mu_.AssertHeld();
  while (ks->pending) {
    std::string v = ks->latest_value;
    bool d = ks->latest_is_delete;
    uint64_t g = ks->latest_gen;
    ks->pending = false;
    mu_.Unlock();
    Status s = write_fn_(key, v, d);
    mu_.Lock();
    ++storage_writes_;
    if (s.ok()) {
      ks->flushed_gen = std::max(ks->flushed_gen, g);
    } else {
      ks->last_error = s;
    }
    ks->processed_gen = std::max(ks->processed_gen, g);
    ks->cv.SignalAll();
  }
}

Status PerKeyCoalescer::Write(const Slice& key, const Slice& value,
                              bool is_delete) {
  mu_.Lock();
  ++submitted_;

  std::string key_str = key.ToString();
  auto it = keys_.find(key_str);
  if (it == keys_.end()) {
    it = keys_.emplace(key_str, std::make_unique<KeyState>(&mu_)).first;
  }
  KeyState* ks = it->second.get();
  const uint64_t my_gen = ks->next_gen++;
  ++ks->waiters;

  Status result;
  if (coalesce_) {
    ks->latest_value = value.ToString();
    ks->latest_is_delete = is_delete;
    ks->latest_gen = my_gen;
    ks->pending = true;

    if (!ks->in_flight) {
      // Leader: flush the latest pending value until none is newer. Each
      // storage write covers every generation at or below the one written.
      ks->in_flight = true;
      DrainLocked(key_str, ks);
      ks->in_flight = false;
      ks->cv.SignalAll();
    } else {
      while (ks->processed_gen < my_gen) ks->cv.Wait();
    }
    result = ks->flushed_gen >= my_gen
                 ? Status::OK()
                 : (ks->last_error.ok()
                        ? Status::IOError("write-through failed")
                        : ks->last_error);
  } else {
    // No coalescing: one storage write per update, per-key FIFO order.
    std::string v = value.ToString();
    while (!(ks->processed_gen == my_gen - 1 && !ks->in_flight)) {
      ks->cv.Wait();
    }
    ks->in_flight = true;
    mu_.Unlock();
    Status s = write_fn_(key_str, v, is_delete);
    mu_.Lock();
    ++storage_writes_;
    ks->processed_gen = my_gen;
    if (s.ok()) ks->flushed_gen = my_gen;
    ks->in_flight = false;
    ks->cv.SignalAll();
    result = s;
  }

  --ks->waiters;
  if (ks->waiters == 0 && !ks->in_flight && !ks->pending) {
    keys_.erase(key_str);
  }
  mu_.Unlock();
  return result;
}

void PerKeyCoalescer::WriteBatch(const std::vector<Slice>& keys,
                                 const std::vector<Slice>& values,
                                 std::vector<Status>* statuses) {
  const size_t n = keys.size();
  statuses->assign(n, Status::OK());
  if (n == 0) return;
  if (batch_write_fn_ == nullptr || !coalesce_) {
    for (size_t i = 0; i < n; ++i) {
      (*statuses)[i] = Write(keys[i], values[i], /*is_delete=*/false);
    }
    return;
  }

  // One registration per distinct key; later ops in the batch supersede
  // earlier ones (intra-batch coalescing, last writer wins). Keys whose
  // leader is already flushing are delegated to that leader — it will pick
  // up our value from the pending slot, preserving per-key order. The
  // remaining ("owned") keys go to storage as one batched call.
  struct Reg {
    KeyState* ks = nullptr;
    uint64_t gen = 0;
    size_t value_index = 0;
    bool delegated = false;
  };
  std::vector<Reg> regs;
  std::vector<std::string> reg_keys;
  std::unordered_map<std::string, size_t> reg_of;  // key → regs index.
  std::vector<size_t> reg_for_op(n);

  mu_.Lock();
  submitted_ += n;
  for (size_t i = 0; i < n; ++i) {
    std::string k = keys[i].ToString();
    auto [it, inserted] = reg_of.emplace(std::move(k), regs.size());
    if (inserted) {
      auto key_it = keys_.find(it->first);
      if (key_it == keys_.end()) {
        key_it =
            keys_.emplace(it->first, std::make_unique<KeyState>(&mu_)).first;
      }
      Reg r;
      r.ks = key_it->second.get();
      ++r.ks->waiters;
      r.value_index = i;
      regs.push_back(r);
      reg_keys.push_back(it->first);
    } else {
      regs[it->second].value_index = i;
    }
    reg_for_op[i] = it->second;
  }

  std::vector<BatchWrite> batch;
  for (size_t r = 0; r < regs.size(); ++r) {
    Reg& reg = regs[r];
    reg.gen = reg.ks->next_gen++;
    reg.ks->latest_value = values[reg.value_index].ToString();
    reg.ks->latest_is_delete = false;
    reg.ks->latest_gen = reg.gen;
    if (reg.ks->in_flight) {
      // An active leader will flush this value; wait for it below.
      reg.ks->pending = true;
      reg.delegated = true;
    } else {
      // We flush it ourselves as part of the batch. pending stays false so
      // the value isn't flushed twice; a write arriving while the batch is
      // on the wire sets pending again and we drain it afterwards.
      reg.ks->in_flight = true;
      reg.ks->pending = false;
      batch.push_back({reg_keys[r], reg.ks->latest_value, false});
    }
  }

  if (!batch.empty()) {
    mu_.Unlock();
    Status s = batch_write_fn_(batch);
    mu_.Lock();
    ++batch_calls_;
    storage_writes_ += batch.size();
    for (size_t r = 0; r < regs.size(); ++r) {
      Reg& reg = regs[r];
      if (reg.delegated) continue;
      if (s.ok()) {
        reg.ks->flushed_gen = std::max(reg.ks->flushed_gen, reg.gen);
      } else {
        reg.ks->last_error = s;
      }
      reg.ks->processed_gen = std::max(reg.ks->processed_gen, reg.gen);
      reg.ks->cv.SignalAll();
      // Serve any writers that queued behind the batch, then step down.
      DrainLocked(reg_keys[r], reg.ks);
      reg.ks->in_flight = false;
      reg.ks->cv.SignalAll();
    }
  }

  for (size_t r = 0; r < regs.size(); ++r) {
    Reg& reg = regs[r];
    if (reg.delegated) {
      while (reg.ks->processed_gen < reg.gen) reg.ks->cv.Wait();
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const Reg& reg = regs[reg_for_op[i]];
    (*statuses)[i] =
        reg.ks->flushed_gen >= reg.gen
            ? Status::OK()
            : (reg.ks->last_error.ok()
                   ? Status::IOError("write-through failed")
                   : reg.ks->last_error);
  }

  for (size_t r = 0; r < regs.size(); ++r) {
    KeyState* ks = regs[r].ks;
    if (--ks->waiters == 0 && !ks->in_flight && !ks->pending) {
      keys_.erase(reg_keys[r]);
    }
  }
  mu_.Unlock();
}

PerKeyCoalescer::Stats PerKeyCoalescer::GetStats() const {
  common::MutexLock lock(&mu_);
  return Stats{submitted_, storage_writes_, batch_calls_};
}

}  // namespace tierbase
