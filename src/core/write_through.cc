#include "core/write_through.h"

#include <algorithm>

namespace tierbase {

Status PerKeyCoalescer::Write(const Slice& key, const Slice& value,
                              bool is_delete) {
  std::unique_lock<std::mutex> lock(mu_);
  ++submitted_;

  std::string key_str = key.ToString();
  auto it = keys_.find(key_str);
  if (it == keys_.end()) {
    it = keys_.emplace(key_str, std::make_unique<KeyState>()).first;
  }
  KeyState* ks = it->second.get();
  const uint64_t my_gen = ks->next_gen++;
  ++ks->waiters;

  Status result;
  if (coalesce_) {
    ks->latest_value = value.ToString();
    ks->latest_is_delete = is_delete;
    ks->latest_gen = my_gen;
    ks->pending = true;

    if (!ks->in_flight) {
      // Leader: flush the latest pending value until none is newer. Each
      // storage write covers every generation at or below the one written.
      ks->in_flight = true;
      while (ks->pending) {
        std::string v = ks->latest_value;
        bool d = ks->latest_is_delete;
        uint64_t g = ks->latest_gen;
        ks->pending = false;
        lock.unlock();
        Status s = write_fn_(key_str, v, d);
        lock.lock();
        ++storage_writes_;
        if (s.ok()) {
          ks->flushed_gen = std::max(ks->flushed_gen, g);
        } else {
          ks->last_error = s;
        }
        ks->processed_gen = std::max(ks->processed_gen, g);
        ks->cv.notify_all();
      }
      ks->in_flight = false;
      ks->cv.notify_all();
    } else {
      ks->cv.wait(lock, [&] { return ks->processed_gen >= my_gen; });
    }
    result = ks->flushed_gen >= my_gen
                 ? Status::OK()
                 : (ks->last_error.ok()
                        ? Status::IOError("write-through failed")
                        : ks->last_error);
  } else {
    // No coalescing: one storage write per update, per-key FIFO order.
    std::string v = value.ToString();
    ks->cv.wait(lock, [&] {
      return ks->processed_gen == my_gen - 1 && !ks->in_flight;
    });
    ks->in_flight = true;
    lock.unlock();
    Status s = write_fn_(key_str, v, is_delete);
    lock.lock();
    ++storage_writes_;
    ks->processed_gen = my_gen;
    if (s.ok()) ks->flushed_gen = my_gen;
    ks->in_flight = false;
    ks->cv.notify_all();
    result = s;
  }

  --ks->waiters;
  if (ks->waiters == 0 && !ks->in_flight && !ks->pending) {
    keys_.erase(key_str);
  }
  return result;
}

PerKeyCoalescer::Stats PerKeyCoalescer::GetStats() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  return Stats{submitted_, storage_writes_};
}

}  // namespace tierbase
