#include "core/replication.h"

namespace tierbase {

Replicator::Replicator(Options options) : options_(std::move(options)) {
  replica_ = std::make_unique<cache::HashEngine>(options_.replica_engine);
  apply_thread_ = std::thread(&Replicator::ApplyLoop, this);
}

Replicator::~Replicator() {
  {
    common::MutexLock lock(&mu_);
    shutting_down_ = true;
    apply_cv_.SignalAll();
    space_cv_.SignalAll();
  }
  if (apply_thread_.joinable()) apply_thread_.join();
}

void Replicator::Append(Op op) {
  common::MutexLock lock(&mu_);
  while (!shutting_down_ && oplog_.size() >= options_.max_lag_ops) {
    space_cv_.Wait();
  }
  if (shutting_down_) return;
  op.seq = next_seq_++;
  oplog_.push_back(std::move(op));
  apply_cv_.Signal();
}

void Replicator::ReplicateSet(const Slice& key, const Slice& value) {
  Append(Op{false, key.ToString(), value.ToString(), 0});
}

void Replicator::ReplicateDelete(const Slice& key) {
  Append(Op{true, key.ToString(), "", 0});
}

void Replicator::ApplyLoop() {
  while (true) {
    Op op;
    {
      common::MutexLock lock(&mu_);
      while (!shutting_down_ && oplog_.empty()) apply_cv_.Wait();
      if (oplog_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      op = std::move(oplog_.front());
      oplog_.pop_front();
      space_cv_.Signal();
    }
    if (op.is_delete) {
      replica_->Delete(op.key);
    } else {
      replica_->Set(op.key, op.value);
    }
    {
      common::MutexLock lock(&mu_);
      applied_seq_ = op.seq;
      if (oplog_.empty()) caught_up_cv_.SignalAll();
    }
  }
}

void Replicator::WaitCaughtUp() {
  common::MutexLock lock(&mu_);
  while (!shutting_down_ && !oplog_.empty()) caught_up_cv_.Wait();
}

uint64_t Replicator::applied_ops() const {
  common::MutexLock lock(&mu_);
  return applied_seq_;
}

size_t Replicator::lag() const {
  common::MutexLock lock(&mu_);
  return oplog_.size();
}

}  // namespace tierbase
