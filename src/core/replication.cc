#include "core/replication.h"

namespace tierbase {

Replicator::Replicator(Options options) : options_(std::move(options)) {
  replica_ = std::make_unique<cache::HashEngine>(options_.replica_engine);
  apply_thread_ = std::thread(&Replicator::ApplyLoop, this);
}

Replicator::~Replicator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  apply_cv_.notify_all();
  space_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
}

void Replicator::Append(Op op) {
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [this] {
    return shutting_down_ || oplog_.size() < options_.max_lag_ops;
  });
  if (shutting_down_) return;
  op.seq = next_seq_++;
  oplog_.push_back(std::move(op));
  apply_cv_.notify_one();
}

void Replicator::ReplicateSet(const Slice& key, const Slice& value) {
  Append(Op{false, key.ToString(), value.ToString(), 0});
}

void Replicator::ReplicateDelete(const Slice& key) {
  Append(Op{true, key.ToString(), "", 0});
}

void Replicator::ApplyLoop() {
  while (true) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      apply_cv_.wait(lock, [this] {
        return shutting_down_ || !oplog_.empty();
      });
      if (oplog_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      op = std::move(oplog_.front());
      oplog_.pop_front();
      space_cv_.notify_one();
    }
    if (op.is_delete) {
      replica_->Delete(op.key);
    } else {
      replica_->Set(op.key, op.value);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied_seq_ = op.seq;
      if (oplog_.empty()) caught_up_cv_.notify_all();
    }
  }
}

void Replicator::WaitCaughtUp() {
  std::unique_lock<std::mutex> lock(mu_);
  caught_up_cv_.wait(lock, [this] {
    return shutting_down_ || oplog_.empty();
  });
}

uint64_t Replicator::applied_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_seq_;
}

size_t Replicator::lag() const {
  std::lock_guard<std::mutex> lock(mu_);
  return oplog_.size();
}

}  // namespace tierbase
