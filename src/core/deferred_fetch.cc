#include "core/deferred_fetch.h"

#include <algorithm>

namespace tierbase {

DeferredFetcher::DeferredFetcher(StorageAdapter* storage,
                                 DeferredFetchOptions options, Clock* clock)
    : storage_(storage), options_(options), clock_(clock) {}

void DeferredFetcher::LeaderDrain() {
  // Keep draining until no keys are pending (later joiners are picked up
  // by a follow-on batch rather than stranded).
  while (true) {
    std::vector<std::string> keys;
    std::vector<std::shared_ptr<PendingKey>> entries;
    {
      common::MutexLock lock(&mu_);
      for (auto& [k, p] : pending_) {
        if (p->done) continue;
        if (keys.size() >= options_.max_batch) break;
        keys.push_back(k);
        entries.push_back(p);
      }
      if (keys.empty()) {
        batch_leader_active_ = false;
        break;
      }
    }

    std::vector<std::string> values;
    std::vector<bool> found;
    Status s = storage_->MultiRead(keys, &values, &found);

    {
      common::MutexLock lock(&mu_);
      ++stats_.batch_calls;
      for (size_t i = 0; i < entries.size(); ++i) {
        entries[i]->done = true;
        if (s.ok()) {
          entries[i]->found = found[i];
          entries[i]->value = std::move(values[i]);
        } else {
          entries[i]->error = s;
        }
        pending_.erase(keys[i]);
      }
    }
    cv_.SignalAll();
  }
  cv_.SignalAll();
}

Status DeferredFetcher::Fetch(const Slice& key, std::string* value) {
  if (!options_.enabled) {
    return storage_->Read(key, value);
  }

  std::shared_ptr<PendingKey> mine;
  bool leader = false;
  {
    common::MutexLock lock(&mu_);
    ++stats_.fetches;
    auto it = pending_.find(key.ToString());
    if (it != pending_.end()) {
      // Piggyback on an in-flight (or forming) batch containing this key.
      mine = it->second;
      ++mine->waiters;
      ++stats_.shared;
    } else {
      mine = std::make_shared<PendingKey>();
      mine->waiters = 1;
      pending_.emplace(key.ToString(), mine);
      if (!batch_leader_active_) {
        batch_leader_active_ = true;
        leader = true;
      }
    }
  }

  if (leader) {
    // Give concurrent missers a short window to join the batch.
    if (options_.batch_window_micros > 0) {
      clock_->SleepMicros(options_.batch_window_micros);
    }
    LeaderDrain();
  }

  {
    common::MutexLock lock(&mu_);
    while (!mine->done) cv_.Wait();
  }
  if (!mine->error.ok()) return mine->error;
  if (!mine->found) return Status::NotFound("");
  *value = mine->value;
  return Status::OK();
}

void DeferredFetcher::FetchMany(const std::vector<Slice>& keys,
                                std::vector<std::string>* values,
                                std::vector<Status>* statuses) {
  const size_t n = keys.size();
  values->assign(n, std::string());
  statuses->assign(n, Status::OK());
  if (n == 0) return;

  if (!options_.enabled) {
    std::vector<std::string> key_strs;
    key_strs.reserve(n);
    for (const Slice& k : keys) key_strs.push_back(k.ToString());
    std::vector<std::string> out;
    std::vector<bool> found;
    Status s = storage_->MultiRead(key_strs, &out, &found);
    for (size_t i = 0; i < n; ++i) {
      if (!s.ok()) {
        (*statuses)[i] = s;
      } else if (!found[i]) {
        (*statuses)[i] = Status::NotFound("");
      } else {
        (*values)[i] = std::move(out[i]);
      }
    }
    return;
  }

  // Register every key (deduplicating against in-flight singles and
  // earlier occurrences in this batch), then drain as leader unless one is
  // already active — the batch already IS batched, so the forming window
  // is skipped.
  std::vector<std::shared_ptr<PendingKey>> mine(n);
  bool leader = false;
  {
    common::MutexLock lock(&mu_);
    for (size_t i = 0; i < n; ++i) {
      ++stats_.fetches;
      std::string k = keys[i].ToString();
      auto it = pending_.find(k);
      if (it != pending_.end()) {
        mine[i] = it->second;
        ++mine[i]->waiters;
        ++stats_.shared;
      } else {
        mine[i] = std::make_shared<PendingKey>();
        mine[i]->waiters = 1;
        pending_.emplace(std::move(k), mine[i]);
      }
    }
    if (!batch_leader_active_) {
      batch_leader_active_ = true;
      leader = true;
    }
  }

  if (leader) LeaderDrain();

  {
    common::MutexLock lock(&mu_);
    for (const auto& p : mine) {
      while (!p->done) cv_.Wait();
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!mine[i]->error.ok()) {
      (*statuses)[i] = mine[i]->error;
    } else if (!mine[i]->found) {
      (*statuses)[i] = Status::NotFound("");
    } else {
      (*values)[i] = mine[i]->value;
    }
  }
}

DeferredFetcher::Stats DeferredFetcher::GetStats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace tierbase
