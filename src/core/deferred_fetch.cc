#include "core/deferred_fetch.h"

#include <algorithm>

namespace tierbase {

DeferredFetcher::DeferredFetcher(StorageAdapter* storage,
                                 DeferredFetchOptions options, Clock* clock)
    : storage_(storage), options_(options), clock_(clock) {}

Status DeferredFetcher::Fetch(const Slice& key, std::string* value) {
  if (!options_.enabled) {
    return storage_->Read(key, value);
  }

  std::shared_ptr<PendingKey> mine;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.fetches;
    auto it = pending_.find(key.ToString());
    if (it != pending_.end()) {
      // Piggyback on an in-flight (or forming) batch containing this key.
      mine = it->second;
      ++mine->waiters;
      ++stats_.shared;
    } else {
      mine = std::make_shared<PendingKey>();
      mine->waiters = 1;
      pending_.emplace(key.ToString(), mine);
      if (!batch_leader_active_) {
        batch_leader_active_ = true;
        leader = true;
      }
    }
  }

  if (leader) {
    // Give concurrent missers a short window to join the batch, then keep
    // draining until no keys are pending (later joiners are picked up by a
    // follow-on batch rather than stranded).
    if (options_.batch_window_micros > 0) {
      clock_->SleepMicros(options_.batch_window_micros);
    }

    while (true) {
      std::vector<std::string> keys;
      std::vector<std::shared_ptr<PendingKey>> entries;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [k, p] : pending_) {
          if (p->done) continue;
          if (keys.size() >= options_.max_batch) break;
          keys.push_back(k);
          entries.push_back(p);
        }
        if (keys.empty()) {
          batch_leader_active_ = false;
          break;
        }
      }

      std::vector<std::string> values;
      std::vector<bool> found;
      Status s = storage_->MultiRead(keys, &values, &found);

      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.batch_calls;
        for (size_t i = 0; i < entries.size(); ++i) {
          entries[i]->done = true;
          if (s.ok()) {
            entries[i]->found = found[i];
            entries[i]->value = std::move(values[i]);
          } else {
            entries[i]->error = s;
          }
          pending_.erase(keys[i]);
        }
      }
      cv_.notify_all();
    }
    cv_.notify_all();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return mine->done; });
  }
  if (!mine->error.ok()) return mine->error;
  if (!mine->found) return Status::NotFound("");
  *value = mine->value;
  return Status::OK();
}

DeferredFetcher::Stats DeferredFetcher::GetStats() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  return stats_;
}

}  // namespace tierbase
