#include "core/storage_adapter.h"

namespace tierbase {

Result<std::unique_ptr<LsmStorageAdapter>> LsmStorageAdapter::Open(
    const lsm::LsmOptions& options) {
  auto store = lsm::LsmStore::Open(options);
  if (!store.ok()) return store.status();
  return std::unique_ptr<LsmStorageAdapter>(
      new LsmStorageAdapter(std::move(*store)));
}

Status LsmStorageAdapter::Write(const Slice& key, const Slice& value) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  return store_->Set(key, value);
}

Status LsmStorageAdapter::Delete(const Slice& key) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  return store_->Delete(key);
}

Status LsmStorageAdapter::Read(const Slice& key, std::string* value) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  return store_->Get(key, value);
}

Status LsmStorageAdapter::WriteBatch(const std::vector<BatchOp>& ops) {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(ops.size(), std::memory_order_relaxed);
  std::vector<lsm::LsmStore::BatchOp> batch;
  batch.reserve(ops.size());
  for (const auto& op : ops) {
    batch.push_back({op.key, op.value, op.is_delete});
  }
  return store_->ApplyBatch(batch);
}

Status LsmStorageAdapter::MultiRead(const std::vector<std::string>& keys,
                                    std::vector<std::string>* values,
                                    std::vector<bool>* found) {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  reads_.fetch_add(keys.size(), std::memory_order_relaxed);
  values->assign(keys.size(), "");
  found->assign(keys.size(), false);
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s = store_->Get(keys[i], &(*values)[i]);
    if (s.ok()) {
      (*found)[i] = true;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::OK();
}

UsageStats LsmStorageAdapter::GetUsage() const { return store_->GetUsage(); }

Status LsmStorageAdapter::WaitIdle() { return store_->WaitIdle(); }

StorageAdapter::WalRecoveryStats LsmStorageAdapter::GetWalRecoveryStats()
    const {
  lsm::LsmStore::Stats stats = store_->GetStats();
  return {stats.wal_records_replayed, stats.wal_truncated_tails,
          stats.wal_skipped_bytes};
}

Status MockStorageAdapter::MaybeFail() {
  if (options_.fail_every == 0 && options_.fail_first == 0) {
    return Status::OK();
  }
  uint64_t n = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.fail_first > 0 && n <= options_.fail_first) {
    return Status::IOError("mock-storage: injected failure");
  }
  if (options_.fail_every != 0 && n % options_.fail_every == 0) {
    return Status::IOError("mock-storage: injected failure");
  }
  return Status::OK();
}

Status MockStorageAdapter::Write(const Slice& key, const Slice& value) {
  InjectLatency();
  TIERBASE_RETURN_IF_ERROR(MaybeFail());
  writes_.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(&mu_);
  map_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status MockStorageAdapter::Delete(const Slice& key) {
  InjectLatency();
  TIERBASE_RETURN_IF_ERROR(MaybeFail());
  writes_.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(&mu_);
  map_.erase(key.ToString());
  return Status::OK();
}

Status MockStorageAdapter::Read(const Slice& key, std::string* value) {
  InjectLatency();
  reads_.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(&mu_);
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return Status::NotFound("");
  *value = it->second;
  return Status::OK();
}

Status MockStorageAdapter::WriteBatch(const std::vector<BatchOp>& ops) {
  InjectLatency();  // One remote call for the batch.
  TIERBASE_RETURN_IF_ERROR(MaybeFail());
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(ops.size(), std::memory_order_relaxed);
  common::MutexLock lock(&mu_);
  for (const auto& op : ops) {
    if (op.is_delete) {
      map_.erase(op.key);
    } else {
      map_[op.key] = op.value;
    }
  }
  return Status::OK();
}

Status MockStorageAdapter::MultiRead(const std::vector<std::string>& keys,
                                     std::vector<std::string>* values,
                                     std::vector<bool>* found) {
  InjectLatency();  // One remote call for the batch.
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  reads_.fetch_add(keys.size(), std::memory_order_relaxed);
  values->assign(keys.size(), "");
  found->assign(keys.size(), false);
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    if (it != map_.end()) {
      (*values)[i] = it->second;
      (*found)[i] = true;
    }
  }
  return Status::OK();
}

UsageStats MockStorageAdapter::GetUsage() const {
  common::MutexLock lock(&mu_);
  UsageStats usage;
  usage.keys = map_.size();
  for (const auto& [k, v] : map_) usage.disk_bytes += k.size() + v.size() + 32;
  return usage;
}

size_t MockStorageAdapter::size() const {
  common::MutexLock lock(&mu_);
  return map_.size();
}

}  // namespace tierbase
