#include "cluster_net/coordinator_service.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/mutex.h"
#include "server/client.h"

namespace tierbase::cluster_net {

namespace {

using server::EqualsUpper;

/// Ids, hosts and shard names travel in the whitespace/line-delimited
/// WireRouting payload; one malformed token would wedge routing parsing
/// cluster-wide, so registration rejects anything outside [A-Za-z0-9._-].
bool ValidToken(const std::string& s) {
  if (s.empty() || s.size() > 128) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

CoordinatorService::CoordinatorService(Options options)
    : options_(std::move(options)) {
  routing_.virtual_nodes = options_.virtual_nodes;
  routing_.epoch = 1;
  RegisterInstruments();
}

void CoordinatorService::RegisterInstruments() {
  auto poll = [this](const char* key, const char* help, metrics::MetricType t,
                     std::function<uint64_t()> fn) {
    registry_.AddCallback("Coordinator", key, help, t, std::move(fn));
  };
  poll("cluster_epoch", "Authoritative routing epoch",
       metrics::MetricType::kGauge, [this] { return epoch(); });
  poll("known_nodes", "Nodes in the routing table",
       metrics::MetricType::kGauge,
       [this] { return static_cast<uint64_t>(Routing().nodes.size()); });
  poll("failovers", "Replica promotions performed",
       metrics::MetricType::kCounter, [this] { return failovers_.load(); });
  poll("probe_interval_micros", "Probe period (0 = probing off)",
       metrics::MetricType::kGauge,
       [this] { return options_.probe_interval_micros; });
  poll("node_io_timeout_micros", "Control-plane per-call I/O budget",
       metrics::MetricType::kGauge,
       [this] { return options_.node_io_timeout_micros; });
  poll("probes_sent", "Health probes sent", metrics::MetricType::kCounter,
       [this] { return probes_sent_.load(); });
  poll("probe_failures", "Health probes that failed",
       metrics::MetricType::kCounter,
       [this] { return probe_failures_.load(); });
  poll("probe_marked_failed", "Nodes failed by the prober",
       metrics::MetricType::kCounter,
       [this] { return probe_marked_failed_.load(); });
}

CoordinatorService::~CoordinatorService() { Stop(); }

Status CoordinatorService::Start() {
  if (running_) return Status::InvalidArgument("coordinator already running");
  server::EventLoopOptions net;
  net.host = options_.host;
  net.port = options_.port;
  loop_ = std::make_unique<server::EventLoop>(
      net, [this](std::shared_ptr<server::Connection> conn,
                  server::CommandBatch batch) {
        // Control-plane commands are cheap; execute on the loop thread.
        std::string out;
        bool close_connection = false;
        bool shutdown_server = false;
        Execute(batch.cmds, &out, &close_connection, &shutdown_server);
        conn->CompleteBatch(std::move(out), close_connection,
                            shutdown_server);
      });
  Status s = loop_->Listen();
  if (!s.ok()) {
    loop_.reset();
    return s;
  }
  loop_thread_ = std::thread([this] { loop_->Run(); });
  if (options_.probe_interval_micros > 0) {
    stop_probe_.store(false);
    probe_thread_ = std::thread(&CoordinatorService::ProbeLoop, this);
  }
  running_ = true;
  return Status::OK();
}

void CoordinatorService::Stop() {
  if (!running_) return;
  stop_probe_.store(true, std::memory_order_release);
  if (probe_thread_.joinable()) probe_thread_.join();
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_ = false;
}

void CoordinatorService::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

uint64_t CoordinatorService::epoch() const {
  common::MutexLock lock(&mu_);
  return routing_.epoch;
}

WireRouting CoordinatorService::Routing() const {
  common::MutexLock lock(&mu_);
  return routing_;
}

Status CoordinatorService::CallNode(const NodeRecord& node,
                                    const std::vector<Slice>& args,
                                    server::RespValue* reply) const {
  server::Client client;
  client.set_transport(options_.transport);
  TIERBASE_RETURN_IF_ERROR(
      client.Connect(node.host, node.port, options_.node_io_timeout_micros));
  TIERBASE_RETURN_IF_ERROR(client.Call(args, reply));
  if (reply->IsError()) return Status::IOError(reply->str);
  return Status::OK();
}

void CoordinatorService::PushRouting() {
  WireRouting snapshot = Routing();
  const std::string payload = snapshot.Serialize();
  for (const NodeRecord& node : snapshot.nodes) {
    if (!node.healthy) continue;
    server::RespValue reply;
    // Best effort: a node that misses the push answers -MOVED with a stale
    // epoch until the next push; clients recover via coordinator refresh.
    CallNode(node, {"CLUSTER", "SETSLOTS", payload}, &reply);
  }
}

Status CoordinatorService::AddNode(const std::string& id,
                                   const std::string& host, uint16_t port,
                                   const std::string& replica_of_shard) {
  if (!ValidToken(id) || !ValidToken(host) ||
      (!replica_of_shard.empty() && !ValidToken(replica_of_shard))) {
    return Status::InvalidArgument("invalid node id/host/shard token");
  }
  NodeRecord master_of_shard;
  {
    common::MutexLock lock(&mu_);
    if (routing_.FindNode(id) != nullptr) {
      return Status::InvalidArgument("duplicate node id: " + id);
    }
    NodeRecord rec;
    rec.id = id;
    rec.host = host;
    rec.port = port;
    if (replica_of_shard.empty()) {
      rec.shard = id;
    } else {
      const NodeRecord* master = routing_.MasterOfShard(replica_of_shard);
      if (master == nullptr) {
        return Status::NotFound("no healthy master for shard: " +
                                replica_of_shard);
      }
      master_of_shard = *master;
      rec.is_replica = true;
      rec.shard = replica_of_shard;
    }
    routing_.nodes.push_back(std::move(rec));
    ++routing_.epoch;
  }
  PushRouting();
  if (!replica_of_shard.empty()) {
    // Wire replication: tell the replica who its master is.
    NodeRecord replica;
    replica.id = id;
    replica.host = host;
    replica.port = port;
    server::RespValue reply;
    CallNode(replica,
             {"REPLICAOF", master_of_shard.host,
              std::to_string(master_of_shard.port)},
             &reply);
  }
  return Status::OK();
}

Status CoordinatorService::MarkFailed(const std::string& id) {
  NodeRecord promoted;
  bool have_promotion = false;
  {
    common::MutexLock lock(&mu_);
    NodeRecord* failed = nullptr;
    for (NodeRecord& n : routing_.nodes) {
      if (n.id == id) failed = &n;
    }
    if (failed == nullptr) return Status::NotFound("unknown node: " + id);
    if (!failed->healthy) return Status::OK();  // Already handled.
    failed->healthy = false;
    if (!failed->is_replica) {
      // Promote the shard's healthy replica, if any; otherwise the shard
      // leaves the ring and its keyspace falls to ring successors.
      for (NodeRecord& n : routing_.nodes) {
        if (n.is_replica && n.healthy && n.shard == failed->shard) {
          n.is_replica = false;
          promoted = n;
          have_promotion = true;
          break;
        }
      }
    }
    ++routing_.epoch;
  }
  if (have_promotion) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    server::RespValue reply;
    CallNode(promoted, {"REPLICAOF", "NO", "ONE"}, &reply);
  }
  PushRouting();
  return Status::OK();
}

Status CoordinatorService::Recover(const std::string& id) {
  NodeRecord rejoined;
  NodeRecord current_master;
  bool as_replica = false;
  {
    common::MutexLock lock(&mu_);
    NodeRecord* rec = nullptr;
    for (NodeRecord& n : routing_.nodes) {
      if (n.id == id) rec = &n;
    }
    if (rec == nullptr) return Status::NotFound("unknown node: " + id);
    if (rec->healthy) return Status::OK();
    rec->healthy = true;
    // If the shard gained another master while this node was down (its old
    // replica was promoted), the node rejoins as a replica of that master.
    const NodeRecord* master = routing_.MasterOfShard(rec->shard);
    if (master != nullptr && master->id != rec->id) {
      rec->is_replica = true;
      as_replica = true;
      current_master = *master;
    } else {
      rec->is_replica = false;
    }
    rejoined = *rec;
    ++routing_.epoch;
  }
  server::RespValue reply;
  if (as_replica) {
    CallNode(rejoined,
             {"REPLICAOF", current_master.host,
              std::to_string(current_master.port)},
             &reply);
  } else {
    CallNode(rejoined, {"REPLICAOF", "NO", "ONE"}, &reply);
  }
  PushRouting();
  return Status::OK();
}

void CoordinatorService::ProbeLoop() {
  constexpr uint64_t kSliceMicros = 5'000;
  while (!stop_probe_.load(std::memory_order_acquire)) {
    uint64_t slept = 0;
    while (slept < options_.probe_interval_micros &&
           !stop_probe_.load(std::memory_order_acquire)) {
      uint64_t slice =
          std::min(kSliceMicros, options_.probe_interval_micros - slept);
      std::this_thread::sleep_for(std::chrono::microseconds(slice));
      slept += slice;
    }
    if (stop_probe_.load(std::memory_order_acquire)) return;
    WireRouting snapshot = Routing();
    for (const NodeRecord& node : snapshot.nodes) {
      if (!node.healthy) continue;
      server::RespValue reply;
      probes_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!CallNode(node, {"PING"}, &reply).ok()) {
        probe_failures_.fetch_add(1, std::memory_order_relaxed);
        probe_marked_failed_.fetch_add(1, std::memory_order_relaxed);
        MarkFailed(node.id);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RESP front end.
// ---------------------------------------------------------------------------

void CoordinatorService::Execute(
    const std::vector<server::RespCommand>& cmds, std::string* out,
    bool* close_connection, bool* shutdown_server) {
  for (const server::RespCommand& cmd : cmds) {
    if (cmd.args.empty()) {
      server::AppendError(out, "ERR empty command");
      continue;
    }
    const Slice& name = cmd.args[0];
    if (EqualsUpper(name, "PING")) {
      server::AppendSimpleString(out, "PONG");
    } else if (EqualsUpper(name, "QUIT")) {
      server::AppendSimpleString(out, "OK");
      *close_connection = true;
    } else if (EqualsUpper(name, "SHUTDOWN")) {
      server::AppendSimpleString(out, "OK");
      *close_connection = true;
      *shutdown_server = true;
    } else if (EqualsUpper(name, "COMMAND")) {
      server::AppendArrayHeader(out, 0);
    } else if (EqualsUpper(name, "INFO")) {
      std::string body;
      registry_.RenderInfo(&body);
      server::AppendBulk(out, body);
    } else if (EqualsUpper(name, "METRICS")) {
      std::string body;
      registry_.RenderPrometheus(&body);
      server::AppendBulk(out, body);
    } else if (EqualsUpper(name, "CLUSTER") && cmd.args.size() >= 2) {
      ExecuteCluster(cmd, out);
    } else {
      std::string msg = "ERR unknown command '";
      msg.append(name.data(), std::min<size_t>(name.size(), 64));
      msg += "'";
      server::AppendError(out, msg);
    }
  }
}

void CoordinatorService::ExecuteCluster(const server::RespCommand& cmd,
                                        std::string* out) {
  const Slice& sub = cmd.args[1];
  if (EqualsUpper(sub, "EPOCH") && cmd.args.size() == 2) {
    server::AppendInteger(out, static_cast<int64_t>(epoch()));
  } else if (EqualsUpper(sub, "NODES") && cmd.args.size() == 2) {
    server::AppendBulk(out, Routing().Serialize());
  } else if (EqualsUpper(sub, "ROUTE") && cmd.args.size() == 3) {
    WireRouting snapshot = Routing();
    cluster::Router router = snapshot.BuildRouter();
    std::string shard = router.Route(cmd.args[2]);
    if (shard.empty()) {
      server::AppendError(out, "CLUSTERDOWN no shards in the ring");
      return;
    }
    const NodeRecord* master = snapshot.MasterOfShard(shard);
    server::AppendBulk(
        out, shard + " " + (master == nullptr ? "?:0" : master->endpoint()));
  } else if (EqualsUpper(sub, "ADDNODE") &&
             (cmd.args.size() == 5 || cmd.args.size() == 7)) {
    long port = strtol(cmd.args[4].ToString().c_str(), nullptr, 10);
    if (port <= 0 || port > 65535) {
      server::AppendError(out, "ERR invalid node port");
      return;
    }
    std::string replica_of;
    if (cmd.args.size() == 7) {
      if (!EqualsUpper(cmd.args[5], "REPLICAOF")) {
        server::AppendError(out, "ERR syntax error");
        return;
      }
      replica_of = cmd.args[6].ToString();
    }
    Status s = AddNode(cmd.args[2].ToString(), cmd.args[3].ToString(),
                       static_cast<uint16_t>(port), replica_of);
    if (s.ok()) {
      server::AppendSimpleString(out, "OK");
    } else {
      server::AppendError(out, "ERR " + s.ToString());
    }
  } else if (EqualsUpper(sub, "FAIL") && cmd.args.size() == 3) {
    Status s = MarkFailed(cmd.args[2].ToString());
    if (s.ok()) {
      server::AppendSimpleString(out, "OK");
    } else {
      server::AppendError(out, "ERR " + s.ToString());
    }
  } else if (EqualsUpper(sub, "RECOVER") && cmd.args.size() == 3) {
    Status s = Recover(cmd.args[2].ToString());
    if (s.ok()) {
      server::AppendSimpleString(out, "OK");
    } else {
      server::AppendError(out, "ERR " + s.ToString());
    }
  } else {
    server::AppendError(out, "ERR unknown CLUSTER subcommand");
  }
}

}  // namespace tierbase::cluster_net
