// OpLog: the master side of wire replication (§4.1.2, §6.4). Every applied
// string mutation is appended with a monotonically increasing sequence
// number; replicas pull ranges with REPLPULL and detect gaps by sequence.
// The log is a bounded ring — when a replica falls further behind than the
// capacity, its next pull reports a gap and the replica performs a full
// resync (REPLSNAPSHOT pages) before resuming incremental pulls.

#ifndef TIERBASE_CLUSTER_NET_OPLOG_H_
#define TIERBASE_CLUSTER_NET_OPLOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace tierbase::cluster_net {

struct ReplOp {
  enum class Type : uint8_t {
    kSet = 0,
    kDelete = 1,
    kFlushAll = 2,
    kExpire = 3,
  };
  Type type = Type::kSet;
  uint64_t seq = 0;
  std::string key;
  std::string value;
  uint64_t ttl_micros = 0;  // 0 = no expiry (kSet/kExpire).
};

class OpLog {
 public:
  explicit OpLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Assigns the next sequence number, appends, and drops the oldest entry
  /// beyond capacity. Returns the assigned sequence.
  uint64_t Append(ReplOp op) {
    common::MutexLock lock(&mu_);
    op.seq = next_seq_++;
    log_.push_back(std::move(op));
    while (log_.size() > capacity_) log_.pop_front();
    return next_seq_ - 1;
  }

  /// Copies up to `max_ops` ops with seq >= `from` into *out. Returns false
  /// when `from` precedes the oldest retained op (the caller lost the race
  /// with the ring bound and must full-resync).
  bool Read(uint64_t from, size_t max_ops, std::vector<ReplOp>* out) const {
    out->clear();
    common::MutexLock lock(&mu_);
    if (from < MinSeqLocked()) return false;
    for (const ReplOp& op : log_) {
      if (op.seq < from) continue;
      if (out->size() >= max_ops) break;
      out->push_back(op);
    }
    return true;
  }

  /// Last assigned sequence (0 = nothing appended yet).
  uint64_t head_seq() const {
    common::MutexLock lock(&mu_);
    return next_seq_ - 1;
  }

  /// Oldest sequence still retained (head+1 when the log is empty).
  uint64_t min_seq() const {
    common::MutexLock lock(&mu_);
    return MinSeqLocked();
  }

 private:
  uint64_t MinSeqLocked() const EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    return log_.empty() ? next_seq_ : log_.front().seq;
  }

  mutable common::Mutex mu_;
  const size_t capacity_;
  std::deque<ReplOp> log_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_OPLOG_H_
