// Wire routing table for the networked cluster (§3: the coordinator
// cluster owns the routing table; clients pull refreshed snapshots on
// epoch bumps).
//
// The ring hashes *shard* identities, not physical endpoints: a shard is
// born with its first master's id and keeps that identity across
// failovers, so promoting a replica repoints the shard's endpoint without
// remapping any keys (the consistent-hash positions are unchanged). Every
// participant — coordinator, data node, smart client, proxy — builds its
// Router from the same serialized node list, so all of them agree on key
// ownership at a given epoch.
//
// The serialization doubles as the CLUSTER NODES reply and as the payload
// the coordinator pushes to data nodes via CLUSTER SETSLOTS.

#ifndef TIERBASE_CLUSTER_NET_ROUTING_H_
#define TIERBASE_CLUSTER_NET_ROUTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/status.h"

namespace tierbase::cluster_net {

struct NodeRecord {
  std::string id;      // Unique per process ("n1", "r1", ...).
  std::string host;
  uint16_t port = 0;
  bool is_replica = false;
  std::string shard;   // Shard served; == id for a shard's first master.
  bool healthy = true;

  std::string endpoint() const { return host + ":" + std::to_string(port); }
};

struct WireRouting {
  uint64_t epoch = 0;
  int virtual_nodes = 64;
  std::vector<NodeRecord> nodes;

  /// Text form:
  ///   epoch:<n> vnodes:<v>
  ///   <id> <host>:<port> <master|replica> <shard> <up|down>
  std::string Serialize() const;
  static Status Parse(const std::string& text, WireRouting* out);

  /// Ring over every shard that currently has a healthy master.
  cluster::Router BuildRouter() const;

  const NodeRecord* FindNode(const std::string& id) const;
  /// The healthy master serving `shard`, or nullptr while failed over.
  const NodeRecord* MasterOfShard(const std::string& shard) const;
  /// A healthy replica of `shard` (promotion candidate), or nullptr.
  const NodeRecord* ReplicaOfShard(const std::string& shard) const;
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_ROUTING_H_
