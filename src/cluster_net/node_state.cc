#include "cluster_net/node_state.h"
#include "common/mutex.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace tierbase::cluster_net {

namespace {

constexpr uint64_t kSleepSliceMicros = 2'000;

void SleepMicrosChecking(uint64_t micros, const std::atomic<bool>& stop) {
  uint64_t slept = 0;
  while (slept < micros && !stop.load(std::memory_order_acquire)) {
    uint64_t slice = std::min(kSleepSliceMicros, micros - slept);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    slept += slice;
  }
}

}  // namespace

NodeClusterState::NodeClusterState(TierBase* db, Options options)
    : db_(db), options_(std::move(options)), oplog_(options_.oplog_capacity) {}

NodeClusterState::~NodeClusterState() { StopReplication(); }

uint64_t NodeClusterState::epoch() const {
  std::shared_ptr<const RoutingView> view = routing();
  return view == nullptr ? 0 : view->wire.epoch;
}

Status NodeClusterState::InstallRouting(const std::string& payload) {
  WireRouting wire;
  TIERBASE_RETURN_IF_ERROR(WireRouting::Parse(payload, &wire));
  auto view = std::make_shared<const RoutingView>(std::move(wire));
  common::MutexLock lock(&routing_mu_);
  // Never roll the epoch backwards (a slow push racing a newer one).
  if (routing_view_ != nullptr &&
      routing_view_->wire.epoch > view->wire.epoch) {
    return Status::OK();
  }
  routing_view_ = std::move(view);
  return Status::OK();
}

std::shared_ptr<const RoutingView> NodeClusterState::routing() const {
  common::MutexLock lock(&routing_mu_);
  return routing_view_;
}

NodeClusterState::RouteChecker NodeClusterState::route_checker() const {
  std::shared_ptr<const RoutingView> view = routing();
  const NodeRecord* self =
      view == nullptr ? nullptr : view->wire.FindNode(options_.id);
  return RouteChecker(std::move(view), self);
}

bool NodeClusterState::CheckMoved(const Slice& key, std::string* moved_error) {
  std::shared_ptr<const RoutingView> view = routing();
  if (view == nullptr) return false;  // No routing installed: serve all.
  const NodeRecord* self = view->wire.FindNode(options_.id);
  if (self == nullptr) return false;  // Not in the table yet: serve all.
  std::string shard = view->router.Route(key);
  if (shard.empty() || shard == self->shard) return false;
  moved_replies_.fetch_add(1, std::memory_order_relaxed);
  const NodeRecord* owner = view->wire.MasterOfShard(shard);
  char buf[192];
  snprintf(buf, sizeof(buf), "MOVED %llu %s %s",
           static_cast<unsigned long long>(view->wire.epoch), shard.c_str(),
           owner == nullptr ? "?:0" : owner->endpoint().c_str());
  *moved_error = buf;
  return true;
}

void NodeClusterState::RecordSet(const Slice& key, const Slice& value,
                                 uint64_t ttl_micros) {
  ReplOp op;
  op.type = ReplOp::Type::kSet;
  op.key = key.ToString();
  op.value = value.ToString();
  op.ttl_micros = ttl_micros;
  oplog_.Append(std::move(op));
}

void NodeClusterState::RecordDelete(const Slice& key) {
  ReplOp op;
  op.type = ReplOp::Type::kDelete;
  op.key = key.ToString();
  oplog_.Append(std::move(op));
}

void NodeClusterState::RecordExpire(const Slice& key, uint64_t ttl_micros) {
  ReplOp op;
  op.type = ReplOp::Type::kExpire;
  op.key = key.ToString();
  op.ttl_micros = ttl_micros;
  oplog_.Append(std::move(op));
}

void NodeClusterState::RecordFlush() {
  ReplOp op;
  op.type = ReplOp::Type::kFlushAll;
  oplog_.Append(std::move(op));
}

void NodeClusterState::NoteReplicaAck(const std::string& replica_id,
                                      uint64_t acked) {
  common::MutexLock lock(&acks_mu_);
  uint64_t& slot = replica_acks_[replica_id];
  if (acked > slot) slot = acked;
}

size_t NodeClusterState::CountReplicasAtLeast(uint64_t target) const {
  common::MutexLock lock(&acks_mu_);
  size_t n = 0;
  for (const auto& [id, acked] : replica_acks_) {
    (void)id;
    if (acked >= target) ++n;
  }
  return n;
}

size_t NodeClusterState::connected_replicas() const {
  common::MutexLock lock(&acks_mu_);
  return replica_acks_.size();
}

// ---------------------------------------------------------------------------
// Replica link.
// ---------------------------------------------------------------------------

Status NodeClusterState::StartReplicaOf(const std::string& host,
                                        uint16_t port) {
  StopReplication();
  common::MutexLock lock(&link_mu_);
  master_host_ = host;
  master_port_ = port;
  stop_pull_.store(false, std::memory_order_release);
  is_replica_.store(true, std::memory_order_release);
  replica_applied_.store(0);
  master_head_seen_.store(0);
  pull_thread_ = std::thread(&NodeClusterState::PullLoop, this);
  return Status::OK();
}

void NodeClusterState::StopReplication() {
  // Join outside the lock: PullLoop's first action is to lock link_mu_ to
  // read the master endpoint, so joining while holding it would deadlock
  // against a freshly spawned puller.
  std::thread to_join;
  {
    common::MutexLock lock(&link_mu_);
    stop_pull_.store(true, std::memory_order_release);
    to_join = std::move(pull_thread_);
  }
  if (to_join.joinable()) to_join.join();
  is_replica_.store(false, std::memory_order_release);
}

uint64_t NodeClusterState::replica_lag() const {
  uint64_t head = master_head_seen_.load(std::memory_order_relaxed);
  uint64_t applied = replica_applied_.load(std::memory_order_relaxed);
  return head > applied ? head - applied : 0;
}

std::string NodeClusterState::master_endpoint() const {
  common::MutexLock lock(&link_mu_);
  if (master_port_ == 0) return "";
  return master_host_ + ":" + std::to_string(master_port_);
}

Status NodeClusterState::ApplyOp(const ReplOp& op) {
  // An engine refusal (WAL append error, write-back flush error, OOM on a
  // durable replica) must not be swallowed: recording the op as applied
  // while the engine dropped it would silently diverge this replica from
  // its master. The caller keeps replica_applied_ put so the op is
  // re-pulled once the engine heals.
  Status s;
  switch (op.type) {
    case ReplOp::Type::kSet:
      s = op.ttl_micros == 0 ? db_->Set(op.key, op.value)
                             : db_->SetEx(op.key, op.value, op.ttl_micros);
      if (s.ok()) RecordSet(op.key, op.value, op.ttl_micros);
      break;
    case ReplOp::Type::kDelete:
      s = db_->Delete(op.key);
      if (s.IsNotFound()) s = Status::OK();  // Deleting absent = applied.
      if (s.ok()) RecordDelete(op.key);
      break;
    case ReplOp::Type::kExpire:
      // May miss if the key never reached this replica; Expire's NotFound
      // is then the correct no-op.
      db_->cache()->Expire(op.key, op.ttl_micros);
      RecordExpire(op.key, op.ttl_micros);
      break;
    case ReplOp::Type::kFlushAll:
      db_->cache()->Clear();
      RecordFlush();
      break;
  }
  if (!s.ok()) apply_failures_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status NodeClusterState::FullResync(server::Client* client) {
  full_resyncs_.fetch_add(1, std::memory_order_relaxed);
  db_->cache()->Clear();
  RecordFlush();
  std::string cursor = "0";
  uint64_t resume_seq = 0;
  bool first_page = true;
  do {
    if (stop_pull_.load(std::memory_order_acquire)) {
      return Status::Aborted("replication stopping");
    }
    server::RespValue reply;
    TIERBASE_RETURN_IF_ERROR(
        client->Call({"REPLSNAPSHOT", cursor, "256"}, &reply));
    if (reply.IsError()) return Status::IOError(reply.str);
    if (reply.type != server::RespValue::Type::kArray ||
        reply.elements.size() < 2 ||
        (reply.elements.size() - 2) % 3 != 0) {
      return Status::Corruption("malformed REPLSNAPSHOT reply");
    }
    if (first_page) {
      // Resume incremental pulls from the head observed before any page:
      // mutations racing the snapshot get replayed (sets are idempotent),
      // bounding the lost-update window to the snapshot duration.
      resume_seq = static_cast<uint64_t>(reply.elements[1].integer);
      first_page = false;
    }
    for (size_t i = 2; i + 2 < reply.elements.size(); i += 3) {
      ReplOp op;
      op.type = ReplOp::Type::kSet;
      op.key = std::move(reply.elements[i].str);
      op.value = std::move(reply.elements[i + 1].str);
      op.ttl_micros = static_cast<uint64_t>(reply.elements[i + 2].integer);
      TIERBASE_RETURN_IF_ERROR(ApplyOp(op));
    }
    cursor = reply.elements[0].str;
  } while (cursor != "0");
  replica_applied_.store(resume_seq, std::memory_order_release);
  master_head_seen_.store(resume_seq, std::memory_order_release);
  return Status::OK();
}

bool NodeClusterState::PullOnce(server::Client* client) {
  const std::string from =
      std::to_string(replica_applied_.load(std::memory_order_acquire) + 1);
  server::RespValue reply;
  Status s = client->Call(
      {"REPLPULL", options_.id, from, std::to_string(options_.pull_max_ops)},
      &reply);
  if (!s.ok()) return false;
  if (reply.IsError()) {
    // Sequence gap: the master's bounded oplog dropped ops we never saw.
    if (reply.str.rfind("REPLGAP", 0) == 0) {
      return FullResync(client).ok();
    }
    return false;
  }
  if (reply.type != server::RespValue::Type::kArray ||
      reply.elements.empty()) {
    return false;
  }
  master_head_seen_.store(static_cast<uint64_t>(reply.elements[0].integer),
                          std::memory_order_release);
  for (size_t i = 1; i < reply.elements.size(); ++i) {
    const server::RespValue& e = reply.elements[i];
    if (e.type != server::RespValue::Type::kArray || e.elements.size() != 5) {
      return false;
    }
    ReplOp op;
    op.seq = static_cast<uint64_t>(e.elements[0].integer);
    const std::string& type = e.elements[1].str;
    if (type == "SET") {
      op.type = ReplOp::Type::kSet;
    } else if (type == "DEL") {
      op.type = ReplOp::Type::kDelete;
    } else if (type == "FLUSH") {
      op.type = ReplOp::Type::kFlushAll;
    } else if (type == "EXPIRE") {
      op.type = ReplOp::Type::kExpire;
    } else {
      return false;
    }
    op.key = e.elements[2].str;
    op.value = e.elements[3].str;
    op.ttl_micros = static_cast<uint64_t>(e.elements[4].integer);
    if (!ApplyOp(op).ok()) {
      // Don't advance past the failed op: it will be re-pulled, and the
      // lag it accumulates is visible in INFO (replica_lag_ops).
      return false;
    }
    replica_applied_.store(op.seq, std::memory_order_release);
  }
  // Ops arrived: poll again immediately. Empty pull: let the caller idle.
  return reply.elements.size() > 1;
}

void NodeClusterState::PullLoop() {
  server::Client client;
  client.set_transport(options_.transport);
  std::string host;
  uint16_t port = 0;
  {
    common::MutexLock lock(&link_mu_);
    host = master_host_;
    port = master_port_;
  }
  // Jittered exponential backoff against an unreachable master: without it
  // a dead master gets hammered with connect() 50×/s forever, and a fleet
  // of replicas reconnects in lockstep the instant it returns. Seeded from
  // the node id so chaos tests replay the exact schedule.
  uint64_t seed = 1;
  for (char c : options_.id) seed = seed * 131 + static_cast<uint8_t>(c);
  common::RetryState retry(options_.pull_retry, nullptr, seed);
  auto backoff = [&] {
    uint64_t micros = retry.NextBackoffMicros();
    pull_backoffs_.fetch_add(1, std::memory_order_relaxed);
    last_pull_backoff_micros_.store(micros, std::memory_order_relaxed);
    SleepMicrosChecking(micros, stop_pull_);
  };
  while (!stop_pull_.load(std::memory_order_acquire)) {
    if (!client.connected()) {
      if (!client.Connect(host, port, options_.pull_io_timeout_micros).ok()) {
        backoff();
        continue;
      }
      pull_connects_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!PullOnce(&client)) {
      if (!client.connected()) {
        backoff();
      } else {
        // Connected and idle (or a full resync just completed): the link
        // is healthy, so reset the ladder and poll at the idle interval.
        retry.RecordSuccess();
        SleepMicrosChecking(options_.pull_interval_micros, stop_pull_);
      }
    } else {
      retry.RecordSuccess();
    }
  }
}

void NodeClusterState::AppendInfo(std::string* out) const {
  char line[192];
  auto add = [&](const char* fmt, auto... args) {
    snprintf(line, sizeof(line), fmt, args...);
    *out += line;
    *out += "\r\n";
  };
  add("cluster_enabled:1");
  add("cluster_id:%s", options_.id.c_str());
  add("role:%s", is_replica() ? "replica" : "master");
  add("cluster_epoch:%" PRIu64, epoch());
  std::shared_ptr<const RoutingView> view = routing();
  if (view != nullptr) {
    const NodeRecord* self = view->wire.FindNode(options_.id);
    if (self != nullptr) add("shard:%s", self->shard.c_str());
  }
  add("repl_head_seq:%" PRIu64, oplog_.head_seq());
  add("repl_min_seq:%" PRIu64, oplog_.min_seq());
  add("connected_replicas:%zu", connected_replicas());
  add("moved_replies:%" PRIu64, moved_replies());
  if (is_replica()) {
    add("master_link:%s", master_endpoint().c_str());
    add("replica_applied_seq:%" PRIu64, replica_applied_seq());
    add("replica_lag_ops:%" PRIu64, replica_lag());
    add("full_resyncs:%" PRIu64, full_resyncs());
    add("replica_apply_failures:%" PRIu64, apply_failures());
    add("replica_pull_connects:%" PRIu64, pull_connects());
    add("replica_pull_backoffs:%" PRIu64, pull_backoffs());
    add("replica_last_backoff_micros:%" PRIu64, last_pull_backoff_micros());
  }
  if (db_->replicator() != nullptr) {
    add("inprocess_replica_lag:%zu", db_->replicator()->lag());
    add("inprocess_replica_applied:%" PRIu64,
        db_->replicator()->applied_ops());
  }
}

}  // namespace tierbase::cluster_net
