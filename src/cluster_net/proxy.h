// ClusterProxy: the RESP front end for naive clients. Anything that speaks
// plain Redis protocol — redis-cli, the bundled Client/RemoteEngine, the
// YCSB runner's --remote mode — connects to the proxy as if it were a
// single server; the proxy routes per key and scatter–gathers batches
// across the cluster server-side through an embedded NetClusterClient.
//
// The proxy reuses the server's poll(2) event loop and executor: pipelined
// command batches arrive as one dispatch, runs of GETs/SETs (and explicit
// MGET/MSET) become cluster MultiGet/MultiSet — so a client that pipelines
// N reads pays one scatter–gather round instead of N routed round trips.
// Rich-type and TTL commands forward verbatim to the owning node.
//
// Smart-client vs proxy trade-off (README "Running a cluster"): the smart
// client saves a network hop and spreads client-side, the proxy
// centralizes routing (and its single backend connection set serializes
// concurrent batches) but requires zero client changes.

#ifndef TIERBASE_CLUSTER_NET_PROXY_H_
#define TIERBASE_CLUSTER_NET_PROXY_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/workload_analytics.h"
#include "cluster_net/cluster_client.h"
#include "common/metrics.h"
#include "server/event_loop.h"
#include "threading/elastic_executor.h"

namespace tierbase::cluster_net {

class ClusterProxy {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral.
    /// Event-loop shards for the client-facing side (--io-threads). The
    /// proxy rides the same multi-reactor core as the server: each client
    /// connection is owned by one loop; upstream fan-out stays on the
    /// executor task serving that batch.
    int io_threads = 1;
    /// Per-loop SO_REUSEPORT listeners instead of accept-distribute.
    bool so_reuseport = false;
    /// Portable poll(2) backend even where epoll is available.
    bool force_poll = false;
    /// listen(2) backlog (--tcp-backlog).
    int tcp_backlog = 128;
    NetClusterClient::Options backend;
    threading::ElasticOptions executor;
    /// Workload observatory over the traffic this proxy routes — the
    /// cluster-wide aggregate view (every node's string traffic passes
    /// through here). analytics.shards == 0 picks a small default; set
    /// analytics.enabled = false to disable (--no-analytics).
    analytics::WorkloadAnalyticsOptions analytics;
  };

  explicit ClusterProxy(Options options);
  ~ClusterProxy();

  ClusterProxy(const ClusterProxy&) = delete;
  ClusterProxy& operator=(const ClusterProxy&) = delete;

  Status Start();
  void Stop();
  /// Async-signal-safe half of Stop(): ends the event loop; the caller's
  /// Wait()/Stop() then performs the joins.
  void RequestStop() {
    if (loop_ != nullptr) loop_->Stop();
  }
  void Wait();
  uint16_t port() const { return loop_ == nullptr ? 0 : loop_->port(); }

  NetClusterClient* backend() { return backend_.get(); }

  /// The proxy's instrument registry (INFO/METRICS source).
  metrics::MetricsRegistry* registry() { return &registry_; }

  /// Cluster-wide workload observatory; null when disabled.
  analytics::WorkloadAnalytics* analytics() { return analytics_.get(); }

 private:
  void ExecuteBatch(const std::vector<server::RespCommand>& cmds,
                    std::string* out, bool* close_connection,
                    bool* shutdown_server);
  void ExecuteOne(const server::RespCommand& cmd, std::string* out,
                  bool* close_connection, bool* shutdown_server);
  void BatchedGets(const std::vector<server::RespCommand>& cmds, size_t begin,
                   size_t end, std::string* out);
  void BatchedSets(const std::vector<server::RespCommand>& cmds, size_t begin,
                   size_t end, std::string* out);
  void Info(std::string* out);
  void Analytics(const server::RespCommand& cmd, std::string* out);
  void HotKeys(const server::RespCommand& cmd, std::string* out);
  /// Registers the proxy's instruments. Called once from the ctor.
  void RegisterInstruments();

  /// Feeds a routed read/write into the observatory (no-op when disabled).
  void RecordRead(const Slice& key);
  void RecordWrite(const Slice& key, size_t value_bytes);

  Options options_;
  std::unique_ptr<analytics::WorkloadAnalytics> analytics_;
  std::unique_ptr<NetClusterClient> backend_;
  std::unique_ptr<threading::ElasticExecutor> executor_;
  std::unique_ptr<server::EventLoop> loop_;
  std::thread loop_thread_;
  bool running_ = false;

  metrics::MetricsRegistry registry_;
  metrics::Counter* commands_ = nullptr;
  metrics::Counter* batches_ = nullptr;
  metrics::Counter* coalesced_ = nullptr;
  metrics::LatencyHistogram* fanout_hist_ = nullptr;

  // One backend-stats snapshot per registry render (pre-render hook);
  // written and read only inside registry renders, which the registry
  // serializes under its own lock.
  NetClusterClient::Stats info_stats_;
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_PROXY_H_
