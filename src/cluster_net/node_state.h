// NodeClusterState: everything a tierbase_server process needs to act as a
// member of the networked cluster.
//
//   * Identity + routing. The node knows its cluster id; the coordinator
//     pushes routing snapshots via CLUSTER SETSLOTS. Keyed commands check
//     ownership against the snapshot and answer -MOVED for misrouted keys,
//     which is what lets smart clients and the proxy detect stale routes
//     and refresh on the epoch bump.
//   * Master role. Applied string mutations are recorded into a bounded
//     OpLog; replicas pull ranges over the wire with REPLPULL, and WAIT
//     reports how many replicas have acknowledged the current head.
//   * Replica role. REPLICAOF starts a pull thread that streams the
//     master's oplog over a persistent RESP connection, applying each op
//     locally and acking by sequence. A sequence gap (bounded-ring
//     overrun) triggers a full resync via REPLSNAPSHOT pages. REPLICAOF NO
//     ONE — sent by the coordinator on failover — stops the link and
//     promotes the node to master; its own oplog has been maintained all
//     along, so new replicas can chain off it immediately.
//
// Scope: string ops replicate (SET with TTL, DEL, EXPIRE, FLUSHALL); rich
// cache-tier types stay node-local in this reproduction. Replication
// streams the cache tier — full resync pages come from the cache SCAN, so
// cluster data nodes are expected to run cache-only/WAL policies (the
// configuration every cluster test and script uses); a tiered master
// would not snapshot storage-only keys to its replica.

#ifndef TIERBASE_CLUSTER_NET_NODE_STATE_H_
#define TIERBASE_CLUSTER_NET_NODE_STATE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cluster_net/oplog.h"
#include "cluster_net/routing.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/transport.h"
#include "core/tierbase.h"
#include "server/client.h"

namespace tierbase::cluster_net {

/// Immutable snapshot installed by CLUSTER SETSLOTS; readers grab the
/// shared_ptr under a short lock and route against it lock-free.
struct RoutingView {
  WireRouting wire;
  cluster::Router router;

  explicit RoutingView(WireRouting w)
      : wire(std::move(w)), router(wire.BuildRouter()) {}
};

class NodeClusterState {
 public:
  struct Options {
    std::string id;
    size_t oplog_capacity = 65536;
    /// Replica idle poll interval between empty REPLPULLs.
    uint64_t pull_interval_micros = 2000;
    size_t pull_max_ops = 512;
    /// Backoff for the pull link against an unreachable master: jittered
    /// exponential from 20 ms up to 1 s instead of hammering connect().
    common::RetryPolicy pull_retry;
    /// Connect/IO budget for the pull link. Bounded by default so a
    /// black-holed master (partitioned, SIGSTOPped) turns into a failed
    /// pull → backoff → reconnect instead of a read() stuck forever —
    /// a stuck pull thread would also hang the REPLICAOF NO ONE that
    /// promotes this replica (StopReplication joins it). 0 = unbounded.
    uint64_t pull_io_timeout_micros = 2'000'000;
    /// Dial through this transport instead of the process default (tests
    /// inject partitions here).
    common::Transport* transport = nullptr;
  };

  NodeClusterState(TierBase* db, Options options);
  ~NodeClusterState();

  NodeClusterState(const NodeClusterState&) = delete;
  NodeClusterState& operator=(const NodeClusterState&) = delete;

  const std::string& id() const { return options_.id; }
  bool is_replica() const { return is_replica_.load(std::memory_order_acquire); }
  /// Epoch of the installed routing snapshot (0 = none yet).
  uint64_t epoch() const;

  // --- Routing. ---
  Status InstallRouting(const std::string& payload);
  std::shared_ptr<const RoutingView> routing() const;
  /// True if `key` belongs to another shard; *moved_error then holds the
  /// RESP error payload ("MOVED <epoch> <shard> <host:port>").
  bool CheckMoved(const Slice& key, std::string* moved_error);

  /// Lock-free misroute checker bound to one routing snapshot. Fetch one
  /// per pipelined batch (routing() takes a mutex) and test many keys.
  class RouteChecker {
   public:
    RouteChecker() = default;
    RouteChecker(std::shared_ptr<const RoutingView> view,
                 const NodeRecord* self)
        : view_(std::move(view)), self_(self) {}
    /// False also covers "no routing installed" (serve everything).
    bool Misrouted(const Slice& key) const {
      if (view_ == nullptr || self_ == nullptr) return false;
      std::string shard = view_->router.Route(key);
      return !shard.empty() && shard != self_->shard;
    }

   private:
    std::shared_ptr<const RoutingView> view_;
    const NodeRecord* self_ = nullptr;  // Points into *view_.
  };
  RouteChecker route_checker() const;

  /// Serializes engine-apply + oplog-append for replicated writes, so the
  /// oplog order always matches the apply order under multi-threaded
  /// dispatch (two racing SETs of one key must not replicate reversed).
  common::Mutex& write_order_mu() { return write_order_mu_; }

  // --- Master side. ---
  OpLog* oplog() { return &oplog_; }
  void RecordSet(const Slice& key, const Slice& value, uint64_t ttl_micros);
  void RecordDelete(const Slice& key);
  void RecordExpire(const Slice& key, uint64_t ttl_micros);
  void RecordFlush();
  /// REPLPULL bookkeeping: `acked` = highest sequence the replica applied.
  void NoteReplicaAck(const std::string& replica_id, uint64_t acked);
  /// Replicas whose ack has reached `target` (WAIT).
  size_t CountReplicasAtLeast(uint64_t target) const;
  size_t connected_replicas() const;

  // --- Replica side. ---
  Status StartReplicaOf(const std::string& host, uint16_t port);
  /// REPLICAOF NO ONE: stop pulling and become a master.
  void StopReplication();
  uint64_t replica_applied_seq() const { return replica_applied_.load(); }
  /// Master head at the last pull minus what we applied, in ops.
  uint64_t replica_lag() const;
  std::string master_endpoint() const;
  uint64_t full_resyncs() const { return full_resyncs_.load(); }
  /// Replicated ops the local engine refused (e.g. a WAL/flush error on a
  /// durable replica). Non-zero means the replica is stalled, not silently
  /// diverging: replica_applied_ stops advancing so the op is re-pulled.
  uint64_t apply_failures() const { return apply_failures_.load(); }

  uint64_t moved_replies() const { return moved_replies_.load(); }

  /// Successful (re)connects of the pull link.
  uint64_t pull_connects() const { return pull_connects_.load(); }
  /// Backoff sleeps taken by the pull link (failed connect or failed pull).
  uint64_t pull_backoffs() const { return pull_backoffs_.load(); }
  uint64_t last_pull_backoff_micros() const {
    return last_pull_backoff_micros_.load();
  }

  /// "# Cluster" INFO section lines (each "key:value\r\n").
  void AppendInfo(std::string* out) const;

 private:
  void PullLoop();
  /// One pull round trip; false when the caller should back off (idle or
  /// connection trouble).
  bool PullOnce(server::Client* client);
  Status FullResync(server::Client* client);
  Status ApplyOp(const ReplOp& op);

  TierBase* db_;
  Options options_;
  OpLog oplog_;

  mutable common::Mutex routing_mu_;
  std::shared_ptr<const RoutingView> routing_view_ GUARDED_BY(routing_mu_);
  common::Mutex write_order_mu_;

  // Replica-ack table (master side).
  mutable common::Mutex acks_mu_;
  std::map<std::string, uint64_t> replica_acks_ GUARDED_BY(acks_mu_);

  // Replica link (replica side).
  mutable common::Mutex link_mu_;
  std::string master_host_ GUARDED_BY(link_mu_);
  uint16_t master_port_ GUARDED_BY(link_mu_) = 0;
  std::thread pull_thread_ GUARDED_BY(link_mu_);
  std::atomic<bool> stop_pull_{false};
  std::atomic<bool> is_replica_{false};
  std::atomic<uint64_t> replica_applied_{0};
  std::atomic<uint64_t> master_head_seen_{0};
  std::atomic<uint64_t> full_resyncs_{0};
  std::atomic<uint64_t> apply_failures_{0};
  std::atomic<uint64_t> pull_connects_{0};
  std::atomic<uint64_t> pull_backoffs_{0};
  std::atomic<uint64_t> last_pull_backoff_micros_{0};

  std::atomic<uint64_t> moved_replies_{0};
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_NODE_STATE_H_
