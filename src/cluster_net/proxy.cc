#include "cluster_net/proxy.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "common/hash.h"
#include "server/resp.h"

namespace tierbase::cluster_net {

namespace {

using server::EqualsUpper;

/// Strict signed-integer parse of a RESP argument (mirrors the server's).
bool ParseArgInt(const Slice& arg, int64_t* out) {
  if (arg.empty() || arg.size() > 20) return false;
  char buf[24];
  memcpy(buf, arg.data(), arg.size());
  buf[arg.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + arg.size()) return false;
  *out = v;
  return true;
}

void AppendStatus(std::string* out, const Status& s) {
  // Robustness contract: Unavailable (dead shard / open breaker) and Busy
  // (overload shed) keep their distinct error classes on the wire so
  // clients can tell "retry elsewhere/later" from a hard error.
  if (s.IsUnavailable()) {
    server::AppendError(out, "UNAVAILABLE " + s.message());
    return;
  }
  if (s.IsBusy()) {
    server::AppendError(out, "BUSY " + s.message());
    return;
  }
  server::AppendError(out, "ERR " + s.ToString());
}

}  // namespace

ClusterProxy::ClusterProxy(Options options) : options_(std::move(options)) {
  if (options_.analytics.enabled) {
    analytics::WorkloadAnalyticsOptions aopts = options_.analytics;
    // No cache engine to inherit a shard count from: a few trackers keep
    // snapshot-time lock holds short against the routed hot path.
    if (aopts.shards == 0) aopts.shards = 4;
    analytics_ = std::make_unique<analytics::WorkloadAnalytics>(aopts);
  }
  RegisterInstruments();
}

void ClusterProxy::RecordRead(const Slice& key) {
  if (analytics_ != nullptr) {
    analytics_->RecordRead(key, Hash64(key));
  }
}

void ClusterProxy::RecordWrite(const Slice& key, size_t value_bytes) {
  if (analytics_ != nullptr) {
    // The proxy never sees TTLs on the coalesced string path; shape
    // histograms carry value/key sizes only.
    analytics_->RecordWrite(key, Hash64(key), value_bytes, 0);
  }
}

void ClusterProxy::RegisterInstruments() {
  // Callbacks null-check backend_/loop_: INFO can run (in tests) before
  // Start() wires them.
  registry_.AddText("Proxy", "proxy_port",
                    [this] { return std::to_string(port()); });
  commands_ = registry_.AddCounter("Proxy", "proxy_commands",
                                   "Commands executed by the proxy");
  batches_ = registry_.AddCounter("Proxy", "proxy_batches",
                                  "Pipelined batches executed");
  coalesced_ = registry_.AddCounter(
      "Proxy", "proxy_coalesced_commands",
      "Commands served through cluster-wide scatter-gather trains");
  registry_.AddCallback(
      "Proxy", "connected_clients", "Connections currently open",
      metrics::MetricType::kGauge,
      [this] { return loop_ != nullptr ? loop_->connections_active() : 0; });
  registry_.AddText("Proxy", "io_backend", [this] {
    return std::string(loop_ != nullptr ? loop_->backend() : "unbound");
  });
  registry_.AddCallback(
      "Proxy", "io_threads", "Event-loop shards serving clients",
      metrics::MetricType::kGauge, [this] {
        return loop_ != nullptr ? static_cast<uint64_t>(loop_->io_threads())
                                : static_cast<uint64_t>(options_.io_threads);
      });
  registry_.AddCallback(
      "Proxy", "loop_wakeups", "Wakeup-channel fires across all loops",
      metrics::MetricType::kCounter,
      [this] { return loop_ != nullptr ? loop_->loop_wakeups() : 0; });
  // Per-loop ownership/accept-balance breakdown (dynamic key set).
  registry_.AddBlock("Proxy", [this](std::string* out) {
    if (loop_ == nullptr) return;
    for (size_t i = 0; i < loop_->shard_count(); ++i) {
      const server::IoShard* shard = loop_->shard(i);
      const std::string sfx = "_loop" + std::to_string(i);
      out->append("connected_clients" + sfx + ":" +
                  std::to_string(shard->connections_active()) + "\r\n");
      out->append("accepts" + sfx + ":" +
                  std::to_string(shard->connections_assigned()) + "\r\n");
      out->append("loop_wakeups" + sfx + ":" +
                  std::to_string(shard->wakeups()) + "\r\n");
    }
  });
  fanout_hist_ = registry_.AddHistogram(
      "Proxy", "proxy_fanout_latency_us",
      "Scatter-gather train latency (all nodes shipped and gathered), "
      "microseconds");

  // One backend-stats snapshot per render; the callbacks below read it.
  registry_.AddPreRender([this] {
    info_stats_ = backend_ != nullptr ? backend_->GetStats()
                                      : NetClusterClient::Stats();
  });
  registry_.AddCallback(
      "Cluster", "cluster_epoch", "Routing snapshot epoch",
      metrics::MetricType::kGauge,
      [this] { return backend_ != nullptr ? backend_->epoch() : 0; });
  registry_.AddCallback("Cluster", "route_refreshes",
                        "Routing snapshot refreshes",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.route_refreshes; });
  registry_.AddCallback("Cluster", "moved_redirects",
                        "-MOVED replies observed",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.moved_redirects; });
  registry_.AddCallback("Cluster", "failures_reported",
                        "Node failures reported to the coordinator",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.failures_reported; });
  // Per-node keys are dynamic (they follow the routing snapshot), so they
  // render as an INFO-only block.
  registry_.AddBlock("Cluster", [this](std::string* out) {
    char line[160];
    for (const auto& [node, batches] : info_stats_.node_batches) {
      snprintf(line, sizeof(line), "routed_batches_%s:%" PRIu64 "\r\n",
               node.c_str(), batches);
      *out += line;
    }
    for (const auto& [node, micros] : info_stats_.node_fanout_micros) {
      snprintf(line, sizeof(line), "fanout_micros_%s:%" PRIu64 "\r\n",
               node.c_str(), micros);
      *out += line;
    }
  });

  registry_.AddCallback("Robustness", "backoff_waits",
                        "Backoff sleeps between failed attempts",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.backoff_waits; });
  registry_.AddCallback("Robustness", "breaker_trips",
                        "Circuit breaker open transitions",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.breaker_trips; });
  registry_.AddCallback("Robustness", "breaker_fast_fails",
                        "Operations rejected by an open breaker",
                        metrics::MetricType::kCounter,
                        [this] { return info_stats_.breaker_fast_fails; });
  registry_.AddBlock("Robustness", [this](std::string* out) {
    char line[160];
    for (const auto& [node, state] : info_stats_.breaker_states) {
      snprintf(line, sizeof(line), "breaker_state_%s:%s\r\n", node.c_str(),
               state.c_str());
      *out += line;
    }
  });

  // # Workload: the cluster-wide aggregate view — every routed string
  // access feeds the proxy's own observatory. Shared registration with the
  // server's per-node section.
  analytics::RegisterWorkloadInstruments(&registry_, analytics_.get());
}

ClusterProxy::~ClusterProxy() { Stop(); }

Status ClusterProxy::Start() {
  if (running_) return Status::InvalidArgument("proxy already running");
  auto backend = NetClusterClient::Connect(options_.backend);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(*backend);
  executor_ =
      std::make_unique<threading::ElasticExecutor>(options_.executor);
  server::EventLoopOptions net;
  net.host = options_.host;
  net.port = options_.port;
  net.io_threads = options_.io_threads;
  net.so_reuseport = options_.so_reuseport;
  net.force_poll = options_.force_poll;
  net.backlog = options_.tcp_backlog;
  loop_ = std::make_unique<server::EventLoop>(
      net, [this](std::shared_ptr<server::Connection> conn,
                  server::CommandBatch batch) {
        auto shared = std::make_shared<server::CommandBatch>(std::move(batch));
        executor_->Submit([this, conn = std::move(conn), shared] {
          std::string out;
          bool close_connection = false;
          bool shutdown_server = false;
          ExecuteBatch(shared->cmds, &out, &close_connection,
                       &shutdown_server);
          conn->CompleteBatch(std::move(out), close_connection,
                              shutdown_server);
        });
      });
  Status s = loop_->Listen();
  if (!s.ok()) {
    loop_.reset();
    executor_->Shutdown();
    executor_.reset();
    backend_.reset();
    return s;
  }
  loop_thread_ = std::thread([this] { loop_->Run(); });
  running_ = true;
  return Status::OK();
}

void ClusterProxy::Stop() {
  if (!running_) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  executor_->Shutdown();
  running_ = false;
}

void ClusterProxy::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

void ClusterProxy::ExecuteBatch(const std::vector<server::RespCommand>& cmds,
                                std::string* out, bool* close_connection,
                                bool* shutdown_server) {
  batches_->Inc();
  commands_->Inc(cmds.size());
  size_t i = 0;
  while (i < cmds.size()) {
    // A pipelined train of plain GETs (or SETs) becomes one cluster-wide
    // scatter–gather, the proxy's equivalent of the server's coalescing.
    if (cmds[i].args.size() == 2 && EqualsUpper(cmds[i].args[0], "GET")) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 2 &&
             EqualsUpper(cmds[j].args[0], "GET")) {
        ++j;
      }
      if (j - i >= 2) {
        BatchedGets(cmds, i, j, out);
        coalesced_->Inc(j - i);
        i = j;
        continue;
      }
    } else if (cmds[i].args.size() == 3 &&
               EqualsUpper(cmds[i].args[0], "SET")) {
      size_t j = i + 1;
      while (j < cmds.size() && cmds[j].args.size() == 3 &&
             EqualsUpper(cmds[j].args[0], "SET")) {
        ++j;
      }
      if (j - i >= 2) {
        BatchedSets(cmds, i, j, out);
        coalesced_->Inc(j - i);
        i = j;
        continue;
      }
    }
    ExecuteOne(cmds[i], out, close_connection, shutdown_server);
    ++i;
  }
}

void ClusterProxy::BatchedGets(const std::vector<server::RespCommand>& cmds,
                               size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys;
  keys.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) keys.push_back(cmds[i].args[1]);
  for (const Slice& key : keys) RecordRead(key);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  const uint64_t t0 = Clock::Real()->NowMicros();
  backend_->MultiGet(keys, &values, &statuses);
  fanout_hist_->Record(Clock::Real()->NowMicros() - t0);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (statuses[i].ok()) {
      server::AppendBulk(out, values[i]);
    } else if (statuses[i].IsNotFound()) {
      server::AppendNullBulk(out);
    } else {
      AppendStatus(out, statuses[i]);
    }
  }
}

void ClusterProxy::BatchedSets(const std::vector<server::RespCommand>& cmds,
                               size_t begin, size_t end, std::string* out) {
  std::vector<Slice> keys, values;
  keys.reserve(end - begin);
  values.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    keys.push_back(cmds[i].args[1]);
    values.push_back(cmds[i].args[2]);
    RecordWrite(cmds[i].args[1], cmds[i].args[2].size());
  }
  std::vector<Status> statuses;
  const uint64_t t0 = Clock::Real()->NowMicros();
  backend_->MultiSet(keys, values, &statuses);
  fanout_hist_->Record(Clock::Real()->NowMicros() - t0);
  for (const Status& s : statuses) {
    if (s.ok()) {
      server::AppendSimpleString(out, "OK");
    } else {
      AppendStatus(out, s);
    }
  }
}

void ClusterProxy::ExecuteOne(const server::RespCommand& cmd,
                              std::string* out, bool* close_connection,
                              bool* shutdown_server) {
  if (cmd.args.empty()) {
    server::AppendError(out, "ERR empty command");
    return;
  }
  const Slice& name = cmd.args[0];
  const size_t argc = cmd.args.size();

  if (EqualsUpper(name, "PING")) {
    if (argc == 2) {
      server::AppendBulk(out, cmd.args[1]);
    } else {
      server::AppendSimpleString(out, "PONG");
    }
    return;
  }
  if (EqualsUpper(name, "QUIT")) {
    server::AppendSimpleString(out, "OK");
    *close_connection = true;
    return;
  }
  if (EqualsUpper(name, "SHUTDOWN")) {
    // Shuts the proxy down, not the data nodes.
    server::AppendSimpleString(out, "OK");
    *close_connection = true;
    *shutdown_server = true;
    return;
  }
  if (EqualsUpper(name, "COMMAND")) {
    server::AppendArrayHeader(out, 0);
    return;
  }
  if (EqualsUpper(name, "INFO")) {
    Info(out);
    return;
  }
  if (EqualsUpper(name, "METRICS")) {
    std::string body;
    registry_.RenderPrometheus(&body);
    server::AppendBulk(out, body);
    return;
  }
  if (EqualsUpper(name, "ANALYTICS") && argc >= 2 && argc <= 3) {
    Analytics(cmd, out);
    return;
  }
  if (EqualsUpper(name, "HOTKEYS") && argc <= 2) {
    HotKeys(cmd, out);
    return;
  }
  if (EqualsUpper(name, "GET") && argc == 2) {
    RecordRead(cmd.args[1]);
    std::string value;
    Status s = backend_->Get(cmd.args[1], &value);
    if (s.ok()) {
      server::AppendBulk(out, value);
    } else if (s.IsNotFound()) {
      server::AppendNullBulk(out);
    } else {
      AppendStatus(out, s);
    }
    return;
  }
  if (EqualsUpper(name, "SET") && argc == 3) {
    RecordWrite(cmd.args[1], cmd.args[2].size());
    Status s = backend_->Set(cmd.args[1], cmd.args[2]);
    if (s.ok()) {
      server::AppendSimpleString(out, "OK");
    } else {
      AppendStatus(out, s);
    }
    return;
  }
  if (EqualsUpper(name, "MGET") && argc >= 2) {
    std::vector<Slice> keys(cmd.args.begin() + 1, cmd.args.end());
    for (const Slice& key : keys) RecordRead(key);
    std::vector<std::string> values;
    std::vector<Status> statuses;
    backend_->MultiGet(keys, &values, &statuses);
    // Nil is strictly "no such key": a shard that stayed unreachable must
    // surface as an error, not as a phantom miss.
    for (const Status& s : statuses) {
      if (!s.ok() && !s.IsNotFound()) {
        AppendStatus(out, s);
        return;
      }
    }
    server::AppendArrayHeader(out, keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (statuses[i].ok()) {
        server::AppendBulk(out, values[i]);
      } else {
        server::AppendNullBulk(out);
      }
    }
    return;
  }
  if (EqualsUpper(name, "MSET") && argc >= 3 && argc % 2 == 1) {
    std::vector<Slice> keys, values;
    for (size_t i = 1; i < argc; i += 2) {
      keys.push_back(cmd.args[i]);
      values.push_back(cmd.args[i + 1]);
      RecordWrite(cmd.args[i], cmd.args[i + 1].size());
    }
    std::vector<Status> statuses;
    backend_->MultiSet(keys, values, &statuses);
    for (const Status& s : statuses) {
      if (!s.ok()) {
        AppendStatus(out, s);
        return;
      }
    }
    server::AppendSimpleString(out, "OK");
    return;
  }
  if (EqualsUpper(name, "DEL") && argc >= 2) {
    // DEL fans out per owner; the reply sums the per-node removal counts.
    // An unreachable shard fails the whole command — ":N" must never
    // masquerade as "the other keys did not exist".
    int64_t removed = 0;
    for (size_t i = 1; i < argc; ++i) {
      server::RespValue reply;
      Status s =
          backend_->Forward({"DEL", cmd.args[i]}, cmd.args[i], &reply);
      if (!s.ok()) {
        AppendStatus(out, s);
        return;
      }
      if (reply.type == server::RespValue::Type::kInteger) {
        removed += reply.integer;
      }
    }
    server::AppendInteger(out, removed);
    return;
  }

  // Any other single-key command (INCR, EXPIRE, TTL, EXISTS, HSET, HGET,
  // LPUSH, LRANGE, ZADD, ZRANGE, ...) forwards verbatim to the key's
  // owner and relays the reply.
  if (argc >= 2) {
    server::RespValue reply;
    Status s = backend_->Forward(cmd.args, cmd.args[1], &reply);
    if (!s.ok()) {
      AppendStatus(out, s);
      return;
    }
    server::AppendValue(out, reply);
    return;
  }
  std::string msg = "ERR unknown command '";
  msg.append(name.data(), std::min<size_t>(name.size(), 64));
  msg += "'";
  server::AppendError(out, msg);
}

void ClusterProxy::Info(std::string* out) {
  std::string body;
  registry_.RenderInfo(&body);
  server::AppendBulk(out, body);
}

void ClusterProxy::Analytics(const server::RespCommand& cmd,
                             std::string* out) {
  if (analytics_ == nullptr) {
    server::AppendError(
        out, "ERR analytics disabled (proxy started with --no-analytics)");
    return;
  }
  if (EqualsUpper(cmd.args[1], "MRC")) {
    int shard = -1;
    if (cmd.args.size() == 3) {
      int64_t v = 0;
      if (!ParseArgInt(cmd.args[2], &v) || v < 0 ||
          v >= analytics_->shards()) {
        server::AppendError(out, "ERR shard index out of range");
        return;
      }
      shard = static_cast<int>(v);
    }
    server::AppendBulk(out, analytics::FormatMrcReport(
                                analytics_->Mrc(shard), analytics_->shards()));
    return;
  }
  if (EqualsUpper(cmd.args[1], "RESET")) {
    analytics_->Reset();
    server::AppendSimpleString(out, "OK");
    return;
  }
  server::AppendError(out, "ERR unknown ANALYTICS subcommand, try MRC|RESET");
}

void ClusterProxy::HotKeys(const server::RespCommand& cmd, std::string* out) {
  if (analytics_ == nullptr) {
    server::AppendError(
        out, "ERR analytics disabled (proxy started with --no-analytics)");
    return;
  }
  int64_t k = 10;
  if (cmd.args.size() == 2 &&
      (!ParseArgInt(cmd.args[1], &k) || k <= 0 || k > 10'000)) {
    server::AppendError(out, "ERR value is not an integer or out of range");
    return;
  }
  std::vector<analytics::HotKey> top =
      analytics_->TopKeys(static_cast<size_t>(k));
  server::AppendArrayHeader(out, top.size() * 2);
  for (const analytics::HotKey& h : top) {
    server::AppendBulk(out, h.key);
    server::AppendInteger(out, static_cast<int64_t>(h.count));
  }
}

}  // namespace tierbase::cluster_net
