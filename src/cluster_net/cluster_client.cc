#include "cluster_net/cluster_client.h"
#include "common/mutex.h"
#include "common/perf_context.h"

#include <cstdlib>
#include <cstring>

namespace tierbase::cluster_net {

namespace {

/// Internal retry marker: the reply says our routing snapshot is stale
/// (-MOVED from a node with a newer epoch, -READONLY from a not-yet
/// promoted replica, -CLUSTERDOWN). Busy never escapes to callers.
Status StaleRouteMarker(const std::string& msg) { return Status::Busy(msg); }

bool IsStaleRouteReply(const server::RespValue& reply) {
  return reply.IsError() && (reply.str.rfind("MOVED", 0) == 0 ||
                             reply.str.rfind("READONLY", 0) == 0 ||
                             reply.str.rfind("CLUSTERDOWN", 0) == 0);
}

uint64_t ParseInfoField(const std::string& info, const char* field) {
  size_t pos = info.find(field);
  if (pos == std::string::npos) return 0;
  return strtoull(info.c_str() + pos + strlen(field), nullptr, 10);
}

}  // namespace

Result<std::unique_ptr<NetClusterClient>> NetClusterClient::Connect(
    Options options) {
  if (options.coordinators.empty()) {
    return Status::InvalidArgument("no coordinator endpoints");
  }
  std::unique_ptr<NetClusterClient> client(
      new NetClusterClient(std::move(options)));
  common::MutexLock lock(&client->mu_);
  client->coordinator_.set_transport(client->options_.transport);
  Status s = client->RefreshRoutingLocked();
  if (!s.ok()) return s;
  return client;
}

Status NetClusterClient::CoordinatorCallLocked(const std::vector<Slice>& args,
                                               server::RespValue* reply) {
  Status last = Status::IOError("no coordinator reachable");
  for (size_t attempt = 0; attempt < options_.coordinators.size() + 1;
       ++attempt) {
    if (!coordinator_.connected()) {
      // Round-robin over the configured coordinator endpoints.
      const std::string& spec =
          options_.coordinators[attempt % options_.coordinators.size()];
      std::string host;
      uint16_t port = 0;
      last = server::ParseHostPort(spec, &host, &port);
      if (!last.ok()) continue;
      last = coordinator_.Connect(host, port,
                                  options_.coordinator_timeout_micros);
      if (!last.ok()) continue;
    }
    last = coordinator_.Call(args, reply);
    if (last.ok()) return Status::OK();
    coordinator_.Close();
  }
  return last;
}

Status NetClusterClient::RefreshRoutingLocked() {
  server::RespValue reply;
  TIERBASE_RETURN_IF_ERROR(CoordinatorCallLocked({"CLUSTER", "NODES"}, &reply));
  if (reply.type != server::RespValue::Type::kBulkString) {
    return Status::IOError("malformed CLUSTER NODES reply");
  }
  WireRouting wire;
  TIERBASE_RETURN_IF_ERROR(WireRouting::Parse(reply.str, &wire));
  routing_ = std::move(wire);
  router_ = routing_.BuildRouter();
  reported_.clear();
  ++stats_.route_refreshes;
  return Status::OK();
}

void NetClusterClient::ReportFailureLocked(const std::string& node_id) {
  conns_.erase(node_id);
  // One report per node per routing snapshot: a dead node shows up once
  // per failed sub-batch key otherwise (the refresh clears the set).
  if (!reported_.insert(node_id).second) return;
  ++stats_.failures_reported;
  server::RespValue reply;
  CoordinatorCallLocked({"CLUSTER", "FAIL", node_id}, &reply);
}

common::CircuitBreaker* NetClusterClient::BreakerLocked(
    const std::string& node_id) {
  auto it = breakers_.find(node_id);
  if (it == breakers_.end()) {
    common::CircuitBreakerOptions bo = options_.breaker;
    if (bo.clock == nullptr) bo.clock = options_.clock;
    it = breakers_
             .emplace(node_id, std::make_unique<common::CircuitBreaker>(bo))
             .first;
  }
  return it->second.get();
}

void NetClusterClient::BackoffLocked(common::RetryState* retry) {
  uint64_t micros = retry->NextBackoffMicros();
  if (micros == 0) return;
  ++stats_.backoff_waits;
  const Clock* clock =
      options_.clock != nullptr ? options_.clock : Clock::Real();
  clock->SleepMicros(micros);
}

server::Client* NetClusterClient::MasterConnLocked(const std::string& shard,
                                                   Status* why,
                                                   std::string* node_id,
                                                   bool* fast_fail) {
  if (fast_fail != nullptr) *fast_fail = false;
  const NodeRecord* master = routing_.MasterOfShard(shard);
  if (master == nullptr) {
    *why = Status::Unavailable("no healthy master for shard " + shard);
    node_id->clear();
    return nullptr;
  }
  *node_id = master->id;
  auto it = conns_.find(master->id);
  // An established connection is served without consulting the breaker:
  // an open breaker means dialing fails, and a live socket is the best
  // evidence that is no longer true (its ops will half-close the loop via
  // RecordSuccess/RecordFailure either way).
  if (it != conns_.end() && it->second->connected()) return it->second.get();
  common::CircuitBreaker* breaker = BreakerLocked(master->id);
  if (!breaker->Allow()) {
    *why = Status::Unavailable("circuit open for node " + master->id);
    if (fast_fail != nullptr) *fast_fail = true;
    return nullptr;
  }
  auto conn = std::make_unique<server::Client>();
  conn->set_transport(options_.transport);
  *why = conn->Connect(master->host, master->port,
                       options_.node_timeout_micros);
  if (!why->ok()) {
    breaker->RecordFailure();
    conns_.erase(master->id);
    return nullptr;
  }
  server::Client* raw = conn.get();
  conns_[master->id] = std::move(conn);
  return raw;
}

template <typename Op>
Status NetClusterClient::WithRetriesLocked(const Slice& key, Op op) {
  Status last = Status::Unavailable("empty cluster");
  common::RetryState retry(options_.retry, options_.clock, options_.seed);
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (attempt > 0) BackoffLocked(&retry);
    std::string shard = router_.Route(key);
    if (shard.empty()) {
      last = Status::Unavailable("no shards in the ring");
      Status r = RefreshRoutingLocked();
      if (!r.ok()) return r;
      continue;
    }
    Status why;
    std::string node_id;
    bool fast_fail = false;
    server::Client* conn = MasterConnLocked(shard, &why, &node_id, &fast_fail);
    if (conn == nullptr) {
      last = why;
      // Breaker open: fail the op now. Reporting/refreshing again would
      // just churn the coordinator — the breaker's half-open probe is the
      // designated way back.
      if (fast_fail) return last;
      if (!node_id.empty()) ReportFailureLocked(node_id);
      RefreshRoutingLocked();
      continue;
    }
    Status s = op(conn);
    if (s.IsIOError() || s.IsTimedOut()) {
      // Connection-level failure: the node is likely down.
      last = s;
      BreakerLocked(node_id)->RecordFailure();
      ReportFailureLocked(node_id);
      RefreshRoutingLocked();
      continue;
    }
    // The node answered — that's breaker success even if the answer was
    // "stale route" or an application error.
    BreakerLocked(node_id)->RecordSuccess();
    if (s.IsBusy()) {
      // Stale route (-MOVED / -READONLY): refresh, no failure report.
      last = Status::Unavailable(s.message());
      ++stats_.moved_redirects;
      RefreshRoutingLocked();
      continue;
    }
    return s;
  }
  return last;
}

Status NetClusterClient::Set(const Slice& key, const Slice& value) {
  common::MutexLock lock(&mu_);
  return WithRetriesLocked(key, [&](server::Client* conn) {
    server::RespValue reply;
    TIERBASE_RETURN_IF_ERROR(conn->Call({"SET", key, value}, &reply));
    if (IsStaleRouteReply(reply)) return StaleRouteMarker(reply.str);
    if (reply.IsError()) return Status::InvalidArgument(reply.str);
    return Status::OK();
  });
}

Status NetClusterClient::Get(const Slice& key, std::string* value) {
  common::MutexLock lock(&mu_);
  return WithRetriesLocked(key, [&](server::Client* conn) {
    server::RespValue reply;
    TIERBASE_RETURN_IF_ERROR(conn->Call({"GET", key}, &reply));
    if (IsStaleRouteReply(reply)) return StaleRouteMarker(reply.str);
    if (reply.IsError()) return Status::InvalidArgument(reply.str);
    if (reply.IsNull()) return Status::NotFound("");
    *value = std::move(reply.str);
    return Status::OK();
  });
}

Status NetClusterClient::Delete(const Slice& key) {
  common::MutexLock lock(&mu_);
  return WithRetriesLocked(key, [&](server::Client* conn) {
    server::RespValue reply;
    TIERBASE_RETURN_IF_ERROR(conn->Call({"DEL", key}, &reply));
    if (IsStaleRouteReply(reply)) return StaleRouteMarker(reply.str);
    if (reply.IsError()) return Status::InvalidArgument(reply.str);
    return Status::OK();
  });
}

Status NetClusterClient::Forward(const std::vector<Slice>& args,
                                 const Slice& key,
                                 server::RespValue* reply) {
  common::MutexLock lock(&mu_);
  return WithRetriesLocked(key, [&](server::Client* conn) {
    TIERBASE_RETURN_IF_ERROR(conn->Call(args, reply));
    if (IsStaleRouteReply(*reply)) return StaleRouteMarker(reply->str);
    // Other error replies (WRONGTYPE, arity) relay verbatim to the caller.
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Scatter–gather batches.
// ---------------------------------------------------------------------------

void NetClusterClient::MultiGet(const std::vector<Slice>& keys,
                                std::vector<std::string>* values,
                                std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::Unavailable("not attempted"));
  if (keys.empty()) return;
  metrics::ScopedPerfStage fanout_stage(metrics::PerfContext::kNetFanout);
  common::MutexLock lock(&mu_);

  std::vector<bool> pending(keys.size(), true);
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    // Plan: per healthy-master node, the pending key indices it owns.
    struct Group {
      server::Client* conn;
      std::string node_id;
      std::vector<size_t> indices;
    };
    std::map<std::string, Group> groups;
    bool any_pending = false;
    bool need_refresh = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!pending[i]) continue;
      any_pending = true;
      std::string shard = router_.Route(keys[i]);
      Status why;
      std::string node_id;
      bool fast_fail = false;
      server::Client* conn =
          shard.empty()
              ? nullptr
              : MasterConnLocked(shard, &why, &node_id, &fast_fail);
      if (conn == nullptr) {
        (*statuses)[i] = shard.empty()
                             ? Status::Unavailable("no shards in the ring")
                             : why;
        if (fast_fail) {
          // Breaker open: this key fails fast and finally; the other
          // shards' keys in the batch proceed untouched.
          pending[i] = false;
          continue;
        }
        if (!node_id.empty()) ReportFailureLocked(node_id);
        need_refresh = true;
        continue;
      }
      Group& g = groups[node_id];
      g.conn = conn;
      g.node_id = node_id;
      g.indices.push_back(i);
    }
    if (!any_pending) return;

    // Scatter: ship every sub-batch before reading any reply.
    for (auto& [id, g] : groups) {
      std::vector<Slice> args;
      args.reserve(g.indices.size() + 1);
      args.emplace_back("MGET");
      for (size_t i : g.indices) args.push_back(keys[i]);
      g.conn->Append(args);
      Status s = g.conn->Flush();
      if (!s.ok()) {
        for (size_t i : g.indices) (*statuses)[i] = s;
        BreakerLocked(g.node_id)->RecordFailure();
        ReportFailureLocked(g.node_id);
        g.conn = nullptr;
        need_refresh = true;
        continue;
      }
      ++stats_.node_batches[g.node_id];
    }

    // Gather.
    for (auto& [id, g] : groups) {
      if (g.conn == nullptr) continue;  // Flush already failed.
      server::RespValue reply;
      const uint64_t wait_start = Clock::Real()->NowMicros();
      Status s = g.conn->ReadReply(&reply);
      stats_.node_fanout_micros[g.node_id] +=
          Clock::Real()->NowMicros() - wait_start;
      if (!s.ok()) {
        for (size_t i : g.indices) (*statuses)[i] = s;
        BreakerLocked(g.node_id)->RecordFailure();
        ReportFailureLocked(g.node_id);
        need_refresh = true;
        continue;
      }
      BreakerLocked(g.node_id)->RecordSuccess();
      if (IsStaleRouteReply(reply)) {
        ++stats_.moved_redirects;
        for (size_t i : g.indices) {
          (*statuses)[i] = Status::Unavailable(reply.str);
        }
        need_refresh = true;
        continue;
      }
      if (reply.type != server::RespValue::Type::kArray ||
          reply.elements.size() != g.indices.size()) {
        Status bad = reply.IsError() ? Status::InvalidArgument(reply.str)
                                     : Status::IOError("malformed MGET reply");
        for (size_t i : g.indices) {
          (*statuses)[i] = bad;
          pending[i] = false;  // Final: a malformed reply will not improve.
        }
        continue;
      }
      for (size_t k = 0; k < g.indices.size(); ++k) {
        size_t i = g.indices[k];
        server::RespValue& e = reply.elements[k];
        if (e.type == server::RespValue::Type::kBulkString) {
          (*values)[i] = std::move(e.str);
          (*statuses)[i] = Status::OK();
        } else {
          (*statuses)[i] = Status::NotFound("");
        }
        pending[i] = false;
      }
    }

    if (!need_refresh) return;
    RefreshRoutingLocked();
  }
}

void NetClusterClient::MultiSet(const std::vector<Slice>& keys,
                                const std::vector<Slice>& values,
                                std::vector<Status>* statuses) {
  statuses->assign(keys.size(), Status::Unavailable("not attempted"));
  if (keys.empty()) return;
  metrics::ScopedPerfStage fanout_stage(metrics::PerfContext::kNetFanout);
  common::MutexLock lock(&mu_);

  std::vector<bool> pending(keys.size(), true);
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    struct Group {
      server::Client* conn;
      std::string node_id;
      std::vector<size_t> indices;
    };
    std::map<std::string, Group> groups;
    bool any_pending = false;
    bool need_refresh = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!pending[i]) continue;
      any_pending = true;
      std::string shard = router_.Route(keys[i]);
      Status why;
      std::string node_id;
      bool fast_fail = false;
      server::Client* conn =
          shard.empty()
              ? nullptr
              : MasterConnLocked(shard, &why, &node_id, &fast_fail);
      if (conn == nullptr) {
        (*statuses)[i] = shard.empty()
                             ? Status::Unavailable("no shards in the ring")
                             : why;
        if (fast_fail) {
          // Breaker open: this key fails fast and finally; the other
          // shards' keys in the batch proceed untouched.
          pending[i] = false;
          continue;
        }
        if (!node_id.empty()) ReportFailureLocked(node_id);
        need_refresh = true;
        continue;
      }
      Group& g = groups[node_id];
      g.conn = conn;
      g.node_id = node_id;
      g.indices.push_back(i);
    }
    if (!any_pending) return;

    for (auto& [id, g] : groups) {
      std::vector<Slice> args;
      args.reserve(g.indices.size() * 2 + 1);
      args.emplace_back("MSET");
      for (size_t i : g.indices) {
        args.push_back(keys[i]);
        args.push_back(values[i]);
      }
      g.conn->Append(args);
      Status s = g.conn->Flush();
      if (!s.ok()) {
        for (size_t i : g.indices) (*statuses)[i] = s;
        BreakerLocked(g.node_id)->RecordFailure();
        ReportFailureLocked(g.node_id);
        g.conn = nullptr;
        need_refresh = true;
        continue;
      }
      ++stats_.node_batches[g.node_id];
    }

    for (auto& [id, g] : groups) {
      if (g.conn == nullptr) continue;
      server::RespValue reply;
      const uint64_t wait_start = Clock::Real()->NowMicros();
      Status s = g.conn->ReadReply(&reply);
      stats_.node_fanout_micros[g.node_id] +=
          Clock::Real()->NowMicros() - wait_start;
      if (!s.ok()) {
        for (size_t i : g.indices) (*statuses)[i] = s;
        BreakerLocked(g.node_id)->RecordFailure();
        ReportFailureLocked(g.node_id);
        need_refresh = true;
        continue;
      }
      BreakerLocked(g.node_id)->RecordSuccess();
      if (IsStaleRouteReply(reply)) {
        ++stats_.moved_redirects;
        for (size_t i : g.indices) {
          (*statuses)[i] = Status::Unavailable(reply.str);
        }
        need_refresh = true;
        continue;
      }
      Status outcome = reply.IsError() ? Status::InvalidArgument(reply.str)
                                       : Status::OK();
      for (size_t i : g.indices) {
        (*statuses)[i] = outcome;
        pending[i] = false;
      }
    }

    if (!need_refresh) return;
    RefreshRoutingLocked();
  }
}

UsageStats NetClusterClient::GetUsage() const {
  UsageStats total;
  common::MutexLock lock(&mu_);
  auto* self = const_cast<NetClusterClient*>(this);
  for (const NodeRecord& node : routing_.nodes) {
    if (node.is_replica || !node.healthy) continue;
    Status why;
    std::string node_id;
    server::Client* conn = self->MasterConnLocked(node.shard, &why, &node_id);
    if (conn == nullptr) continue;
    server::RespValue reply;
    if (!conn->Call({"INFO"}, &reply).ok() ||
        reply.type != server::RespValue::Type::kBulkString) {
      continue;
    }
    total.memory_bytes += ParseInfoField(reply.str, "bytes_cached:");
    total.pmem_bytes += ParseInfoField(reply.str, "pmem_bytes:");
    total.keys += ParseInfoField(reply.str, "keys_cached:");
  }
  return total;
}

Status NetClusterClient::WaitIdle() {
  common::MutexLock lock(&mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    server::RespValue reply;
    if (it->second->connected() &&
        it->second->Call({"PING"}, &reply).ok()) {
      ++it;
    } else {
      it = conns_.erase(it);
    }
  }
  return Status::OK();
}

uint64_t NetClusterClient::epoch() const {
  common::MutexLock lock(&mu_);
  return routing_.epoch;
}

NetClusterClient::Stats NetClusterClient::GetStats() const {
  common::MutexLock lock(&mu_);
  Stats stats = stats_;
  for (const auto& [id, breaker] : breakers_) {
    stats.breaker_trips += breaker->trips();
    stats.breaker_fast_fails += breaker->fast_fails();
    stats.breaker_states[id] = breaker->state_name();
  }
  return stats;
}

}  // namespace tierbase::cluster_net
