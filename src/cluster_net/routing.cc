#include "cluster_net/routing.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tierbase::cluster_net {

std::string WireRouting::Serialize() const {
  std::string out;
  char header[64];
  snprintf(header, sizeof(header), "epoch:%llu vnodes:%d\n",
           static_cast<unsigned long long>(epoch), virtual_nodes);
  out += header;
  for (const NodeRecord& n : nodes) {
    out += n.id;
    out += ' ';
    out += n.endpoint();
    out += ' ';
    out += n.is_replica ? "replica" : "master";
    out += ' ';
    out += n.shard;
    out += ' ';
    out += n.healthy ? "up" : "down";
    out += '\n';
  }
  return out;
}

Status WireRouting::Parse(const std::string& text, WireRouting* out) {
  *out = WireRouting();
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty routing payload");
  }
  unsigned long long epoch = 0;
  int vnodes = 0;
  if (sscanf(line.c_str(), "epoch:%llu vnodes:%d", &epoch, &vnodes) != 2 ||
      vnodes <= 0) {
    return Status::Corruption("bad routing header: " + line);
  }
  out->epoch = epoch;
  out->virtual_nodes = vnodes;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    NodeRecord rec;
    std::string endpoint, role, health;
    if (!(fields >> rec.id >> endpoint >> role >> rec.shard >> health)) {
      return Status::Corruption("bad routing line: " + line);
    }
    size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::Corruption("bad endpoint: " + endpoint);
    }
    rec.host = endpoint.substr(0, colon);
    unsigned long port = strtoul(endpoint.c_str() + colon + 1, nullptr, 10);
    if (port == 0 || port > 65535) {
      return Status::Corruption("bad port in endpoint: " + endpoint);
    }
    rec.port = static_cast<uint16_t>(port);
    if (role == "replica") {
      rec.is_replica = true;
    } else if (role != "master") {
      return Status::Corruption("bad role: " + role);
    }
    if (health == "down") {
      rec.healthy = false;
    } else if (health != "up") {
      return Status::Corruption("bad health: " + health);
    }
    out->nodes.push_back(std::move(rec));
  }
  return Status::OK();
}

cluster::Router WireRouting::BuildRouter() const {
  cluster::Router router(virtual_nodes);
  for (const NodeRecord& n : nodes) {
    if (!n.is_replica && n.healthy) router.AddInstance(n.shard);
  }
  return router;
}

const NodeRecord* WireRouting::FindNode(const std::string& id) const {
  for (const NodeRecord& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const NodeRecord* WireRouting::MasterOfShard(const std::string& shard) const {
  for (const NodeRecord& n : nodes) {
    if (!n.is_replica && n.healthy && n.shard == shard) return &n;
  }
  return nullptr;
}

const NodeRecord* WireRouting::ReplicaOfShard(const std::string& shard) const {
  for (const NodeRecord& n : nodes) {
    if (n.is_replica && n.healthy && n.shard == shard) return &n;
  }
  return nullptr;
}

}  // namespace tierbase::cluster_net
