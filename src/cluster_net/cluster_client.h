// NetClusterClient: the smart data-path client of the networked cluster
// (§3 client tier). It pulls a routing snapshot from the coordinator,
// routes each key on the shared consistent-hash ring, and keeps one
// pipelined connection per data node.
//
// Batched ops are scatter–gathered: MultiGet/MultiSet split the batch into
// per-node sub-batches, ship them as MGET/MSET on every node's connection
// before reading any reply (so the sub-batches execute concurrently server
// side), then stitch the replies back into caller order.
//
// Staleness and failure handling follow the paper's pull-based refresh
// protocol: on -MOVED (a node with a newer epoch rejected the key), on
// connection failure, or on Unavailable, the client reports the failure to
// the coordinator (CLUSTER FAIL), refreshes its snapshot, and retries —
// which is how a master kill converges to the promoted replica without any
// client restart.
//
// Thread model: one internal mutex serializes operations (connections are
// plain blocking sockets). Use one client per runner thread to measure
// parallel throughput, exactly like RemoteEngine.

#ifndef TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_
#define TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster_net/routing.h"
#include "common/kv_engine.h"
#include "common/mutex.h"
#include "server/client.h"

namespace tierbase::cluster_net {

class NetClusterClient : public KvEngine {
 public:
  struct Options {
    /// Coordinator endpoints ("host:port"), tried in order.
    std::vector<std::string> coordinators;
    /// Routing refreshes (and retries) per operation before giving up.
    int max_retries = 3;
  };

  static Result<std::unique_ptr<NetClusterClient>> Connect(Options options);

  std::string name() const override { return "cluster-client-net"; }

  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  void MultiGet(const std::vector<Slice>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  void MultiSet(const std::vector<Slice>& keys,
                const std::vector<Slice>& values,
                std::vector<Status>* statuses) override;
  /// Aggregated footprint across all healthy masters (INFO per node).
  UsageStats GetUsage() const override;
  /// PING round trip on every cached connection.
  Status WaitIdle() override;

  /// Forwards an arbitrary single-key command to the key's owner with the
  /// same refresh/retry loop (the proxy relays rich-type commands this
  /// way). `key` must be one of `args`.
  Status Forward(const std::vector<Slice>& args, const Slice& key,
                 server::RespValue* reply);

  uint64_t epoch() const;

  struct Stats {
    uint64_t route_refreshes = 0;
    uint64_t moved_redirects = 0;
    uint64_t failures_reported = 0;
    /// Scatter–gather sub-batches shipped, per node id.
    std::map<std::string, uint64_t> node_batches;
  };
  Stats GetStats() const;

 private:
  explicit NetClusterClient(Options options)
      : options_(std::move(options)) {}

  // All Locked methods require mu_.
  Status RefreshRoutingLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void ReportFailureLocked(const std::string& node_id)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Connection to the healthy master of `shard` (cached; reconnects on
  /// demand). Null with *why set when the shard has no reachable master.
  server::Client* MasterConnLocked(const std::string& shard, Status* why,
                                   std::string* node_id)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Status CoordinatorCallLocked(const std::vector<Slice>& args,
                               server::RespValue* reply)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  template <typename Op>
  Status WithRetriesLocked(const Slice& key, Op op)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  Options options_;
  mutable common::Mutex mu_;
  WireRouting routing_ GUARDED_BY(mu_);
  cluster::Router router_ GUARDED_BY(mu_){64};
  std::map<std::string, std::unique_ptr<server::Client>> conns_
      GUARDED_BY(mu_);  // By node.
  std::set<std::string> reported_ GUARDED_BY(mu_);  // Failure reports this
                                                    // snapshot.
  server::Client coordinator_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_
