// NetClusterClient: the smart data-path client of the networked cluster
// (§3 client tier). It pulls a routing snapshot from the coordinator,
// routes each key on the shared consistent-hash ring, and keeps one
// pipelined connection per data node.
//
// Batched ops are scatter–gathered: MultiGet/MultiSet split the batch into
// per-node sub-batches, ship them as MGET/MSET on every node's connection
// before reading any reply (so the sub-batches execute concurrently server
// side), then stitch the replies back into caller order.
//
// Staleness and failure handling follow the paper's pull-based refresh
// protocol: on -MOVED (a node with a newer epoch rejected the key), on
// connection failure, or on Unavailable, the client reports the failure to
// the coordinator (CLUSTER FAIL), refreshes its snapshot, and retries —
// which is how a master kill converges to the promoted replica without any
// client restart.
//
// Thread model: one internal mutex serializes operations (connections are
// plain blocking sockets). Use one client per runner thread to measure
// parallel throughput, exactly like RemoteEngine.

#ifndef TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_
#define TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster_net/routing.h"
#include "common/circuit_breaker.h"
#include "common/clock.h"
#include "common/kv_engine.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/transport.h"
#include "server/client.h"

namespace tierbase::cluster_net {

class NetClusterClient : public KvEngine {
 public:
  struct Options {
    /// Coordinator endpoints ("host:port"), tried in order.
    std::vector<std::string> coordinators;
    /// Routing refreshes (and retries) per operation before giving up.
    int max_retries = 3;
    /// Backoff between failed attempts of one operation. Short by design:
    /// a data-path client waits milliseconds, not the replica link's
    /// seconds.
    common::RetryPolicy retry = [] {
      common::RetryPolicy p;
      p.initial_backoff_micros = 1'000;
      p.max_backoff_micros = 100'000;
      return p;
    }();
    /// Per-node circuit breaker: after `failure_threshold` consecutive
    /// connect/I-O failures the node's keys fail fast with Unavailable
    /// ("circuit open") instead of re-dialing a dead endpoint on every op.
    common::CircuitBreakerOptions breaker;
    /// Connect/IO budget for coordinator control-plane calls.
    uint64_t coordinator_timeout_micros = 2'000'000;
    /// Connect/IO budget per data-node operation. Bounded by default: a
    /// black-holed node (partitioned, SIGSTOPped) must turn into a
    /// TimedOut → failure report → failover, not a client hung forever.
    /// 0 = unbounded blocking I/O.
    uint64_t node_timeout_micros = 5'000'000;
    /// Injectable time for backoffs and breakers; nullptr = wall clock.
    const Clock* clock = nullptr;
    /// Dial through this transport instead of the process default.
    common::Transport* transport = nullptr;
    /// Seed for backoff jitter (deterministic in tests).
    uint64_t seed = 1;
  };

  static Result<std::unique_ptr<NetClusterClient>> Connect(Options options);

  std::string name() const override { return "cluster-client-net"; }

  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  void MultiGet(const std::vector<Slice>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  void MultiSet(const std::vector<Slice>& keys,
                const std::vector<Slice>& values,
                std::vector<Status>* statuses) override;
  /// Aggregated footprint across all healthy masters (INFO per node).
  UsageStats GetUsage() const override;
  /// PING round trip on every cached connection.
  Status WaitIdle() override;

  /// Forwards an arbitrary single-key command to the key's owner with the
  /// same refresh/retry loop (the proxy relays rich-type commands this
  /// way). `key` must be one of `args`.
  Status Forward(const std::vector<Slice>& args, const Slice& key,
                 server::RespValue* reply);

  uint64_t epoch() const;

  struct Stats {
    uint64_t route_refreshes = 0;
    uint64_t moved_redirects = 0;
    uint64_t failures_reported = 0;
    /// Backoff sleeps taken between failed attempts.
    uint64_t backoff_waits = 0;
    /// Aggregated over all per-node breakers.
    uint64_t breaker_trips = 0;
    uint64_t breaker_fast_fails = 0;
    /// "closed" | "open" | "half_open", per node id.
    std::map<std::string, std::string> breaker_states;
    /// Scatter–gather sub-batches shipped, per node id.
    std::map<std::string, uint64_t> node_batches;
    /// Cumulative micros spent waiting on each node's scatter–gather
    /// reply, per node id. fanout_micros / batches is the node's mean
    /// sub-batch latency — the slowest node bounds the whole gather, so a
    /// skewed entry here names the straggler.
    std::map<std::string, uint64_t> node_fanout_micros;
  };
  Stats GetStats() const;

 private:
  explicit NetClusterClient(Options options)
      : options_(std::move(options)) {}

  // All Locked methods require mu_.
  Status RefreshRoutingLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void ReportFailureLocked(const std::string& node_id)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Connection to the healthy master of `shard` (cached; reconnects on
  /// demand). Null with *why set when the shard has no reachable master.
  /// *fast_fail (if non-null) is set when the node's circuit breaker
  /// rejected the attempt without dialing — the caller should give up on
  /// the key immediately instead of reporting/refreshing.
  server::Client* MasterConnLocked(const std::string& shard, Status* why,
                                   std::string* node_id,
                                   bool* fast_fail = nullptr)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  common::CircuitBreaker* BreakerLocked(const std::string& node_id)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// One jittered backoff sleep (counted in stats).
  void BackoffLocked(common::RetryState* retry)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  Status CoordinatorCallLocked(const std::vector<Slice>& args,
                               server::RespValue* reply)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  template <typename Op>
  Status WithRetriesLocked(const Slice& key, Op op)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  Options options_;
  mutable common::Mutex mu_;
  WireRouting routing_ GUARDED_BY(mu_);
  cluster::Router router_ GUARDED_BY(mu_){64};
  std::map<std::string, std::unique_ptr<server::Client>> conns_
      GUARDED_BY(mu_);  // By node.
  std::set<std::string> reported_ GUARDED_BY(mu_);  // Failure reports this
                                                    // snapshot.
  // Breakers persist across routing refreshes (keyed by node id): a
  // refresh must not grant a dead node a fresh set of failures.
  std::map<std::string, std::unique_ptr<common::CircuitBreaker>> breakers_
      GUARDED_BY(mu_);
  server::Client coordinator_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_CLUSTER_CLIENT_H_
