// CoordinatorService: the networked control plane (§3 "coordinator
// cluster"). It owns the authoritative routing table — shards on a
// consistent-hash ring, each served by a master and optionally a replica —
// and serves it over RESP:
//
//   CLUSTER ADDNODE <id> <host> <port> [REPLICAOF <shard>]
//   CLUSTER NODES | CLUSTER EPOCH | CLUSTER ROUTE <key>
//   CLUSTER FAIL <id> | CLUSTER RECOVER <id>
//
// Every membership change bumps the epoch and pushes the new snapshot to
// all healthy data nodes (CLUSTER SETSLOTS), so nodes answer -MOVED with
// fresh routes while clients pull refreshes lazily. Registering a replica
// wires replication automatically: the coordinator tells the replica
// REPLICAOF <master host> <master port>. When a master is reported failed,
// the coordinator promotes the shard's healthy replica (REPLICAOF NO ONE),
// repoints the shard at it, and bumps the epoch — the failover flow of
// §6.4, observable from outside via CLUSTER EPOCH / INFO role.
//
// An optional probe thread PINGs every node and reports failures itself;
// clients also report failures they observe (CLUSTER FAIL), so failover
// works with probing disabled (the deterministic test configuration).

#ifndef TIERBASE_CLUSTER_NET_COORDINATOR_SERVICE_H_
#define TIERBASE_CLUSTER_NET_COORDINATOR_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster_net/routing.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/transport.h"
#include "server/event_loop.h"

namespace tierbase::cluster_net {

class CoordinatorService {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral.
    int virtual_nodes = 64;
    /// PING every node this often and fail unresponsive ones; 0 = off.
    uint64_t probe_interval_micros = 0;
    /// Per-call I/O budget for control-plane RPCs to data nodes (probes,
    /// SETSLOTS pushes, REPLICAOF wiring). A hung node costs the control
    /// plane at most this, not a kernel TCP timeout.
    uint64_t node_io_timeout_micros = 2'000'000;
    /// Dial data nodes through this transport instead of the process
    /// default (tests inject partitions here).
    common::Transport* transport = nullptr;
  };

  explicit CoordinatorService(Options options);
  ~CoordinatorService();

  CoordinatorService(const CoordinatorService&) = delete;
  CoordinatorService& operator=(const CoordinatorService&) = delete;

  Status Start();
  void Stop();
  /// Async-signal-safe half of Stop(): ends the event loop; the caller's
  /// Wait()/Stop() then performs the joins.
  void RequestStop() {
    if (loop_ != nullptr) loop_->Stop();
  }
  /// Blocks until the control loop exits (SHUTDOWN or Stop()).
  void Wait();
  uint16_t port() const { return loop_ == nullptr ? 0 : loop_->port(); }

  // In-process API (the RESP commands call straight into these).
  Status AddNode(const std::string& id, const std::string& host,
                 uint16_t port, const std::string& replica_of_shard);
  Status MarkFailed(const std::string& id);
  Status Recover(const std::string& id);
  uint64_t epoch() const;
  WireRouting Routing() const;

  uint64_t failovers() const { return failovers_.load(); }
  uint64_t probes_sent() const { return probes_sent_.load(); }
  uint64_t probe_failures() const { return probe_failures_.load(); }
  /// Nodes the prober (not a client report) marked failed.
  uint64_t probe_marked_failed() const { return probe_marked_failed_.load(); }

  /// The coordinator's instrument registry (INFO/METRICS source).
  metrics::MetricsRegistry* registry() { return &registry_; }

 private:
  void Execute(const std::vector<server::RespCommand>& cmds, std::string* out,
               bool* close_connection, bool* shutdown_server);
  /// Registers the coordinator's instruments. Called once from the ctor.
  void RegisterInstruments();
  void ExecuteCluster(const server::RespCommand& cmd, std::string* out);
  /// Best-effort CLUSTER SETSLOTS push to every healthy node.
  void PushRouting();
  /// Best-effort one-shot command to a node (REPLICAOF wiring, probes),
  /// bounded by options_.node_io_timeout_micros.
  Status CallNode(const NodeRecord& node, const std::vector<Slice>& args,
                  server::RespValue* reply) const;
  void ProbeLoop();

  Options options_;
  mutable common::Mutex mu_;
  WireRouting routing_ GUARDED_BY(mu_);

  std::unique_ptr<server::EventLoop> loop_;
  std::thread loop_thread_;
  std::thread probe_thread_;
  std::atomic<bool> stop_probe_{false};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> probes_sent_{0};
  std::atomic<uint64_t> probe_failures_{0};
  std::atomic<uint64_t> probe_marked_failed_{0};
  // Start/Stop lifecycle flag; those calls must come from one thread (the
  // owner), so it needs no lock.
  bool running_ = false;

  metrics::MetricsRegistry registry_;
};

}  // namespace tierbase::cluster_net

#endif  // TIERBASE_CLUSTER_NET_COORDINATOR_SERVICE_H_
