#include "analytics/reuse_tracker.h"

#include <algorithm>
#include <cmath>

namespace tierbase {
namespace analytics {

namespace {
constexpr uint64_t kInitialCap = 4096;       // Bits; multiple of 512.
constexpr uint64_t kInitialSlots = 1024;     // Power of two.
constexpr uint64_t kBitsPerBlock = 512;
}  // namespace

double MrcSnapshot::MissRatioAtEntries(uint64_t entries) const {
  // Greatest point with points[i].entries <= entries.
  const MrcPoint probe{entries, 0.0};
  auto it = std::upper_bound(points.begin(), points.end(), probe,
                             [](const MrcPoint& a, const MrcPoint& b) {
                               return a.entries < b.entries;
                             });
  if (it == points.begin()) return 1.0;
  return std::prev(it)->miss_ratio;
}

uint64_t MrcSnapshot::KneeEntries() const {
  if (points.size() < 3) return 0;
  const double x0 = std::log(static_cast<double>(points.front().entries));
  const double x1 = std::log(static_cast<double>(points.back().entries));
  const double y0 = points.front().miss_ratio;
  const double y1 = points.back().miss_ratio;
  if (x1 <= x0 || y0 <= y1) return 0;
  uint64_t knee = 0;
  double best = 0;
  for (const MrcPoint& p : points) {
    const double x = (std::log(static_cast<double>(p.entries)) - x0) /
                     (x1 - x0);
    const double y = (p.miss_ratio - y1) / (y0 - y1);
    const double below_chord = (1.0 - x) - y;
    if (below_chord > best) {
      best = below_chord;
      knee = p.entries;
    }
  }
  return knee;
}

uint32_t ReuseTracker::BucketFor(uint64_t distance) {
  if (distance < kExactLimit) return static_cast<uint32_t>(distance);
  const int e = 63 - __builtin_clzll(distance);  // >= 7.
  const uint32_t sub = static_cast<uint32_t>(
      (distance >> (e - kSubBits)) & ((1u << kSubBits) - 1));
  return kExactLimit + static_cast<uint32_t>(e - 7) * (1u << kSubBits) + sub;
}

uint64_t ReuseTracker::BucketUpperEdge(uint32_t bucket) {
  if (bucket < kExactLimit) return bucket;
  const uint32_t rel = bucket - kExactLimit;
  const int e = 7 + static_cast<int>(rel >> kSubBits);
  const uint64_t sub = rel & ((1u << kSubBits) - 1);
  return (1ull << e) + ((sub + 1) << (e - kSubBits)) - 1;
}

ReuseTracker::ReuseTracker(uint64_t sample_rate)
    : sample_rate_(std::max<uint64_t>(sample_rate, 1)),
      threshold_(UINT64_MAX / sample_rate_),
      dist_buckets_(kNumBuckets, 0) {
  common::MutexLock lock(&mu_);
  slots_.assign(kInitialSlots, Slot{});
  slot_shift_ = 64 - __builtin_ctzll(kInitialSlots);
  ResetRingLocked(kInitialCap);
}

void ReuseTracker::ResetRingLocked(uint64_t cap) {
  cap_ = cap;
  bits_.assign(cap_ / 64, 0);
  blk_.assign(cap_ / kBitsPerBlock, 0);
  next_pos_ = 0;
}

ReuseTracker::Slot* ReuseTracker::FindSlotLocked(uint64_t hash) {
  const size_t mask = slots_.size() - 1;
  size_t i = SlotIndex(hash);
  while (slots_[i].pos != kEmptyPos && slots_[i].hash != hash) {
    i = (i + 1) & mask;
  }
  return &slots_[i];
}

void ReuseTracker::GrowSlotsLocked() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  --slot_shift_;
  const size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.pos == kEmptyPos) continue;
    size_t i = SlotIndex(s.hash);
    while (slots_[i].pos != kEmptyPos) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

void ReuseTracker::SetBitLocked(uint64_t pos) {
  bits_[pos >> 6] |= 1ull << (pos & 63);
  ++blk_[pos / kBitsPerBlock];
}

void ReuseTracker::ClearBitLocked(uint64_t pos) {
  bits_[pos >> 6] &= ~(1ull << (pos & 63));
  --blk_[pos / kBitsPerBlock];
}

uint64_t ReuseTracker::LiveAboveLocked(uint64_t pos) const {
  // Bits strictly above `pos`: the tail of pos's word, the rest of pos's
  // 512-bit block, then whole-block popcounts — a short scan of small,
  // hot arrays instead of a tree walk.
  const uint64_t word = pos >> 6;
  const uint64_t block = pos / kBitsPerBlock;
  uint64_t count =
      (pos & 63) == 63 ? 0 : __builtin_popcountll(bits_[word] >> (pos & 63) >> 1);
  const uint64_t block_end = (block + 1) * (kBitsPerBlock / 64);
  for (uint64_t w = word + 1; w < block_end; ++w) {
    count += __builtin_popcountll(bits_[w]);
  }
  for (uint64_t b = block + 1; b < blk_.size(); ++b) count += blk_[b];
  return count;
}

void ReuseTracker::CompactLocked() {
  // Renumber live keys 0..n-1 in access order; grow the ring while the
  // live set fills more than half of it.
  std::vector<std::pair<uint64_t, Slot*>> order;  // (pos, slot)
  order.reserve(live_);
  for (Slot& s : slots_) {
    if (s.pos != kEmptyPos) order.emplace_back(s.pos, &s);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  uint64_t cap = cap_;
  while (order.size() * 2 > cap) cap *= 2;
  ResetRingLocked(cap);
  for (uint64_t i = 0; i < order.size(); ++i) {
    order[i].second->pos = i;
    SetBitLocked(i);
  }
  next_pos_ = order.size();
}

void ReuseTracker::RecordOneLocked(uint64_t hash) {
  ++sampled_accesses_;
  if (next_pos_ == cap_) CompactLocked();
  Slot* s = FindSlotLocked(hash);
  if (s->pos == kEmptyPos) {
    ++cold_misses_;
    s->hash = hash;
    s->pos = next_pos_;
    ++live_;
    // Grow at ~0.7 load: prefetched batch probes tolerate slightly longer
    // runs, and the table is serving-path cache pollution.
    if (live_ * 10 > slots_.size() * 7) GrowSlotsLocked();
  } else {
    // Distinct sampled keys touched since this key's previous access =
    // live keys positioned after it.
    ++dist_buckets_[BucketFor(LiveAboveLocked(s->pos))];
    ClearBitLocked(s->pos);
    s->pos = next_pos_;
  }
  SetBitLocked(next_pos_);
  ++next_pos_;
}

void ReuseTracker::RecordBatch(const uint64_t* hashes, size_t n) {
  constexpr size_t kAhead = 8;  // Overlap independent probe misses.
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      __builtin_prefetch(&slots_[SlotIndex(hashes[i + kAhead])]);
    }
    RecordOneLocked(hashes[i]);
  }
}

MrcSnapshot ReuseTracker::Snapshot(uint64_t scale,
                                   uint64_t total_accesses) const {
  std::vector<uint64_t> buckets(kNumBuckets, 0);
  uint64_t sampled = 0, cold = 0, keys = 0;
  Accumulate(&buckets, &sampled, &cold, &keys);
  return Render(buckets, sampled, cold, keys, total_accesses, sample_rate_,
                scale);
}

void ReuseTracker::Accumulate(std::vector<uint64_t>* buckets,
                              uint64_t* sampled_accesses, uint64_t* cold_misses,
                              uint64_t* sampled_keys) const {
  common::MutexLock lock(&mu_);
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    (*buckets)[b] += dist_buckets_[b];
  }
  *sampled_accesses += sampled_accesses_;
  *cold_misses += cold_misses_;
  *sampled_keys += live_;
}

MrcSnapshot ReuseTracker::Render(const std::vector<uint64_t>& buckets,
                                 uint64_t sampled_accesses,
                                 uint64_t cold_misses, uint64_t sampled_keys,
                                 uint64_t total_accesses, uint64_t sample_rate,
                                 uint64_t scale) {
  MrcSnapshot s;
  s.sample_rate = sample_rate;
  s.scale = scale;
  s.sampled_accesses = sampled_accesses;
  s.sampled_cold_misses = cold_misses;
  s.sampled_keys = sampled_keys;
  s.total_accesses = total_accesses;
  if (sampled_accesses == 0) return s;
  // SHARDS-adj: with skewed popularity the sampled key subset can carry a
  // disproportionate share of the access stream (a single hot key in or out
  // of the sample swings the hit mass). Fold the difference between the
  // expected sample count (total / R) and the actual one into the
  // smallest-distance buckets — excess sampled accesses are overwhelmingly
  // short-distance hot-key hits — and normalise by the expected count. At
  // R = 1 (or when the caller never counted totals) this is a no-op.
  const double expected =
      total_accesses > 0
          ? static_cast<double>(total_accesses) / static_cast<double>(sample_rate)
          : static_cast<double>(sampled_accesses);
  std::vector<double> hits(buckets.begin(), buckets.end());
  double diff = expected - static_cast<double>(sampled_accesses);
  if (diff > 0) {
    hits[0] += diff;
  } else if (diff < 0) {
    double remove = -diff;
    for (uint32_t b = 0; b < kNumBuckets && remove > 0; ++b) {
      const double take = std::min(hits[b], remove);
      hits[b] -= take;
      remove -= take;
    }
  }
  const double total = expected > 0 ? expected
                                    : static_cast<double>(sampled_accesses);
  double cum_hits = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    if (hits[b] <= 0) continue;
    cum_hits += hits[b];
    MrcPoint p;
    // Every distance in bucket b fits in a cache of edge+1 sampled keys.
    p.entries = (BucketUpperEdge(b) + 1) * scale;
    p.miss_ratio = std::max(0.0, 1.0 - cum_hits / total);
    s.points.push_back(p);
  }
  return s;
}

void ReuseTracker::Reset() {
  common::MutexLock lock(&mu_);
  slots_.assign(kInitialSlots, Slot{});
  slot_shift_ = 64 - __builtin_ctzll(kInitialSlots);
  live_ = 0;
  ResetRingLocked(kInitialCap);
  std::fill(dist_buckets_.begin(), dist_buckets_.end(), 0);
  cold_misses_ = 0;
  sampled_accesses_ = 0;
}

uint64_t ReuseTracker::sampled_accesses() const {
  common::MutexLock lock(&mu_);
  return sampled_accesses_;
}

uint64_t ReuseTracker::sampled_keys() const {
  common::MutexLock lock(&mu_);
  return live_;
}

}  // namespace analytics
}  // namespace tierbase
