#include "analytics/sketches.h"

#include <algorithm>

namespace tierbase {
namespace analytics {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth)
    : width_(RoundUpPow2(std::max<uint32_t>(width, 16))),
      depth_(std::min(std::max<uint32_t>(depth, 1), kBlockCounters)),
      blocks_(RoundUpPow2(std::max<uint32_t>(
          width_ * depth_ / kBlockCounters, 1))),
      counters_(new std::atomic<uint32_t>[static_cast<size_t>(blocks_) *
                                          kBlockCounters]()) {}

uint32_t CountMinSketch::AddAndEstimate(uint64_t hash, uint32_t inc) {
  uint32_t est = UINT32_MAX;
  for (uint32_t row = 0; row < depth_; ++row) {
    std::atomic<uint32_t>& c = counters_[Index(row, hash)];
    // Saturate instead of wrapping; decay brings counters back down.
    uint32_t v = c.load(std::memory_order_relaxed);
    if (v < UINT32_MAX - inc) {
      v = c.fetch_add(inc, std::memory_order_relaxed) + inc;
    } else {
      c.store(UINT32_MAX, std::memory_order_relaxed);
      v = UINT32_MAX;
    }
    est = std::min(est, v);
  }
  return est;
}

uint32_t CountMinSketch::Estimate(uint64_t hash) const {
  uint32_t est = UINT32_MAX;
  for (uint32_t row = 0; row < depth_; ++row) {
    est = std::min(est,
                   counters_[Index(row, hash)].load(std::memory_order_relaxed));
  }
  return est;
}

void CountMinSketch::Halve() {
  const size_t n = static_cast<size_t>(blocks_) * kBlockCounters;
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = counters_[i].load(std::memory_order_relaxed);
    counters_[i].store(v >> 1, std::memory_order_relaxed);
  }
}

void CountMinSketch::Reset() {
  const size_t n = static_cast<size_t>(blocks_) * kBlockCounters;
  for (size_t i = 0; i < n; ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SpaceSaving::PublishMinLocked() {
  if (cells_.size() < capacity_) {
    min_count_.store(0, std::memory_order_relaxed);
    return;
  }
  uint64_t min = UINT64_MAX;
  for (const auto& [hash, cell] : cells_) min = std::min(min, cell.count);
  min_count_.store(min, std::memory_order_relaxed);
}

void SpaceSaving::Offer(const Slice& key, uint64_t hash, uint64_t inc,
                        uint64_t estimate) {
  common::MutexLock lock(&mu_);
  OfferLocked(key, hash, inc, estimate);
}

void SpaceSaving::OfferMany(const Candidate* candidates, size_t n) {
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < n; ++i) {
    OfferLocked(candidates[i].key, candidates[i].hash, candidates[i].inc,
                candidates[i].estimate);
  }
}

void SpaceSaving::OfferLocked(const Slice& key, uint64_t hash, uint64_t inc,
                              uint64_t estimate) {
  auto it = cells_.find(hash);
  if (it != cells_.end()) {
    const bool was_min = it->second.count == min_count();
    it->second.count += inc;
    // Only a minimum cell's growth can raise the published minimum.
    if (was_min) PublishMinLocked();
    return;
  }
  if (cells_.size() < capacity_) {
    Cell cell;
    cell.key.assign(key.data(), key.size());
    cell.count = inc;
    cells_.emplace(hash, std::move(cell));
    PublishMinLocked();
    return;
  }
  // Replace the minimum cell: the newcomer inherits min as its error
  // bound and starts at min + inc, capped by the sketch estimate (which
  // already overestimates the true count — no point exceeding it).
  auto min_it = cells_.begin();
  for (auto cit = cells_.begin(); cit != cells_.end(); ++cit) {
    if (cit->second.count < min_it->second.count) min_it = cit;
  }
  const uint64_t min = min_it->second.count;
  cells_.erase(min_it);
  Cell cell;
  cell.key.assign(key.data(), key.size());
  cell.count = std::max<uint64_t>(std::min(min + inc, estimate), inc);
  cell.error = std::min(min, cell.count - inc);
  cells_.emplace(hash, std::move(cell));
  PublishMinLocked();
}

std::vector<HotKey> SpaceSaving::TopK(size_t k) const {
  common::MutexLock lock(&mu_);
  std::vector<HotKey> out;
  out.reserve(cells_.size());
  for (const auto& [hash, cell] : cells_) {
    out.push_back(HotKey{cell.key, cell.count, cell.error});
  }
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSaving::Halve() {
  common::MutexLock lock(&mu_);
  for (auto it = cells_.begin(); it != cells_.end();) {
    it->second.count >>= 1;
    it->second.error >>= 1;
    if (it->second.count == 0) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
  PublishMinLocked();
}

void SpaceSaving::Reset() {
  common::MutexLock lock(&mu_);
  cells_.clear();
  min_count_.store(0, std::memory_order_relaxed);
}

HotKeyTracker::HotKeyTracker(size_t capacity, uint64_t decay_interval)
    : table_(capacity), decay_interval_(decay_interval) {}

void HotKeyTracker::RecordBatch(const Entry* entries, size_t n) {
  while (n > kChunk) {
    RecordChunk(entries, kChunk);
    entries += kChunk;
    n -= kChunk;
  }
  if (n > 0) RecordChunk(entries, n);
}

void HotKeyTracker::RecordChunk(const Entry* entries, size_t n) {
  // Dedup pass: aggregate occurrence counts per distinct key via a small
  // stack-resident open-addressing table (L1-hot, load factor <= 1/2), so
  // the sketch and table see each distinct key once with inc=count.
  struct Agg {
    uint64_t hash;
    uint32_t first;  // Index of the key's first entry (for its bytes).
    uint32_t count;
  };
  constexpr size_t kSlots = 2 * kChunk;  // Power of two.
  constexpr uint16_t kEmpty = UINT16_MAX;
  uint16_t slot_of[kSlots];
  Agg aggs[kChunk];
  std::fill(slot_of, slot_of + kSlots, kEmpty);
  size_t num_aggs = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = entries[i].hash;
    size_t s = h & (kSlots - 1);
    while (slot_of[s] != kEmpty && aggs[slot_of[s]].hash != h) {
      s = (s + 1) & (kSlots - 1);
    }
    if (slot_of[s] == kEmpty) {
      slot_of[s] = static_cast<uint16_t>(num_aggs);
      aggs[num_aggs++] = Agg{h, static_cast<uint32_t>(i), 1};
    } else {
      ++aggs[slot_of[s]].count;
    }
  }
  constexpr size_t kAhead = 8;  // Overlap independent sketch-block misses.
  std::vector<SpaceSaving::Candidate> admitted;
  admitted.reserve(num_aggs);
  for (size_t i = 0; i < num_aggs; ++i) {
    if (i + kAhead < num_aggs) sketch_.Prefetch(aggs[i + kAhead].hash);
    const uint32_t est = sketch_.AddAndEstimate(aggs[i].hash, aggs[i].count);
    // Admission filter: a key whose sketch (over-)estimate is below the
    // table minimum cannot displace anything, so skip the table. The
    // estimate can run below an *inflated* member count, which at worst
    // undercounts that member — ranking noise space-saving already has.
    if (est >= table_.min_count() || est == UINT32_MAX) {
      admitted.push_back(SpaceSaving::Candidate{entries[aggs[i].first].key,
                                                aggs[i].hash, est,
                                                aggs[i].count});
    }
  }
  if (!admitted.empty()) table_.OfferMany(admitted.data(), admitted.size());
  const uint64_t before = ops_.fetch_add(n, std::memory_order_relaxed);
  if (decay_interval_ != 0 &&
      before / decay_interval_ != (before + n) / decay_interval_) {
    sketch_.Halve();
    table_.Halve();
    decays_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HotKeyTracker::Reset() {
  sketch_.Reset();
  table_.Reset();
  ops_.store(0, std::memory_order_relaxed);
  decays_.store(0, std::memory_order_relaxed);
}

}  // namespace analytics
}  // namespace tierbase
