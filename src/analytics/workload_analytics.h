// WorkloadAnalytics: the serving-path workload observatory (ROADMAP item
// 1's sensor layer). Three always-on, sampled instruments:
//
//   * live miss-ratio curves — one SHARDS reuse-distance tracker per cache
//     shard (spatial sampling, default 1/64 of the keyspace); per-shard
//     curves merge into a whole-cache curve because hash sharding makes
//     each shard a uniform keyspace sample
//   * hot keys — count-min sketch + space-saving top-k with periodic
//     decay, fed by temporal sampling (default every 64th access per
//     thread) so the sketch sees hot keys at full fidelity scaled down
//   * keyspace shape — value-size / TTL / key-length histograms recorded
//     on the (temporally sampled) write path
//
// The facade is what the cache engine calls: RecordRead/RecordWrite take
// the key and its already-computed engine hash, reject unsampled traffic
// with a couple of arithmetic ops, and never run under a cache shard lock.
//
// Sampled traffic is *staged, not processed inline*: the serving thread
// appends the hash (and, for temporally-sampled accesses, the key bytes)
// to a per-shard staging buffer — a short uncontended lock plus a
// sequential, prefetch-friendly append. The Mattson and sketch work runs
// in batches when a buffer fills or a snapshot is taken, so its cache
// misses overlap (probes prefetched ahead) and its structures stay warm
// across the batch instead of being re-faulted one access at a time.
//
// Snapshots (Mrc, TopKeys) and Reset are safe against concurrent
// recording; snapshot paths drain all staged records first, so readings
// are exact once recording quiesces. A null facade pointer disables
// everything (--no-analytics).

#ifndef TIERBASE_ANALYTICS_WORKLOAD_ANALYTICS_H_
#define TIERBASE_ANALYTICS_WORKLOAD_ANALYTICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "analytics/reuse_tracker.h"
#include "analytics/sketches.h"
#include "common/metrics.h"
#include "common/slice.h"

namespace tierbase {
namespace analytics {

struct WorkloadAnalyticsOptions {
  bool enabled = true;
  /// SHARDS spatial rate R: ~1/R of the keyspace pays reuse-distance
  /// bookkeeping. 1 = exact (tests).
  uint32_t mrc_sample_rate = 64;
  /// Temporal rate N for the hot-key and write-shape paths: every Nth
  /// access per thread feeds the sketch. 1 = every access. The default
  /// keeps the serving-path overhead within the hot-path budget (see
  /// BENCH_hotpath.json notes_analytics) while a zipfian hot key still
  /// lands thousands of samples per decay window.
  uint32_t hotkey_sample_rate = 64;
  /// Space-saving table size (HOTKEYS k must be <= this).
  uint32_t hotkeys_capacity = 128;
  /// Sketch halvings happen every this many *sampled* hot-key records;
  /// 0 disables decay.
  uint64_t decay_interval = 1 << 18;
  /// Reuse-tracker count; 0 = match the cache engine's shard count
  /// (rounded up to a power of two, same as the engine).
  int shards = 0;
};

class WorkloadAnalytics {
 public:
  explicit WorkloadAnalytics(const WorkloadAnalyticsOptions& options);

  const WorkloadAnalyticsOptions& options() const { return options_; }
  int shards() const { return static_cast<int>(trackers_.size()); }

  // --- Hot path (called by the cache engine, outside shard locks).
  // RecordAccess is inline and branch-only for unsampled traffic: one
  // __thread counter bump, one multiply-compare against the spatial
  // threshold, two loads off this object. Everything heavier — reuse
  // tracker, sketch, the total-access flush — lives out of line in
  // RecordSampled and runs for ~1/R + 1/N of accesses. ---
  void RecordRead(const Slice& key, uint64_t hash) {
    RecordAccess(key, hash, /*value_bytes=*/0, /*ttl_micros=*/0,
                 /*is_write=*/false);
  }
  void RecordWrite(const Slice& key, uint64_t hash, size_t value_bytes,
                   uint64_t ttl_micros) {
    RecordAccess(key, hash, value_bytes, ttl_micros, /*is_write=*/true);
  }

  // --- Snapshots. ---
  /// Merged whole-cache curve (shard = -1) or one shard's curve. Merged
  /// entries are estimated whole-cache entries; per-shard entries are
  /// shard-local. An out-of-range shard yields an empty snapshot.
  MrcSnapshot Mrc(int shard = -1) const;

  /// Top `k` hot keys with counts scaled back by the temporal sampling
  /// rate (estimated true access counts in the current decay window).
  std::vector<HotKey> TopKeys(size_t k) const;

  /// Drops every tracker, sketch and shape histogram (ANALYTICS RESET).
  void Reset();

  // --- Registry feed (INFO "# Workload" / tierbase_workload_*). ---
  uint64_t sampled_accesses() const;
  uint64_t total_accesses() const {
    return total_accesses_.load(std::memory_order_relaxed);
  }
  uint64_t tracked_keys() const;
  uint64_t hot_records() const { return hot_.recorded(); }
  uint64_t decays() const { return hot_.decays(); }
  // The shape-histogram accessors drain staged records so a caller reading
  // counts right after recording sees them. The registry additionally holds
  // the raw pointers (AddExternalHistogram), where a scrape may lag by at
  // most one undrained staging buffer per shard.
  metrics::LatencyHistogram* value_bytes_hist() {
    DrainAll();
    return &value_bytes_;
  }
  metrics::LatencyHistogram* ttl_seconds_hist() {
    DrainAll();
    return &ttl_seconds_;
  }
  metrics::LatencyHistogram* key_bytes_hist() {
    DrainAll();
    return &key_bytes_;
  }

 private:
  void RecordAccess(const Slice& key, uint64_t hash, size_t value_bytes,
                    uint64_t ttl_micros, bool is_write) {
    // Temporal gate: a plain GNU __thread counter (an extern thread_local
    // init guard costs ~7% here, see BENCH_hotpath.json notes_telemetry).
    // The counter is shared by all instances on the thread, which only
    // offsets each instance's gate phase.
    static __thread uint32_t tl_ops = 0;
    const bool hot_sampled = ++tl_ops >= options_.hotkey_sample_rate;
    const bool mrc_sampled = (hash * kSpatialMix) <= mrc_threshold_;
    if (!hot_sampled && !mrc_sampled) return;
    if (hot_sampled) tl_ops = 0;
    RecordSampled(key, hash, value_bytes, ttl_micros, is_write, mrc_sampled,
                  hot_sampled);
  }

  void RecordSampled(const Slice& key, uint64_t hash, size_t value_bytes,
                     uint64_t ttl_micros, bool is_write, bool mrc_sampled,
                     bool hot_sampled);

  /// Per-shard staging: sampled accesses append here on the serving path;
  /// batch processing happens on whichever thread fills a buffer past the
  /// drain threshold, or on a snapshot path. Hot-gated accesses are stored
  /// as a packed (header, key bytes) arena so the key outlives the call.
  struct Stage {
    common::Mutex mu;
    std::vector<uint64_t> mrc GUARDED_BY(mu);
    std::vector<char> hot GUARDED_BY(mu);
    uint32_t hot_entries GUARDED_BY(mu) = 0;
    /// Serializes batch processing so per-shard record order (which the
    /// reuse distances depend on) survives concurrent drains.
    common::Mutex drain_mu;
    /// Drain-side scratch, double-buffered against the staging vectors so
    /// steady state allocates nothing: buffers swap in full and swap back
    /// cleared, keeping their capacity on both sides.
    std::vector<uint64_t> mrc_scratch GUARDED_BY(drain_mu);
    std::vector<char> hot_scratch GUARDED_BY(drain_mu);
    std::vector<HotKeyTracker::Entry> entry_scratch GUARDED_BY(drain_mu);
  };

  /// Swaps out and processes one shard's staged records.
  void DrainShard(size_t shard) const;
  /// Drains every shard: snapshot paths call this first, making readings
  /// exact once recording quiesces.
  void DrainAll() const;

  size_t ShardOf(uint64_t hash) const {
    return shard_shift_ == 64 ? 0 : (hash >> shard_shift_);
  }

  const WorkloadAnalyticsOptions options_;
  const uint64_t mrc_threshold_;  // UINT64_MAX / mrc_sample_rate.
  int shard_shift_ = 64;  // 64 - log2(tracker count), like the engine.
  // All accesses, sampled or not: advanced by hotkey_sample_rate whenever
  // the temporal gate fires (exact at rate 1, within one gate window per
  // thread otherwise). Drives the MRC's SHARDS-adj correction.
  std::atomic<uint64_t> total_accesses_{0};
  // Recording state below is mutated by drains, which also run from const
  // snapshot paths (a snapshot must fold in staged records to be fresh).
  mutable std::vector<std::unique_ptr<Stage>> stages_;
  mutable std::vector<std::unique_ptr<ReuseTracker>> trackers_;
  mutable HotKeyTracker hot_;
  mutable metrics::LatencyHistogram value_bytes_;
  mutable metrics::LatencyHistogram ttl_seconds_;
  mutable metrics::LatencyHistogram key_bytes_;
};

/// Renders the ANALYTICS MRC reply body shared by the server and the proxy:
/// self-describing "key:value" header lines (sample_rate, shards, scale,
/// sampled/estimated totals, knee_entries, points:N) followed by one
/// "<entries> <miss_ratio>" line per curve point. Lines end in \r\n so the
/// body is parseable by cost_advisor --live and shell tooling.
std::string FormatMrcReport(const MrcSnapshot& mrc, int shards);

/// Registers the "# Workload" INFO section / tierbase_workload_* Prometheus
/// family on a component registry, shared by the server and the proxy:
/// sampling configuration, sampled/estimated access totals, the live MRC
/// knee, the three keyspace-shape histograms, and an INFO-only block with
/// the current top hot keys. `wa` may be null (analytics disabled): the
/// section then only carries workload_analytics:off. `wa` must outlive the
/// registry.
void RegisterWorkloadInstruments(metrics::MetricsRegistry* registry,
                                 WorkloadAnalytics* wa);

}  // namespace analytics
}  // namespace tierbase

#endif  // TIERBASE_ANALYTICS_WORKLOAD_ANALYTICS_H_
