#include "analytics/workload_analytics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace tierbase {
namespace analytics {

namespace {

int RoundUpPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Staged records per shard before the appending thread drains the buffer.
// 256 records are ~40us of in-situ batch work — frequent enough to bound
// the inline drain stall and keep the staging arena + drain scratch
// L2-resident (the buffers are serving-path cache pollution), rare enough
// to amortize the batch's structure warm-up.
constexpr size_t kDrainEntries = 256;

// Packed header preceding the key bytes of one staged hot-gated access.
struct HotStaged {
  uint64_t hash;
  uint32_t value_bytes;  // Saturated.
  uint32_t ttl_sec;      // Saturated.
  uint16_t key_len;      // Key bytes truncated to 64 KiB for reporting.
  uint8_t is_write;
  uint8_t pad;
};
static_assert(sizeof(HotStaged) == 24, "staging header grew");

size_t StagedSize(size_t key_len) {
  return (sizeof(HotStaged) + key_len + 7) & ~size_t{7};
}

uint32_t SaturateU32(uint64_t v) {
  return v > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(v);
}

}  // namespace

WorkloadAnalytics::WorkloadAnalytics(const WorkloadAnalyticsOptions& options)
    : options_(options),
      mrc_threshold_(UINT64_MAX /
                     std::max<uint64_t>(options.mrc_sample_rate, 1)),
      hot_(options.hotkeys_capacity, options.decay_interval) {
  const int shards = RoundUpPow2(std::max(options.shards, 1));
  trackers_.reserve(static_cast<size_t>(shards));
  stages_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    trackers_.push_back(
        std::make_unique<ReuseTracker>(options.mrc_sample_rate));
    stages_.push_back(std::make_unique<Stage>());
  }
  int log2 = 0;
  while ((1 << log2) < shards) ++log2;
  shard_shift_ = 64 - log2;
}

void WorkloadAnalytics::RecordSampled(const Slice& key, uint64_t hash,
                                      size_t value_bytes, uint64_t ttl_micros,
                                      bool is_write, bool mrc_sampled,
                                      bool hot_sampled) {
  const size_t shard = ShardOf(hash);
  Stage& st = *stages_[shard];
  bool drain = false;
  {
    common::MutexLock lock(&st.mu);
    if (mrc_sampled) st.mrc.push_back(hash);
    if (hot_sampled) {
      const size_t key_len = std::min<size_t>(key.size(), UINT16_MAX);
      HotStaged h;
      h.hash = hash;
      h.value_bytes = SaturateU32(value_bytes);
      h.ttl_sec = SaturateU32(ttl_micros / 1'000'000);
      h.key_len = static_cast<uint16_t>(key_len);
      h.is_write = is_write ? 1 : 0;
      h.pad = 0;
      const size_t off = st.hot.size();
      st.hot.resize(off + StagedSize(key_len));
      std::memcpy(&st.hot[off], &h, sizeof(h));
      std::memcpy(&st.hot[off + sizeof(h)], key.data(), key_len);
      ++st.hot_entries;
    }
    drain = st.mrc.size() >= kDrainEntries || st.hot_entries >= kDrainEntries;
  }
  if (hot_sampled) {
    // The temporal gate fires once per hotkey_sample_rate accesses on this
    // thread, so it doubles as the batched total-access counter flush.
    total_accesses_.fetch_add(options_.hotkey_sample_rate,
                              std::memory_order_relaxed);
  }
  if (drain) DrainShard(shard);
}

void WorkloadAnalytics::DrainShard(size_t shard) const {
  Stage& st = *stages_[shard];
  // drain_mu keeps concurrent drains of one shard FIFO: a batch swapped
  // out first is fully processed before the next swap happens.
  common::MutexLock drain_lock(&st.drain_mu);
  std::vector<uint64_t>& mrc = st.mrc_scratch;
  std::vector<char>& hot = st.hot_scratch;
  uint32_t hot_entries = 0;
  {
    common::MutexLock lock(&st.mu);
    mrc.swap(st.mrc);
    hot.swap(st.hot);
    hot_entries = st.hot_entries;
    st.hot_entries = 0;
  }
  if (!mrc.empty()) {
    trackers_[shard]->RecordBatch(mrc.data(), mrc.size());
    mrc.clear();
  }
  if (hot_entries == 0) return;
  std::vector<HotKeyTracker::Entry>& entries = st.entry_scratch;
  entries.clear();
  entries.reserve(hot_entries);
  size_t off = 0;
  while (off + sizeof(HotStaged) <= hot.size()) {
    HotStaged h;
    std::memcpy(&h, &hot[off], sizeof(h));
    entries.push_back(HotKeyTracker::Entry{
        h.hash, Slice(&hot[off + sizeof(h)], h.key_len)});
    if (h.is_write != 0) {
      value_bytes_.Record(h.value_bytes);
      ttl_seconds_.Record(h.ttl_sec);
      key_bytes_.Record(h.key_len);
    }
    off += StagedSize(h.key_len);
  }
  hot_.RecordBatch(entries.data(), entries.size());
  hot.clear();
}

void WorkloadAnalytics::DrainAll() const {
  for (size_t s = 0; s < stages_.size(); ++s) DrainShard(s);
}

MrcSnapshot WorkloadAnalytics::Mrc(int shard) const {
  DrainAll();
  if (shard >= 0) {
    if (static_cast<size_t>(shard) >= trackers_.size()) return MrcSnapshot();
    // Per-shard curve: entries are shard-local keyspace entries. Hash
    // sharding spreads accesses uniformly, so each tracker's share of the
    // facade-level total is ~1/shards.
    return trackers_[static_cast<size_t>(shard)]->Snapshot(
        options_.mrc_sample_rate, total_accesses() / trackers_.size());
  }
  // Merged curve. Each tracker sees 1/shards of the keyspace and a global
  // LRU cache of E entries gives each shard ~E/shards of them, so merged
  // histograms scale distances by rate * shards.
  std::vector<uint64_t> buckets(ReuseTracker::kNumBuckets, 0);
  uint64_t sampled = 0, cold = 0, keys = 0;
  for (const auto& t : trackers_) {
    t->Accumulate(&buckets, &sampled, &cold, &keys);
  }
  return ReuseTracker::Render(
      buckets, sampled, cold, keys, total_accesses(),
      options_.mrc_sample_rate,
      static_cast<uint64_t>(options_.mrc_sample_rate) * trackers_.size());
}

std::vector<HotKey> WorkloadAnalytics::TopKeys(size_t k) const {
  DrainAll();
  std::vector<HotKey> top = hot_.TopK(k);
  for (HotKey& h : top) {
    h.count *= options_.hotkey_sample_rate;
    h.error *= options_.hotkey_sample_rate;
  }
  return top;
}

void WorkloadAnalytics::Reset() {
  total_accesses_.store(0, std::memory_order_relaxed);
  // Staged-but-unprocessed records are part of what RESET discards; take
  // each drain_mu so an in-flight drain finishes before its state clears.
  for (const auto& st : stages_) {
    common::MutexLock drain_lock(&st->drain_mu);
    common::MutexLock lock(&st->mu);
    st->mrc.clear();
    st->hot.clear();
    st->hot_entries = 0;
  }
  for (const auto& t : trackers_) t->Reset();
  hot_.Reset();
  value_bytes_.Reset();
  ttl_seconds_.Reset();
  key_bytes_.Reset();
}

uint64_t WorkloadAnalytics::sampled_accesses() const {
  DrainAll();
  uint64_t n = 0;
  for (const auto& t : trackers_) n += t->sampled_accesses();
  return n;
}

uint64_t WorkloadAnalytics::tracked_keys() const {
  DrainAll();
  uint64_t n = 0;
  for (const auto& t : trackers_) n += t->sampled_keys();
  return n;
}

std::string FormatMrcReport(const MrcSnapshot& mrc, int shards) {
  std::string body;
  char line[128];
  snprintf(line, sizeof(line), "sample_rate:%" PRIu64 "\r\n",
           mrc.sample_rate);
  body.append(line);
  snprintf(line, sizeof(line), "shards:%d\r\n", shards);
  body.append(line);
  snprintf(line, sizeof(line), "scale:%" PRIu64 "\r\n", mrc.scale);
  body.append(line);
  snprintf(line, sizeof(line), "sampled_accesses:%" PRIu64 "\r\n",
           mrc.sampled_accesses);
  body.append(line);
  snprintf(line, sizeof(line), "sampled_cold_misses:%" PRIu64 "\r\n",
           mrc.sampled_cold_misses);
  body.append(line);
  snprintf(line, sizeof(line), "tracked_keys:%" PRIu64 "\r\n",
           mrc.sampled_keys);
  body.append(line);
  snprintf(line, sizeof(line), "total_accesses:%" PRIu64 "\r\n",
           mrc.total_accesses);
  body.append(line);
  snprintf(line, sizeof(line), "estimated_accesses:%" PRIu64 "\r\n",
           mrc.estimated_accesses());
  body.append(line);
  snprintf(line, sizeof(line), "estimated_keys:%" PRIu64 "\r\n",
           mrc.estimated_keys());
  body.append(line);
  snprintf(line, sizeof(line), "knee_entries:%" PRIu64 "\r\n",
           mrc.KneeEntries());
  body.append(line);
  snprintf(line, sizeof(line), "points:%zu\r\n", mrc.points.size());
  body.append(line);
  for (const MrcPoint& p : mrc.points) {
    snprintf(line, sizeof(line), "%" PRIu64 " %.6f\r\n", p.entries,
             p.miss_ratio);
    body.append(line);
  }
  return body;
}

void RegisterWorkloadInstruments(metrics::MetricsRegistry* registry,
                                 WorkloadAnalytics* wa) {
  registry->AddText("Workload", "workload_analytics",
                    [wa] { return wa != nullptr ? "on" : "off"; });
  if (wa == nullptr) return;
  registry->AddCallback(
      "Workload", "workload_mrc_sample_rate",
      "SHARDS spatial sampling rate R (1/R of the keyspace tracked)",
      metrics::MetricType::kGauge,
      [wa] { return uint64_t{wa->options().mrc_sample_rate}; });
  registry->AddCallback(
      "Workload", "workload_hotkey_sample_rate",
      "Temporal sampling rate N (every Nth access feeds the sketch)",
      metrics::MetricType::kGauge,
      [wa] { return uint64_t{wa->options().hotkey_sample_rate}; });
  registry->AddCallback(
      "Workload", "workload_shards", "Reuse-distance tracker shards",
      metrics::MetricType::kGauge,
      [wa] { return static_cast<uint64_t>(wa->shards()); });
  registry->AddCallback("Workload", "workload_sampled_accesses",
                        "Accesses that passed the spatial MRC filter",
                        metrics::MetricType::kCounter,
                        [wa] { return wa->sampled_accesses(); });
  registry->AddCallback("Workload", "workload_total_accesses",
                        "All accesses seen by the reuse trackers",
                        metrics::MetricType::kCounter,
                        [wa] { return wa->total_accesses(); });
  registry->AddCallback("Workload", "workload_tracked_keys",
                        "Distinct sampled keys under reuse tracking",
                        metrics::MetricType::kGauge,
                        [wa] { return wa->tracked_keys(); });
  registry->AddCallback(
      "Workload", "workload_hot_records",
      "Accesses recorded by the hot-key sketch (sampled units)",
      metrics::MetricType::kCounter, [wa] { return wa->hot_records(); });
  registry->AddCallback("Workload", "workload_decays",
                        "Hot-key sketch decay halvings",
                        metrics::MetricType::kCounter,
                        [wa] { return wa->decays(); });
  registry->AddCallback(
      "Workload", "workload_mrc_knee_entries",
      "Knee of the live miss-ratio curve, estimated cache entries",
      metrics::MetricType::kGauge, [wa] { return wa->Mrc().KneeEntries(); });
  registry->AddExternalHistogram(
      "Workload", "workload_value_bytes",
      "Written value sizes, bytes (temporally sampled)",
      wa->value_bytes_hist());
  registry->AddExternalHistogram(
      "Workload", "workload_ttl_seconds",
      "Write TTLs, seconds, 0 = no expiry (temporally sampled)",
      wa->ttl_seconds_hist());
  registry->AddExternalHistogram(
      "Workload", "workload_key_bytes",
      "Written key lengths, bytes (temporally sampled)",
      wa->key_bytes_hist());
  // INFO-only: the current top hot keys inline, estimated true counts.
  registry->AddBlock("Workload", [wa](std::string* out) {
    std::vector<HotKey> top = wa->TopKeys(5);
    char line[192];
    for (size_t i = 0; i < top.size(); ++i) {
      snprintf(line, sizeof(line),
               "workload_hotkey_%zu:key=%s,est=%" PRIu64 "\r\n", i,
               top[i].key.c_str(), top[i].count);
      out->append(line);
    }
  });
}

}  // namespace analytics
}  // namespace tierbase
