// Frequency sketches for the workload observatory (ROADMAP item 1's
// sensor layer): a count-min sketch admits candidates into a space-saving
// top-k table, and periodic decay keeps both tracking the *current* hot
// set instead of the all-time one (the "filtered space-saving" combination
// from Homem & Carvalho's frequent-items work).
//
// Concurrency: CountMinSketch is an array of relaxed atomics — writers
// never block and TSan sees only atomic traffic. SpaceSaving holds a
// mutex, but HotKeyTracker::Record only takes it when the sketch estimate
// reaches the published minimum count (an atomic), so cold keys — the
// overwhelming majority under a skewed workload — stay lock-free.

#ifndef TIERBASE_ANALYTICS_SKETCHES_H_
#define TIERBASE_ANALYTICS_SKETCHES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/thread_annotations.h"

namespace tierbase {
namespace analytics {

/// Count-min sketch over 64-bit key hashes, block-based (Caffeine-style):
/// a key's `depth` counters all live inside one 64-byte block of sixteen
/// relaxed-atomic u32s, picked by independent nibbles of a second hash —
/// one cache line touched per Add instead of `depth` scattered rows, at a
/// slightly higher in-block collision rate (still a strict overestimate).
class CountMinSketch {
 public:
  /// `width * depth` total counters (rounded up to whole 16-counter
  /// blocks), matching the memory footprint of a classic width x depth
  /// rectangle. The default (16 KiB) is sized to admission-filter a
  /// sampled stream without evicting much of the serving working set.
  explicit CountMinSketch(uint32_t width = 1024, uint32_t depth = 4);

  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  /// Adds `inc` occurrences and returns the new (over-)estimate for the
  /// key. Counters saturate instead of wrapping.
  uint32_t AddAndEstimate(uint64_t hash, uint32_t inc = 1);
  uint32_t Estimate(uint64_t hash) const;

  /// Pulls the key's counter block toward the cache ahead of AddAndEstimate
  /// (the drain loops run a few records ahead so misses overlap).
  void Prefetch(uint64_t hash) const {
    __builtin_prefetch(&counters_[Block(hash) * kBlockCounters]);
  }

  /// Exponential decay: halves every counter. Concurrent Adds may lose an
  /// increment across the halving — decay is approximate by design.
  void Halve();
  void Reset();

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }

 private:
  static constexpr uint32_t kBlockCounters = 16;  // One 64-byte line.

  size_t Block(uint64_t hash) const { return hash & (blocks_ - 1); }
  size_t Index(uint32_t row, uint64_t hash) const {
    // Independent nibbles of a remixed hash pick each row's counter inside
    // the key's block.
    const uint64_t h2 = (hash >> 32 | hash << 32) * 0x9E3779B97F4A7C15ull;
    return Block(hash) * kBlockCounters + ((h2 >> (row * 4)) & 15);
  }

  uint32_t width_;
  uint32_t depth_;
  uint32_t blocks_;  // Power of two; width_*depth_/16 rounded up.
  std::unique_ptr<std::atomic<uint32_t>[]> counters_;
};

/// One reported heavy hitter. `count` may overestimate by up to `error`
/// (the space-saving replacement bound).
struct HotKey {
  std::string key;
  uint64_t count = 0;
  uint64_t error = 0;
};

/// Space-saving top-k table (Metwally et al.): at most `capacity` tracked
/// keys; a new key evicts the current minimum and inherits its count as
/// the error bound. min_count() is published through an atomic so callers
/// can skip the mutex for keys that cannot possibly belong.
///
/// Cells are keyed by the key's 64-bit engine hash — no string hashing or
/// allocation on the offer path; the key bytes are copied once on insert,
/// for reporting. A full 64-bit collision silently merges two keys, odds
/// the engine's own hash table already lives with.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity = 128);

  /// Counts `inc` occurrences of `key` (with engine hash `hash`).
  /// `estimate` is the caller's sketch estimate, used as the admission
  /// count when the key displaces the minimum (capped at min+inc, the
  /// classic space-saving bound).
  void Offer(const Slice& key, uint64_t hash, uint64_t inc,
             uint64_t estimate);

  /// One admitted (key, estimate) pair from a batch (see OfferMany).
  /// `inc` carries the key's occurrence count within the batch.
  struct Candidate {
    Slice key;
    uint64_t hash = 0;
    uint64_t estimate = 0;
    uint64_t inc = 1;
  };

  /// Offers `n` candidates under a single mutex acquisition — the
  /// HotKeyTracker drain path.
  void OfferMany(const Candidate* candidates, size_t n);

  /// The published minimum tracked count; 0 while the table has room.
  /// May lag the true minimum low (causing a harmless extra Offer), never
  /// high.
  uint64_t min_count() const {
    return min_count_.load(std::memory_order_relaxed);
  }

  /// Top `k` keys by count, descending.
  std::vector<HotKey> TopK(size_t k) const;

  void Halve();
  void Reset();

  size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::string key;  // For reporting; set once on insert.
    uint64_t count = 0;
    uint64_t error = 0;
  };

  void PublishMinLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void OfferLocked(const Slice& key, uint64_t hash, uint64_t inc,
                   uint64_t estimate) EXCLUSIVE_LOCKS_REQUIRED(mu_);

  const size_t capacity_;
  mutable common::Mutex mu_;
  std::unordered_map<uint64_t, Cell> cells_ GUARDED_BY(mu_);
  std::atomic<uint64_t> min_count_{0};
};

/// The combined hot-key tracker: every recorded access feeds the sketch;
/// only keys whose estimate clears the space-saving minimum take the table
/// lock. Every `decay_interval` records, both structures halve, so counts
/// approximate an exponentially-weighted recent window.
class HotKeyTracker {
 public:
  HotKeyTracker(size_t capacity, uint64_t decay_interval);

  void Record(const Slice& key, uint64_t hash) {
    const Entry e{hash, key};
    RecordBatch(&e, 1);
  }

  /// One staged hot-key access (key points into the caller's staging
  /// arena and need only outlive the RecordBatch call).
  struct Entry {
    uint64_t hash = 0;
    Slice key;
  };

  /// Records `n` accesses: duplicate keys within the batch are aggregated
  /// first (one sketch/table update with inc=count — under a skewed
  /// workload a large share of a batch is the same few hot keys), sketch
  /// blocks are prefetched ahead, and every key that clears the admission
  /// filter goes to the table under one mutex acquisition.
  void RecordBatch(const Entry* entries, size_t n);

  /// Top `k` hot keys, counts in *recorded* (sampled, decayed) units; the
  /// caller scales by its sampling rate.
  std::vector<HotKey> TopK(size_t k) const { return table_.TopK(k); }

  uint64_t recorded() const { return ops_.load(std::memory_order_relaxed); }
  uint64_t decays() const { return decays_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  /// One dedup window: bounds the stack scratch RecordChunk uses.
  static constexpr size_t kChunk = 512;

  void RecordChunk(const Entry* entries, size_t n);

  CountMinSketch sketch_;
  SpaceSaving table_;
  const uint64_t decay_interval_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> decays_{0};
};

}  // namespace analytics
}  // namespace tierbase

#endif  // TIERBASE_ANALYTICS_SKETCHES_H_
