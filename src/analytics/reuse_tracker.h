// Online miss-ratio-curve estimation via spatially-sampled reuse
// distances (Waldspurger et al.'s SHARDS): a key is tracked iff a second
// hash of its 64-bit hash lands under UINT64_MAX / sample_rate, so ~1/R of
// the keyspace pays Mattson stack-distance bookkeeping and everything else
// costs one multiply and a compare. Distances measured among sampled keys,
// multiplied back by R, estimate true distances. Under skewed popularity a
// small sample can capture a biased share of the access stream (one hot key
// in or out of the sample moves the curve), so rendering applies the
// SHARDS-adj correction: the difference between the expected sample count
// (total accesses / R) and the actual one is folded into the
// smallest-distance buckets and the miss ratio is normalised by the
// expected count.
//
// The per-tracker machinery keeps last-access positions in a flat
// open-addressing hash table (one cache line per probe) and marks live
// positions in a bitmap with per-512-bit popcounts, so "distinct keys
// since last access" is a short suffix-popcount scan — a few hundred bytes
// of mostly L1-resident state instead of a pointer-chasing tree walk.
// Positions monotonically increase and the position ring compacts
// (renumbers live keys) when exhausted, keeping the bitmap O(live keys).
//
// Thread model: one mutex per tracker, taken only for sampled accesses
// (~1/R of traffic) and snapshots. The cache engine keeps one tracker per
// shard and feeds it in batches (see WorkloadAnalytics staging), so the
// table and bitmap stay warm across a drain and independent probe misses
// overlap.

#ifndef TIERBASE_ANALYTICS_REUSE_TRACKER_H_
#define TIERBASE_ANALYTICS_REUSE_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tierbase {
namespace analytics {

/// Fibonacci re-mix applied before the SHARDS spatial compare, so the
/// filter is independent of the engine's shard/bucket use of the same
/// hash. Shared with the WorkloadAnalytics inline fast path.
constexpr uint64_t kSpatialMix = 0x9E3779B97F4A7C15ull;

/// One point of an estimated miss-ratio curve: the miss ratio of an LRU
/// cache holding `entries` keys.
struct MrcPoint {
  uint64_t entries = 0;
  double miss_ratio = 1.0;
};

/// A rendered curve. `points` is ordered by entries with non-increasing
/// miss ratio; counts are in sampled units, `scale` converts sampled keys
/// to estimated keyspace entries (sample_rate, times the shard count for a
/// merged curve).
struct MrcSnapshot {
  std::vector<MrcPoint> points;
  uint64_t sample_rate = 1;
  uint64_t scale = 1;
  uint64_t sampled_accesses = 0;  // Accesses that passed the spatial filter.
  uint64_t sampled_cold_misses = 0;
  uint64_t sampled_keys = 0;    // Distinct sampled keys currently tracked.
  uint64_t total_accesses = 0;  // All accesses, sampled or not.

  uint64_t estimated_accesses() const {
    return total_accesses != 0 ? total_accesses
                               : sampled_accesses * sample_rate;
  }
  uint64_t estimated_keys() const { return sampled_keys * scale; }

  /// Estimated miss ratio of a cache holding `entries` keys (1.0 below the
  /// curve's resolution, the cold-miss floor above its top).
  double MissRatioAtEntries(uint64_t entries) const;

  /// The curve's knee: the point furthest under the chord joining the
  /// first and last points on a log-entries axis — past it, extra cache
  /// buys little. 0 when the curve is empty or degenerate.
  uint64_t KneeEntries() const;
};

class ReuseTracker {
 public:
  /// `sample_rate` R tracks ~1/R of the keyspace; 1 = every key (exact
  /// distances, used by tests and small deployments).
  explicit ReuseTracker(uint64_t sample_rate);

  ReuseTracker(const ReuseTracker&) = delete;
  ReuseTracker& operator=(const ReuseTracker&) = delete;

  /// Records one access to the key with the given engine hash. Lock-free
  /// rejection for unsampled keys.
  void Record(uint64_t hash) {
    if (!Sampled(hash)) return;
    RecordBatch(&hash, 1);
  }

  /// Records `n` accesses that already passed the spatial filter (the
  /// WorkloadAnalytics drain path — its staging buffers only ever hold
  /// sampled hashes). One mutex acquisition for the whole batch, with the
  /// hash-table probes prefetched ahead.
  void RecordBatch(const uint64_t* hashes, size_t n);

  /// Renders this tracker's curve with entries scaled by `scale` (pass the
  /// sample rate for a per-shard curve; callers merging shards scale by
  /// rate * shards via Accumulate instead). `total_accesses` is the count
  /// of ALL accesses (sampled or not) behind this tracker, counted by the
  /// caller; it drives the SHARDS-adj correction, 0 skips it.
  MrcSnapshot Snapshot(uint64_t scale, uint64_t total_accesses = 0) const;

  /// Adds this tracker's raw histogram and counters into an accumulator
  /// (bucket layout is shared by all trackers).
  void Accumulate(std::vector<uint64_t>* buckets, uint64_t* sampled_accesses,
                  uint64_t* cold_misses, uint64_t* sampled_keys) const;

  /// Builds a snapshot from accumulated raw counts (see Accumulate),
  /// applying the SHARDS-adj correction against `total_accesses`.
  static MrcSnapshot Render(const std::vector<uint64_t>& buckets,
                            uint64_t sampled_accesses, uint64_t cold_misses,
                            uint64_t sampled_keys, uint64_t total_accesses,
                            uint64_t sample_rate, uint64_t scale);

  void Reset();

  uint64_t sample_rate() const { return sample_rate_; }
  uint64_t sampled_accesses() const;
  uint64_t sampled_keys() const;

  // --- Distance bucket layout (exact below 128, 16 log sub-buckets per
  // octave above; shared by every tracker so histograms merge by index). ---
  static constexpr uint32_t kExactLimit = 128;
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kNumBuckets =
      kExactLimit + (64 - 7) * (1u << kSubBits);
  static uint32_t BucketFor(uint64_t distance);
  static uint64_t BucketUpperEdge(uint32_t bucket);

 private:
  bool Sampled(uint64_t hash) const {
    return (hash * kSpatialMix) <= threshold_;
  }

  /// Last-access position per tracked key: flat open addressing, power-of
  /// two size, load factor <= 1/2, no per-key deletes (keys leave only via
  /// Reset). `pos == kEmptyPos` marks a free slot.
  struct Slot {
    uint64_t hash = 0;
    uint64_t pos = kEmptyPos;
  };
  static constexpr uint64_t kEmptyPos = UINT64_MAX;

  size_t SlotIndex(uint64_t hash) const EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    // Distinct mixer from the spatial filter: sampled hashes all satisfy
    // hash * kSpatialMix <= threshold, so that product's high bits are
    // useless as a table index.
    return static_cast<size_t>((hash * 0xFF51AFD7ED558CCDull) >> slot_shift_);
  }
  Slot* FindSlotLocked(uint64_t hash) EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void GrowSlotsLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  void SetBitLocked(uint64_t pos) EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void ClearBitLocked(uint64_t pos) EXCLUSIVE_LOCKS_REQUIRED(mu_);
  /// Live keys whose position is strictly greater than `pos`.
  uint64_t LiveAboveLocked(uint64_t pos) const EXCLUSIVE_LOCKS_REQUIRED(mu_);

  void RecordOneLocked(uint64_t hash) EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void CompactLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void ResetRingLocked(uint64_t cap) EXCLUSIVE_LOCKS_REQUIRED(mu_);

  const uint64_t sample_rate_;
  const uint64_t threshold_;

  mutable common::Mutex mu_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  int slot_shift_ GUARDED_BY(mu_) = 64;  // 64 - log2(slots_.size()).
  uint64_t live_ GUARDED_BY(mu_) = 0;    // Occupied slots.
  std::vector<uint64_t> bits_ GUARDED_BY(mu_);   // cap_ live-position bits.
  std::vector<uint16_t> blk_ GUARDED_BY(mu_);    // Popcount per 512 bits.
  uint64_t cap_ GUARDED_BY(mu_) = 0;             // Multiple of 512.
  uint64_t next_pos_ GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> dist_buckets_ GUARDED_BY(mu_);
  uint64_t cold_misses_ GUARDED_BY(mu_) = 0;
  uint64_t sampled_accesses_ GUARDED_BY(mu_) = 0;
};

}  // namespace analytics
}  // namespace tierbase

#endif  // TIERBASE_ANALYTICS_REUSE_TRACKER_H_
