// HashEngine: TierBase's cache-tier storage engine (paper §3, "the cache
// instances implement hash tables for efficient key-value storage").
//
// Features exercised by the paper's evaluation:
//   * Redis-compatible data model: strings plus lists, hashes, sets and
//     sorted sets; CAS (compare-and-set) on strings; TTL expiry.
//   * LRU eviction against a configurable memory budget, with an eviction
//     filter so the write-back path can pin dirty entries.
//   * Value compression hook (§4.2): string values above a threshold are
//     stored compressed with the configured pre-trained compressor.
//   * DRAM/PMem split placement (§4.3): keys and index metadata always stay
//     in DRAM; string values >= pmem_value_threshold move to the simulated
//     persistent-memory device through a PmemAllocator.
//
// Hot-path design (zero allocation per lookup):
//   * Each key is hashed exactly once per operation; the 64-bit hash picks
//     the shard (power-of-two count, topmost bits) and probes the shard's
//     table (low bits + bucket mask) without rehashing.
//   * The shard index is an intrusive chained hash table: every Entry node
//     owns the single copy of its key and carries its hash-chain link plus
//     the LRU prev/next pointers, so lookups compare against a Slice with
//     no temporary std::string and the LRU needs no separate list nodes.
//   * When memory_budget == 0 no eviction can occur, so Get/Set skip LRU
//     reordering entirely (observable through lru_touches()).
//   * MultiGet/MultiSet group keys by shard and take each shard mutex at
//     most once per batch.
//
// Thread model: the engine is sharded; shard count 1 gives the
// single-threaded event-loop behaviour, higher counts support the
// multi-thread / elastic modes with per-shard mutexes. The requested shard
// count is rounded up to the next power of two.

#ifndef TIERBASE_CACHE_HASH_ENGINE_H_
#define TIERBASE_CACHE_HASH_ENGINE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/kv_engine.h"
#include "common/mutex.h"
#include "compression/compressor.h"
#include "pmem/pmem_allocator.h"

namespace tierbase {

namespace analytics {
class WorkloadAnalytics;
}  // namespace analytics

namespace cache {

enum class ValueKind : uint8_t {
  kString = 0,
  kList = 1,
  kHash = 2,
  kSet = 3,
  kZSet = 4,
};

enum class EvictionPolicy {
  kNoEviction,  // Set fails with OutOfSpace when over budget.
  kLru,         // Evict least-recently-used unpinned entries.
};

struct HashEngineOptions {
  /// DRAM budget; 0 = unlimited.
  size_t memory_budget = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Rounded up to the next power of two.
  int shards = 1;
  Clock* clock = Clock::Real();

  /// Value compression (null = store raw). Not owned.
  Compressor* compressor = nullptr;
  size_t compress_min_bytes = 32;

  /// PMem placement (null = DRAM only). Not owned.
  PmemAllocator* pmem = nullptr;
  size_t pmem_value_threshold = 64;

  /// Workload-analytics sink (null = no recording). Not owned. The engine
  /// reports Get/Set/MultiGet/MultiSet accesses with the already-computed
  /// key hash, outside any shard lock. Deletes and rich-type ops are not
  /// recorded — the observatory watches the string hot path the cost
  /// model reasons about.
  analytics::WorkloadAnalytics* analytics = nullptr;
};

class HashEngine : public KvEngine {
 public:
  explicit HashEngine(HashEngineOptions options = {});
  ~HashEngine() override;

  std::string name() const override { return "hash-engine"; }

  // --- Strings (KvEngine interface + extensions). ---
  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  /// Batched ops: keys grouped per shard, each shard mutex taken at most
  /// once per call (multi_shard_locks() counts the acquisitions).
  void MultiGet(const std::vector<Slice>& keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  void MultiSet(const std::vector<Slice>& keys,
                const std::vector<Slice>& values,
                std::vector<Status>* statuses) override;
  /// Set with TTL (microseconds from now; 0 = no expiry).
  Status SetEx(const Slice& key, const Slice& value, uint64_t ttl_micros);
  /// Compare-and-set: succeeds iff the current value equals `expected`
  /// (missing key matches empty `expected` only when allow_create).
  /// Returns Aborted on mismatch.
  Status Cas(const Slice& key, const Slice& expected, const Slice& value,
             bool allow_create = false);
  bool Exists(const Slice& key);

  // --- TTL. ---
  Status Expire(const Slice& key, uint64_t ttl_micros);
  /// Remaining TTL in micros; NotFound if absent; 0 if no expiry set.
  Result<uint64_t> Ttl(const Slice& key);

  // --- Lists. ---
  Status LPush(const Slice& key, const Slice& value);
  Status RPush(const Slice& key, const Slice& value);
  Status LPop(const Slice& key, std::string* value);
  Status RPop(const Slice& key, std::string* value);
  Result<uint64_t> LLen(const Slice& key);
  Status LRange(const Slice& key, int64_t start, int64_t stop,
                std::vector<std::string>* out);

  // --- Hashes. ---
  Status HSet(const Slice& key, const Slice& field, const Slice& value);
  Status HGet(const Slice& key, const Slice& field, std::string* value);
  Status HDel(const Slice& key, const Slice& field);
  Result<uint64_t> HLen(const Slice& key);
  Status HGetAll(const Slice& key,
                 std::vector<std::pair<std::string, std::string>>* out);

  // --- Sets. ---
  Status SAdd(const Slice& key, const Slice& member);
  Status SRem(const Slice& key, const Slice& member);
  Result<bool> SIsMember(const Slice& key, const Slice& member);
  Result<uint64_t> SCard(const Slice& key);

  // --- Sorted sets. ---
  Status ZAdd(const Slice& key, double score, const Slice& member);
  Result<double> ZScore(const Slice& key, const Slice& member);
  Status ZRangeByScore(const Slice& key, double min_score, double max_score,
                       std::vector<std::string>* out);
  /// Rank-based range over the score order (Redis ZRANGE semantics:
  /// negative indices count from the end, `stop` is inclusive). A missing
  /// key yields an empty result.
  Status ZRange(const Slice& key, int64_t start, int64_t stop,
                std::vector<std::pair<std::string, double>>* out);
  Result<uint64_t> ZCard(const Slice& key);

  // --- Introspection / control. ---
  UsageStats GetUsage() const override;
  uint64_t evictions() const { return evictions_.load(); }
  uint64_t expirations() const { return expirations_.load(); }
  /// LRU reorderings performed. Stays zero while memory_budget == 0: with
  /// no eviction possible the hot path skips recency maintenance (and the
  /// allocation-free lookup leaves no other per-op side effects).
  uint64_t lru_touches() const;
  /// Shard mutex acquisitions made by MultiGet/MultiSet (at most one per
  /// shard per batch) and the number of batch calls served.
  uint64_t multi_shard_locks() const { return multi_shard_locks_.load(); }
  uint64_t multi_batches() const { return multi_batches_.load(); }

  /// Write-back integration: return false to protect a key from eviction.
  /// The filter is installed behind an atomically swapped shared_ptr, so
  /// installation never blocks (or takes a lock on) the eviction path.
  using EvictionFilter = std::function<bool(const Slice& key)>;
  void SetEvictionFilter(EvictionFilter filter);

  /// Removes expired entries eagerly (normally lazy). Returns # removed.
  size_t SweepExpired();

  /// Cursor-based key iteration (SCAN / full-resync snapshots / key
  /// migration). Starts at cursor 0; appends at least `count` live keys
  /// (modulo expiry) and returns the cursor to resume from, or 0 when the
  /// keyspace is exhausted. Guarantees match Redis SCAN loosely: keys
  /// present for the whole scan are returned at least once; keys mutated
  /// concurrently with a bucket rehash may be missed or duplicated.
  uint64_t Scan(uint64_t cursor, size_t count, std::vector<std::string>* keys);

  /// Drops everything (tests, reload).
  void Clear();

 private:
  struct ComplexValue {
    std::deque<std::string> list;
    std::unordered_map<std::string, std::string> hash;
    std::set<std::string> set;
    std::unordered_map<std::string, double> zscores;
    std::set<std::pair<double, std::string>> zordered;
    /// Element bytes, maintained incrementally by the mutating ops so
    /// EntryCharge never re-walks the containers.
    size_t bytes = 0;

    size_t MemoryBytes() const { return sizeof(ComplexValue) + bytes; }
  };

  /// One cache entry. Nodes are heap-allocated and never move: the hash
  /// chain (next_hash) and the intrusive LRU list (lru_prev/lru_next) link
  /// them directly, and the node owns the only copy of its key.
  struct Entry {
    Entry* next_hash = nullptr;
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
    uint64_t hash = 0;  // Hash64(key), computed once at insertion.
    std::string key;

    ValueKind kind = ValueKind::kString;
    std::string str;  // Inline (possibly compressed) string value.
    bool compressed = false;
    PmemPtr pmem_ptr = kInvalidPmemPtr;
    uint32_t pmem_size = 0;      // Stored (compressed) size in PMem.
    uint64_t expire_at = 0;      // Clock micros; 0 = never.
    size_t charge = 0;           // DRAM bytes charged to the budget.
    std::unique_ptr<ComplexValue> complex;
  };

  /// Chained hash table over Entry nodes (LevelDB HandleTable idiom):
  /// power-of-two bucket count, probe by precomputed hash + Slice compare.
  struct Table {
    std::vector<Entry*> buckets;
    size_t size = 0;

    Table() : buckets(kInitialBuckets, nullptr) {}

    Entry* Find(const Slice& key, uint64_t hash) const {
      Entry* e = buckets[hash & (buckets.size() - 1)];
      while (e != nullptr && (e->hash != hash || Slice(e->key) != key)) {
        e = e->next_hash;
      }
      return e;
    }
    /// Inserts a node whose key is known to be absent.
    void Insert(Entry* e);
    /// Unlinks (does not delete) the node; returns it, or null if absent.
    Entry* Remove(const Slice& key, uint64_t hash);

   private:
    static constexpr size_t kInitialBuckets = 16;
    void Grow();
  };

  struct Shard {
    mutable common::Mutex mu;
    Table table GUARDED_BY(mu);
    Entry* lru_head GUARDED_BY(mu) = nullptr;  // Most recently used.
    Entry* lru_tail GUARDED_BY(mu) = nullptr;  // Eviction candidate.
    size_t charged GUARDED_BY(mu) = 0;
    uint64_t lru_touches GUARDED_BY(mu) = 0;
  };

  size_t ShardIndex(uint64_t hash) const {
    // The topmost log2(shards) bits select the shard so they stay
    // decorrelated from the table's bucket index (low bits). Shift 64 is
    // the single-shard case (shifting by the full width would be UB).
    return shard_shift_ == 64 ? 0 : (hash >> shard_shift_);
  }
  Shard& ShardFor(uint64_t hash) { return *shards_[ShardIndex(hash)]; }

  static void LruPushFront(Shard& shard, Entry* e)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  static void LruUnlink(Shard& shard, Entry* e)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);

  /// All Locked helpers require the shard mutex (checked statically via
  /// the `shard.mu` capability expression on the reference parameter).
  bool IsExpiredLocked(const Entry& e) const;
  void RemoveEntryLocked(Shard& shard, Entry* e)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  void TouchLocked(Shard& shard, Entry* e)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  Status ChargeLocked(Shard& shard, Entry* e, size_t new_charge)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  /// Evicts from the LRU tail until `needed` more bytes fit. `protect`,
  /// when non-null, names an entry that must survive (the one being
  /// charged).
  Status EvictLocked(Shard& shard, size_t needed,
                     const Entry* protect = nullptr)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  size_t EntryCharge(const Entry& e) const;

  /// Returns the entry if present & live, creating when `create` with the
  /// given kind. WrongType → InvalidArgument. `hash` is Hash64(key).
  Status FindLocked(Shard& shard, const Slice& key, uint64_t hash,
                    ValueKind kind, bool create, Entry** out)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  /// Full string-set path (create/overwrite + TTL + store), shared by
  /// SetEx and MultiSet.
  Status SetLocked(Shard& shard, const Slice& key, uint64_t hash,
                   const Slice& value, uint64_t ttl_micros)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);
  /// Get path under the shard lock, shared by Get and MultiGet.
  Status GetLocked(Shard& shard, const Slice& key, uint64_t hash,
                   std::string* value) EXCLUSIVE_LOCKS_REQUIRED(shard.mu);

  /// Materializes a string entry's value (decompress / PMem fetch).
  Status LoadStringLocked(const Entry& e, std::string* out) const;
  /// Stores a string value into the entry (compress / PMem placement).
  Status StoreStringLocked(Shard& shard, Entry* e, const Slice& value)
      EXCLUSIVE_LOCKS_REQUIRED(shard.mu);

  /// Computes hashes and a per-shard grouping of [0, n) so Multi ops can
  /// visit each shard once. Returns, via `order`, the indices sorted by
  /// shard; `shard_begin[s]..shard_begin[s+1]` delimits shard s's range.
  void GroupByShard(const std::vector<Slice>& keys,
                    std::vector<uint64_t>* hashes,
                    std::vector<uint32_t>* order,
                    std::vector<uint32_t>* shard_begin) const;

  HashEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  int shard_shift_ = 64;  // 64 - log2(shard count).
  size_t per_shard_budget_ = 0;

  /// Swapped wholesale with atomic shared_ptr ops; eviction loads it
  /// lock-free.
  std::shared_ptr<const EvictionFilter> eviction_filter_;

  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> expirations_{0};
  std::atomic<uint64_t> pmem_bytes_{0};
  std::atomic<uint64_t> multi_shard_locks_{0};
  std::atomic<uint64_t> multi_batches_{0};
};

}  // namespace cache
}  // namespace tierbase

#endif  // TIERBASE_CACHE_HASH_ENGINE_H_
