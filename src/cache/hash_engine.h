// HashEngine: TierBase's cache-tier storage engine (paper §3, "the cache
// instances implement hash tables for efficient key-value storage").
//
// Features exercised by the paper's evaluation:
//   * Redis-compatible data model: strings plus lists, hashes, sets and
//     sorted sets; CAS (compare-and-set) on strings; TTL expiry.
//   * LRU eviction against a configurable memory budget, with an eviction
//     filter so the write-back path can pin dirty entries.
//   * Value compression hook (§4.2): string values above a threshold are
//     stored compressed with the configured pre-trained compressor.
//   * DRAM/PMem split placement (§4.3): keys and index metadata always stay
//     in DRAM; string values >= pmem_value_threshold move to the simulated
//     persistent-memory device through a PmemAllocator.
//
// Thread model: the engine is sharded; shard count 1 gives the
// single-threaded event-loop behaviour, higher counts support the
// multi-thread / elastic modes with per-shard mutexes.

#ifndef TIERBASE_CACHE_HASH_ENGINE_H_
#define TIERBASE_CACHE_HASH_ENGINE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/kv_engine.h"
#include "compression/compressor.h"
#include "pmem/pmem_allocator.h"

namespace tierbase {
namespace cache {

enum class ValueKind : uint8_t {
  kString = 0,
  kList = 1,
  kHash = 2,
  kSet = 3,
  kZSet = 4,
};

enum class EvictionPolicy {
  kNoEviction,  // Set fails with OutOfSpace when over budget.
  kLru,         // Evict least-recently-used unpinned entries.
};

struct HashEngineOptions {
  /// DRAM budget; 0 = unlimited.
  size_t memory_budget = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  int shards = 1;
  Clock* clock = Clock::Real();

  /// Value compression (null = store raw). Not owned.
  Compressor* compressor = nullptr;
  size_t compress_min_bytes = 32;

  /// PMem placement (null = DRAM only). Not owned.
  PmemAllocator* pmem = nullptr;
  size_t pmem_value_threshold = 64;
};

class HashEngine : public KvEngine {
 public:
  explicit HashEngine(HashEngineOptions options = {});
  ~HashEngine() override;

  std::string name() const override { return "hash-engine"; }

  // --- Strings (KvEngine interface + extensions). ---
  Status Set(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  /// Set with TTL (microseconds from now; 0 = no expiry).
  Status SetEx(const Slice& key, const Slice& value, uint64_t ttl_micros);
  /// Compare-and-set: succeeds iff the current value equals `expected`
  /// (missing key matches empty `expected` only when allow_create).
  /// Returns Aborted on mismatch.
  Status Cas(const Slice& key, const Slice& expected, const Slice& value,
             bool allow_create = false);
  bool Exists(const Slice& key);

  // --- TTL. ---
  Status Expire(const Slice& key, uint64_t ttl_micros);
  /// Remaining TTL in micros; NotFound if absent; 0 if no expiry set.
  Result<uint64_t> Ttl(const Slice& key);

  // --- Lists. ---
  Status LPush(const Slice& key, const Slice& value);
  Status RPush(const Slice& key, const Slice& value);
  Status LPop(const Slice& key, std::string* value);
  Status RPop(const Slice& key, std::string* value);
  Result<uint64_t> LLen(const Slice& key);
  Status LRange(const Slice& key, int64_t start, int64_t stop,
                std::vector<std::string>* out);

  // --- Hashes. ---
  Status HSet(const Slice& key, const Slice& field, const Slice& value);
  Status HGet(const Slice& key, const Slice& field, std::string* value);
  Status HDel(const Slice& key, const Slice& field);
  Result<uint64_t> HLen(const Slice& key);
  Status HGetAll(const Slice& key,
                 std::vector<std::pair<std::string, std::string>>* out);

  // --- Sets. ---
  Status SAdd(const Slice& key, const Slice& member);
  Status SRem(const Slice& key, const Slice& member);
  Result<bool> SIsMember(const Slice& key, const Slice& member);
  Result<uint64_t> SCard(const Slice& key);

  // --- Sorted sets. ---
  Status ZAdd(const Slice& key, double score, const Slice& member);
  Result<double> ZScore(const Slice& key, const Slice& member);
  Status ZRangeByScore(const Slice& key, double min_score, double max_score,
                       std::vector<std::string>* out);
  Result<uint64_t> ZCard(const Slice& key);

  // --- Introspection / control. ---
  UsageStats GetUsage() const override;
  uint64_t evictions() const { return evictions_.load(); }
  uint64_t expirations() const { return expirations_.load(); }

  /// Write-back integration: return false to protect a key from eviction.
  using EvictionFilter = std::function<bool(const Slice& key)>;
  void SetEvictionFilter(EvictionFilter filter);

  /// Removes expired entries eagerly (normally lazy). Returns # removed.
  size_t SweepExpired();

  /// Drops everything (tests, reload).
  void Clear();

 private:
  struct ComplexValue {
    std::deque<std::string> list;
    std::unordered_map<std::string, std::string> hash;
    std::set<std::string> set;
    std::unordered_map<std::string, double> zscores;
    std::set<std::pair<double, std::string>> zordered;

    size_t MemoryBytes() const;
  };

  struct Entry {
    ValueKind kind = ValueKind::kString;
    std::string str;  // Inline (possibly compressed) string value.
    bool compressed = false;
    PmemPtr pmem_ptr = kInvalidPmemPtr;
    uint32_t pmem_size = 0;      // Stored (compressed) size in PMem.
    uint64_t expire_at = 0;      // Clock micros; 0 = never.
    size_t charge = 0;           // DRAM bytes charged to the budget.
    std::unique_ptr<ComplexValue> complex;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  // Front = most recently used.
    size_t charged = 0;
  };

  Shard& ShardFor(const Slice& key);
  const Shard& ShardFor(const Slice& key) const;

  /// All Locked helpers require the shard mutex.
  bool IsExpiredLocked(const Entry& e) const;
  void RemoveEntryLocked(Shard& shard,
                         std::unordered_map<std::string, Entry>::iterator it);
  void TouchLocked(Shard& shard, Entry& e, const std::string& key);
  Status ChargeLocked(Shard& shard, Entry& e, const std::string& key,
                      size_t new_charge);
  /// Evicts from the LRU tail until `needed` more bytes fit. `protect`, when
  /// non-null, names a key that must survive (the entry being charged).
  Status EvictLocked(Shard& shard, size_t needed,
                     const std::string* protect = nullptr);
  size_t EntryCharge(const std::string& key, const Entry& e) const;

  /// Returns the entry if present & live, creating when `create` with the
  /// given kind. WrongType → InvalidArgument.
  Status FindLocked(Shard& shard, const Slice& key, ValueKind kind,
                    bool create, Entry** out, std::string** stored_key);

  /// Materializes a string entry's value (decompress / PMem fetch).
  Status LoadStringLocked(const Entry& e, std::string* out) const;
  /// Stores a string value into the entry (compress / PMem placement).
  Status StoreStringLocked(Shard& shard, Entry& e, const std::string& key,
                           const Slice& value);

  HashEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_budget_ = 0;

  EvictionFilter eviction_filter_;
  std::mutex filter_mu_;

  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> expirations_{0};
  std::atomic<uint64_t> pmem_bytes_{0};
};

}  // namespace cache
}  // namespace tierbase

#endif  // TIERBASE_CACHE_HASH_ENGINE_H_
