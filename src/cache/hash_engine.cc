#include "cache/hash_engine.h"

#include <algorithm>

#include "common/hash.h"

namespace tierbase {
namespace cache {

namespace {
constexpr size_t kEntryOverhead = 64;  // Hash node + LRU node + bookkeeping.
constexpr size_t kPerElementOverhead = 32;
}  // namespace

size_t HashEngine::ComplexValue::MemoryBytes() const {
  size_t total = sizeof(ComplexValue);
  for (const auto& s : list) total += s.size() + kPerElementOverhead;
  for (const auto& [f, v] : hash) {
    total += f.size() + v.size() + kPerElementOverhead;
  }
  for (const auto& m : set) total += m.size() + kPerElementOverhead;
  for (const auto& [m, s] : zscores) {
    (void)s;
    total += 2 * m.size() + 2 * kPerElementOverhead + sizeof(double) * 2;
  }
  return total;
}

HashEngine::HashEngine(HashEngineOptions options)
    : options_(std::move(options)) {
  int shards = std::max(1, options_.shards);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_budget_ = options_.memory_budget == 0
                          ? 0
                          : options_.memory_budget / shards_.size();
}

HashEngine::~HashEngine() { Clear(); }

HashEngine::Shard& HashEngine::ShardFor(const Slice& key) {
  return *shards_[Hash64(key) % shards_.size()];
}
const HashEngine::Shard& HashEngine::ShardFor(const Slice& key) const {
  return *shards_[Hash64(key) % shards_.size()];
}

bool HashEngine::IsExpiredLocked(const Entry& e) const {
  return e.expire_at != 0 && options_.clock->NowMicros() >= e.expire_at;
}

size_t HashEngine::EntryCharge(const std::string& key, const Entry& e) const {
  size_t charge = kEntryOverhead + key.size() + e.str.size();
  if (e.complex != nullptr) charge += e.complex->MemoryBytes();
  return charge;
}

void HashEngine::RemoveEntryLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  Entry& e = it->second;
  if (e.pmem_ptr != kInvalidPmemPtr && options_.pmem != nullptr) {
    options_.pmem->Free(e.pmem_ptr, e.pmem_size);
    pmem_bytes_.fetch_sub(e.pmem_size, std::memory_order_relaxed);
  }
  shard.charged -= e.charge;
  shard.lru.erase(e.lru_it);
  shard.map.erase(it);
}

void HashEngine::TouchLocked(Shard& shard, Entry& e, const std::string& key) {
  (void)key;
  shard.lru.splice(shard.lru.begin(), shard.lru, e.lru_it);
}

Status HashEngine::EvictLocked(Shard& shard, size_t needed,
                               const std::string* protect) {
  if (per_shard_budget_ == 0) return Status::OK();
  if (options_.eviction == EvictionPolicy::kNoEviction) {
    if (shard.charged + needed > per_shard_budget_) {
      return Status::OutOfSpace("cache: memory budget exceeded");
    }
    return Status::OK();
  }

  EvictionFilter filter;
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    filter = eviction_filter_;
  }

  // Evict from the LRU tail, skipping pinned keys.
  auto it = shard.lru.rbegin();
  while (shard.charged + needed > per_shard_budget_ &&
         it != shard.lru.rend()) {
    const std::string& victim = *it;
    if ((protect != nullptr && victim == *protect) ||
        (filter && !filter(victim))) {
      ++it;
      continue;
    }
    auto map_it = shard.map.find(victim);
    ++it;  // Advance before invalidating.
    if (map_it != shard.map.end()) {
      RemoveEntryLocked(shard, map_it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      it = shard.lru.rbegin();  // List mutated; restart from the tail.
      // Re-skip pinned tail entries cheaply: the loop handles it.
    }
  }
  if (shard.charged + needed > per_shard_budget_) {
    return Status::OutOfSpace("cache: all remaining entries pinned");
  }
  return Status::OK();
}

Status HashEngine::ChargeLocked(Shard& shard, Entry& e, const std::string& key,
                                size_t new_charge) {
  if (new_charge > e.charge) {
    // Never evict the entry being charged: `e` and `key` point into its
    // map node, which eviction would free out from under us.
    Status s = EvictLocked(shard, new_charge - e.charge, &key);
    if (!s.ok()) {
      // The caller already mutated the entry to its new (unaffordable)
      // size. Keeping it would serve the new value while shard.charged
      // still records the old one, silently busting the budget — drop the
      // entry instead, like an eviction. Under tiered policies the value
      // survives in storage or the write-back dirty buffer.
      auto it = shard.map.find(key);
      if (it != shard.map.end()) RemoveEntryLocked(shard, it);
      return s;
    }
  }
  shard.charged = shard.charged - e.charge + new_charge;
  e.charge = new_charge;
  return Status::OK();
}

Status HashEngine::FindLocked(Shard& shard, const Slice& key, ValueKind kind,
                              bool create, Entry** out,
                              std::string** stored_key) {
  auto it = shard.map.find(key.ToString());
  if (it != shard.map.end() && IsExpiredLocked(it->second)) {
    expirations_.fetch_add(1, std::memory_order_relaxed);
    RemoveEntryLocked(shard, it);
    it = shard.map.end();
  }
  if (it == shard.map.end()) {
    if (!create) return Status::NotFound("");
    TIERBASE_RETURN_IF_ERROR(EvictLocked(shard, kEntryOverhead + key.size()));
    auto [new_it, inserted] = shard.map.emplace(key.ToString(), Entry());
    Entry& e = new_it->second;
    e.kind = kind;
    if (kind != ValueKind::kString) {
      e.complex = std::make_unique<ComplexValue>();
    }
    shard.lru.push_front(new_it->first);
    e.lru_it = shard.lru.begin();
    e.charge = EntryCharge(new_it->first, e);
    shard.charged += e.charge;
    *out = &e;
    if (stored_key != nullptr) {
      *stored_key = const_cast<std::string*>(&new_it->first);
    }
    return Status::OK();
  }
  if (it->second.kind != kind) {
    return Status::InvalidArgument("cache: wrong value type for key");
  }
  TouchLocked(shard, it->second, it->first);
  *out = &it->second;
  if (stored_key != nullptr) {
    *stored_key = const_cast<std::string*>(&it->first);
  }
  return Status::OK();
}

Status HashEngine::LoadStringLocked(const Entry& e, std::string* out) const {
  std::string raw;
  if (e.pmem_ptr != kInvalidPmemPtr) {
    TIERBASE_RETURN_IF_ERROR(
        options_.pmem->Load(e.pmem_ptr, e.pmem_size, &raw));
  } else {
    raw = e.str;
  }
  if (e.compressed) {
    return options_.compressor->Decompress(raw, out);
  }
  *out = std::move(raw);
  return Status::OK();
}

Status HashEngine::StoreStringLocked(Shard& shard, Entry& e,
                                     const std::string& key,
                                     const Slice& value) {
  // Free any previous PMem residency.
  if (e.pmem_ptr != kInvalidPmemPtr && options_.pmem != nullptr) {
    options_.pmem->Free(e.pmem_ptr, e.pmem_size);
    pmem_bytes_.fetch_sub(e.pmem_size, std::memory_order_relaxed);
    e.pmem_ptr = kInvalidPmemPtr;
    e.pmem_size = 0;
  }

  std::string stored;
  e.compressed = false;
  if (options_.compressor != nullptr &&
      value.size() >= options_.compress_min_bytes) {
    std::string packed;
    Status s = options_.compressor->Compress(value, &packed);
    if (s.ok() && packed.size() < value.size()) {
      stored = std::move(packed);
      e.compressed = true;
    } else {
      stored = value.ToString();
    }
  } else {
    stored = value.ToString();
  }

  // PMem placement: larger values go to the persistent-memory device;
  // small hot data and all key/index structures stay in DRAM (§4.3).
  if (options_.pmem != nullptr &&
      stored.size() >= options_.pmem_value_threshold) {
    PmemPtr ptr = options_.pmem->Store(stored);
    if (ptr != kInvalidPmemPtr) {
      e.pmem_ptr = ptr;
      e.pmem_size = static_cast<uint32_t>(stored.size());
      pmem_bytes_.fetch_add(stored.size(), std::memory_order_relaxed);
      e.str.clear();
      e.str.shrink_to_fit();
      return ChargeLocked(shard, e, key, EntryCharge(key, e));
    }
    // PMem full: fall through to DRAM.
  }
  e.str = std::move(stored);
  return ChargeLocked(shard, e, key, EntryCharge(key, e));
}

// --- Strings. ---

Status HashEngine::Set(const Slice& key, const Slice& value) {
  return SetEx(key, value, 0);
}

Status HashEngine::SetEx(const Slice& key, const Slice& value,
                         uint64_t ttl_micros) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kString, true, &e, &stored_key);
  if (s.IsInvalidArgument()) {
    // Overwrite a complex-typed key, Redis SET semantics.
    auto it = shard.map.find(key.ToString());
    RemoveEntryLocked(shard, it);
    s = FindLocked(shard, key, ValueKind::kString, true, &e, &stored_key);
  }
  TIERBASE_RETURN_IF_ERROR(s);
  e->expire_at =
      ttl_micros == 0 ? 0 : options_.clock->NowMicros() + ttl_micros;
  return StoreStringLocked(shard, *e, *stored_key, value);
}

Status HashEngine::Get(const Slice& key, std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kString, false, &e, nullptr));
  return LoadStringLocked(*e, value);
}

Status HashEngine::Delete(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end()) return Status::NotFound("");
  RemoveEntryLocked(shard, it);
  return Status::OK();
}

Status HashEngine::Cas(const Slice& key, const Slice& expected,
                       const Slice& value, bool allow_create) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kString, false, &e, &stored_key);
  if (s.IsNotFound()) {
    if (!(allow_create && expected.empty())) {
      return Status::Aborted("cas: key missing");
    }
    TIERBASE_RETURN_IF_ERROR(
        FindLocked(shard, key, ValueKind::kString, true, &e, &stored_key));
    return StoreStringLocked(shard, *e, *stored_key, value);
  }
  TIERBASE_RETURN_IF_ERROR(s);
  std::string current;
  TIERBASE_RETURN_IF_ERROR(LoadStringLocked(*e, &current));
  if (Slice(current) != expected) {
    return Status::Aborted("cas: value mismatch");
  }
  return StoreStringLocked(shard, *e, *stored_key, value);
}

bool HashEngine::Exists(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end()) return false;
  if (IsExpiredLocked(it->second)) {
    expirations_.fetch_add(1, std::memory_order_relaxed);
    RemoveEntryLocked(shard, it);
    return false;
  }
  return true;
}

// --- TTL. ---

Status HashEngine::Expire(const Slice& key, uint64_t ttl_micros) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end() || IsExpiredLocked(it->second)) {
    return Status::NotFound("");
  }
  it->second.expire_at =
      ttl_micros == 0 ? 0 : options_.clock->NowMicros() + ttl_micros;
  return Status::OK();
}

Result<uint64_t> HashEngine::Ttl(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key.ToString());
  if (it == shard.map.end() || IsExpiredLocked(it->second)) {
    return Status::NotFound("");
  }
  if (it->second.expire_at == 0) return uint64_t{0};
  return it->second.expire_at - options_.clock->NowMicros();
}

// --- Lists. ---

Status HashEngine::LPush(const Slice& key, const Slice& value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kList, true, &e, &stored_key));
  e->complex->list.emplace_front(value.data(), value.size());
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Status HashEngine::RPush(const Slice& key, const Slice& value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kList, true, &e, &stored_key));
  e->complex->list.emplace_back(value.data(), value.size());
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Status HashEngine::LPop(const Slice& key, std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kList, false, &e, &stored_key));
  if (e->complex->list.empty()) return Status::NotFound("empty list");
  *value = std::move(e->complex->list.front());
  e->complex->list.pop_front();
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Status HashEngine::RPop(const Slice& key, std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kList, false, &e, &stored_key));
  if (e->complex->list.empty()) return Status::NotFound("empty list");
  *value = std::move(e->complex->list.back());
  e->complex->list.pop_back();
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Result<uint64_t> HashEngine::LLen(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kList, false, &e, nullptr);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->list.size());
}

Status HashEngine::LRange(const Slice& key, int64_t start, int64_t stop,
                          std::vector<std::string>* out) {
  out->clear();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kList, false, &e, nullptr);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  int64_t n = static_cast<int64_t>(e->complex->list.size());
  if (start < 0) start += n;
  if (stop < 0) stop += n;
  start = std::max<int64_t>(0, start);
  stop = std::min(stop, n - 1);
  for (int64_t i = start; i <= stop; ++i) {
    out->push_back(e->complex->list[static_cast<size_t>(i)]);
  }
  return Status::OK();
}

// --- Hashes. ---

Status HashEngine::HSet(const Slice& key, const Slice& field,
                        const Slice& value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kHash, true, &e, &stored_key));
  e->complex->hash[field.ToString()] = value.ToString();
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Status HashEngine::HGet(const Slice& key, const Slice& field,
                        std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kHash, false, &e, nullptr));
  auto it = e->complex->hash.find(field.ToString());
  if (it == e->complex->hash.end()) return Status::NotFound("no field");
  *value = it->second;
  return Status::OK();
}

Status HashEngine::HDel(const Slice& key, const Slice& field) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kHash, false, &e, &stored_key));
  if (e->complex->hash.erase(field.ToString()) == 0) {
    return Status::NotFound("no field");
  }
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Result<uint64_t> HashEngine::HLen(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kHash, false, &e, nullptr);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->hash.size());
}

Status HashEngine::HGetAll(
    const Slice& key, std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kHash, false, &e, nullptr);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  for (const auto& [f, v] : e->complex->hash) out->emplace_back(f, v);
  return Status::OK();
}

// --- Sets. ---

Status HashEngine::SAdd(const Slice& key, const Slice& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kSet, true, &e, &stored_key));
  e->complex->set.insert(member.ToString());
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Status HashEngine::SRem(const Slice& key, const Slice& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kSet, false, &e, &stored_key));
  if (e->complex->set.erase(member.ToString()) == 0) {
    return Status::NotFound("no member");
  }
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Result<bool> HashEngine::SIsMember(const Slice& key, const Slice& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kSet, false, &e, nullptr);
  if (s.IsNotFound()) return false;
  if (!s.ok()) return s;
  return e->complex->set.count(member.ToString()) > 0;
}

Result<uint64_t> HashEngine::SCard(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kSet, false, &e, nullptr);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->set.size());
}

// --- Sorted sets. ---

Status HashEngine::ZAdd(const Slice& key, double score, const Slice& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  std::string* stored_key = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, ValueKind::kZSet, true, &e, &stored_key));
  std::string m = member.ToString();
  auto it = e->complex->zscores.find(m);
  if (it != e->complex->zscores.end()) {
    e->complex->zordered.erase({it->second, m});
    it->second = score;
  } else {
    e->complex->zscores[m] = score;
  }
  e->complex->zordered.insert({score, m});
  return ChargeLocked(shard, *e, *stored_key, EntryCharge(*stored_key, *e));
}

Result<double> HashEngine::ZScore(const Slice& key, const Slice& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kZSet, false, &e, nullptr);
  if (!s.ok()) return s;
  auto it = e->complex->zscores.find(member.ToString());
  if (it == e->complex->zscores.end()) return Status::NotFound("no member");
  return it->second;
}

Status HashEngine::ZRangeByScore(const Slice& key, double min_score,
                                 double max_score,
                                 std::vector<std::string>* out) {
  out->clear();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kZSet, false, &e, nullptr);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  auto lo = e->complex->zordered.lower_bound({min_score, ""});
  for (auto it = lo; it != e->complex->zordered.end() &&
                     it->first <= max_score;
       ++it) {
    out->push_back(it->second);
  }
  return Status::OK();
}

Result<uint64_t> HashEngine::ZCard(const Slice& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, ValueKind::kZSet, false, &e, nullptr);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->zscores.size());
}

// --- Introspection / control. ---

UsageStats HashEngine::GetUsage() const {
  UsageStats usage;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    usage.memory_bytes += shard->charged;
    usage.keys += shard->map.size();
  }
  usage.pmem_bytes = pmem_bytes_.load(std::memory_order_relaxed);
  return usage;
}

void HashEngine::SetEvictionFilter(EvictionFilter filter) {
  std::lock_guard<std::mutex> lock(filter_mu_);
  eviction_filter_ = std::move(filter);
}

size_t HashEngine::SweepExpired() {
  size_t removed = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (IsExpiredLocked(it->second)) {
        auto victim = it++;
        RemoveEntryLocked(*shard, victim);
        ++removed;
        expirations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  return removed;
}

void HashEngine::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      auto victim = it++;
      RemoveEntryLocked(*shard, victim);
    }
  }
}

}  // namespace cache
}  // namespace tierbase
