#include "cache/hash_engine.h"

#include <algorithm>
#include <iterator>

#include "analytics/workload_analytics.h"
#include "common/hash.h"
#include "common/mutex.h"

namespace tierbase {
namespace cache {

namespace {
constexpr size_t kEntryOverhead = 64;  // Hash node + LRU links + bookkeeping.
constexpr size_t kPerElementOverhead = 32;
// Initial bucket reservation for hash/zset entries: covers the common
// small-collection case without rehashing on the first few inserts.
constexpr size_t kComplexReserve = 8;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

// --- Intrusive chained hash table. ---

void HashEngine::Table::Insert(Entry* e) {
  Entry** ptr = &buckets[e->hash & (buckets.size() - 1)];
  e->next_hash = *ptr;
  *ptr = e;
  if (++size > buckets.size()) Grow();
}

HashEngine::Entry* HashEngine::Table::Remove(const Slice& key,
                                             uint64_t hash) {
  Entry** ptr = &buckets[hash & (buckets.size() - 1)];
  while (*ptr != nullptr &&
         ((*ptr)->hash != hash || Slice((*ptr)->key) != key)) {
    ptr = &(*ptr)->next_hash;
  }
  Entry* e = *ptr;
  if (e != nullptr) {
    *ptr = e->next_hash;
    e->next_hash = nullptr;
    --size;
  }
  return e;
}

void HashEngine::Table::Grow() {
  std::vector<Entry*> grown(buckets.size() * 2, nullptr);
  const size_t mask = grown.size() - 1;
  for (Entry* e : buckets) {
    while (e != nullptr) {
      Entry* next = e->next_hash;
      Entry** dst = &grown[e->hash & mask];
      e->next_hash = *dst;
      *dst = e;
      e = next;
    }
  }
  buckets.swap(grown);
}

// --- Intrusive LRU list. ---

void HashEngine::LruPushFront(Shard& shard, Entry* e) {
  e->lru_prev = nullptr;
  e->lru_next = shard.lru_head;
  if (shard.lru_head != nullptr) shard.lru_head->lru_prev = e;
  shard.lru_head = e;
  if (shard.lru_tail == nullptr) shard.lru_tail = e;
}

void HashEngine::LruUnlink(Shard& shard, Entry* e) {
  if (e->lru_prev != nullptr) e->lru_prev->lru_next = e->lru_next;
  else shard.lru_head = e->lru_next;
  if (e->lru_next != nullptr) e->lru_next->lru_prev = e->lru_prev;
  else shard.lru_tail = e->lru_prev;
  e->lru_prev = e->lru_next = nullptr;
}

// --- Engine. ---

HashEngine::HashEngine(HashEngineOptions options)
    : options_(std::move(options)) {
  size_t shards =
      RoundUpPow2(static_cast<size_t>(std::max(1, options_.shards)));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_shift_ = 64;
  for (size_t s = shards; s > 1; s >>= 1) --shard_shift_;
  per_shard_budget_ =
      options_.memory_budget == 0 ? 0 : options_.memory_budget / shards;
}

HashEngine::~HashEngine() { Clear(); }

bool HashEngine::IsExpiredLocked(const Entry& e) const {
  return e.expire_at != 0 && options_.clock->NowMicros() >= e.expire_at;
}

size_t HashEngine::EntryCharge(const Entry& e) const {
  size_t charge = kEntryOverhead + e.key.size() + e.str.size();
  if (e.complex != nullptr) charge += e.complex->MemoryBytes();
  return charge;
}

void HashEngine::RemoveEntryLocked(Shard& shard, Entry* e) {
  if (e->pmem_ptr != kInvalidPmemPtr && options_.pmem != nullptr) {
    options_.pmem->Free(e->pmem_ptr, e->pmem_size);
    pmem_bytes_.fetch_sub(e->pmem_size, std::memory_order_relaxed);
  }
  shard.charged -= e->charge;
  LruUnlink(shard, e);
  shard.table.Remove(Slice(e->key), e->hash);
  delete e;
}

void HashEngine::TouchLocked(Shard& shard, Entry* e) {
  // No budget → no eviction → recency order is irrelevant; skip the
  // reordering so reads mutate nothing.
  if (per_shard_budget_ == 0) return;
  if (shard.lru_head == e) return;
  LruUnlink(shard, e);
  LruPushFront(shard, e);
  ++shard.lru_touches;
}

Status HashEngine::EvictLocked(Shard& shard, size_t needed,
                               const Entry* protect) {
  if (per_shard_budget_ == 0) return Status::OK();
  if (options_.eviction == EvictionPolicy::kNoEviction) {
    if (shard.charged + needed > per_shard_budget_) {
      return Status::OutOfSpace("cache: memory budget exceeded");
    }
    return Status::OK();
  }

  std::shared_ptr<const EvictionFilter> filter =
      std::atomic_load_explicit(&eviction_filter_,
                                std::memory_order_acquire);

  // March from the LRU tail, skipping pinned entries. Removing a node
  // leaves its neighbours' links intact, so the walk continues from the
  // saved predecessor without restarting.
  Entry* e = shard.lru_tail;
  while (shard.charged + needed > per_shard_budget_ && e != nullptr) {
    Entry* prev = e->lru_prev;
    if (e != protect &&
        (filter == nullptr || (*filter)(Slice(e->key)))) {
      RemoveEntryLocked(shard, e);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    e = prev;
  }
  if (shard.charged + needed > per_shard_budget_) {
    return Status::OutOfSpace("cache: all remaining entries pinned");
  }
  return Status::OK();
}

Status HashEngine::ChargeLocked(Shard& shard, Entry* e, size_t new_charge) {
  if (new_charge > e->charge) {
    // Never evict the entry being charged: eviction would free the node
    // out from under us.
    Status s = EvictLocked(shard, new_charge - e->charge, e);
    if (!s.ok()) {
      // The caller already mutated the entry to its new (unaffordable)
      // size. Keeping it would serve the new value while shard.charged
      // still records the old one, silently busting the budget — drop the
      // entry instead, like an eviction. Under tiered policies the value
      // survives in storage or the write-back dirty buffer.
      RemoveEntryLocked(shard, e);
      return s;
    }
  }
  shard.charged = shard.charged - e->charge + new_charge;
  e->charge = new_charge;
  return Status::OK();
}

Status HashEngine::FindLocked(Shard& shard, const Slice& key, uint64_t hash,
                              ValueKind kind, bool create, Entry** out) {
  Entry* e = shard.table.Find(key, hash);
  if (e != nullptr && IsExpiredLocked(*e)) {
    expirations_.fetch_add(1, std::memory_order_relaxed);
    RemoveEntryLocked(shard, e);
    e = nullptr;
  }
  if (e == nullptr) {
    if (!create) return Status::NotFound("");
    TIERBASE_RETURN_IF_ERROR(EvictLocked(shard, kEntryOverhead + key.size()));
    e = new Entry();
    e->hash = hash;
    e->key.assign(key.data(), key.size());
    e->kind = kind;
    if (kind != ValueKind::kString) {
      e->complex = std::make_unique<ComplexValue>();
      if (kind == ValueKind::kHash) e->complex->hash.reserve(kComplexReserve);
      if (kind == ValueKind::kZSet) {
        e->complex->zscores.reserve(kComplexReserve);
      }
    }
    shard.table.Insert(e);
    LruPushFront(shard, e);
    e->charge = EntryCharge(*e);
    shard.charged += e->charge;
    *out = e;
    return Status::OK();
  }
  if (e->kind != kind) {
    return Status::InvalidArgument("cache: wrong value type for key");
  }
  TouchLocked(shard, e);
  *out = e;
  return Status::OK();
}

Status HashEngine::LoadStringLocked(const Entry& e, std::string* out) const {
  std::string raw;
  if (e.pmem_ptr != kInvalidPmemPtr) {
    TIERBASE_RETURN_IF_ERROR(
        options_.pmem->Load(e.pmem_ptr, e.pmem_size, &raw));
  } else if (!e.compressed) {
    // Hot path: DRAM-resident uncompressed value, copy straight out.
    out->assign(e.str.data(), e.str.size());
    return Status::OK();
  } else {
    raw = e.str;
  }
  if (e.compressed) {
    return options_.compressor->Decompress(raw, out);
  }
  *out = std::move(raw);
  return Status::OK();
}

Status HashEngine::StoreStringLocked(Shard& shard, Entry* e,
                                     const Slice& value) {
  // Free any previous PMem residency.
  if (e->pmem_ptr != kInvalidPmemPtr && options_.pmem != nullptr) {
    options_.pmem->Free(e->pmem_ptr, e->pmem_size);
    pmem_bytes_.fetch_sub(e->pmem_size, std::memory_order_relaxed);
    e->pmem_ptr = kInvalidPmemPtr;
    e->pmem_size = 0;
  }

  e->compressed = false;
  if (options_.compressor != nullptr &&
      value.size() >= options_.compress_min_bytes) {
    std::string packed;
    Status s = options_.compressor->Compress(value, &packed);
    if (s.ok() && packed.size() < value.size()) {
      e->str = std::move(packed);
      e->compressed = true;
    } else {
      e->str.assign(value.data(), value.size());
    }
  } else {
    e->str.assign(value.data(), value.size());
  }

  // PMem placement: larger values go to the persistent-memory device;
  // small hot data and all key/index structures stay in DRAM (§4.3).
  if (options_.pmem != nullptr &&
      e->str.size() >= options_.pmem_value_threshold) {
    PmemPtr ptr = options_.pmem->Store(e->str);
    if (ptr != kInvalidPmemPtr) {
      e->pmem_ptr = ptr;
      e->pmem_size = static_cast<uint32_t>(e->str.size());
      pmem_bytes_.fetch_add(e->str.size(), std::memory_order_relaxed);
      e->str.clear();
      e->str.shrink_to_fit();
    }
    // PMem full: the value stays in DRAM.
  }
  return ChargeLocked(shard, e, EntryCharge(*e));
}

// --- Strings. ---

Status HashEngine::SetLocked(Shard& shard, const Slice& key, uint64_t hash,
                             const Slice& value, uint64_t ttl_micros) {
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kString, true, &e);
  if (s.IsInvalidArgument()) {
    // Overwrite a complex-typed key, Redis SET semantics.
    Entry* old = shard.table.Find(key, hash);
    if (old != nullptr) RemoveEntryLocked(shard, old);
    s = FindLocked(shard, key, hash, ValueKind::kString, true, &e);
  }
  TIERBASE_RETURN_IF_ERROR(s);
  e->expire_at =
      ttl_micros == 0 ? 0 : options_.clock->NowMicros() + ttl_micros;
  return StoreStringLocked(shard, e, value);
}

Status HashEngine::GetLocked(Shard& shard, const Slice& key, uint64_t hash,
                             std::string* value) {
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kString, false, &e));
  return LoadStringLocked(*e, value);
}

Status HashEngine::Set(const Slice& key, const Slice& value) {
  return SetEx(key, value, 0);
}

Status HashEngine::SetEx(const Slice& key, const Slice& value,
                         uint64_t ttl_micros) {
  const uint64_t hash = Hash64(key);
  if (options_.analytics != nullptr) {
    options_.analytics->RecordWrite(key, hash, value.size(), ttl_micros);
  }
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  return SetLocked(shard, key, hash, value, ttl_micros);
}

Status HashEngine::Get(const Slice& key, std::string* value) {
  const uint64_t hash = Hash64(key);
  if (options_.analytics != nullptr) options_.analytics->RecordRead(key, hash);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  return GetLocked(shard, key, hash, value);
}

Status HashEngine::Delete(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = shard.table.Find(key, hash);
  if (e == nullptr) return Status::NotFound("");
  RemoveEntryLocked(shard, e);
  return Status::OK();
}

void HashEngine::GroupByShard(const std::vector<Slice>& keys,
                              std::vector<uint64_t>* hashes,
                              std::vector<uint32_t>* order,
                              std::vector<uint32_t>* shard_begin) const {
  const size_t n = keys.size();
  const size_t num_shards = shards_.size();
  hashes->resize(n);
  shard_begin->assign(num_shards + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    (*hashes)[i] = Hash64(keys[i]);
    ++(*shard_begin)[ShardIndex((*hashes)[i]) + 1];
  }
  for (size_t s = 0; s < num_shards; ++s) {
    (*shard_begin)[s + 1] += (*shard_begin)[s];
  }
  // Counting sort of indices into shard-contiguous order.
  std::vector<uint32_t> cursor(shard_begin->begin(), shard_begin->end() - 1);
  order->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*order)[cursor[ShardIndex((*hashes)[i])]++] = static_cast<uint32_t>(i);
  }
}

void HashEngine::MultiGet(const std::vector<Slice>& keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  multi_batches_.fetch_add(1, std::memory_order_relaxed);

  std::vector<uint64_t> hashes;
  std::vector<uint32_t> order, shard_begin;
  GroupByShard(keys, &hashes, &order, &shard_begin);
  if (options_.analytics != nullptr) {
    for (size_t i = 0; i < keys.size(); ++i) {
      options_.analytics->RecordRead(keys[i], hashes[i]);
    }
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_begin[s] == shard_begin[s + 1]) continue;
    Shard& shard = *shards_[s];
    common::MutexLock lock(&shard.mu);
    multi_shard_locks_.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t pos = shard_begin[s]; pos < shard_begin[s + 1]; ++pos) {
      const uint32_t i = order[pos];
      (*statuses)[i] =
          GetLocked(shard, keys[i], hashes[i], &(*values)[i]);
    }
  }
}

void HashEngine::MultiSet(const std::vector<Slice>& keys,
                          const std::vector<Slice>& values,
                          std::vector<Status>* statuses) {
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) return;
  multi_batches_.fetch_add(1, std::memory_order_relaxed);

  std::vector<uint64_t> hashes;
  std::vector<uint32_t> order, shard_begin;
  GroupByShard(keys, &hashes, &order, &shard_begin);
  if (options_.analytics != nullptr) {
    for (size_t i = 0; i < keys.size(); ++i) {
      options_.analytics->RecordWrite(keys[i], hashes[i], values[i].size(),
                                      0);
    }
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_begin[s] == shard_begin[s + 1]) continue;
    Shard& shard = *shards_[s];
    common::MutexLock lock(&shard.mu);
    multi_shard_locks_.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t pos = shard_begin[s]; pos < shard_begin[s + 1]; ++pos) {
      const uint32_t i = order[pos];
      (*statuses)[i] = SetLocked(shard, keys[i], hashes[i], values[i], 0);
    }
  }
}

Status HashEngine::Cas(const Slice& key, const Slice& expected,
                       const Slice& value, bool allow_create) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kString, false, &e);
  if (s.IsNotFound()) {
    if (!(allow_create && expected.empty())) {
      return Status::Aborted("cas: key missing");
    }
    TIERBASE_RETURN_IF_ERROR(
        FindLocked(shard, key, hash, ValueKind::kString, true, &e));
    return StoreStringLocked(shard, e, value);
  }
  TIERBASE_RETURN_IF_ERROR(s);
  std::string current;
  TIERBASE_RETURN_IF_ERROR(LoadStringLocked(*e, &current));
  if (Slice(current) != expected) {
    return Status::Aborted("cas: value mismatch");
  }
  return StoreStringLocked(shard, e, value);
}

bool HashEngine::Exists(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = shard.table.Find(key, hash);
  if (e == nullptr) return false;
  if (IsExpiredLocked(*e)) {
    expirations_.fetch_add(1, std::memory_order_relaxed);
    RemoveEntryLocked(shard, e);
    return false;
  }
  return true;
}

// --- TTL. ---

Status HashEngine::Expire(const Slice& key, uint64_t ttl_micros) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = shard.table.Find(key, hash);
  if (e == nullptr || IsExpiredLocked(*e)) {
    return Status::NotFound("");
  }
  e->expire_at =
      ttl_micros == 0 ? 0 : options_.clock->NowMicros() + ttl_micros;
  return Status::OK();
}

Result<uint64_t> HashEngine::Ttl(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = shard.table.Find(key, hash);
  if (e == nullptr || IsExpiredLocked(*e)) {
    return Status::NotFound("");
  }
  if (e->expire_at == 0) return uint64_t{0};
  return e->expire_at - options_.clock->NowMicros();
}

// --- Lists. ---

Status HashEngine::LPush(const Slice& key, const Slice& value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kList, true, &e));
  e->complex->list.emplace_front(value.data(), value.size());
  e->complex->bytes += value.size() + kPerElementOverhead;
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Status HashEngine::RPush(const Slice& key, const Slice& value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kList, true, &e));
  e->complex->list.emplace_back(value.data(), value.size());
  e->complex->bytes += value.size() + kPerElementOverhead;
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Status HashEngine::LPop(const Slice& key, std::string* value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kList, false, &e));
  if (e->complex->list.empty()) return Status::NotFound("empty list");
  *value = std::move(e->complex->list.front());
  e->complex->list.pop_front();
  e->complex->bytes -= value->size() + kPerElementOverhead;
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Status HashEngine::RPop(const Slice& key, std::string* value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kList, false, &e));
  if (e->complex->list.empty()) return Status::NotFound("empty list");
  *value = std::move(e->complex->list.back());
  e->complex->list.pop_back();
  e->complex->bytes -= value->size() + kPerElementOverhead;
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Result<uint64_t> HashEngine::LLen(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kList, false, &e);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->list.size());
}

Status HashEngine::LRange(const Slice& key, int64_t start, int64_t stop,
                          std::vector<std::string>* out) {
  out->clear();
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kList, false, &e);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  int64_t n = static_cast<int64_t>(e->complex->list.size());
  if (start < 0) start += n;
  if (stop < 0) stop += n;
  start = std::max<int64_t>(0, start);
  stop = std::min(stop, n - 1);
  for (int64_t i = start; i <= stop; ++i) {
    out->push_back(e->complex->list[static_cast<size_t>(i)]);
  }
  return Status::OK();
}

// --- Hashes. ---

Status HashEngine::HSet(const Slice& key, const Slice& field,
                        const Slice& value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kHash, true, &e));
  auto [it, inserted] =
      e->complex->hash.try_emplace(field.ToString(), std::string());
  if (inserted) {
    e->complex->bytes += field.size() + value.size() + kPerElementOverhead;
  } else {
    e->complex->bytes += value.size();
    e->complex->bytes -= it->second.size();
  }
  it->second.assign(value.data(), value.size());
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Status HashEngine::HGet(const Slice& key, const Slice& field,
                        std::string* value) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kHash, false, &e));
  auto it = e->complex->hash.find(field.ToString());
  if (it == e->complex->hash.end()) return Status::NotFound("no field");
  *value = it->second;
  return Status::OK();
}

Status HashEngine::HDel(const Slice& key, const Slice& field) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kHash, false, &e));
  auto it = e->complex->hash.find(field.ToString());
  if (it == e->complex->hash.end()) return Status::NotFound("no field");
  e->complex->bytes -=
      field.size() + it->second.size() + kPerElementOverhead;
  e->complex->hash.erase(it);
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Result<uint64_t> HashEngine::HLen(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kHash, false, &e);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->hash.size());
}

Status HashEngine::HGetAll(
    const Slice& key, std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kHash, false, &e);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  for (const auto& [f, v] : e->complex->hash) out->emplace_back(f, v);
  return Status::OK();
}

// --- Sets. ---

Status HashEngine::SAdd(const Slice& key, const Slice& member) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kSet, true, &e));
  if (e->complex->set.insert(member.ToString()).second) {
    e->complex->bytes += member.size() + kPerElementOverhead;
  }
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Status HashEngine::SRem(const Slice& key, const Slice& member) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kSet, false, &e));
  if (e->complex->set.erase(member.ToString()) == 0) {
    return Status::NotFound("no member");
  }
  e->complex->bytes -= member.size() + kPerElementOverhead;
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Result<bool> HashEngine::SIsMember(const Slice& key, const Slice& member) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kSet, false, &e);
  if (s.IsNotFound()) return false;
  if (!s.ok()) return s;
  return e->complex->set.count(member.ToString()) > 0;
}

Result<uint64_t> HashEngine::SCard(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kSet, false, &e);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->set.size());
}

// --- Sorted sets. ---

Status HashEngine::ZAdd(const Slice& key, double score, const Slice& member) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  TIERBASE_RETURN_IF_ERROR(
      FindLocked(shard, key, hash, ValueKind::kZSet, true, &e));
  std::string m = member.ToString();
  auto it = e->complex->zscores.find(m);
  if (it != e->complex->zscores.end()) {
    e->complex->zordered.erase({it->second, m});
    it->second = score;
  } else {
    e->complex->zscores[m] = score;
    e->complex->bytes +=
        2 * m.size() + 2 * kPerElementOverhead + sizeof(double) * 2;
  }
  e->complex->zordered.insert({score, m});
  return ChargeLocked(shard, e, EntryCharge(*e));
}

Result<double> HashEngine::ZScore(const Slice& key, const Slice& member) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kZSet, false, &e);
  if (!s.ok()) return s;
  auto it = e->complex->zscores.find(member.ToString());
  if (it == e->complex->zscores.end()) return Status::NotFound("no member");
  return it->second;
}

Status HashEngine::ZRangeByScore(const Slice& key, double min_score,
                                 double max_score,
                                 std::vector<std::string>* out) {
  out->clear();
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kZSet, false, &e);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  auto lo = e->complex->zordered.lower_bound({min_score, ""});
  for (auto it = lo; it != e->complex->zordered.end() &&
                     it->first <= max_score;
       ++it) {
    out->push_back(it->second);
  }
  return Status::OK();
}

Status HashEngine::ZRange(const Slice& key, int64_t start, int64_t stop,
                          std::vector<std::pair<std::string, double>>* out) {
  out->clear();
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kZSet, false, &e);
  if (s.IsNotFound()) return Status::OK();
  TIERBASE_RETURN_IF_ERROR(s);
  const int64_t n = static_cast<int64_t>(e->complex->zordered.size());
  // Branch before adding to keep INT64_MIN-ish ranks from overflowing.
  if (start < 0) start = start < -n ? 0 : start + n;
  if (stop < 0) stop = stop < -n ? -1 : stop + n;
  if (stop >= n) stop = n - 1;
  if (start > stop || start >= n) return Status::OK();
  auto it = e->complex->zordered.begin();
  std::advance(it, start);
  for (int64_t rank = start; rank <= stop; ++rank, ++it) {
    out->emplace_back(it->second, it->first);
  }
  return Status::OK();
}

Result<uint64_t> HashEngine::ZCard(const Slice& key) {
  const uint64_t hash = Hash64(key);
  Shard& shard = ShardFor(hash);
  common::MutexLock lock(&shard.mu);
  Entry* e = nullptr;
  Status s = FindLocked(shard, key, hash, ValueKind::kZSet, false, &e);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  return static_cast<uint64_t>(e->complex->zscores.size());
}

// --- Introspection / control. ---

UsageStats HashEngine::GetUsage() const {
  UsageStats usage;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    usage.memory_bytes += shard->charged;
    usage.keys += shard->table.size;
  }
  usage.pmem_bytes = pmem_bytes_.load(std::memory_order_relaxed);
  return usage;
}

uint64_t HashEngine::lru_touches() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    total += shard->lru_touches;
  }
  return total;
}

void HashEngine::SetEvictionFilter(EvictionFilter filter) {
  std::shared_ptr<const EvictionFilter> next =
      filter ? std::make_shared<const EvictionFilter>(std::move(filter))
             : nullptr;
  std::atomic_store_explicit(&eviction_filter_, std::move(next),
                             std::memory_order_release);
}

size_t HashEngine::SweepExpired() {
  size_t removed = 0;
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    for (size_t b = 0; b < shard->table.buckets.size(); ++b) {
      Entry* e = shard->table.buckets[b];
      while (e != nullptr) {
        Entry* next = e->next_hash;
        if (IsExpiredLocked(*e)) {
          RemoveEntryLocked(*shard, e);
          ++removed;
          expirations_.fetch_add(1, std::memory_order_relaxed);
        }
        e = next;
      }
    }
  }
  return removed;
}

uint64_t HashEngine::Scan(uint64_t cursor, size_t count,
                          std::vector<std::string>* keys) {
  // Cursor layout: shard index in the high 16 bits, bucket index below.
  // Bucket counts can grow between calls; a rehash splits chains across
  // buckets we may already have passed, which is within the documented
  // (Redis-style) weak guarantee.
  if (count == 0) count = 10;
  size_t shard_idx = static_cast<size_t>(cursor >> 48);
  size_t bucket_idx = static_cast<size_t>(cursor & ((uint64_t{1} << 48) - 1));
  while (shard_idx < shards_.size()) {
    Shard& shard = *shards_[shard_idx];
    common::MutexLock lock(&shard.mu);
    const size_t buckets = shard.table.buckets.size();
    if (bucket_idx >= buckets) {
      ++shard_idx;
      bucket_idx = 0;
      continue;
    }
    while (bucket_idx < buckets) {
      for (Entry* e = shard.table.buckets[bucket_idx]; e != nullptr;
           e = e->next_hash) {
        if (!IsExpiredLocked(*e)) keys->push_back(e->key);
      }
      ++bucket_idx;
      if (keys->size() >= count) {
        if (bucket_idx >= buckets) {
          ++shard_idx;
          bucket_idx = 0;
        }
        if (shard_idx >= shards_.size()) return 0;
        return (static_cast<uint64_t>(shard_idx) << 48) |
               static_cast<uint64_t>(bucket_idx);
      }
    }
    ++shard_idx;
    bucket_idx = 0;
  }
  return 0;
}

void HashEngine::Clear() {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    for (size_t b = 0; b < shard->table.buckets.size(); ++b) {
      Entry* e = shard->table.buckets[b];
      while (e != nullptr) {
        Entry* next = e->next_hash;
        RemoveEntryLocked(*shard, e);
        e = next;
      }
    }
  }
}

}  // namespace cache
}  // namespace tierbase
