// Tests for the networked cluster subsystem (src/cluster_net/): wire
// routing, the coordinator control plane, -MOVED handling, the smart
// client's scatter–gather, wire replication with gap-triggered full
// resync, replica promotion, kill-a-master-under-YCSB continuity, and the
// RESP proxy.
//
// Everything boots in-process on loopback with ephemeral ports, so the
// suite also runs under ASan/UBSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster_net/cluster_client.h"
#include "cluster_net/coordinator_service.h"
#include "cluster_net/node_state.h"
#include "cluster_net/oplog.h"
#include "cluster_net/proxy.h"
#include "cluster_net/routing.h"
#include "server/client.h"
#include "server/server.h"
#include "tierbase/workload.h"

namespace tierbase {
namespace cluster_net {
namespace {

using server::Client;
using server::RespValue;

TEST(WireRoutingTest, SerializeParseRoundTrip) {
  WireRouting routing;
  routing.epoch = 7;
  routing.virtual_nodes = 32;
  routing.nodes.push_back({"n1", "127.0.0.1", 7001, false, "n1", true});
  routing.nodes.push_back({"r1", "127.0.0.1", 7002, true, "n1", true});
  routing.nodes.push_back({"n2", "10.0.0.5", 7003, false, "n2", false});

  WireRouting parsed;
  ASSERT_TRUE(WireRouting::Parse(routing.Serialize(), &parsed).ok());
  EXPECT_EQ(7u, parsed.epoch);
  EXPECT_EQ(32, parsed.virtual_nodes);
  ASSERT_EQ(3u, parsed.nodes.size());
  EXPECT_EQ("r1", parsed.nodes[1].id);
  EXPECT_TRUE(parsed.nodes[1].is_replica);
  EXPECT_EQ("n1", parsed.nodes[1].shard);
  EXPECT_FALSE(parsed.nodes[2].healthy);
  EXPECT_EQ(7003, parsed.nodes[2].port);

  // The ring only contains shards with a healthy master: n2 is down.
  cluster::Router router = parsed.BuildRouter();
  EXPECT_TRUE(router.Contains("n1"));
  EXPECT_FALSE(router.Contains("n2"));
  EXPECT_EQ(nullptr, parsed.MasterOfShard("n2"));
  ASSERT_NE(nullptr, parsed.ReplicaOfShard("n1"));
  EXPECT_EQ("r1", parsed.ReplicaOfShard("n1")->id);
}

TEST(WireRoutingTest, ParseRejectsGarbage) {
  WireRouting parsed;
  EXPECT_FALSE(WireRouting::Parse("", &parsed).ok());
  EXPECT_FALSE(WireRouting::Parse("epoch:x vnodes:64\n", &parsed).ok());
  EXPECT_FALSE(
      WireRouting::Parse("epoch:1 vnodes:64\nn1 nocolon master n1 up\n",
                         &parsed)
          .ok());
  EXPECT_FALSE(
      WireRouting::Parse("epoch:1 vnodes:64\nn1 h:1 emperor n1 up\n", &parsed)
          .ok());
}

TEST(OpLogTest, SequencesAndGapDetection) {
  OpLog log(4);
  for (int i = 0; i < 3; ++i) {
    ReplOp op;
    op.key = "k" + std::to_string(i);
    log.Append(std::move(op));
  }
  EXPECT_EQ(3u, log.head_seq());
  EXPECT_EQ(1u, log.min_seq());

  std::vector<ReplOp> ops;
  ASSERT_TRUE(log.Read(2, 16, &ops));
  ASSERT_EQ(2u, ops.size());
  EXPECT_EQ(2u, ops[0].seq);
  EXPECT_EQ("k2", ops[1].key);

  // Reading past the head is an empty (not failed) read.
  ASSERT_TRUE(log.Read(4, 16, &ops));
  EXPECT_TRUE(ops.empty());

  // Overrun the ring: seq 1 and 2 fall out; reading them is a gap.
  for (int i = 3; i < 6; ++i) {
    ReplOp op;
    op.key = "k" + std::to_string(i);
    log.Append(std::move(op));
  }
  EXPECT_EQ(6u, log.head_seq());
  EXPECT_EQ(3u, log.min_seq());
  EXPECT_FALSE(log.Read(1, 16, &ops));
  ASSERT_TRUE(log.Read(3, 16, &ops));
  EXPECT_EQ(4u, ops.size());
}

// ---------------------------------------------------------------------------
// Live-cluster fixture: coordinator + N data nodes on loopback.
// ---------------------------------------------------------------------------

struct DataNode {
  std::unique_ptr<TierBase> db;
  std::unique_ptr<server::Server> srv;
  std::unique_ptr<NodeClusterState> cluster;
  std::string id;

  uint16_t port() const { return srv->port(); }
};

class ClusterNetTest : public ::testing::Test {
 protected:
  void StartCoordinator(uint64_t probe_interval_micros = 0) {
    CoordinatorService::Options options;
    options.port = 0;
    options.virtual_nodes = 32;
    options.probe_interval_micros = probe_interval_micros;
    coordinator_ = std::make_unique<CoordinatorService>(options);
    ASSERT_TRUE(coordinator_->Start().ok());
  }

  DataNode* StartNode(const std::string& id, size_t oplog_cap = 65536) {
    auto node = std::make_unique<DataNode>();
    node->id = id;
    TierBaseOptions options;
    options.policy = CachingPolicy::kCacheOnly;
    options.cache.shards = 2;
    auto db = TierBase::Open(options, nullptr);
    EXPECT_TRUE(db.ok());
    node->db = std::move(*db);

    NodeClusterState::Options cluster_options;
    cluster_options.id = id;
    cluster_options.oplog_capacity = oplog_cap;
    node->cluster = std::make_unique<NodeClusterState>(node->db.get(),
                                                       cluster_options);

    server::ServerOptions server_options;
    server_options.net.port = 0;
    server_options.executor.max_threads = 2;
    node->srv =
        std::make_unique<server::Server>(node->db.get(), server_options);
    node->srv->commands()->set_cluster(node->cluster.get());
    EXPECT_TRUE(node->srv->Start().ok());
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
  }

  Status Register(const DataNode& node, const std::string& replica_of = "") {
    return coordinator_->AddNode(node.id, "127.0.0.1", node.port(),
                                 replica_of);
  }

  std::unique_ptr<NetClusterClient> SmartClient() {
    NetClusterClient::Options options;
    options.coordinators.push_back("127.0.0.1:" +
                                   std::to_string(coordinator_->port()));
    auto client = NetClusterClient::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  DataNode* Find(const std::string& id) {
    for (auto& node : nodes_) {
      if (node->id == id) return node.get();
    }
    return nullptr;
  }

  void TearDown() override {
    for (auto& node : nodes_) {
      // Stop replication links before servers so pullers don't spin
      // against closed listeners during teardown.
      node->cluster->StopReplication();
    }
    for (auto& node : nodes_) node->srv->Stop();
    if (coordinator_ != nullptr) coordinator_->Stop();
  }

  std::unique_ptr<CoordinatorService> coordinator_;
  std::vector<std::unique_ptr<DataNode>> nodes_;
};

TEST_F(ClusterNetTest, CoordinatorRegistersRoutesAndServesNodes) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());

  // Registration pushed routing to the data nodes (CLUSTER SETSLOTS).
  EXPECT_EQ(coordinator_->epoch(), n2->cluster->epoch());
  EXPECT_EQ(coordinator_->epoch(), n1->cluster->epoch());

  // Control-plane vocabulary over the wire.
  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", coordinator_->port()).ok());
  RespValue v;
  ASSERT_TRUE(cli.Call({"CLUSTER", "EPOCH"}, &v).ok());
  EXPECT_EQ(static_cast<int64_t>(coordinator_->epoch()), v.integer);
  ASSERT_TRUE(cli.Call({"CLUSTER", "NODES"}, &v).ok());
  WireRouting parsed;
  ASSERT_TRUE(WireRouting::Parse(v.str, &parsed).ok());
  EXPECT_EQ(2u, parsed.nodes.size());
  ASSERT_TRUE(cli.Call({"CLUSTER", "ROUTE", "somekey"}, &v).ok());
  EXPECT_TRUE(v.str.rfind("n1 ", 0) == 0 || v.str.rfind("n2 ", 0) == 0)
      << v.str;
  // Duplicate registration is rejected.
  ASSERT_TRUE(cli.Call({"CLUSTER", "ADDNODE", "n1", "127.0.0.1", "1"}, &v)
                  .ok());
  EXPECT_TRUE(v.IsError());
}

TEST_F(ClusterNetTest, MisroutedKeysAnswerMoved) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());

  // Find keys owned by each shard via the coordinator's own router.
  cluster::Router router = coordinator_->Routing().BuildRouter();
  std::string n1_key, n2_key;
  for (int i = 0; n1_key.empty() || n2_key.empty(); ++i) {
    ASSERT_LT(i, 10000);
    std::string key = "key" + std::to_string(i);
    (router.Route(key) == "n1" ? n1_key : n2_key) = key;
  }

  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", n1->port()).ok());
  RespValue v;
  // Right node: executes; wrong node: -MOVED naming the owner.
  ASSERT_TRUE(cli.Call({"SET", n1_key, "v"}, &v).ok());
  EXPECT_EQ("OK", v.str);
  ASSERT_TRUE(cli.Call({"SET", n2_key, "v"}, &v).ok());
  ASSERT_TRUE(v.IsError());
  EXPECT_EQ(0u, v.str.find("MOVED ")) << v.str;
  EXPECT_NE(std::string::npos,
            v.str.find(std::to_string(n2->port())));
  EXPECT_GE(n1->cluster->moved_replies(), 1u);
  // MGET with any misrouted key is rejected the same way.
  ASSERT_TRUE(cli.Call({"MGET", n1_key, n2_key}, &v).ok());
  EXPECT_TRUE(v.IsError());
}

TEST_F(ClusterNetTest, SmartClientRoutesAndScatterGathers) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());
  auto client = SmartClient();

  // Point ops route per key.
  const int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        client->Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Both nodes hold a share of the keyspace.
  uint64_t n1_keys = n1->db->cache()->GetUsage().keys;
  uint64_t n2_keys = n2->db->cache()->GetUsage().keys;
  EXPECT_GT(n1_keys, 0u);
  EXPECT_GT(n2_keys, 0u);
  EXPECT_EQ(static_cast<uint64_t>(kKeys), n1_keys + n2_keys);

  // Batched reads scatter per node and stitch replies back in order.
  std::vector<std::string> key_storage;
  for (int i = 0; i < kKeys; ++i) key_storage.push_back("k" + std::to_string(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  client->MultiGet(keys, &values, &statuses);
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_EQ("v" + std::to_string(i), values[i]);
  }
  NetClusterClient::Stats stats = client->GetStats();
  EXPECT_EQ(2u, stats.node_batches.size());  // One MGET sub-batch per node.

  // Batched writes the same way; missing keys come back NotFound.
  std::vector<Slice> wkeys{keys[0], keys[1]};
  std::vector<Slice> wvalues{"x0", "x1"};
  client->MultiSet(wkeys, wvalues, &statuses);
  ASSERT_TRUE(statuses[0].ok());
  std::string value;
  ASSERT_TRUE(client->Get("k0", &value).ok());
  EXPECT_EQ("x0", value);
  EXPECT_TRUE(client->Get("nosuch", &value).IsNotFound());
  EXPECT_TRUE(client->Delete("k0").ok());
  EXPECT_TRUE(client->Get("k0", &value).IsNotFound());
}

TEST_F(ClusterNetTest, WireReplicationStreamsAndWaitAcks) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* r1 = StartNode("r1");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*r1, /*replica_of=*/"n1").ok());
  EXPECT_TRUE(r1->cluster->is_replica());

  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", n1->port()).ok());
  RespValue v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        cli.Call({"SET", "rk" + std::to_string(i), std::to_string(i)}, &v)
            .ok());
  }
  ASSERT_TRUE(cli.Call({"DEL", "rk0"}, &v).ok());
  ASSERT_TRUE(cli.Call({"EXPIRE", "rk1", "100"}, &v).ok());
  EXPECT_EQ(1, v.integer);

  // WAIT blocks until the replica acked the master's head sequence.
  ASSERT_TRUE(cli.Call({"WAIT", "1", "5000"}, &v).ok());
  EXPECT_GE(v.integer, 1) << "replica never caught up";

  // The replica applied the stream: values present, deletes applied.
  // (The ack covers the pull; applying precedes acking, so no extra wait.)
  std::string value;
  for (int i = 1; i < 100; ++i) {
    ASSERT_TRUE(r1->db->Get("rk" + std::to_string(i), &value).ok())
        << "rk" << i;
    EXPECT_EQ(std::to_string(i), value);
  }
  EXPECT_TRUE(r1->db->Get("rk0", &value).IsNotFound());
  // TTLs replicate too (EXPIRE streams as its own op type).
  Result<uint64_t> ttl = r1->db->cache()->Ttl("rk1");
  ASSERT_TRUE(ttl.ok());
  EXPECT_GT(*ttl, 0u);

  // Replicas reject direct client writes.
  Client rcli;
  ASSERT_TRUE(rcli.Connect("127.0.0.1", r1->port()).ok());
  ASSERT_TRUE(rcli.Call({"SET", "direct", "write"}, &v).ok());
  ASSERT_TRUE(v.IsError());
  EXPECT_EQ(0u, v.str.find("READONLY")) << v.str;

  // INFO surfaces the replication link.
  ASSERT_TRUE(rcli.Call({"INFO"}, &v).ok());
  EXPECT_NE(std::string::npos, v.str.find("role:replica"));
  EXPECT_NE(std::string::npos, v.str.find("replica_lag_ops:"));
}

TEST_F(ClusterNetTest, LateReplicaFullResyncsAcrossOplogGap) {
  StartCoordinator();
  // Tiny oplog: by the time the replica attaches, seq 1 has been dropped,
  // so the first pull hits REPLGAP and the replica snapshots instead.
  DataNode* n1 = StartNode("n1", /*oplog_cap=*/8);
  ASSERT_TRUE(Register(*n1).ok());

  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", n1->port()).ok());
  RespValue v;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        cli.Call({"SET", "gk" + std::to_string(i), std::to_string(i)}, &v)
            .ok());
  }
  ASSERT_TRUE(cli.Call({"SET", "gkttl", "x", "EX", "100"}, &v).ok());

  DataNode* r1 = StartNode("r1", /*oplog_cap=*/8);
  ASSERT_TRUE(Register(*r1, "n1").ok());
  ASSERT_TRUE(cli.Call({"WAIT", "1", "5000"}, &v).ok());
  EXPECT_GE(v.integer, 1);
  EXPECT_GE(r1->cluster->full_resyncs(), 1u);
  EXPECT_EQ(601u, r1->db->cache()->GetUsage().keys);
  std::string value;
  ASSERT_TRUE(r1->db->Get("gk599", &value).ok());
  EXPECT_EQ("599", value);
  // Snapshot pages carry remaining TTLs: the resynced key still expires.
  Result<uint64_t> ttl = r1->db->cache()->Ttl("gkttl");
  ASSERT_TRUE(ttl.ok());
  EXPECT_GT(*ttl, 0u);
}

TEST_F(ClusterNetTest, FailoverPromotesReplicaAndClientsConverge) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  DataNode* r1 = StartNode("r1");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());
  ASSERT_TRUE(Register(*r1, "n1").ok());

  auto client = SmartClient();
  const int kKeys = 100;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        client->Set("f" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Let the replica drain the stream before the kill.
  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", n1->port()).ok());
  RespValue v;
  ASSERT_TRUE(cli.Call({"WAIT", "1", "5000"}, &v).ok());
  ASSERT_GE(v.integer, 1);
  cli.Close();

  const uint64_t epoch_before = coordinator_->epoch();

  // Kill the master. The next op routed to it fails, the client reports
  // the failure, the coordinator promotes r1 and bumps the epoch, and the
  // retried op lands on the promoted replica — no client restart.
  n1->srv->Stop();
  std::string value;
  int served = 0;
  for (int i = 0; i < kKeys; ++i) {
    Status s = client->Get("f" + std::to_string(i), &value);
    if (s.ok()) {
      EXPECT_EQ("v" + std::to_string(i), value);
      ++served;
    }
  }
  // The lost-update window is bounded: every key survives because the
  // replica was caught up at kill time.
  EXPECT_EQ(kKeys, served);
  EXPECT_GT(coordinator_->epoch(), epoch_before);
  EXPECT_EQ(1u, coordinator_->failovers());
  EXPECT_FALSE(r1->cluster->is_replica());

  // Promotion is observable via CLUSTER EPOCH and INFO role.
  Client rcli;
  ASSERT_TRUE(rcli.Connect("127.0.0.1", r1->port()).ok());
  ASSERT_TRUE(rcli.Call({"CLUSTER", "EPOCH"}, &v).ok());
  EXPECT_EQ(static_cast<int64_t>(coordinator_->epoch()), v.integer);
  ASSERT_TRUE(rcli.Call({"INFO"}, &v).ok());
  EXPECT_NE(std::string::npos, v.str.find("role:master"));

  // Writes to the shard now land on the promoted node.
  ASSERT_TRUE(client->Set("f0", "after-failover").ok());
  ASSERT_TRUE(client->Get("f0", &value).ok());
  EXPECT_EQ("after-failover", value);
}

TEST_F(ClusterNetTest, KillMasterUnderYcsbKeepsServing) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  DataNode* r1 = StartNode("r1");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());
  ASSERT_TRUE(Register(*r1, "n1").ok());

  auto client = SmartClient();
  workload::YcsbOptions options = workload::WorkloadA();
  options.record_count = 2000;
  options.operation_count = 6000;
  workload::RunnerOptions runner;
  runner.batch_size = 8;

  workload::RunResult load = workload::RunLoadPhase(client.get(), options,
                                                    runner);
  ASSERT_EQ(0u, load.errors);
  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", n1->port()).ok());
  RespValue v;
  ASSERT_TRUE(cli.Call({"WAIT", "1", "5000"}, &v).ok());
  ASSERT_GE(v.integer, 1);
  cli.Close();

  // Kill n1 mid-run from a side thread.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    n1->srv->Stop();
  });
  workload::RunResult run = workload::RunPhase(client.get(), options, runner);
  killer.join();

  // The run completes; ops that raced the kill are the only casualties
  // (bounded by one batch per retry budget), and service continued on the
  // promoted replica + surviving master.
  EXPECT_EQ(options.operation_count, run.ops);
  EXPECT_LT(run.errors, options.operation_count / 10);
  EXPECT_EQ(1u, coordinator_->failovers());
  EXPECT_FALSE(r1->cluster->is_replica());

  // And the cluster still serves everything afterwards.
  workload::RunResult after = workload::RunPhase(client.get(), options,
                                                 runner);
  EXPECT_EQ(0u, after.errors);
}

TEST_F(ClusterNetTest, ProxyServesNaiveClientsAndScatterGathers) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());

  ClusterProxy::Options options;
  options.port = 0;
  // Two loops on the portable poll(2) backend: the scatter-gather path must
  // behave identically regardless of reactor backend or shard count.
  options.io_threads = 2;
  options.force_poll = true;
  options.backend.coordinators.push_back(
      "127.0.0.1:" + std::to_string(coordinator_->port()));
  ClusterProxy proxy(options);
  ASSERT_TRUE(proxy.Start().ok());

  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", proxy.port()).ok());
  RespValue v;
  ASSERT_TRUE(cli.Call({"PING"}, &v).ok());
  EXPECT_EQ("PONG", v.str);

  // Point ops, batch ops, and rich-type forwards, all through the proxy.
  ASSERT_TRUE(cli.Call({"SET", "pk", "pv"}, &v).ok());
  EXPECT_EQ("OK", v.str);
  ASSERT_TRUE(cli.Call({"GET", "pk"}, &v).ok());
  EXPECT_EQ("pv", v.str);
  ASSERT_TRUE(cli.Call({"MSET", "a", "1", "b", "2", "c", "3"}, &v).ok());
  EXPECT_EQ("OK", v.str);
  ASSERT_TRUE(cli.Call({"MGET", "a", "b", "c", "nope"}, &v).ok());
  ASSERT_EQ(4u, v.elements.size());
  EXPECT_EQ("1", v.elements[0].str);
  EXPECT_EQ("3", v.elements[2].str);
  EXPECT_TRUE(v.elements[3].IsNull());
  ASSERT_TRUE(cli.Call({"INCR", "counter"}, &v).ok());
  EXPECT_EQ(1, v.integer);
  ASSERT_TRUE(cli.Call({"LPUSH", "list", "x", "y"}, &v).ok());
  EXPECT_EQ(2, v.integer);
  ASSERT_TRUE(cli.Call({"LRANGE", "list", "0", "-1"}, &v).ok());
  ASSERT_EQ(2u, v.elements.size());
  ASSERT_TRUE(cli.Call({"DEL", "a", "b", "nope"}, &v).ok());
  EXPECT_EQ(2, v.integer);

  // A pipelined GET train becomes one cluster scatter–gather.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        cli.Call({"SET", "pp" + std::to_string(i), std::to_string(i)}, &v)
            .ok());
  }
  for (int i = 0; i < 32; ++i) cli.Append({"GET", "pp" + std::to_string(i)});
  ASSERT_TRUE(cli.Flush().ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cli.ReadReply(&v).ok());
    EXPECT_EQ(std::to_string(i), v.str);
  }

  // INFO reports per-node routed-batch counters.
  ASSERT_TRUE(cli.Call({"INFO"}, &v).ok());
  EXPECT_NE(std::string::npos, v.str.find("routed_batches_n1:"));
  EXPECT_NE(std::string::npos, v.str.find("routed_batches_n2:"));

  // Both nodes got a share of the writes.
  EXPECT_GT(n1->db->cache()->GetUsage().keys, 0u);
  EXPECT_GT(n2->db->cache()->GetUsage().keys, 0u);

  proxy.Stop();
}

TEST_F(ClusterNetTest, YcsbThroughProxyAndSmartClientMatchOpCounts) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());

  ClusterProxy::Options proxy_options;
  proxy_options.port = 0;
  // Run the proxy's client side on the multi-reactor core so the YCSB
  // equivalence check also covers cross-loop accept distribution.
  proxy_options.io_threads = 2;
  proxy_options.backend.coordinators.push_back(
      "127.0.0.1:" + std::to_string(coordinator_->port()));
  ClusterProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  auto smart = SmartClient();
  auto remote = server::RemoteEngine::Connect("127.0.0.1", proxy.port());
  ASSERT_TRUE(remote.ok());

  // Every standard mix, through the smart client and through the proxy,
  // must account for exactly the same op counts as in-process execution.
  for (char name : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    workload::YcsbOptions options;
    ASSERT_TRUE(workload::WorkloadByName(name, &options));
    options.record_count = 300;
    options.operation_count = 400;
    options.dataset.num_records = 300;
    workload::RunnerOptions runner;
    runner.batch_size = (name == 'A') ? 8 : 1;  // Exercise scatter-gather.

    TierBaseOptions local_options;
    local_options.cache.shards = 4;
    auto local = TierBase::Open(local_options, nullptr);
    ASSERT_TRUE(local.ok());
    workload::RunResult local_load =
        workload::RunLoadPhase(local->get(), options, runner);
    workload::RunResult local_run =
        workload::RunPhase(local->get(), options, runner);

    workload::RunResult smart_load =
        workload::RunLoadPhase(smart.get(), options, runner);
    workload::RunResult smart_run =
        workload::RunPhase(smart.get(), options, runner);
    EXPECT_EQ(local_load.ops, smart_load.ops) << "workload " << name;
    EXPECT_EQ(local_run.ops, smart_run.ops) << "workload " << name;
    EXPECT_EQ(0u, smart_load.errors + smart_run.errors)
        << "workload " << name;

    workload::RunResult proxy_load =
        workload::RunLoadPhase(remote->get(), options, runner);
    workload::RunResult proxy_run =
        workload::RunPhase(remote->get(), options, runner);
    EXPECT_EQ(local_load.ops, proxy_load.ops) << "workload " << name;
    EXPECT_EQ(local_run.ops, proxy_run.ops) << "workload " << name;
    EXPECT_EQ(0u, proxy_load.errors + proxy_run.errors)
        << "workload " << name;
  }

  proxy.Stop();
}

// ---------------------------------------------------------------------------
// Telemetry: every cluster binary's INFO parses and its counters move.
// ---------------------------------------------------------------------------

/// Parses an INFO body into section -> key -> value.
std::map<std::string, std::map<std::string, std::string>> ParseInfo(
    const std::string& body) {
  std::map<std::string, std::map<std::string, std::string>> out;
  std::string section;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      section = line.substr(line.find_first_not_of("# "));
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    out[section][line.substr(0, colon)] = line.substr(colon + 1);
  }
  return out;
}

TEST_F(ClusterNetTest, ProxyAndCoordinatorInfoParseWithLiveCounters) {
  StartCoordinator();
  DataNode* n1 = StartNode("n1");
  DataNode* n2 = StartNode("n2");
  ASSERT_TRUE(Register(*n1).ok());
  ASSERT_TRUE(Register(*n2).ok());

  ClusterProxy::Options options;
  options.port = 0;
  options.backend.coordinators.push_back(
      "127.0.0.1:" + std::to_string(coordinator_->port()));
  ClusterProxy proxy(options);
  ASSERT_TRUE(proxy.Start().ok());

  Client cli;
  ASSERT_TRUE(cli.Connect("127.0.0.1", proxy.port()).ok());
  RespValue v;
  ASSERT_TRUE(cli.Call({"INFO"}, &v).ok());
  ASSERT_EQ(RespValue::Type::kBulkString, v.type);
  auto info = ParseInfo(v.str);
  for (const char* section : {"Proxy", "Cluster", "Robustness"}) {
    EXPECT_TRUE(info.count(section)) << "missing section " << section;
  }
  for (const char* key : {"proxy_commands", "proxy_batches",
                          "proxy_coalesced_commands", "connected_clients",
                          "proxy_fanout_latency_us"}) {
    ASSERT_TRUE(info["Proxy"].count(key)) << key;
  }
  EXPECT_TRUE(info["Cluster"].count("route_refreshes"));
  EXPECT_TRUE(info["Robustness"].count("backoff_waits"));
  const uint64_t commands_before =
      std::stoull(info["Proxy"]["proxy_commands"]);

  // Drive a scatter-gather train; the fan-out histogram and the command
  // counter must both see it.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        cli.Call({"SET", "ti" + std::to_string(i), "v"}, &v).ok());
  }
  for (int i = 0; i < 16; ++i) cli.Append({"GET", "ti" + std::to_string(i)});
  ASSERT_TRUE(cli.Flush().ok());
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(cli.ReadReply(&v).ok());

  ASSERT_TRUE(cli.Call({"INFO"}, &v).ok());
  auto after = ParseInfo(v.str);
  EXPECT_GE(std::stoull(after["Proxy"]["proxy_commands"]),
            commands_before + 32);
  EXPECT_EQ(0u, after["Proxy"]["proxy_fanout_latency_us"].find("cnt="));
  EXPECT_NE("cnt=0,", after["Proxy"]["proxy_fanout_latency_us"].substr(0, 6));

  // The proxy's Prometheus exposition carries the same instruments.
  ASSERT_TRUE(cli.Call({"METRICS"}, &v).ok());
  ASSERT_EQ(RespValue::Type::kBulkString, v.type);
  EXPECT_NE(std::string::npos, v.str.find("tierbase_proxy_commands "));
  EXPECT_NE(std::string::npos,
            v.str.find("# TYPE tierbase_proxy_fanout_latency_us histogram"));
  EXPECT_NE(std::string::npos,
            v.str.find("tierbase_proxy_fanout_latency_us_count "));

  // The coordinator speaks the same surface on its control port.
  Client coord;
  ASSERT_TRUE(coord.Connect("127.0.0.1", coordinator_->port()).ok());
  ASSERT_TRUE(coord.Call({"INFO"}, &v).ok());
  ASSERT_EQ(RespValue::Type::kBulkString, v.type);
  auto cinfo = ParseInfo(v.str);
  ASSERT_TRUE(cinfo.count("Coordinator"));
  for (const char* key : {"cluster_epoch", "known_nodes", "failovers",
                          "probes_sent", "probe_failures"}) {
    ASSERT_TRUE(cinfo["Coordinator"].count(key)) << key;
  }
  EXPECT_EQ("2", cinfo["Coordinator"]["known_nodes"]);
  EXPECT_GE(std::stoull(cinfo["Coordinator"]["cluster_epoch"]), 1u);
  ASSERT_TRUE(coord.Call({"METRICS"}, &v).ok());
  EXPECT_NE(std::string::npos, v.str.find("tierbase_cluster_epoch "));
  EXPECT_NE(std::string::npos,
            v.str.find("# TYPE tierbase_known_nodes gauge"));

  proxy.Stop();
}

}  // namespace
}  // namespace cluster_net
}  // namespace tierbase
